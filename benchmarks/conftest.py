"""Benchmark-suite configuration.

Adds the repository root to ``sys.path`` so bench modules can import
the shared ``_common`` helpers regardless of invocation directory, and
registers a summary hook that reminds the user the paper-style tables
are printed on stdout (run with ``-s`` to see them inline).
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
