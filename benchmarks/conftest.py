"""Benchmark-suite configuration.

Makes the suite runnable from both supported setups without manual
``sys.path`` surgery:

* adds this directory to ``sys.path`` so bench modules can import the
  shared ``_common`` helpers regardless of invocation directory;
* when ``repro`` is not importable (fresh checkout, no ``pip install
  -e .`` yet), falls back to the in-tree ``src/`` layout -- the same
  code an installed environment resolves, so results are identical.

Also registers a summary hook reminding the user the paper-style
tables are printed on stdout (run with ``-s`` to see them inline).
"""

import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, _HERE)

try:
    import repro  # noqa: F401
except ImportError:
    _SRC = os.path.join(os.path.dirname(_HERE), "src")
    if os.path.isdir(os.path.join(_SRC, "repro")):
        sys.path.insert(0, _SRC)
