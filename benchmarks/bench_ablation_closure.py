"""Ablation -- Dijkstra closure vs the DAG fast path (beyond the paper).

Table 4 shows preprocessing is dominated by the transitive closure.
For positive-duration temporal graphs the transformed graph 𝔾 is
acyclic, so the closure can be computed by reverse-topological dynamic
programming with one vectorised row update per edge.  This bench
measures both methods on the transformed datasets and asserts they
produce identical distance matrices.
"""

import numpy as np
import pytest

from repro.core.transformation import transform_temporal_graph
from repro.datasets.registry import load_dataset
from repro.static.closure import build_metric_closure
from repro.static.dag import build_metric_closure_dag, topological_order
from repro.temporal.window import extract_window, middle_tenth_window, select_root

from _common import fmt_s, print_table

# positive-duration datasets only (zero durations may create 2-cycles)
WORKLOADS = [("slashdot", 0.5, 0.5), ("epinions", 0.15, 0.4), ("phone", 0.3, 0.06)]

_graphs = {}
_results = {}


def _transformed(name):
    if name not in _graphs:
        config = dict((w[0], w) for w in WORKLOADS)[name]
        graph = load_dataset(name, scale=config[1])
        window = middle_tenth_window(graph, fraction=config[2])
        sub = extract_window(graph, window)
        root = select_root(sub, window, min_reach_fraction=0.02)
        _graphs[name] = transform_temporal_graph(sub, root, window).digraph
    return _graphs[name]


@pytest.mark.parametrize("name", [w[0] for w in WORKLOADS])
def test_closure_dijkstra(benchmark, name):
    digraph = _transformed(name)
    closure = benchmark.pedantic(
        build_metric_closure, args=(digraph,), rounds=3, iterations=1
    )
    _results[(name, "dijkstra")] = (benchmark.stats.stats.mean, closure.dist)


@pytest.mark.parametrize("name", [w[0] for w in WORKLOADS])
def test_closure_dag(benchmark, name):
    digraph = _transformed(name)
    assert topological_order(digraph) is not None
    closure = benchmark.pedantic(
        build_metric_closure_dag, args=(digraph,), rounds=3, iterations=1
    )
    _results[(name, "dag")] = (benchmark.stats.stats.mean, closure.dist)


def test_closure_report(benchmark):
    benchmark(lambda: None)
    rows = []
    for name in [w[0] for w in WORKLOADS]:
        dij = _results.get((name, "dijkstra"))
        dag = _results.get((name, "dag"))
        digraph = _transformed(name)
        speedup = f"{dij[0] / dag[0]:.1f}x" if dij and dag else "-"
        rows.append(
            [
                name,
                digraph.num_vertices,
                digraph.num_edges,
                fmt_s(dij[0]) if dij else "-",
                fmt_s(dag[0]) if dag else "-",
                speedup,
            ]
        )
        if dij and dag:
            assert np.allclose(dij[1], dag[1]), f"closures differ on {name}"
    print_table(
        "Ablation: transitive closure, Dijkstra vs DAG DP (s)",
        ["dataset", "|V(GG)|", "|E(GG)|", "Dijkstra", "DAG", "speedup"],
        rows,
    )
