"""Table 6 -- weights of the ``MST_w`` solutions for i = 1, 2, 3.

The paper's finding: quality is driven by the iteration count; weights
drop markedly from i = 1 to i = 2 and stabilise by i = 3.  We run the
full pipeline (Algorithm 6 + postprocessing) per level and also assert
Theorem 6's cost inequality on every row.
"""

import pytest

from repro.core.postprocess import closure_tree_to_temporal
from repro.steiner.pruned import pruned_dst

from _common import MSTW_WORKLOADS, mstw_workload, print_table

CONFIGS = {c.name: c for c in MSTW_WORKLOADS}
_weights = {}


def _cases():
    return [
        (name, level)
        for name in sorted(CONFIGS)
        for level in (1, 2, 3)
        if level <= CONFIGS[name].pruned_max_level
    ]


@pytest.mark.parametrize("name,level", _cases())
def test_table6_mstw_weight(benchmark, name, level):
    workload = mstw_workload(CONFIGS[name])

    def solve():
        closure_tree = pruned_dst(workload.prepared, level)
        tree = closure_tree_to_temporal(
            workload.transformed, workload.prepared, closure_tree
        )
        return closure_tree, tree

    closure_tree, tree = benchmark.pedantic(solve, rounds=1, iterations=1)
    tree.validate(workload.graph)
    assert tree.total_weight <= closure_tree.cost + 1e-9  # Theorem 6
    _weights[(name, level)] = tree.total_weight


def test_table6_report(benchmark):
    benchmark(lambda: None)
    rows = []
    for level in (1, 2, 3):
        row = [f"i={level}"]
        for name in sorted(CONFIGS):
            w = _weights.get((name, level))
            row.append(f"{w:.2f}" if w is not None else "-")
        rows.append(row)
    print_table(
        "Table 6: weight of the MST_w solution per iteration count",
        ["level"] + sorted(CONFIGS),
        rows,
    )
    # the paper's trend: i=2 never worse than i=1 by more than noise,
    # and usually strictly better somewhere
    improvements = 0
    for name in sorted(CONFIGS):
        w1, w2 = _weights.get((name, 1)), _weights.get((name, 2))
        if w1 is not None and w2 is not None:
            assert w2 <= w1 * 1.05 + 1e-9, name
            if w2 < w1 - 1e-9:
                improvements += 1
    assert improvements >= 1
