"""Table 5 -- DST solver runtime: Charikar vs Algorithm 4 vs Algorithm 6.

The paper's headline result: on the transformed datasets, Algorithm 4
improves Charikar's runtime by up to 4 orders of magnitude, and
Algorithm 6's pruning adds another order.  At ``i = 1`` all three
algorithms coincide (shortest closure edges from the root); the gaps
open at ``i >= 2``.

Level caps per algorithm come from the workload config -- a '-' entry in
the printed table means the solver exceeded its budget on that dataset,
mirroring the paper's '-' (> 3 days) entries for Charik-2/3.
"""

import pytest

from repro.steiner.charikar import charikar_dst
from repro.steiner.improved import improved_dst
from repro.steiner.pruned import pruned_dst

from _common import MSTW_WORKLOADS, fmt_s, mstw_workload, print_table

CONFIGS = {c.name: c for c in MSTW_WORKLOADS}
SOLVERS = {
    "Charik": (charikar_dst, "charikar_max_level"),
    "Alg4": (improved_dst, "improved_max_level"),
    "Alg6": (pruned_dst, "pruned_max_level"),
}
LEVELS = (1, 2, 3)

_results = {}


def _cases():
    cases = []
    for name in sorted(CONFIGS):
        config = CONFIGS[name]
        for solver_name, (_, cap_attr) in SOLVERS.items():
            for level in LEVELS:
                if level <= getattr(config, cap_attr):
                    cases.append((name, solver_name, level))
    return cases


@pytest.mark.parametrize("name,solver_name,level", _cases())
def test_table5_dst_runtime(benchmark, name, solver_name, level):
    workload = mstw_workload(CONFIGS[name])
    solver = SOLVERS[solver_name][0]
    tree = benchmark.pedantic(
        solver, args=(workload.prepared, level), rounds=1, iterations=1
    )
    _results[(name, solver_name, level)] = (
        benchmark.stats.stats.mean,
        tree.cost,
    )
    assert tree.covered == frozenset(workload.prepared.terminals)


def test_table5_report(benchmark):
    benchmark(lambda: None)
    rows = []
    for solver_name in SOLVERS:
        for level in LEVELS:
            row = [f"{solver_name}-{level}"]
            for name in sorted(CONFIGS):
                stored = _results.get((name, solver_name, level))
                row.append(fmt_s(stored[0]) if stored else "-")
            rows.append(row)
    print_table(
        "Table 5: DST runtime (s) on transformed datasets ('-' = over budget)",
        ["alg-i"] + sorted(CONFIGS),
        rows,
    )
    # Shape assertions (where both cells exist):
    for name in sorted(CONFIGS):
        charik2 = _results.get((name, "Charik", 2))
        alg4_2 = _results.get((name, "Alg4", 2))
        alg6_2 = _results.get((name, "Alg6", 2))
        if charik2 and alg4_2:
            assert alg4_2[0] < charik2[0], f"Alg4 not faster than Charik on {name}"
        if alg4_2 and alg6_2:
            assert alg6_2[0] <= alg4_2[0] * 1.5, f"pruning ineffective on {name}"
        # Theorem 7: identical costs wherever both ran
        if charik2 and alg4_2:
            assert charik2[1] == pytest.approx(alg4_2[1])
        if alg4_2 and alg6_2:
            assert alg4_2[1] == pytest.approx(alg6_2[1])


def test_table5_speedup_summary(benchmark):
    benchmark(lambda: None)
    rows = []
    for name in sorted(CONFIGS):
        charik2 = _results.get((name, "Charik", 2))
        alg4_2 = _results.get((name, "Alg4", 2))
        alg6_2 = _results.get((name, "Alg6", 2))
        if not (charik2 and alg4_2 and alg6_2):
            continue
        rows.append(
            [
                name,
                f"{charik2[0] / alg4_2[0]:.1f}x",
                f"{charik2[0] / alg6_2[0]:.1f}x",
            ]
        )
    print_table(
        "Table 5 summary: speedup over Charikar at i=2",
        ["dataset", "Alg4", "Alg6"],
        rows,
    )
