"""Table 2 -- MST_a runtime with non-zero edge durations.

Compares Bhadra (modified Prim-Dijkstra, [4]), Algorithm 2 (Alg2), and
Algorithm 1 (Alg1) with all durations set to 1 (the paper follows
Wu et al. [27] here), on the full time range ``[0, inf]`` and on the
windowed subgraph ``G'``.

Expected shape (the paper's finding): Alg1 fastest, Alg2 in between,
Bhadra slowest -- the linear scans beat the priority queue.
"""

import pytest

from repro.baselines.bhadra import bhadra_msta
from repro.core.msta import msta_chronological, msta_stack

from _common import fmt_ms, msta_graph, msta_protocol, print_table

DATASETS = ["slashdot", "epinions", "facebook", "enron", "hepph", "dblp"]
ALGORITHMS = [("Bhadra", bhadra_msta), ("Alg2", msta_stack), ("Alg1", msta_chronological)]

_results = {}


@pytest.fixture(scope="module")
def workloads():
    loaded = {}
    for name in DATASETS:
        graph = msta_graph(name, duration=1)
        loaded[name] = {
            "full": msta_protocol(graph, None),
            "window": msta_protocol(graph, 0.3),
        }
    return loaded


@pytest.mark.parametrize("name", DATASETS)
@pytest.mark.parametrize("setting", ["full", "window"])
@pytest.mark.parametrize("algorithm", [a for a, _ in ALGORITHMS])
def test_table2_msta_runtime(benchmark, workloads, name, setting, algorithm):
    root, window, graph = workloads[name][setting]
    solver = dict(ALGORITHMS)[algorithm]
    # warm the cached input formats so only algorithm time is measured,
    # as in the paper (input preparation is shared by all algorithms)
    graph.chronological_edges()
    graph.sorted_adjacency()
    tree = benchmark.pedantic(
        solver, args=(graph, root, window), rounds=3, iterations=1, warmup_rounds=1
    )
    _results[(name, setting, algorithm)] = (
        benchmark.stats.stats.mean,
        len(tree.vertices),
    )


def test_table2_report(benchmark, workloads):
    def timed_cell(name, setting, algorithm, solver):
        stored = _results.get((name, setting, algorithm))
        if stored is None:
            import time

            root, window, graph = workloads[name][setting]
            t0 = time.perf_counter()
            tree = solver(graph, root, window)
            stored = (time.perf_counter() - t0, len(tree.vertices))
        return stored

    benchmark(lambda: None)  # keep this report visible under --benchmark-only
    for setting, label in (("full", "[0, inf]"), ("window", "G'")):
        rows = []
        for name in DATASETS:
            means = {}
            reach = None
            for algorithm, solver in ALGORITHMS:
                mean, covered = timed_cell(name, setting, algorithm, solver)
                means[algorithm], reach = fmt_ms(mean), covered
            rows.append([name, reach - 1] + [means[a] for a, _ in ALGORITHMS])
        print_table(
            f"Table 2: MST_a runtime (ms), non-zero durations, window {label}",
            ["dataset", "|V_r|", "Bhadra", "Alg2", "Alg1"],
            rows,
        )
    # the headline shape: Alg1 beats Bhadra on the full window everywhere
    for name in DATASETS:
        bhadra = _results.get((name, "full", "Bhadra"))
        alg1 = _results.get((name, "full", "Alg1"))
        if bhadra and alg1:
            assert alg1[0] <= bhadra[0] * 1.5, f"Alg1 unexpectedly slow on {name}"
