"""Table 4 -- extracted/transformed graph sizes and preprocessing time.

For each dataset: the windowed subgraph ``G'``, the number of
terminals ``|V_r|``, the transformed graph sizes ``|V(G)|, |E(G)|``,
and the preprocessing time ``Tprep`` (window extraction + Section 4.2
transformation + transitive closure).  The benches time the two
dominant stages separately; the paper's observation that ``Tprep`` is
dominated by the closure (quadratic in ``|V(G)|``) is asserted.
"""

import time

import pytest

from repro.core.transformation import transform_temporal_graph
from repro.steiner.instance import prepare_instance

from _common import MSTW_WORKLOADS, fmt_s, mstw_workload, print_table

CONFIGS = {c.name: c for c in MSTW_WORKLOADS}
_timings = {}


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_table4_transformation(benchmark, name):
    workload = mstw_workload(CONFIGS[name])
    transformed = benchmark.pedantic(
        transform_temporal_graph,
        args=(workload.graph, workload.root, workload.window),
        rounds=3,
        iterations=1,
    )
    _timings[(name, "transform")] = benchmark.stats.stats.mean
    assert transformed.num_vertices == workload.transformed.num_vertices


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_table4_closure(benchmark, name):
    workload = mstw_workload(CONFIGS[name])
    # time the closure (re-preparation of the same DST instance) alone
    dst = workload.prepared.instance
    prepared = benchmark.pedantic(
        prepare_instance, args=(dst,), rounds=1, iterations=1
    )
    _timings[(name, "closure")] = benchmark.stats.stats.mean
    assert prepared.num_terminals == workload.prepared.num_terminals


def test_table4_report(benchmark):
    benchmark(lambda: None)
    rows = []
    for name in sorted(CONFIGS):
        workload = mstw_workload(CONFIGS[name])
        transform_time = _timings.get((name, "transform"), 0.0)
        closure_time = _timings.get((name, "closure"), 0.0)
        rows.append(
            [
                name,
                workload.graph.num_vertices,
                workload.graph.num_edges,
                workload.prepared.num_terminals,
                workload.transformed.num_vertices,
                workload.transformed.num_edges,
                fmt_s(transform_time),
                fmt_s(closure_time),
                fmt_s(workload.preprocessing_seconds),
            ]
        )
    print_table(
        "Table 4: extracted G', transformed graph sizes, preprocessing time (s)",
        [
            "dataset",
            "|V(G')|",
            "|E(G')|",
            "|V_r|",
            "|V(GG)|",
            "|E(GG)|",
            "Ttransform",
            "Tclosure",
            "Tprep",
        ],
        rows,
    )
    # the paper: preprocessing is dominated by the closure computation.
    # Individual sub-millisecond rows can flip under CPU contention, so
    # the dominance claim is asserted on the aggregate.
    total_transform = sum(
        _timings.get((name, "transform"), 0.0) for name in CONFIGS
    )
    total_closure = sum(_timings.get((name, "closure"), 0.0) for name in CONFIGS)
    if total_transform and total_closure:
        assert total_closure > total_transform
