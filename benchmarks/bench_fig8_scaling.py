"""Figure 8 -- runtime scaling of the improved DST algorithms.

(a) fix |V| and sweep the density |E|/|V|: Algorithm 6's runtime stays
    flat, because the solver's input is the transitive closure and the
    average degree of the base graph only affects preprocessing.
(b) fix |E|/|V| and k/|V| and sweep |V|: runtime grows polynomially,
    reflecting the O(|V|^i k^i) bound for Alg4/Alg6.

The paper sweeps SteinLib I320/WRP4 instances; we sweep the same shape
parameters on the synthetic generator.
"""

import pytest

from repro.steiner.improved import improved_dst
from repro.steiner.instance import prepare_instance
from repro.steiner.pruned import pruned_dst
from repro.steiner.steinlib import generate_b_instance

from _common import fmt_s, print_table

DENSITIES = [2, 4, 6, 8]  # |E|/|V| at fixed |V|
FIXED_N = 60
FIXED_K = 8

SIZES = [30, 45, 60, 75]  # |V| at fixed |E|/|V| = 3, k/|V| ~ 0.13
LEVEL = 3

_density_results = {}
_size_results = {}


def _density_instance(ratio):
    problem = generate_b_instance(
        FIXED_N, FIXED_N * ratio, FIXED_K, name=f"density-{ratio}", seed=500 + ratio
    )
    return prepare_instance(problem.to_dst_instance())


def _size_instance(n):
    k = max(3, int(round(n * 0.13)))
    problem = generate_b_instance(n, 3 * n, k, name=f"size-{n}", seed=700 + n)
    return prepare_instance(problem.to_dst_instance())


@pytest.mark.parametrize("ratio", DENSITIES)
def test_fig8a_density_sweep(benchmark, ratio):
    prepared = _density_instance(ratio)
    tree = benchmark.pedantic(
        pruned_dst, args=(prepared, LEVEL), rounds=1, iterations=1
    )
    _density_results[ratio] = benchmark.stats.stats.mean
    assert tree.covered == frozenset(prepared.terminals)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("solver_name", ["Alg4", "Alg6"])
def test_fig8b_size_sweep(benchmark, n, solver_name):
    prepared = _size_instance(n)
    solver = improved_dst if solver_name == "Alg4" else pruned_dst
    tree = benchmark.pedantic(solver, args=(prepared, LEVEL), rounds=1, iterations=1)
    _size_results[(solver_name, n)] = benchmark.stats.stats.mean
    assert tree.covered == frozenset(prepared.terminals)


def test_fig8_report(benchmark):
    benchmark(lambda: None)
    print_table(
        f"Figure 8(a): Alg6-{LEVEL} runtime (s) vs |E|/|V| at |V|={FIXED_N}, k={FIXED_K}",
        ["|E|/|V|"] + [str(r) for r in DENSITIES],
        [["time"] + [fmt_s(_density_results.get(r, float("nan"))) for r in DENSITIES]],
    )
    rows = []
    for solver_name in ("Alg4", "Alg6"):
        rows.append(
            [solver_name]
            + [fmt_s(_size_results.get((solver_name, n), float("nan"))) for n in SIZES]
        )
    print_table(
        f"Figure 8(b): runtime (s) vs |V| at |E|/|V|=3, k/|V|~0.13, i={LEVEL}",
        ["alg"] + [str(n) for n in SIZES],
        rows,
    )
    # Shape (a): flat -- the densest sweep point is within 4x of the sparsest
    if len(_density_results) == len(DENSITIES):
        times = [_density_results[r] for r in DENSITIES]
        assert max(times) <= 4 * min(times) + 0.05
    # Shape (b): growing -- the largest size is slower than the smallest
    for solver_name in ("Alg4", "Alg6"):
        t_small = _size_results.get((solver_name, SIZES[0]))
        t_large = _size_results.get((solver_name, SIZES[-1]))
        if t_small and t_large:
            assert t_large > t_small
