"""Table 3 -- MST_a runtime with zero edge durations.

With instantaneous contacts, Algorithm 1 is no longer correct (the
paper's Example 4), so the comparison is Bhadra vs Algorithm 2 only.
The expected shape: Alg2 beats Bhadra on (almost) every dataset, and
the zero-duration reachable sets are at least as large as the non-zero
ones (the paper's DBLP observation -- same-year co-authors become
mutually reachable).
"""

import pytest

from repro.baselines.bhadra import bhadra_msta
from repro.core.msta import msta_stack
from repro.temporal.paths import reachable_set

from _common import fmt_ms, msta_graph, msta_protocol, print_table

DATASETS = ["slashdot", "epinions", "facebook", "enron", "hepph", "dblp"]
ALGORITHMS = [("Bhadra", bhadra_msta), ("Alg2", msta_stack)]

_results = {}


@pytest.fixture(scope="module")
def workloads():
    loaded = {}
    for name in DATASETS:
        graph = msta_graph(name, duration=0)
        loaded[name] = {
            "full": msta_protocol(graph, None),
            "window": msta_protocol(graph, 0.3),
        }
    return loaded


@pytest.mark.parametrize("name", DATASETS)
@pytest.mark.parametrize("setting", ["full", "window"])
@pytest.mark.parametrize("algorithm", [a for a, _ in ALGORITHMS])
def test_table3_msta_runtime(benchmark, workloads, name, setting, algorithm):
    root, window, graph = workloads[name][setting]
    solver = dict(ALGORITHMS)[algorithm]
    graph.sorted_adjacency()
    tree = benchmark.pedantic(
        solver, args=(graph, root, window), rounds=3, iterations=1, warmup_rounds=1
    )
    _results[(name, setting, algorithm)] = (
        benchmark.stats.stats.mean,
        len(tree.vertices),
    )


def test_table3_report(benchmark, workloads):
    benchmark(lambda: None)
    for setting, label in (("full", "[0, inf]"), ("window", "G'")):
        rows = []
        for name in DATASETS:
            cells = []
            reach = None
            for algorithm, solver in ALGORITHMS:
                stored = _results.get((name, setting, algorithm))
                if stored is None:
                    import time

                    root, window, graph = workloads[name][setting]
                    t0 = time.perf_counter()
                    tree = solver(graph, root, window)
                    stored = (time.perf_counter() - t0, len(tree.vertices))
                cells.append(fmt_ms(stored[0]))
                reach = stored[1]
            rows.append([name, reach - 1] + cells)
        print_table(
            f"Table 3: MST_a runtime (ms), zero durations, window {label}",
            ["dataset", "|V_r|", "Bhadra", "Alg2"],
            rows,
        )


def test_table3_zero_durations_extend_reach(benchmark, workloads):
    """The paper's DBLP effect: zero durations never shrink |V_r|."""

    def compare():
        out = {}
        for name in DATASETS:
            root, window, graph = workloads[name]["full"]
            zero_reach = len(reachable_set(graph, root))
            nonzero = graph.with_durations(1)
            nonzero_reach = len(reachable_set(nonzero, root))
            out[name] = (zero_reach, nonzero_reach)
        return out

    reaches = benchmark(compare)
    for name, (zero_reach, nonzero_reach) in reaches.items():
        assert zero_reach >= nonzero_reach, name
