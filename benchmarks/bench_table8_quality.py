"""Table 8 -- result quality: relative error vs the certified optimum.

For each b-series instance and each level i = 1..5 (i = 4, 5 only on
the smaller instances to bound the run), the relative error
``(Approx - Opt) / Opt`` of Algorithm 6 -- the paper's Table 8.

Expected shape: errors are far below the theoretical
``i^2 (i-1) k^(1/i)`` bound, shrink as i grows, and are small by i = 3.
"""

import pytest

from repro.steiner.exact import exact_dst_cost
from repro.steiner.instance import approximation_ratio, prepare_instance
from repro.steiner.pruned import pruned_dst
from repro.steiner.steinlib import generate_b_series

from _common import print_table

INSTANCES = ["b01", "b03", "b05", "b07", "b09", "b11", "b13", "b15", "b17"]
DEEP_INSTANCES = {"b01", "b03", "b05"}  # get i = 4, 5 as well

_problems = {}
_prepared = {}
_opt = {}
_errors = {}


def _get_prepared(name):
    if name not in _prepared:
        if not _problems:
            _problems.update(generate_b_series(INSTANCES))
        _prepared[name] = prepare_instance(_problems[name].to_dst_instance())
        _opt[name] = exact_dst_cost(_prepared[name])
    return _prepared[name]


def _cases():
    cases = []
    for name in INSTANCES:
        max_level = 5 if name in DEEP_INSTANCES else 3
        for level in range(1, max_level + 1):
            cases.append((name, level))
    return cases


@pytest.mark.parametrize("name,level", _cases())
def test_table8_relative_error(benchmark, name, level):
    prepared = _get_prepared(name)
    tree = benchmark.pedantic(
        pruned_dst, args=(prepared, level), rounds=1, iterations=1
    )
    opt = _opt[name]
    error = (tree.cost - opt) / opt
    _errors[(name, level)] = error
    k = prepared.num_terminals
    assert error >= -1e-9
    assert tree.cost <= approximation_ratio(level, k) * opt + 1e-9


def test_table8_report(benchmark):
    benchmark(lambda: None)
    rows = []
    for level in range(1, 6):
        row = [f"i={level}"]
        for name in INSTANCES:
            err = _errors.get((name, level))
            row.append(f"{err:.2f}" if err is not None else "-")
        rows.append(row)
    print_table(
        "Table 8: relative error (Approx-Opt)/Opt of Alg6 per level",
        ["level"] + INSTANCES,
        rows,
    )
    # shape: per instance, the error at the deepest level run is no
    # worse than at i=1, and the i=3 average error is small
    errors_i3 = []
    for name in INSTANCES:
        e1 = _errors.get((name, 1))
        e3 = _errors.get((name, 3))
        if e1 is not None and e3 is not None:
            assert e3 <= e1 + 1e-9, name
            errors_i3.append(e3)
    if errors_i3:
        assert sum(errors_i3) / len(errors_i3) < 1.0
