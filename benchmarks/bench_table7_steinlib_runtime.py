"""Table 7 -- runtime on small DST instances with a certified optimum.

The paper uses SteinLib's ``b`` set (random sparse graphs, weights
1..10) whose optima are published by ZIB; we generate instances with
the same shapes (terminal counts capped at 12 so the exact
Dreyfus-Wagner solver can certify the optimum -- see DESIGN.md) and
compare Charik-3 against Alg6 at i = 3 and 4.  Alg6-5 is reported for
the two smallest instances (the paper's Alg6-5 column also grows into
hours).

Expected shape: Alg6-3 is orders of magnitude faster than Charik-3,
and Alg6's runtime grows steeply with the level.
"""

import pytest

from repro.steiner.charikar import charikar_dst
from repro.steiner.exact import exact_dst_cost
from repro.steiner.instance import prepare_instance
from repro.steiner.pruned import pruned_dst
from repro.steiner.steinlib import generate_b_series

from _common import fmt_s, print_table

INSTANCES = ["b01", "b03", "b05", "b07", "b09", "b11", "b13", "b15", "b17"]
ALG6_4_INSTANCES = {"b01", "b03", "b05", "b07", "b09", "b11"}
ALG6_5_INSTANCES = {"b01"}

_problems = {}
_prepared = {}
_results = {}
_opt = {}


def _get_prepared(name):
    if name not in _prepared:
        if not _problems:
            _problems.update(generate_b_series(INSTANCES))
        _prepared[name] = prepare_instance(_problems[name].to_dst_instance())
    return _prepared[name]


@pytest.mark.parametrize("name", INSTANCES)
def test_table7_exact_optimum(benchmark, name):
    prepared = _get_prepared(name)
    opt = benchmark.pedantic(exact_dst_cost, args=(prepared,), rounds=1, iterations=1)
    _opt[name] = opt
    assert opt > 0


@pytest.mark.parametrize("name", INSTANCES)
def test_table7_charik3(benchmark, name):
    prepared = _get_prepared(name)
    tree = benchmark.pedantic(
        charikar_dst, args=(prepared, 3), rounds=1, iterations=1
    )
    _results[(name, "Charik-3")] = (benchmark.stats.stats.mean, tree.cost)


@pytest.mark.parametrize("name", INSTANCES)
def test_table7_alg6_level3(benchmark, name):
    prepared = _get_prepared(name)
    tree = benchmark.pedantic(
        pruned_dst, args=(prepared, 3), rounds=1, iterations=1
    )
    _results[(name, "Alg6-3")] = (benchmark.stats.stats.mean, tree.cost)


@pytest.mark.parametrize("name", sorted(ALG6_4_INSTANCES))
def test_table7_alg6_level4(benchmark, name):
    prepared = _get_prepared(name)
    tree = benchmark.pedantic(
        pruned_dst, args=(prepared, 4), rounds=1, iterations=1
    )
    _results[(name, "Alg6-4")] = (benchmark.stats.stats.mean, tree.cost)


@pytest.mark.parametrize("name", sorted(ALG6_5_INSTANCES))
def test_table7_alg6_level5(benchmark, name):
    prepared = _get_prepared(name)
    tree = benchmark.pedantic(
        pruned_dst, args=(prepared, 5), rounds=1, iterations=1
    )
    _results[(name, "Alg6-5")] = (benchmark.stats.stats.mean, tree.cost)


def test_table7_report(benchmark):
    benchmark(lambda: None)
    rows = []
    for name in INSTANCES:
        problem = _problems[name]
        cells = [
            name,
            problem.num_vertices,
            len(problem.edges),
            len(problem.terminals),
            f"{_opt.get(name, float('nan')):.0f}",
        ]
        for column in ("Charik-3", "Alg6-3", "Alg6-4", "Alg6-5"):
            stored = _results.get((name, column))
            cells.append(fmt_s(stored[0]) if stored else "-")
        rows.append(cells)
    print_table(
        "Table 7: runtime (s) on b-series instances with certified optima",
        ["G", "|V|", "|E|", "|X|", "Opt", "Charik-3", "Alg6-3", "Alg6-4", "Alg6-5"],
        rows,
    )
    # shape: Alg6-3 is dramatically faster than Charik-3 on every row
    for name in INSTANCES:
        charik = _results.get((name, "Charik-3"))
        alg6 = _results.get((name, "Alg6-3"))
        if charik and alg6:
            assert alg6[0] < charik[0], name
