"""Ablation -- lazy vs eager closure for shallow solves (beyond the paper).

At level ``i = 1`` the DST algorithms read only the root's closure row,
so materialising all ``|V(G)|`` rows up front (Table 4's dominant cost)
is wasted work.  This bench compares end-to-end prepare+solve time of
the eager closure against :class:`repro.static.lazy.LazyMetricClosure`
at ``i = 1``, and shows the advantage disappearing at ``i = 2`` where
every row is scanned anyway.
"""

import pytest

from repro.static.lazy import prepare_instance_lazy
from repro.steiner.instance import prepare_instance
from repro.steiner.pruned import pruned_dst

from _common import MSTW_WORKLOADS, fmt_s, mstw_workload, print_table

CONFIG = next(c for c in MSTW_WORKLOADS if c.name == "facebook")

_results = {}


def _instance():
    return mstw_workload(CONFIG).prepared.instance


@pytest.mark.parametrize("mode", ["eager", "lazy"])
@pytest.mark.parametrize("level", [1, 2])
def test_lazy_vs_eager(benchmark, mode, level):
    instance = _instance()

    def run():
        if mode == "lazy":
            prepared = prepare_instance_lazy(instance)
        else:
            prepared = prepare_instance(instance, closure_method="dijkstra")
        return prepared, pruned_dst(prepared, level)

    prepared, tree = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[(mode, level)] = (benchmark.stats.stats.mean, tree.cost)
    assert tree.covered == frozenset(prepared.terminals)


def test_lazy_report(benchmark):
    benchmark(lambda: None)
    rows = []
    for level in (1, 2):
        eager = _results.get(("eager", level))
        lazy = _results.get(("lazy", level))
        if not (eager and lazy):
            continue
        rows.append(
            [
                f"i={level}",
                fmt_s(eager[0]),
                fmt_s(lazy[0]),
                f"{eager[0] / lazy[0]:.1f}x",
            ]
        )
        # identical answers regardless of closure strategy
        assert eager[1] == pytest.approx(lazy[1])
    print_table(
        f"Ablation: eager vs lazy closure on {CONFIG.name} (prepare + solve)",
        ["level", "eager", "lazy", "lazy speedup"],
        rows,
    )
    # at level 1 the lazy variant must win clearly
    eager1 = _results.get(("eager", 1))
    lazy1 = _results.get(("lazy", 1))
    if eager1 and lazy1:
        assert lazy1[0] < eager1[0]
