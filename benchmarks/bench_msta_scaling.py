"""Validation bench -- the O(M) claim of Theorems 1 and 2.

Sweeps the temporal edge count M at a fixed vertex count and measures
Algorithms 1 and 2; both should scale (near-)linearly, while the
Bhadra baseline picks up its log factor.  Complements Tables 2/3,
which compare datasets of fixed size.
"""

import pytest

from repro.baselines.bhadra import bhadra_msta
from repro.core.msta import msta_chronological, msta_stack
from repro.temporal.generators import uniform_temporal_graph

from _common import fmt_ms, print_table

EDGE_COUNTS = [2_000, 4_000, 8_000, 16_000]
NUM_VERTICES = 400

SOLVERS = {
    "Alg1": msta_chronological,
    "Alg2": msta_stack,
    "Bhadra": bhadra_msta,
}

_results = {}


def _graph(num_edges):
    return uniform_temporal_graph(
        NUM_VERTICES, num_edges, time_range=5_000, seed=num_edges
    )


@pytest.mark.parametrize("num_edges", EDGE_COUNTS)
@pytest.mark.parametrize("solver_name", sorted(SOLVERS))
def test_msta_scaling(benchmark, num_edges, solver_name):
    graph = _graph(num_edges)
    graph.chronological_edges()
    graph.sorted_adjacency()
    tree = benchmark.pedantic(
        SOLVERS[solver_name],
        args=(graph, 0),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    _results[(solver_name, num_edges)] = benchmark.stats.stats.mean
    assert tree.root == 0


def test_msta_scaling_report(benchmark):
    benchmark(lambda: None)
    rows = []
    for solver_name in ("Bhadra", "Alg2", "Alg1"):
        rows.append(
            [solver_name]
            + [
                fmt_ms(_results.get((solver_name, m), float("nan")))
                for m in EDGE_COUNTS
            ]
        )
    print_table(
        f"MST_a scaling: runtime (ms) vs M at |V|={NUM_VERTICES}",
        ["alg"] + [f"M={m}" for m in EDGE_COUNTS],
        rows,
    )
    # Linearity: Alg1 always scans all M edges, so an 8x edge growth
    # should cost no more than ~16x (2x slack for noise).  Alg2 is
    # *output-sensitive* (it only scans edges of reached vertices), so
    # its growth also tracks |V_r| and is not asserted here.
    t_small = _results.get(("Alg1", EDGE_COUNTS[0]))
    t_large = _results.get(("Alg1", EDGE_COUNTS[-1]))
    if t_small and t_large:
        growth = EDGE_COUNTS[-1] / EDGE_COUNTS[0]
        assert t_large / t_small < 2 * growth, "Alg1 not linear"
    # Both linear algorithms beat the baseline at every size.
    for num_edges in EDGE_COUNTS:
        bhadra = _results.get(("Bhadra", num_edges))
        for solver_name in ("Alg1", "Alg2"):
            ours = _results.get((solver_name, num_edges))
            if bhadra and ours:
                assert ours < bhadra, f"{solver_name} at M={num_edges}"
