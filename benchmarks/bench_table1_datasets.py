"""Table 1 -- dataset statistics.

Regenerates the paper's Table 1 (|V|, |E|, |E_s|, deg, deg_s, pi,
|Gamma_G|) for the seven synthetic dataset stand-ins, and benchmarks
the single-pass statistics computation itself.

The absolute sizes are scaled down (see DESIGN.md); the *regimes* the
paper highlights are asserted: Epinions' pi = 1, Facebook/Enron's heavy
multiplicity, Phone's extreme M/n ratio.
"""

import pytest

from repro.datasets.registry import DATASETS, load_dataset
from repro.temporal.stats import compute_statistics

from _common import print_table

DATASET_NAMES = sorted(DATASETS)


@pytest.fixture(scope="module")
def graphs():
    return {name: load_dataset(name, scale=0.5) for name in DATASET_NAMES}


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_table1_statistics(benchmark, graphs, name):
    stats = benchmark(compute_statistics, graphs[name])
    assert stats.num_temporal_edges == graphs[name].num_edges


def test_table1_report(benchmark, graphs):
    def build_rows():
        rows = []
        for name in DATASET_NAMES:
            s = compute_statistics(graphs[name])
            rows.append(
                [
                    name,
                    s.num_vertices,
                    s.num_temporal_edges,
                    s.num_static_edges,
                    s.max_temporal_degree,
                    s.max_static_degree,
                    s.max_multiplicity,
                    s.distinct_time_instances,
                ]
            )
        return rows

    rows = benchmark(build_rows)
    print_table(
        "Table 1: dataset statistics (synthetic stand-ins, scale=0.5)",
        ["dataset", "|V|", "|E|", "|E_s|", "deg", "deg_s", "pi", "|Gamma|"],
        rows,
    )
    by_name = {r[0]: r for r in rows}
    # the structural regimes the paper's Table 1 exhibits
    assert by_name["epinions"][6] == 1  # pi = 1
    assert by_name["facebook"][6] >= 5  # heavy multiplicity
    assert by_name["phone"][2] / by_name["phone"][1] > 50  # huge M/n
