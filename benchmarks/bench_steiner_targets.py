"""Extension bench -- temporal directed Steiner trees (the paper's §7).

Sweeps the number of target sites on one transformed dataset and
measures the targeted tree's weight and runtime against the full
``MST_w`` broadcast.  Expected shape: weight grows with the target
count and meets the broadcast weight when every vertex is a target;
runtime grows with k (the O(n^i k^i) law, now with k = #targets).
"""

import pytest

from repro.core.postprocess import closure_tree_to_temporal
from repro.core.steiner_temporal import minimum_steiner_tree_w
from repro.steiner.pruned import pruned_dst

from _common import MSTW_WORKLOADS, fmt_s, mstw_workload, print_table

CONFIG = next(c for c in MSTW_WORKLOADS if c.name == "epinions")
TARGET_COUNTS = [2, 5, 10, "all"]
LEVEL = 2

_results = {}


def _targets(workload, count):
    reachable = sorted(
        (v for v in workload.graph.vertices if v != workload.root), key=repr
    )
    covered = [
        v
        for v in reachable
        if ("dummy", v) in {t for t in workload.prepared.instance.terminals}
    ]
    if count == "all":
        return covered
    return covered[:count]


@pytest.mark.parametrize("count", TARGET_COUNTS)
def test_steiner_target_sweep(benchmark, count):
    workload = mstw_workload(CONFIG)
    targets = _targets(workload, count)

    result = benchmark.pedantic(
        minimum_steiner_tree_w,
        args=(workload.graph, workload.root, targets),
        kwargs={"window": workload.window, "level": LEVEL},
        rounds=1,
        iterations=1,
    )
    result.tree.validate(workload.graph)
    assert set(targets) <= result.tree.vertices
    _results[count] = (
        benchmark.stats.stats.mean,
        result.weight,
        len(result.steiner_vertices),
    )


def test_steiner_report(benchmark):
    benchmark(lambda: None)
    workload = mstw_workload(CONFIG)
    closure_tree = pruned_dst(workload.prepared, LEVEL)
    broadcast = closure_tree_to_temporal(
        workload.transformed, workload.prepared, closure_tree
    )
    rows = []
    for count in TARGET_COUNTS:
        stored = _results.get(count)
        if stored is None:
            continue
        elapsed, weight, relays = stored
        rows.append([str(count), fmt_s(elapsed), f"{weight:.2f}", relays])
    rows.append(
        ["MST_w", "-", f"{broadcast.total_weight:.2f}", 0]
    )
    print_table(
        f"Temporal Steiner trees on {CONFIG.name}: weight vs target count (i={LEVEL})",
        ["targets", "time (s)", "weight", "relays"],
        rows,
    )
    # shape: weight is monotone in the target count and bounded by the
    # full broadcast's weight
    weights = [
        _results[c][1] for c in TARGET_COUNTS if c in _results
    ]
    assert all(a <= b + 1e-9 for a, b in zip(weights, weights[1:]))
    assert weights[-1] <= broadcast.total_weight * 1.01 + 1e-9
