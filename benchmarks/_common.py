"""Shared machinery for the pytest-benchmark harness.

Workload configurations live in :mod:`repro.experiments.workloads` so
the programmatic experiment harness and this pytest-benchmark suite
measure exactly the same shapes; this module re-exports them and adds
the table-printing helpers the bench reports use.
"""

from __future__ import annotations

from repro.experiments.workloads import (  # noqa: F401  (re-exported)
    MSTA_SCALE,
    MSTW_WORKLOADS,
    MSTwWorkload,
    WorkloadConfig,
    msta_graph,
    msta_protocol,
    mstw_workload,
)


def print_table(title: str, header: list, rows: list) -> None:
    """Render a paper-style table to stdout (shown with ``pytest -s``)."""
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    line = " | ".join(str(h).rjust(w) for h, w in zip(header, widths))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print(" | ".join(str(c).rjust(w) for c, w in zip(row, widths)))


def fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}"


def fmt_s(seconds: float) -> str:
    return f"{seconds:.3f}"
