"""Motivation bench -- why static MSTs are not enough (Section 1).

For each dataset: compute the classical minimum spanning arborescence
on the static projection (timestamps discarded), try to realise it with
actual time-respecting edges, and compare against the temporal MST_w.
The static weight is an infeasible lower bound; the realisation loses
coverage whenever a cheap edge departs before its parent is reached --
quantifying the paper's claim that "the MST problems for temporal
graphs behave very differently".
"""

import pytest

from repro.baselines.static_projection import realize_static_tree
from repro.core.postprocess import closure_tree_to_temporal
from repro.steiner.pruned import pruned_dst

from _common import MSTW_WORKLOADS, mstw_workload, print_table

CONFIGS = {c.name: c for c in MSTW_WORKLOADS}
_rows = {}


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_static_gap(benchmark, name):
    workload = mstw_workload(CONFIGS[name])

    def run():
        comparison = realize_static_tree(
            workload.graph, workload.root, workload.window
        )
        closure_tree = pruned_dst(workload.prepared, 2)
        temporal = closure_tree_to_temporal(
            workload.transformed, workload.prepared, closure_tree
        )
        return comparison, temporal

    comparison, temporal = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows[name] = (
        comparison.static_weight,
        comparison.realized_weight,
        temporal.total_weight,
        comparison.feasible_fraction,
        len(comparison.infeasible),
    )
    # the static arborescence ignores feasibility: when it covers the
    # same set it cannot cost more than the feasible optimum's proxy;
    # we only assert the weak sanity direction here because the static
    # tree may span a different (statically reachable) vertex set.
    assert comparison.static_weight >= 0


def test_static_gap_report(benchmark):
    benchmark(lambda: None)
    rows = []
    for name in sorted(CONFIGS):
        if name not in _rows:
            continue
        static_w, realized_w, temporal_w, fraction, lost = _rows[name]
        rows.append(
            [
                name,
                f"{static_w:.2f}",
                f"{realized_w:.2f}",
                f"{temporal_w:.2f}",
                f"{fraction:.0%}",
                lost,
            ]
        )
    print_table(
        "Static-projection MST vs temporal MST_w (i=2)",
        ["dataset", "static w", "realized w", "temporal w", "feasible", "lost"],
        rows,
    )
    # shape: at least one dataset loses coverage when time is ignored
    assert any(row[5] > 0 for name, row in zip(sorted(CONFIGS), rows)) or all(
        row[4] == "100%" for row in rows
    )
