"""Ablation -- where does the speedup come from, and how does it scale?

The paper's improvement has two independent ingredients:

1. **prefix reuse** (Algorithms 4+5): one ``B`` call replaces ``k``
   recursive calls per candidate vertex -- Algorithm 3 vs Algorithm 4
   isolates this, and the gap should *grow with k* (the paper's
   ``O(n^i k^{2i})`` vs ``O(n^i k^i)``);
2. **density-based vertex ordering** (Algorithm 6): pruning the vertex
   scan -- Algorithm 4 vs Algorithm 6 isolates this, and the gap should
   grow with n (more vertices to skip).

This bench sweeps ``k`` at fixed ``n`` and ``n`` at fixed ``k`` at
``i = 2`` and prints both ablation tables.
"""

import pytest

from repro.steiner.charikar import charikar_dst
from repro.steiner.improved import improved_dst
from repro.steiner.instance import prepare_instance
from repro.steiner.pruned import pruned_dst
from repro.steiner.steinlib import generate_b_instance

from _common import fmt_s, print_table

K_SWEEP = [4, 8, 12, 16]
K_FIXED_N = 60

N_SWEEP = [40, 80, 120, 160]
N_FIXED_K = 8

LEVEL = 2
SOLVERS = {"Charik": charikar_dst, "Alg4": improved_dst, "Alg6": pruned_dst}

_k_results = {}
_n_results = {}


def _k_instance(k):
    problem = generate_b_instance(
        K_FIXED_N, 2 * K_FIXED_N, k, name=f"k-{k}", seed=900 + k
    )
    return prepare_instance(problem.to_dst_instance())


def _n_instance(n):
    problem = generate_b_instance(n, 2 * n, N_FIXED_K, name=f"n-{n}", seed=950 + n)
    return prepare_instance(problem.to_dst_instance())


@pytest.mark.parametrize("k", K_SWEEP)
@pytest.mark.parametrize("solver_name", sorted(SOLVERS))
def test_ablation_terminal_sweep(benchmark, k, solver_name):
    prepared = _k_instance(k)
    tree = benchmark.pedantic(
        SOLVERS[solver_name], args=(prepared, LEVEL), rounds=1, iterations=1
    )
    _k_results[(solver_name, k)] = (benchmark.stats.stats.mean, tree.cost)
    assert tree.covered == frozenset(prepared.terminals)


@pytest.mark.parametrize("n", N_SWEEP)
@pytest.mark.parametrize("solver_name", sorted(SOLVERS))
def test_ablation_vertex_sweep(benchmark, n, solver_name):
    prepared = _n_instance(n)
    tree = benchmark.pedantic(
        SOLVERS[solver_name], args=(prepared, LEVEL), rounds=1, iterations=1
    )
    _n_results[(solver_name, n)] = (benchmark.stats.stats.mean, tree.cost)
    assert tree.covered == frozenset(prepared.terminals)


def test_ablation_report(benchmark):
    benchmark(lambda: None)
    rows = []
    for solver_name in ("Charik", "Alg4", "Alg6"):
        rows.append(
            [solver_name]
            + [fmt_s(_k_results.get((solver_name, k), (float("nan"),))[0]) for k in K_SWEEP]
        )
    ratio_row = ["Charik/Alg4"]
    for k in K_SWEEP:
        charik = _k_results.get(("Charik", k))
        alg4 = _k_results.get(("Alg4", k))
        ratio_row.append(f"{charik[0] / alg4[0]:.1f}x" if charik and alg4 else "-")
    rows.append(ratio_row)
    print_table(
        f"Ablation A (prefix reuse): runtime (s) vs k at n={K_FIXED_N}, i={LEVEL}",
        ["alg"] + [f"k={k}" for k in K_SWEEP],
        rows,
    )

    rows = []
    for solver_name in ("Alg4", "Alg6"):
        rows.append(
            [solver_name]
            + [fmt_s(_n_results.get((solver_name, n), (float("nan"),))[0]) for n in N_SWEEP]
        )
    ratio_row = ["Alg4/Alg6"]
    for n in N_SWEEP:
        alg4 = _n_results.get(("Alg4", n))
        alg6 = _n_results.get(("Alg6", n))
        ratio_row.append(f"{alg4[0] / alg6[0]:.1f}x" if alg4 and alg6 else "-")
    rows.append(ratio_row)
    print_table(
        f"Ablation B (density ordering): runtime (s) vs n at k={N_FIXED_K}, i={LEVEL}",
        ["alg"] + [f"n={n}" for n in N_SWEEP],
        rows,
    )

    # Claims: (1) prefix reuse wins at every k and the speedup does not
    # collapse as k grows (sub-second timings are too noisy to assert
    # strict monotonicity of the ratio itself)
    for k in K_SWEEP:
        charik = _k_results.get(("Charik", k))
        alg4 = _k_results.get(("Alg4", k))
        if charik and alg4:
            assert charik[0] > alg4[0], f"no prefix-reuse win at k={k}"
    first = _k_results.get(("Charik", K_SWEEP[0]))
    last = _k_results.get(("Charik", K_SWEEP[-1]))
    first4 = _k_results.get(("Alg4", K_SWEEP[0]))
    last4 = _k_results.get(("Alg4", K_SWEEP[-1]))
    if first and last and first4 and last4:
        assert last[0] / last4[0] >= 0.5 * (first[0] / first4[0])
    # (2) all three agree on cost everywhere they ran (Theorems 7/9)
    for k in K_SWEEP:
        costs = {
            s: _k_results[(s, k)][1] for s in SOLVERS if (s, k) in _k_results
        }
        values = list(costs.values())
        for v in values[1:]:
            assert v == pytest.approx(values[0])
