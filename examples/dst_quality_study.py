#!/usr/bin/env python3
"""Directed Steiner tree quality study (a miniature of Tables 7/8).

Generates SteinLib-style sparse instances, certifies the optimum with
the exact subset-DP solver, and reports the relative error of the
paper's Algorithm 6 at increasing level numbers ``i`` -- reproducing the
paper's observation that results are "very close to the optimum when
i = 3" although the worst-case bound ``i^2 (i-1) k^(1/i)`` is much
larger.

Run:  python examples/dst_quality_study.py
"""

from repro.steiner.exact import exact_dst_cost
from repro.steiner.instance import approximation_ratio, prepare_instance
from repro.steiner.pruned import pruned_dst
from repro.steiner.steinlib import generate_b_instance

SHAPES = [
    ("tiny", 25, 35, 5),
    ("small", 40, 60, 7),
    ("medium", 60, 90, 9),
]
LEVELS = (1, 2, 3)


def main() -> None:
    print(f"{'instance':>8} | {'k':>2} | {'opt':>6} |", end="")
    for i in LEVELS:
        print(f" err(i={i}) |", end="")
    print(" bound(i=3)")
    print("-" * 62)

    for name, n, m, k in SHAPES:
        problem = generate_b_instance(n, m, k, name=name, seed=hash(name) % 1000)
        prepared = prepare_instance(problem.to_dst_instance())
        opt = exact_dst_cost(prepared)
        row = f"{name:>8} | {k:>2} | {opt:>6.0f} |"
        for i in LEVELS:
            approx = pruned_dst(prepared, i).cost
            rel = (approx - opt) / opt
            row += f" {rel:>8.3f} |"
        row += f" {approximation_ratio(3, k):>9.1f}"
        print(row)

    print()
    print(
        "err is (Approx - Opt)/Opt as in Table 8; the guarantee column\n"
        "shows how loose the worst-case bound is compared to practice."
    )


if __name__ == "__main__":
    main()
