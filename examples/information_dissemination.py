#!/usr/bin/env python3
"""Information dissemination in a social network (the paper's motivating app).

Scenario: a campaign message must reach a synthetic phone-call network
(the paper's CDR motivation: "phone communication involves some cost
for each call" -- here, per-minute billing).  We compare, for the same
source,

* the *fastest* broadcast -- ``MST_a`` tells each member the earliest
  moment they can hear the message, and
* the *cheapest* broadcast -- ``MST_w`` minimises the total billed
  call time,

and measure the classic speed/cost trade-off between the two trees.

Run:  python examples/information_dissemination.py
"""

from repro.core.msta import minimum_spanning_tree_a
from repro.core.mstw import minimum_spanning_tree_w
from repro.datasets.registry import load_dataset
from repro.temporal.window import extract_window, middle_tenth_window, select_root


def main() -> None:
    graph = load_dataset("phone", scale=0.2)  # weights = call durations
    print(
        f"network: {graph.num_vertices} members, {graph.num_edges} timed calls"
    )

    # The paper's evaluation protocol: middle slice of the time range,
    # root chosen as the first vertex reaching enough of the network.
    window = middle_tenth_window(graph, fraction=0.1)
    active = extract_window(graph, window)
    source = select_root(active, window, min_reach_fraction=0.02)
    print(f"window [{window.t_alpha:g}, {window.t_omega:g}], source {source}")

    fast = minimum_spanning_tree_a(active, source, window)
    cheap = minimum_spanning_tree_w(active, source, window, level=2)
    reached = len(fast.vertices) - 1
    print(f"message reaches {reached} members")

    fast_cost = fast.total_weight
    cheap_cost = cheap.weight
    fast_makespan = fast.max_arrival_time
    cheap_makespan = cheap.tree.max_arrival_time

    print()
    print(f"{'tree':>8} | {'total cost':>10} | {'done by':>10}")
    print("-" * 36)
    print(f"{'MST_a':>8} | {fast_cost:>10.2f} | {fast_makespan:>10.0f}")
    print(f"{'MST_w':>8} | {cheap_cost:>10.2f} | {cheap_makespan:>10.0f}")

    if cheap_cost > 0:
        print()
        print(
            f"the earliest-arrival tree costs "
            f"{fast_cost / cheap_cost:.2f}x the cheapest tree;"
        )
        print(
            "the cheapest tree delivers the last message "
            f"{cheap_makespan - fast_makespan:.0f} time units later."
        )


if __name__ == "__main__":
    main()
