#!/usr/bin/env python3
"""Epidemic reachability as the observation window slides forward.

Section 2.3: ``MST_a`` is "useful for the study of epidemiology, the
spread of infectious diseases ... when the network is about individual
contacts".  Section 2.3 also notes that "as the time window slides
forward, we can predict the minimum cost for the future".

This example slides a fixed-length window across a contact network and
tracks, per window, how many individuals patient zero can infect and
how quickly.  The sweep runs through the incremental sliding-window
engine (:mod:`repro.incremental`): each slide repairs the previous
window's tree around the edge delta instead of recomputing it, with
output identical to the cold per-window computation.

Run:  python examples/epidemic_window_sweep.py
"""

from repro.core.sliding import iter_windows
from repro.datasets.registry import load_dataset
from repro.incremental import SlidingEngine


def main() -> None:
    # Call-detail records as the proxy contact network (the paper's
    # Phone dataset shape): durations are call lengths, so the slide
    # repair path applies (zero-duration graphs force cold solves).
    contacts = load_dataset("phone", scale=0.15)
    t_start, t_end = contacts.time_span()
    span = t_end - t_start
    window_length = span * 0.5
    step = span * 0.01  # fine-grained slide: the engine's use case
    patient_zero = max(
        contacts.vertices,
        key=lambda v: len(contacts.out_edges(v)),
    )
    print(
        f"contact network: {contacts.num_vertices} individuals, "
        f"{contacts.num_edges} contacts, patient zero {patient_zero}"
    )
    print(f"sliding a {window_length:.0f}-unit window across [{t_start:.0f}, {t_end:.0f}]")
    print()
    print(f"{'window start':>12} | {'infected':>8} | {'peak arrival':>12} | {'mean delay':>10}")
    print("-" * 54)

    engine = SlidingEngine(contacts, patient_zero)
    windows = 0
    for i, window in enumerate(iter_windows(contacts, window_length, step)):
        measurement = engine.measure_msta(window)
        windows += 1
        if i % 5:  # every window advances the engine; print every 5th
            continue
        tree = measurement.tree
        if tree is None or measurement.coverage == 0:
            print(f"{window.t_alpha:>12.0f} | {0:>8} | {'-':>12} | {'-':>10}")
            continue
        arrivals = [
            t - window.t_alpha
            for v, t in tree.arrival_times.items()
            if v != patient_zero
        ]
        print(
            f"{window.t_alpha:>12.0f} | {measurement.coverage:>8} | "
            f"{max(arrivals):>12.0f} | {sum(arrivals) / len(arrivals):>10.0f}"
        )

    stats = engine.msta.stats
    print()
    print(
        "each row is one MST_a query (every 5th window shown): the set of\n"
        "infected individuals is exactly V_r, and per-individual infection\n"
        "times are the earliest arrival times of the tree.  of the\n"
        f"{windows} windows, the incremental engine answered "
        f"{stats['incremental_slides']} by dirty-cone\n"
        f"repair of the previous tree and {stats['cold_solves']} by a cold solve."
    )


if __name__ == "__main__":
    main()
