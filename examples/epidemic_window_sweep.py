#!/usr/bin/env python3
"""Epidemic reachability as the observation window slides forward.

Section 2.3: ``MST_a`` is "useful for the study of epidemiology, the
spread of infectious diseases ... when the network is about individual
contacts".  Section 2.3 also notes that "as the time window slides
forward, we can predict the minimum cost for the future".

This example slides a fixed-length window across a contact network and
tracks, per window, how many individuals patient zero can infect and
how quickly -- the sweep the paper's windowed protocol is built on.

Run:  python examples/epidemic_window_sweep.py
"""

from repro.core.errors import UnreachableRootError
from repro.core.msta import minimum_spanning_tree_a
from repro.datasets.registry import load_dataset
from repro.temporal.window import TimeWindow, extract_window


def main() -> None:
    contacts = load_dataset("enron", scale=0.15)  # email contact network
    t_start, t_end = contacts.time_span()
    span = t_end - t_start
    window_length = span * 0.2
    patient_zero = max(
        contacts.vertices,
        key=lambda v: len(contacts.out_edges(v)),
    )
    print(
        f"contact network: {contacts.num_vertices} individuals, "
        f"{contacts.num_edges} contacts, patient zero {patient_zero}"
    )
    print(f"sliding a {window_length:.0f}-unit window across [{t_start:.0f}, {t_end:.0f}]")
    print()
    print(f"{'window start':>12} | {'infected':>8} | {'peak arrival':>12} | {'mean delay':>10}")
    print("-" * 54)

    steps = 8
    for i in range(steps):
        t_alpha = t_start + (span - window_length) * i / (steps - 1)
        window = TimeWindow(t_alpha, t_alpha + window_length)
        active = extract_window(contacts, window)
        if patient_zero not in active.vertices:
            print(f"{t_alpha:>12.0f} | {0:>8} | {'-':>12} | {'-':>10}")
            continue
        try:
            tree = minimum_spanning_tree_a(active, patient_zero, window)
        except UnreachableRootError:
            print(f"{t_alpha:>12.0f} | {0:>8} | {'-':>12} | {'-':>10}")
            continue
        infected = len(tree.vertices) - 1
        if infected == 0:
            print(f"{t_alpha:>12.0f} | {0:>8} | {'-':>12} | {'-':>10}")
            continue
        arrivals = [
            t - window.t_alpha
            for v, t in tree.arrival_times.items()
            if v != patient_zero
        ]
        print(
            f"{t_alpha:>12.0f} | {infected:>8} | "
            f"{max(arrivals):>12.0f} | {sum(arrivals) / len(arrivals):>10.0f}"
        )

    print()
    print(
        "each row is one MST_a computation: the set of infected individuals\n"
        "is exactly V_r, and per-individual infection times are the\n"
        "earliest arrival times of the tree."
    )


if __name__ == "__main__":
    main()
