#!/usr/bin/env python3
"""Targeted content delivery -- the paper's future-work application.

Section 7: temporal directed Steiner trees are "useful for targeted
information dissemination such as content delivery networks for
delivering web-based contents to target sites".

A synthetic backbone carries timetabled transfer slots; content from an
origin server must reach a handful of *edge sites* (the terminals),
possibly relayed through intermediate PoPs (Steiner vertices).  We
compare the targeted tree against the full MST_w broadcast and show the
cost saved by only serving the requested sites.

Run:  python examples/content_delivery.py
"""

import random

from repro.core.mstw import minimum_spanning_tree_w
from repro.core.steiner_temporal import minimum_steiner_tree_w
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph


def build_backbone(num_pops: int = 40, slots: int = 260, seed: int = 7) -> TemporalGraph:
    """Random transfer slots between PoPs, cost = bandwidth price."""
    rng = random.Random(seed)
    edges = []
    # a spine from the origin guarantees reachability
    reached = [0]
    arrival = {0: 0.0}
    for pop in range(1, num_pops):
        parent = rng.choice(reached)
        start = arrival[parent] + rng.uniform(0.5, 3.0)
        duration = rng.uniform(0.1, 1.0)
        edges.append(
            TemporalEdge(parent, pop, start, start + duration, rng.randint(5, 40))
        )
        arrival[pop] = start + duration
        reached.append(pop)
    for _ in range(slots - num_pops + 1):
        u, v = rng.randrange(num_pops), rng.randrange(num_pops)
        if u == v:
            continue
        start = rng.uniform(0, 60)
        duration = rng.uniform(0.1, 1.5)
        edges.append(
            TemporalEdge(u, v, start, start + duration, rng.randint(5, 40))
        )
    return TemporalGraph(edges, vertices=range(num_pops))


def main() -> None:
    backbone = build_backbone()
    origin = 0
    rng = random.Random(99)
    targets = sorted(rng.sample(range(1, backbone.num_vertices), 6))
    print(
        f"backbone: {backbone.num_vertices} PoPs, {backbone.num_edges} "
        f"transfer slots; origin {origin}; target sites {targets}"
    )

    targeted = minimum_steiner_tree_w(backbone, origin, targets, level=2)
    broadcast = minimum_spanning_tree_w(backbone, origin, level=2)

    print()
    print(f"targeted delivery cost : {targeted.weight:,.0f}")
    print(f"  relays used          : {sorted(targeted.steiner_vertices, key=repr)}")
    print(f"full broadcast cost    : {broadcast.weight:,.0f}")
    saved = 1 - targeted.weight / broadcast.weight
    print(f"cost saved by targeting: {saved:.0%}")

    print()
    print("delivery schedule (site <- relay, transfer slot, cost):")
    for site in targets:
        edge = targeted.tree.parent_edge[site]
        print(
            f"  {site:>3} <- {edge.source:>3}  "
            f"[{edge.start:6.2f}, {edge.arrival:6.2f}]  cost {edge.weight:g}"
        )


if __name__ == "__main__":
    main()
