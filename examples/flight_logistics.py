#!/usr/bin/env python3
"""Transport scheduling over a flight network (Section 2.3's application).

A layered airport network carries timetabled flights (temporal edges
whose weight is the freight cost).  From a hub we compute:

* ``MST_a`` -- the earliest a shipment can arrive at every reachable
  airport (the paper: "a schedule of transports for distribution of
  goods ... with the earliest arrival time for each destination");
* ``MST_w`` -- the cheapest way to distribute goods everywhere (the
  paper: "minimizes the total cost to transport some given resource
  from a given location r to all destinations").

Run:  python examples/flight_logistics.py
"""

from repro.core.msta import minimum_spanning_tree_a
from repro.core.mstw import minimum_spanning_tree_w
from repro.temporal.edge import TemporalEdge
from repro.temporal.generators import layered_temporal_graph
from repro.temporal.graph import TemporalGraph


def airport_name(index: int) -> str:
    return f"AP{index:02d}"


def build_network() -> TemporalGraph:
    """Three banks of connections out of a hub, with named airports."""
    layered = layered_temporal_graph(
        layers=[1, 4, 8, 10],
        edges_per_layer=22,
        layer_gap=240.0,  # a four-hour bank, in minutes
        max_weight=900,
        seed=2015,
    )
    return TemporalGraph(
        TemporalEdge(
            airport_name(e.source),
            airport_name(e.target),
            e.start,
            e.arrival,
            e.weight,
        )
        for e in layered.edges
    )


def fmt_clock(minutes: float) -> str:
    h, m = divmod(int(minutes), 60)
    return f"{6 + h:02d}:{m:02d}"  # bank 0 departs from 06:00


def main() -> None:
    network = build_network()
    hub = airport_name(0)
    print(
        f"{network.num_vertices} airports, {network.num_edges} scheduled flights, "
        f"hub {hub}"
    )

    print()
    print("=== earliest possible delivery (MST_a) ===")
    fastest = minimum_spanning_tree_a(network, hub)
    for airport in sorted(fastest.vertices):
        if airport == hub:
            continue
        edge = fastest.parent_edge[airport]
        print(
            f"  {airport}: arrives {fmt_clock(edge.arrival)} "
            f"on flight {edge.source}->{edge.target} "
            f"(dep {fmt_clock(edge.start)})"
        )
    print(f"  whole network served by {fmt_clock(fastest.max_arrival_time)}")

    print()
    print("=== cheapest full distribution (MST_w, i=2) ===")
    cheapest = minimum_spanning_tree_w(network, hub, level=2)
    print(f"  freight bill: {cheapest.weight:,.0f}")
    print(f"  vs. fastest tree's bill: {fastest.total_weight:,.0f}")
    by_cost = sorted(
        cheapest.tree.parent_edge.values(), key=lambda e: -e.weight
    )[:5]
    print("  five most expensive legs retained:")
    for edge in by_cost:
        print(
            f"    {edge.source}->{edge.target} dep {fmt_clock(edge.start)} "
            f"cost {edge.weight:,.0f}"
        )


if __name__ == "__main__":
    main()
