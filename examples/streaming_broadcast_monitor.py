#!/usr/bin/env python3
"""Monitoring a live broadcast over a streaming edge feed.

Algorithm 1 processes each edge in O(1) as it arrives, which makes it a
natural *online* monitor: as call records stream in chronological
order, we can report -- at any moment -- who has been reached, how
cheaply, and how the dissemination S-curve is developing.

This example replays a synthetic call stream through
:class:`repro.core.online.OnlineMSTa`, printing a status line at fixed
checkpoints, then compares the final online tree against the offline
Algorithm 1 (they are identical).

Run:  python examples/streaming_broadcast_monitor.py
"""

from repro.core.msta import msta_chronological
from repro.core.online import OnlineMSTa
from repro.datasets.registry import load_dataset
from repro.temporal.metrics import broadcast_profile


def main() -> None:
    calls = load_dataset("slashdot", scale=0.3)
    stream = calls.chronological_edges()
    source = max(calls.vertices, key=lambda v: len(calls.out_edges(v)))
    print(
        f"streaming {len(stream)} call records; monitoring broadcasts "
        f"from {source}"
    )

    monitor = OnlineMSTa(source)
    checkpoints = {len(stream) * i // 5 for i in range(1, 6)}
    print()
    print(f"{'records':>8} | {'reached':>7} | {'improvements':>12} | {'last event':>10}")
    print("-" * 50)
    for i, edge in enumerate(stream, start=1):
        monitor.feed(edge)
        if i in checkpoints:
            print(
                f"{i:>8} | {monitor.coverage:>7} | "
                f"{monitor.edges_applied:>12} | t={edge.start:<8g}"
            )

    final = monitor.snapshot()
    offline = msta_chronological(calls, source)
    assert final.arrival_times == offline.arrival_times
    print()
    print(
        f"final tree: {final.num_edges} members reached, identical to the "
        "offline Algorithm 1 run"
    )

    profile = broadcast_profile(final)
    if len(profile) > 1:
        print()
        print("dissemination S-curve (time -> informed):")
        step = max(1, len(profile) // 6)
        for t, count in profile[::step]:
            bar = "#" * max(1, count * 40 // profile[-1][1])
            print(f"  t={t:>8g} | {bar} {count}")


if __name__ == "__main__":
    main()
