#!/usr/bin/env python3
"""Quickstart: both temporal MSTs on the paper's running example.

Builds the Figure 1 temporal graph, computes the earliest-arrival tree
(``MST_a``, Figure 2(a)) and the minimum-weight tree (``MST_w``,
Figure 2(b)), and prints both -- reproducing Example 2 of the paper.

Run:  python examples/quickstart.py
"""

from repro import (
    TemporalEdge,
    TemporalGraph,
    minimum_spanning_tree_a,
    minimum_spanning_tree_w,
)


def build_figure1() -> TemporalGraph:
    """The Figure 1 call graph: edges are (caller, callee, start, end, cost)."""
    return TemporalGraph(
        [
            TemporalEdge(0, 1, 1, 3, 2),
            TemporalEdge(0, 2, 1, 5, 4),
            TemporalEdge(0, 2, 3, 6, 3),
            TemporalEdge(0, 1, 4, 5, 1),
            TemporalEdge(1, 3, 4, 6, 2),
            TemporalEdge(2, 3, 5, 7, 2),
            TemporalEdge(2, 4, 6, 8, 2),
            TemporalEdge(3, 4, 6, 8, 2),
            TemporalEdge(3, 5, 6, 8, 2),
            TemporalEdge(4, 5, 8, 11, 3),
        ]
    )


def main() -> None:
    graph = build_figure1()
    root = 0

    print("=== MST_a: earliest-arrival spanning tree (Algorithm 1/2) ===")
    tree_a = minimum_spanning_tree_a(graph, root)
    for vertex in sorted(tree_a.vertices):
        if vertex == root:
            print(f"  vertex {vertex}: root")
        else:
            edge = tree_a.parent_edge[vertex]
            print(
                f"  vertex {vertex}: reached at t={edge.arrival:g} "
                f"via {edge.source}->{edge.target} departing t={edge.start:g}"
            )
    print(f"  broadcast completes at t={tree_a.max_arrival_time:g}")

    print()
    print("=== MST_w: minimum-weight spanning tree (DST pipeline) ===")
    result = minimum_spanning_tree_w(graph, root, level=3, algorithm="pruned")
    for vertex in sorted(result.tree.vertices):
        if vertex == root:
            continue
        edge = result.tree.parent_edge[vertex]
        print(
            f"  vertex {vertex}: in-edge {edge.source}->{edge.target} "
            f"<{edge.start:g},{edge.arrival:g}> costing {edge.weight:g}"
        )
    print(f"  total cost: {result.weight:g}  (paper's Figure 2(b): 11)")
    print(
        f"  DST instance: {result.num_terminals} terminals on a transformed "
        f"graph with {result.transformed_vertices} vertices / "
        f"{result.transformed_edges} edges"
    )


if __name__ == "__main__":
    main()
