"""Tests for the brute-force oracles themselves."""


import pytest

from repro.baselines.brute_force import (
    brute_force_earliest_arrival,
    brute_force_mstw_weight,
)
from repro.core.errors import ReproError
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.window import TimeWindow


class TestEarliestArrival:
    def test_figure1(self, figure1):
        arrivals = brute_force_earliest_arrival(figure1, 0)
        assert arrivals == {0: 0.0, 1: 3, 2: 5, 3: 6, 4: 8, 5: 8}

    def test_zero_duration(self, figure3):
        arrivals = brute_force_earliest_arrival(figure3, 0)
        assert arrivals[2] == 4

    def test_window(self, figure1):
        arrivals = brute_force_earliest_arrival(figure1, 0, TimeWindow(0, 6))
        assert set(arrivals) == {0, 1, 2, 3}


class TestMSTwWeight:
    def test_figure1_is_11(self, figure1):
        assert brute_force_mstw_weight(figure1, 0) == 11.0

    def test_single_vertex(self):
        g = TemporalGraph([], vertices=[0])
        assert brute_force_mstw_weight(g, 0) == 0.0

    def test_line_graph(self):
        g = TemporalGraph(
            [TemporalEdge(0, 1, 0, 1, 3), TemporalEdge(1, 2, 2, 3, 4)]
        )
        assert brute_force_mstw_weight(g, 0) == 7.0

    def test_cheaper_but_infeasible_edge_ignored(self):
        g = TemporalGraph(
            [
                TemporalEdge(0, 1, 5, 6, 10),
                TemporalEdge(0, 2, 0, 1, 1),
                TemporalEdge(2, 1, 0, 1, 1),  # departs before 2 is reached? no: 2 reached at 1, edge starts 0
            ]
        )
        # 2 is reached at time 1; the edge 2->1 departs at 0 < 1, so the
        # only way to cover 1 is the weight-10 direct edge.
        assert brute_force_mstw_weight(g, 0) == 11.0

    def test_parallel_cheap_late_edge_preferred(self):
        g = TemporalGraph(
            [
                TemporalEdge(0, 1, 0, 1, 9),
                TemporalEdge(0, 1, 5, 6, 2),
            ]
        )
        assert brute_force_mstw_weight(g, 0) == 2.0

    def test_window_excludes_targets(self, figure1):
        w = TimeWindow(0, 6)
        weight = brute_force_mstw_weight(figure1, 0, w)
        # covers {1,2,3} only: edges (0,1,1,3,2), (0,2,3,6,3), (1,3,4,6,2)
        assert weight == 7.0

    def test_combination_cap(self):
        edges = []
        for v in range(1, 8):
            for t in range(10):
                edges.append(TemporalEdge(0, v, t, t + 1, 1))
        g = TemporalGraph(edges)
        with pytest.raises(ReproError):
            brute_force_mstw_weight(g, 0)
