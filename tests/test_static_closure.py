"""Unit tests for the metric (transitive) closure."""

import math

from repro.static.closure import build_metric_closure
from repro.static.digraph import StaticDigraph


def build(edges, n=None):
    g = StaticDigraph(range(n) if n else None)
    for u, v, w in edges:
        g.add_edge(u, v, w)
    return g


class TestClosure:
    def test_costs(self):
        g = build([(0, 1, 2.0), (1, 2, 3.0)])
        c = build_metric_closure(g)
        assert c.cost(0, 2) == 5.0
        assert c.cost(0, 1) == 2.0
        assert c.cost(0, 0) == 0.0

    def test_unreachable_inf(self):
        g = build([(0, 1, 1.0)], n=3)
        c = build_metric_closure(g)
        assert math.isinf(c.cost(1, 0))
        assert not c.is_reachable(1, 0)
        assert c.is_reachable(0, 1)

    def test_triangle_inequality_everywhere(self):
        g = build(
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0), (2, 3, 2.0), (3, 0, 1.0)]
        )
        c = build_metric_closure(g)
        n = c.num_vertices
        for a in range(n):
            for b in range(n):
                for m in range(n):
                    assert c.cost(a, b) <= c.cost(a, m) + c.cost(m, b) + 1e-12

    def test_costs_from_row(self):
        g = build([(0, 1, 4.0)])
        c = build_metric_closure(g)
        row = c.costs_from(0)
        assert row[1] == 4.0

    def test_subset_sources(self):
        g = build([(0, 1, 1.0), (1, 0, 1.0)])
        c = build_metric_closure(g, sources=[0])
        assert c.cost(0, 1) == 1.0
        assert math.isinf(c.cost(1, 0))  # row not computed


class TestPaths:
    def test_path_vertices(self):
        g = build([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])
        c = build_metric_closure(g)
        assert c.path(0, 2) == [0, 1, 2]

    def test_path_self(self):
        g = build([(0, 1, 1.0)])
        c = build_metric_closure(g)
        assert c.path(0, 0) == [0]

    def test_path_unreachable(self):
        g = build([(0, 1, 1.0)], n=3)
        c = build_metric_closure(g)
        assert c.path(0, 2) == []

    def test_path_edges_weights_sum_to_cost(self):
        g = build([(0, 1, 1.5), (1, 2, 2.5), (0, 2, 9.0)])
        c = build_metric_closure(g)
        edges = c.path_edges(0, 2)
        assert edges == [(0, 1, 1.5), (1, 2, 2.5)]
        assert sum(w for _, _, w in edges) == c.cost(0, 2)

    def test_path_edges_pick_cheapest_parallel(self):
        g = build([(0, 1, 7.0), (0, 1, 3.0)])
        c = build_metric_closure(g)
        assert c.path_edges(0, 1) == [(0, 1, 3.0)]
