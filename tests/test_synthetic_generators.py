"""Direct tests of the per-dataset synthetic generators."""

import pytest

from repro.datasets import synthetic
from repro.temporal.stats import compute_statistics


class TestSlashdot:
    def test_sparse(self):
        g = synthetic.slashdot_like(scale=0.3)
        assert g.num_edges / g.num_vertices < 4

    def test_minimum_size_floor(self):
        g = synthetic.slashdot_like(scale=0.001)
        assert g.num_vertices >= 10


class TestEpinions:
    def test_every_pair_unique(self):
        g = synthetic.epinions_like(scale=0.2)
        assert compute_statistics(g).max_multiplicity == 1

    def test_no_self_loops(self):
        g = synthetic.epinions_like(scale=0.1)
        assert all(e.source != e.target for e in g.edges)

    def test_unit_durations(self):
        g = synthetic.epinions_like(scale=0.1)
        assert all(e.duration == 1.0 for e in g.edges)


class TestFacebookEnron:
    def test_facebook_zero_durations(self):
        g = synthetic.facebook_like(scale=0.2)
        assert all(e.duration == 0 for e in g.edges)

    def test_enron_hub_dominated(self):
        g = synthetic.enron_like(scale=0.3)
        stats = compute_statistics(g)
        # the busiest vertex carries far more contacts than average
        average = 2 * g.num_edges / g.num_vertices
        assert stats.max_temporal_degree > 5 * average


class TestHepPhDblp:
    def test_hepph_dense(self):
        g = synthetic.hepph_like(scale=0.3)
        assert g.num_edges / g.num_vertices >= 30

    def test_dblp_yearly_timestamps(self):
        g = synthetic.dblp_like(scale=0.05)
        timestamps = {e.start for e in g.edges}
        assert timestamps <= {float(1990 + y) for y in range(25)}

    def test_dblp_zero_durations(self):
        g = synthetic.dblp_like(scale=0.05)
        assert all(e.duration == 0 for e in g.edges)


class TestPhone:
    def test_weight_equals_duration(self):
        g = synthetic.phone_like(scale=0.2)
        assert all(e.weight == e.duration for e in g.edges)

    def test_huge_edge_to_vertex_ratio(self):
        g = synthetic.phone_like(scale=0.2)
        assert g.num_edges / g.num_vertices > 100

    def test_durations_positive(self):
        g = synthetic.phone_like(scale=0.1)
        assert all(e.duration >= 10 for e in g.edges)


class TestDeterminism:
    @pytest.mark.parametrize(
        "generator",
        [
            synthetic.slashdot_like,
            synthetic.epinions_like,
            synthetic.facebook_like,
            synthetic.enron_like,
            synthetic.hepph_like,
            synthetic.dblp_like,
            synthetic.phone_like,
        ],
        ids=lambda g: g.__name__,
    )
    def test_same_seed_same_graph(self, generator):
        a = generator(scale=0.1, seed=42)
        b = generator(scale=0.1, seed=42)
        assert a.edges == b.edges
