"""Per-rule positive/negative tests for the invariant linter.

Each violation fixture under ``tests/fixtures/analysis/violations``
triggers exactly one rule at a known line; each counterpart under
``clean/`` shows the compliant form and must produce no findings.
"""

import os

import pytest

from repro.analysis import analyze_paths, default_rules, parse_module
from repro.analysis.core import module_name_for
from repro.analysis.registry import get_rules

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures", "analysis")
VIOLATIONS = os.path.join(FIXTURES, "violations")
CLEAN = os.path.join(FIXTURES, "clean")

#: (rule name, code, fixture path relative to violations/ and clean/,
#:  the source line the finding must anchor to)
CASES = [
    (
        "budget-tick",
        "REP101",
        os.path.join("repro", "steiner", "charikar.py"),
        "while queue:",
    ),
    (
        "cache-mutation",
        "REP102",
        os.path.join("repro", "steiner", "mutator.py"),
        "adjacency[vertex].append(edge)",
    ),
    (
        "cache-mutation",
        "REP102",
        os.path.join("repro", "temporal", "indexuser.py"),
        "edges.append(extra_edge)",
    ),
    (
        "cache-mutation",
        "REP102",
        os.path.join("repro", "core", "closurepatch.py"),
        "row[0] = 0.0",
    ),
    (
        "cache-mutation",
        "REP102",
        os.path.join("repro", "temporal", "columnaruser.py"),
        "starts[0] = starts[0] + offset",
    ),
    (
        "determinism",
        "REP103",
        os.path.join("repro", "perf", "timing.py"),
        "time.time()",
    ),
    (
        "determinism",
        "REP103",
        os.path.join("repro", "experiments", "unordered.py"),
        "pool.imap_unordered(str, items)",
    ),
    (
        "determinism",
        "REP103",
        os.path.join("repro", "parallel", "shard.py"),
        "pool.imap_unordered(tuple, tasks)",
    ),
    (
        "float-equality",
        "REP104",
        os.path.join("repro", "core", "weights.py"),
        "a.weight == b.weight",
    ),
    (
        "temporal-invariant",
        "REP105",
        os.path.join("repro", "datasets", "maker.py"),
        "TemporalEdge(0, 1, 2.0, 1.0, 1.0)",
    ),
    (
        "api-consistency",
        "REP106",
        os.path.join("repro", "core", "exports.py"),
        '__all__ = ["thing", "thing"]',
    ),
    (
        "swallowed-exception",
        "REP107",
        os.path.join("repro", "resilience", "swallow.py"),
        "except Exception:",
    ),
]

IDS = [case[0] for case in CASES]


def _line_of(path, needle):
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            if needle in line:
                return number
    raise AssertionError(f"{needle!r} not found in {path}")


@pytest.mark.parametrize("rule,code,rel_path,needle", CASES, ids=IDS)
def test_rule_fires_exactly_once_on_violation(rule, code, rel_path, needle):
    path = os.path.join(VIOLATIONS, rel_path)
    findings, errors = analyze_paths([path], default_rules(), excludes=())
    assert errors == []
    assert len(findings) == 1, [f"{f.location()} {f.rule}" for f in findings]
    finding = findings[0]
    assert finding.rule == rule
    assert finding.code == code
    assert finding.path == path
    assert finding.line == _line_of(path, needle)


@pytest.mark.parametrize("rule,code,rel_path,needle", CASES, ids=IDS)
def test_clean_counterpart_produces_no_findings(rule, code, rel_path, needle):
    path = os.path.join(CLEAN, rel_path)
    findings, errors = analyze_paths([path], default_rules(), excludes=())
    assert errors == []
    assert findings == [], [f"{f.location()} {f.rule}" for f in findings]


def test_suppression_comment_silences_a_rule():
    path = os.path.join(CLEAN, "repro", "steiner", "pruned.py")
    # The fixture is a real budget-tick violation waived with
    # `# repro: ignore[budget-tick]` on the offending line.
    findings, errors = analyze_paths([path], default_rules(), excludes=())
    assert errors == []
    assert findings == []
    module = parse_module(path)
    line = _line_of(path, "while queue:")
    assert module.is_suppressed(line, "budget-tick")
    assert not module.is_suppressed(line, "float-equality")


def test_fixture_paths_resolve_to_repro_module_names():
    path = os.path.join(VIOLATIONS, "repro", "steiner", "charikar.py")
    assert module_name_for(path) == "repro.steiner.charikar"
    assert module_name_for(os.path.join("src", "repro", "temporal", "edge.py")) == (
        "repro.temporal.edge"
    )
    assert module_name_for(os.path.join("tests", "test_msta.py")) is None


def _analyze_snippet(tmp_path, rel_parts, source, rules=None):
    path = tmp_path.joinpath(*rel_parts)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return analyze_paths([str(path)], rules or default_rules(), excludes=())


def test_api_rule_flags_unbound_export(tmp_path):
    findings, errors = _analyze_snippet(
        tmp_path,
        ("repro", "core", "api_mod.py"),
        '__all__ = ["missing"]\n',
    )
    assert errors == []
    assert [f.rule for f in findings] == ["api-consistency"]
    assert "missing" in findings[0].message


def test_determinism_rule_flags_set_iteration(tmp_path):
    findings, errors = _analyze_snippet(
        tmp_path,
        ("repro", "temporal", "helper.py"),
        "def order(items):\n"
        "    out = []\n"
        "    for item in set(items):\n"
        "        out.append(item)\n"
        "    return out\n",
    )
    assert errors == []
    assert [f.rule for f in findings] == ["determinism"]
    assert findings[0].line == 3


def test_determinism_rule_flags_global_random(tmp_path):
    findings, errors = _analyze_snippet(
        tmp_path,
        ("repro", "datasets", "rand_mod.py"),
        "import random\n\n\ndef draw():\n    return random.random()\n",
    )
    assert errors == []
    assert [f.rule for f in findings] == ["determinism"]


def test_determinism_rule_allows_perf_harness(tmp_path):
    findings, errors = _analyze_snippet(
        tmp_path,
        ("repro", "perf", "harness.py"),
        "import time\n\n\ndef stamp():\n    return time.time()\n",
    )
    assert errors == []
    assert findings == []


def test_determinism_rule_allows_unordered_in_engine(tmp_path):
    findings, errors = _analyze_snippet(
        tmp_path,
        ("repro", "parallel", "engine.py"),
        "def drain(pool, payloads):\n"
        "    return sorted(pool.imap_unordered(tuple, payloads))\n",
    )
    assert errors == []
    assert findings == []


def test_determinism_rule_flags_as_completed(tmp_path):
    findings, errors = _analyze_snippet(
        tmp_path,
        ("repro", "experiments", "futures_mod.py"),
        "from concurrent.futures import as_completed\n\n\n"
        "def drain(futures):\n"
        "    return [f.result() for f in as_completed(futures)]\n",
    )
    assert errors == []
    assert [f.rule for f in findings] == ["determinism"]
    assert "as_completed" in findings[0].message


def test_swallow_rule_flags_bare_except(tmp_path):
    findings, errors = _analyze_snippet(
        tmp_path,
        ("repro", "core", "bare_mod.py"),
        "def guard(task):\n"
        "    try:\n"
        "        return task()\n"
        "    except:\n"
        "        return None\n",
    )
    assert errors == []
    assert [f.rule for f in findings] == ["swallowed-exception"]
    assert "bare except" in findings[0].message


def test_swallow_rule_allows_suppression_comment(tmp_path):
    findings, errors = _analyze_snippet(
        tmp_path,
        ("repro", "core", "waived_mod.py"),
        "def guard(task):\n"
        "    try:\n"
        "        return task()\n"
        "    except Exception:  # repro: ignore[swallowed-exception]\n"
        "        pass\n",
    )
    assert errors == []
    assert findings == []


def test_swallow_rule_ignores_broad_handler_that_acts(tmp_path):
    findings, errors = _analyze_snippet(
        tmp_path,
        ("repro", "core", "acting_mod.py"),
        "def guard(task, log):\n"
        "    try:\n"
        "        return task()\n"
        "    except Exception as exc:\n"
        "        log.append(exc)\n"
        "        raise\n",
    )
    assert errors == []
    assert findings == []


def test_budget_rule_accepts_delegation_to_budget_callee(tmp_path):
    findings, errors = _analyze_snippet(
        tmp_path,
        ("repro", "steiner", "improved.py"),
        "def run(queue, budget, scan):\n"
        "    while queue:\n"
        "        scan(queue, budget=budget)\n",
    )
    assert errors == []
    assert findings == []


def test_budget_rule_covers_incremental_package(tmp_path):
    # repro.incremental is a REP101 target: an uncheckpointed while loop
    # in any of its modules must be flagged.
    findings, errors = _analyze_snippet(
        tmp_path,
        ("repro", "incremental", "walker.py"),
        "def drain(stack):\n"
        "    while stack:\n"
        "        stack.pop()\n",
    )
    assert errors == []
    assert [f.rule for f in findings] == ["budget-tick"]


def test_cache_rule_allows_incremental_owners(tmp_path):
    # The engine modules legally patch the structures they own; the
    # same write outside them is the indexuser.py violation fixture.
    findings, errors = _analyze_snippet(
        tmp_path,
        ("repro", "incremental", "msta.py"),
        "def fill(index, window, extra):\n"
        "    edges = index.edges_in(window)\n"
        "    edges.append(extra)\n"
        "    return edges\n",
    )
    assert errors == []
    assert findings == []


def test_parse_error_becomes_a_finding(tmp_path):
    findings, errors = _analyze_snippet(
        tmp_path,
        ("repro", "core", "broken.py"),
        "def broken(:\n",
    )
    assert errors == []
    assert [f.rule for f in findings] == ["parse-error"]
    assert findings[0].code == "REP000"


def test_rule_selection_limits_findings():
    rules = get_rules(["budget-tick"])
    findings, errors = analyze_paths([VIOLATIONS], rules, excludes=())
    assert errors == []
    assert {f.rule for f in findings} == {"budget-tick"}


def test_violations_tree_triggers_every_rule_once():
    findings, errors = analyze_paths([VIOLATIONS], default_rules(), excludes=())
    assert errors == []
    assert sorted(f.rule for f in findings) == sorted(case[0] for case in CASES)


def test_clean_tree_is_quiet():
    findings, errors = analyze_paths([CLEAN], default_rules(), excludes=())
    assert errors == []
    assert findings == []
