"""End-to-end integration tests across modules.

These run the full experimental protocol of Section 5 at miniature
scale: load a synthetic dataset, pick the window and root exactly as
the paper describes, and run both MST problems, cross-checking every
intermediate artefact.
"""

import math

import pytest

from repro.baselines.bhadra import bhadra_msta
from repro.core.msta import minimum_spanning_tree_a
from repro.core.mstw import minimum_spanning_tree_w
from repro.datasets.registry import load_dataset
from repro.datasets.weights import apply_weight_cascade
from repro.steiner.exact import exact_dst_cost
from repro.steiner.improved import improved_dst
from repro.steiner.steinlib import generate_b_instance
from repro.steiner.instance import prepare_instance
from repro.temporal.paths import reachable_set
from repro.temporal.stats import compute_statistics
from repro.temporal.window import middle_tenth_window, select_root, extract_window


@pytest.fixture(scope="module")
def small_slashdot():
    return load_dataset("slashdot", scale=0.2)


class TestPaperProtocol:
    def test_window_then_root_then_msta(self, small_slashdot):
        window = middle_tenth_window(small_slashdot, fraction=0.5)
        sub = extract_window(small_slashdot, window)
        root = select_root(sub, window, min_reach_fraction=0.01)
        tree = minimum_spanning_tree_a(sub, root, window)
        tree.validate(sub)
        assert tree.vertices == reachable_set(sub, root, window)

    def test_msta_agrees_with_bhadra_on_dataset(self, small_slashdot):
        window = middle_tenth_window(small_slashdot, fraction=0.5)
        sub = extract_window(small_slashdot, window)
        root = select_root(sub, window, min_reach_fraction=0.01)
        ours = minimum_spanning_tree_a(sub, root, window)
        baseline = bhadra_msta(sub, root, window)
        assert ours.arrival_times == baseline.arrival_times

    def test_full_mstw_on_weighted_dataset(self):
        graph = apply_weight_cascade(load_dataset("phone", scale=0.05))
        window = middle_tenth_window(graph, fraction=0.6)
        sub = extract_window(graph, window)
        root = select_root(sub, window, min_reach_fraction=0.01)
        result = minimum_spanning_tree_w(sub, root, window, level=2)
        result.tree.validate(sub)
        assert result.weight > 0
        assert result.num_terminals == len(result.tree.vertices) - 1


class TestStatsPipeline:
    @pytest.mark.parametrize("name", ["slashdot", "facebook", "phone"])
    def test_statistics_computable(self, name):
        g = load_dataset(name, scale=0.1)
        stats = compute_statistics(g)
        assert stats.num_temporal_edges == g.num_edges
        assert stats.num_static_edges <= stats.num_temporal_edges
        assert stats.max_multiplicity >= 1


class TestZeroDurationDatasets:
    @pytest.mark.parametrize("name", ["hepph", "dblp"])
    def test_msta_dispatch_handles_zero(self, name):
        g = load_dataset(name, scale=0.05)
        window = middle_tenth_window(g, fraction=0.9)
        sub = extract_window(g, window)
        try:
            root = select_root(sub, window, min_reach_fraction=0.02)
        except Exception:
            pytest.skip("sampled graph too fragmented for the protocol")
        tree = minimum_spanning_tree_a(sub, root, window)
        tree.validate(sub)


class TestSteinlibToExact:
    def test_generated_instance_solves_end_to_end(self):
        problem = generate_b_instance(30, 45, 6, seed=13)
        prepared = prepare_instance(problem.to_dst_instance())
        approx = improved_dst(prepared, 2).cost
        opt = exact_dst_cost(prepared)
        assert math.isfinite(opt)
        assert opt <= approx + 1e-9
        # the paper's Table 8 finding: small relative error in practice
        assert (approx - opt) / opt < 1.0
