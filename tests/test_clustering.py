"""Tests for MST-based temporal clustering."""

import pytest

from repro.core.clustering import cluster_by_delay, cluster_by_weight, cluster_tree
from repro.core.errors import ReproError
from repro.core.msta import minimum_spanning_tree_a
from repro.core.mstw import minimum_spanning_tree_w
from repro.core.spanning_tree import TemporalSpanningTree
from repro.temporal.edge import TemporalEdge

from tests.conftest import random_temporal


def two_community_tree():
    """root -> {a1, a2} cheap, root -> b1 expensive -> {b2} cheap."""
    return TemporalSpanningTree(
        "r",
        {
            "a1": TemporalEdge("r", "a1", 0, 1, 1),
            "a2": TemporalEdge("a1", "a2", 1, 2, 1),
            "b1": TemporalEdge("r", "b1", 0, 1, 50),
            "b2": TemporalEdge("b1", "b2", 2, 3, 1),
        },
    )


class TestClusterByWeight:
    def test_single_cluster_is_everything(self):
        tree = two_community_tree()
        clusters = cluster_by_weight(tree, 1)
        assert clusters == [tree.vertices]

    def test_two_clusters_cut_expensive_edge(self):
        clusters = cluster_by_weight(two_community_tree(), 2)
        assert {"r", "a1", "a2"} in clusters
        assert {"b1", "b2"} in clusters

    def test_max_clusters_singletons(self):
        tree = two_community_tree()
        clusters = cluster_by_weight(tree, 5)
        assert all(len(c) == 1 for c in clusters)
        assert len(clusters) == 5

    def test_partition_property(self, figure1):
        tree = minimum_spanning_tree_w(figure1, 0, level=2).tree
        for k in (1, 2, 3):
            clusters = cluster_by_weight(tree, k)
            assert len(clusters) == k
            union = set().union(*clusters)
            assert union == tree.vertices
            total = sum(len(c) for c in clusters)
            assert total == len(tree.vertices)  # disjoint

    def test_invalid_counts(self):
        tree = two_community_tree()
        with pytest.raises(ReproError):
            cluster_by_weight(tree, 0)
        with pytest.raises(ReproError):
            cluster_by_weight(tree, 6)


class TestClusterByDelay:
    def test_waves_separate(self):
        # a reached immediately; b's hop waits until time 100
        tree = TemporalSpanningTree(
            "r",
            {
                "a": TemporalEdge("r", "a", 0, 1, 1),
                "b": TemporalEdge("a", "b", 100, 101, 1),
            },
        )
        clusters = cluster_by_delay(tree, 2)
        assert {"r", "a"} in clusters
        assert {"b"} in clusters

    def test_msta_clustering_runs(self, figure1):
        tree = minimum_spanning_tree_a(figure1, 0)
        clusters = cluster_by_delay(tree, 3)
        assert len(clusters) == 3

    @pytest.mark.parametrize("seed", range(4))
    def test_random_trees_partition(self, seed):
        g = random_temporal(seed, n=12, m=50)
        tree = minimum_spanning_tree_a(g, 0)
        k = min(3, len(tree.vertices))
        clusters = cluster_by_delay(tree, k)
        assert sum(len(c) for c in clusters) == len(tree.vertices)


class TestClusterTreeGeneric:
    def test_custom_key(self):
        tree = two_community_tree()
        # cut by arrival time: latest edge (into b2) splits off {b2}
        clusters = cluster_tree(tree, 2, key=lambda e: e.arrival)
        assert {"b2"} in clusters

    def test_sorted_by_size(self, figure1):
        tree = minimum_spanning_tree_a(figure1, 0)
        clusters = cluster_by_weight(tree, 3)
        sizes = [len(c) for c in clusters]
        assert sizes == sorted(sizes, reverse=True)
