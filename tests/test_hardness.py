"""Executable checks of the Theorem 3 reduction (Appendix 9.1)."""

import itertools

import pytest

from repro.baselines.brute_force import brute_force_mstw_weight
from repro.core.errors import GraphFormatError
from repro.hardness.maxleaf import max_leaf_spanning_tree
from repro.hardness.reduction import (
    max_leaf_to_mstw_graph,
    mstw_weight_for_leaf_count,
    spanning_tree_from_leaf_tree,
)

PATH3 = [(0, 1), (1, 2)]
STAR4 = [(0, 1), (0, 2), (0, 3)]
CYCLE4 = [(0, 1), (1, 2), (2, 3), (3, 0)]
DIAMOND = [(0, 1), (0, 2), (1, 3), (2, 3), (1, 2)]


class TestMaxLeaf:
    def test_path(self):
        leaves, tree = max_leaf_spanning_tree(PATH3)
        assert leaves == 2
        assert len(tree) == 2

    def test_star_all_leaves(self):
        leaves, _ = max_leaf_spanning_tree(STAR4)
        assert leaves == 3

    def test_cycle(self):
        leaves, _ = max_leaf_spanning_tree(CYCLE4)
        assert leaves == 2

    def test_diamond(self):
        leaves, _ = max_leaf_spanning_tree(DIAMOND)
        assert leaves == 3  # e.g. tree {01,02,12?} no: {10,12,13} leaves 0,2,3

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            max_leaf_spanning_tree([(0, 1), (2, 3)])

    def test_trivial(self):
        assert max_leaf_spanning_tree([]) == (0, [])


class TestConstruction:
    def test_edge_count(self):
        g = max_leaf_to_mstw_graph(PATH3)
        n = 3
        # per static edge: 2n timed copies + 2 cheap copies
        assert g.num_edges == len(PATH3) * (2 * n + 2)

    def test_weights_and_times(self):
        g = max_leaf_to_mstw_graph(PATH3)
        n = 3
        cheap = [e for e in g.edges if e.weight == 1.0]
        heavy = [e for e in g.edges if e.weight == 2.0]
        assert len(cheap) == 2 * len(PATH3)
        assert all(e.start == 2 * n + 1 and e.arrival == 2 * n + 2 for e in cheap)
        assert all(e.arrival - e.start == 2 for e in heavy)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphFormatError):
            max_leaf_to_mstw_graph([(0, 0)])


class TestRealisation:
    def test_star_tree_weight(self):
        # star from centre 0: 3 leaves -> weight 2(4-1) - 3 = 3
        tree = spanning_tree_from_leaf_tree(STAR4, root=0)
        assert tree.total_weight == mstw_weight_for_leaf_count(4, 3)
        tree.validate(max_leaf_to_mstw_graph(STAR4))

    def test_path_tree_weight(self):
        # path rooted at an end: 1 leaf -> 2(3-1) - 1 = 3
        tree = spanning_tree_from_leaf_tree(PATH3, root=0)
        assert tree.total_weight == mstw_weight_for_leaf_count(3, 1)
        tree.validate(max_leaf_to_mstw_graph(PATH3))

    def test_tree_is_time_respecting(self):
        tree = spanning_tree_from_leaf_tree([(0, 1), (0, 2), (1, 3)], root=0)
        tree.validate()

    def test_disconnected_tree_rejected(self):
        with pytest.raises(GraphFormatError):
            spanning_tree_from_leaf_tree([(0, 1), (2, 3)], root=0)

    def test_missing_root_rejected(self):
        with pytest.raises(GraphFormatError):
            spanning_tree_from_leaf_tree(PATH3, root=9)


class TestEquivalence:
    """max leaves k  <=>  MST_w weight 2(n-1) - k, end to end."""

    @pytest.mark.parametrize(
        "edges",
        [PATH3, STAR4, CYCLE4, DIAMOND],
        ids=["path3", "star4", "cycle4", "diamond"],
    )
    def test_reduction_round_trip(self, edges):
        vertices = sorted({v for e in edges for v in e})
        n = len(vertices)
        temporal = max_leaf_to_mstw_graph(edges)
        # The MST_w is rooted, so the corresponding leaf count is the
        # rooted one (childless vertices) -- check from every root.
        for root in vertices:
            best_leaves, _ = max_leaf_spanning_tree(edges, root=root)
            weight = brute_force_mstw_weight(temporal, root)
            assert weight == mstw_weight_for_leaf_count(n, best_leaves)

    def test_forward_direction_star(self):
        # any spanning tree with k rooted leaves gives weight 2(n-1)-k
        n = 4
        for tree_edges in itertools.combinations(STAR4, n - 1):
            leaves, _ = max_leaf_spanning_tree(list(tree_edges), root=0)
            realised = spanning_tree_from_leaf_tree(list(tree_edges), root=0)
            assert realised.total_weight == mstw_weight_for_leaf_count(n, leaves)

    def test_rooted_leaf_count_excludes_root(self):
        # path 0-1-2 rooted at the end 0 has a single rooted leaf (2)
        leaves, _ = max_leaf_spanning_tree(PATH3, root=0)
        assert leaves == 1
        leaves_mid, _ = max_leaf_spanning_tree(PATH3, root=1)
        assert leaves_mid == 2
