"""Unit tests for :mod:`repro.temporal.window`."""

import math

import pytest

from repro.core.errors import UnreachableRootError
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.window import (
    TimeWindow,
    extract_window,
    middle_tenth_window,
    select_root,
)


class TestTimeWindow:
    def test_unbounded(self):
        w = TimeWindow.unbounded()
        assert w.t_alpha == 0
        assert math.isinf(w.t_omega)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            TimeWindow(5, 3)

    def test_degenerate_point_window_allowed(self):
        w = TimeWindow(4, 4)
        assert w.length == 0
        assert w.contains(4)

    def test_contains_boundaries(self):
        w = TimeWindow(1, 9)
        assert w.contains(1)
        assert w.contains(9)
        assert not w.contains(0.99)
        assert not w.contains(9.01)

    def test_length_and_tuple(self):
        w = TimeWindow(2, 12)
        assert w.length == 10
        assert w.as_tuple() == (2, 12)

    def test_frozen(self):
        w = TimeWindow(0, 1)
        with pytest.raises(AttributeError):
            w.t_alpha = 5


class TestMiddleTenth:
    def test_covers_middle_tenth(self):
        g = TemporalGraph(
            [TemporalEdge(0, 1, 0, 1, 1), TemporalEdge(1, 2, 99, 100, 1)]
        )
        w = middle_tenth_window(g)
        assert w.length == pytest.approx(10.0)
        # centred on the total range
        assert w.t_alpha == pytest.approx(45.0)
        assert w.t_omega == pytest.approx(55.0)

    def test_custom_fraction(self):
        g = TemporalGraph(
            [TemporalEdge(0, 1, 0, 0, 1), TemporalEdge(1, 2, 100, 100, 1)]
        )
        w = middle_tenth_window(g, fraction=0.5)
        assert w.length == pytest.approx(50.0)

    def test_fraction_bounds(self):
        g = TemporalGraph([TemporalEdge(0, 1, 0, 1, 1)])
        with pytest.raises(ValueError):
            middle_tenth_window(g, fraction=0)
        with pytest.raises(ValueError):
            middle_tenth_window(g, fraction=1.5)


class TestExtractWindow:
    def test_extract_matches_restricted(self, figure1):
        w = TimeWindow(3, 7)
        sub = extract_window(figure1, w)
        assert {tuple(e) for e in sub.edges} == {
            tuple(e) for e in figure1.restricted(3, 7).edges
        }


class TestSelectRoot:
    def test_selects_reaching_vertex(self, figure1):
        # vertex 0 reaches all 5 others, far above the 10% threshold
        assert select_root(figure1) == 0

    def test_threshold_respected(self):
        # star graph: only the centre reaches anyone
        edges = [TemporalEdge("c", i, 1, 2, 1) for i in range(5)]
        g = TemporalGraph(edges)
        assert select_root(g, min_reach_fraction=0.5) == "c"

    def test_no_root_raises(self):
        g = TemporalGraph([TemporalEdge(0, 1, 5, 6, 1)], vertices=range(40))
        with pytest.raises(UnreachableRootError):
            select_root(g, min_reach_fraction=0.5)
