"""Tests for the end-to-end ``MST_w`` pipeline and postprocessing."""


import pytest

from repro.baselines.brute_force import brute_force_mstw_weight
from repro.core.errors import UnreachableRootError
from repro.core.mstw import minimum_spanning_tree_w, prepare_mstw_instance
from repro.core.postprocess import closure_tree_to_temporal
from repro.steiner.charikar import charikar_dst
from repro.steiner.exact import exact_dst_cost
from repro.steiner.instance import approximation_ratio
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.paths import reachable_set
from repro.temporal.window import TimeWindow

from tests.conftest import random_temporal


class TestFigure2b:
    """The paper's Example 2: a MST_w of weight 11 rooted at 0."""

    @pytest.mark.parametrize("algorithm", ["charikar", "improved", "pruned"])
    def test_all_algorithms_reach_optimum_at_level3(self, figure1, algorithm):
        result = minimum_spanning_tree_w(figure1, 0, level=3, algorithm=algorithm)
        assert result.weight == 11.0

    def test_brute_force_confirms_11(self, figure1):
        assert brute_force_mstw_weight(figure1, 0) == 11.0

    def test_result_tree_validates(self, figure1):
        result = minimum_spanning_tree_w(figure1, 0, level=2)
        result.tree.validate(figure1)
        assert result.tree.vertices == {0, 1, 2, 3, 4, 5}

    def test_result_metadata(self, figure1):
        result = minimum_spanning_tree_w(figure1, 0, level=2, algorithm="pruned")
        assert result.num_terminals == 5
        assert result.level == 2
        assert result.algorithm == "pruned"
        assert result.transformed_vertices > 6
        assert result.preprocessing_seconds >= 0
        assert result.solve_seconds >= 0

    def test_postprocess_never_increases_cost(self, figure1):
        # Theorem 6: final weight <= closure tree cost
        result = minimum_spanning_tree_w(figure1, 0, level=2)
        assert result.weight <= result.closure_tree_cost + 1e-9


class TestArguments:
    def test_unknown_algorithm(self, figure1):
        with pytest.raises(ValueError):
            minimum_spanning_tree_w(figure1, 0, algorithm="magic")

    def test_bad_level(self, figure1):
        with pytest.raises(ValueError):
            minimum_spanning_tree_w(figure1, 0, level=0)

    def test_isolated_root_raises(self):
        g = TemporalGraph([TemporalEdge(1, 2, 0, 1, 1)], vertices=[0, 1, 2])
        with pytest.raises(UnreachableRootError):
            minimum_spanning_tree_w(g, 0)

    def test_window_restricts_terminals(self, figure1):
        result = minimum_spanning_tree_w(figure1, 0, window=TimeWindow(0, 6))
        assert result.tree.vertices == {0, 1, 2, 3}


class TestTheorem5:
    """Exact DST on the transformed graph equals exact MST_w."""

    @pytest.mark.parametrize("seed", range(6))
    def test_exact_dst_equals_brute_force_mstw(self, seed):
        g = random_temporal(seed, n=6, m=14)
        reach = reachable_set(g, 0)
        if len(reach) < 3:
            pytest.skip("root reaches too little for a meaningful check")
        _, prepared = prepare_mstw_instance(g, 0)
        assert exact_dst_cost(prepared) == pytest.approx(
            brute_force_mstw_weight(g, 0)
        )

    @pytest.mark.parametrize("seed", [0, 2, 4])
    def test_exact_dst_equals_brute_force_zero_durations(self, seed):
        g = random_temporal(seed, n=6, m=14, zero_duration=True)
        if len(reachable_set(g, 0)) < 3:
            pytest.skip("root reaches too little")
        _, prepared = prepare_mstw_instance(g, 0)
        assert exact_dst_cost(prepared) == pytest.approx(
            brute_force_mstw_weight(g, 0)
        )


class TestTheorem6:
    """Approximation guarantee carries over to MST_w."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_ratio_holds_vs_exact(self, seed, level):
        g = random_temporal(seed, n=8, m=25)
        if len(reachable_set(g, 0)) < 4:
            pytest.skip("root reaches too little")
        result = minimum_spanning_tree_w(g, 0, level=level)
        opt = brute_force_mstw_weight(g, 0)
        k = result.num_terminals
        assert result.weight >= opt - 1e-9
        assert result.weight <= approximation_ratio(level, k) * opt + 1e-9

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("zero", [False, True])
    def test_output_is_valid_spanning_tree(self, seed, zero):
        g = random_temporal(seed, n=10, m=40, zero_duration=zero)
        reach = reachable_set(g, 0)
        if len(reach) < 2:
            pytest.skip("root isolated")
        result = minimum_spanning_tree_w(g, 0, level=2)
        result.tree.validate(g)
        assert result.tree.vertices == reach


class TestPostprocessDirect:
    def test_closure_tree_to_temporal_round_trip(self, figure1):
        transformed, prepared = prepare_mstw_instance(figure1, 0)
        closure_tree = charikar_dst(prepared, 2)
        tree = closure_tree_to_temporal(transformed, prepared, closure_tree)
        tree.validate(figure1)
        assert tree.total_weight <= closure_tree.cost + 1e-9

    def test_prepared_sizes_match_result(self, figure1):
        transformed, prepared = prepare_mstw_instance(figure1, 0)
        result = minimum_spanning_tree_w(figure1, 0, level=1)
        assert transformed.num_vertices == result.transformed_vertices
        assert transformed.num_edges == result.transformed_edges
        assert prepared.num_terminals == result.num_terminals


class TestLevelQuality:
    def test_higher_levels_never_hugely_worse(self, figure1):
        # Table 6's trend: weights shrink (or stay) as i grows on real data.
        weights = [
            minimum_spanning_tree_w(figure1, 0, level=i).weight for i in (1, 2, 3)
        ]
        assert weights[2] <= weights[0] + 1e-9

    def test_level1_is_shortest_path_union(self, figure1):
        from repro.temporal.paths import shortest_path_distances

        result = minimum_spanning_tree_w(figure1, 0, level=1)
        dist = shortest_path_distances(figure1, 0)
        bound = sum(v for k, v in dist.items() if k != 0)
        # level 1 buys each terminal its shortest path, deduplicated:
        # the final weight is at most the sum of the path costs.
        assert result.weight <= bound + 1e-9
