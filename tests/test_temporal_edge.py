"""Unit tests for :mod:`repro.temporal.edge`."""

import pytest

from repro.temporal.edge import TemporalEdge


class TestConstruction:
    def test_fields_follow_paper_notation(self):
        e = TemporalEdge(0, 1, 1, 3, 2)
        assert e.source == 0
        assert e.target == 1
        assert e.start == 1
        assert e.arrival == 3
        assert e.weight == 2

    def test_default_weight_is_one(self):
        e = TemporalEdge("a", "b", 0.0, 1.0)
        assert e.weight == 1.0

    def test_is_a_tuple(self):
        e = TemporalEdge(0, 1, 1, 3, 2)
        assert tuple(e) == (0, 1, 1, 3, 2)

    def test_hashable_and_comparable(self):
        e1 = TemporalEdge(0, 1, 1, 3, 2)
        e2 = TemporalEdge(0, 1, 1, 3, 2)
        assert e1 == e2
        assert len({e1, e2}) == 1

    def test_string_vertices_supported(self):
        e = TemporalEdge("JFK", "LAX", 800, 1100, 250)
        assert e.source == "JFK"
        assert e.duration == 300


class TestDuration:
    def test_duration_is_arrival_minus_start(self):
        assert TemporalEdge(0, 1, 2, 7, 0).duration == 5

    def test_zero_duration(self):
        assert TemporalEdge(0, 1, 4, 4, 0).duration == 0

    def test_float_times(self):
        assert TemporalEdge(0, 1, 0.5, 2.25, 1).duration == pytest.approx(1.75)


class TestValidity:
    def test_valid_edge(self):
        assert TemporalEdge(0, 1, 1, 3, 2).is_valid()

    def test_arrival_before_start_invalid(self):
        assert not TemporalEdge(0, 1, 3, 1, 2).is_valid()

    def test_negative_weight_invalid(self):
        assert not TemporalEdge(0, 1, 1, 3, -1).is_valid()

    def test_zero_duration_zero_weight_valid(self):
        assert TemporalEdge(0, 1, 5, 5, 0).is_valid()


class TestWindow:
    def test_within_closed_interval(self):
        e = TemporalEdge(0, 1, 2, 5, 1)
        assert e.within(2, 5)
        assert e.within(0, 10)

    def test_start_before_window(self):
        assert not TemporalEdge(0, 1, 2, 5, 1).within(3, 10)

    def test_arrival_after_window(self):
        assert not TemporalEdge(0, 1, 2, 5, 1).within(0, 4)


class TestHelpers:
    def test_reversed_swaps_endpoints_only(self):
        e = TemporalEdge(0, 1, 2, 5, 3)
        r = e.reversed()
        assert (r.source, r.target) == (1, 0)
        assert (r.start, r.arrival, r.weight) == (2, 5, 3)

    def test_reversed_is_involution(self):
        e = TemporalEdge("x", "y", 1, 2, 3)
        assert e.reversed().reversed() == e

    def test_static_key(self):
        assert TemporalEdge(3, 7, 0, 1, 9).static_key() == (3, 7)
