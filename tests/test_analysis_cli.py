"""End-to-end behaviour of ``python -m repro.analysis`` / ``repro lint``.

Exit-code contract: 0 clean, 1 findings, 2 usage error, 3 internal
linter failure.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_INTERNAL_ERROR, main
from repro.analysis.core import Rule

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO_ROOT, "tests", "fixtures", "analysis")
VIOLATIONS = os.path.join(FIXTURES, "violations")
CLEAN = os.path.join(FIXTURES, "clean")


def test_shipped_tree_is_clean(capsys):
    code = main([os.path.join(REPO_ROOT, "src"), os.path.join(REPO_ROOT, "tests")])
    out = capsys.readouterr().out
    assert code == EXIT_CLEAN
    assert "ok: no findings" in out


def test_violations_exit_one(capsys):
    code = main(["--no-default-excludes", VIOLATIONS])
    out = capsys.readouterr().out
    assert code == EXIT_FINDINGS
    for rule_code in (
        "REP101", "REP102", "REP103", "REP104", "REP105", "REP106", "REP107",
    ):
        assert rule_code in out
    assert "12 findings" in out


def test_default_excludes_skip_fixture_tree(capsys):
    # Without --no-default-excludes the `fixtures` path component is
    # skipped, so scanning the violation tree finds nothing.
    code = main([VIOLATIONS])
    out = capsys.readouterr().out
    assert code == EXIT_CLEAN
    assert "ok: no findings" in out


def test_json_report(capsys):
    code = main(["--format", "json", "--no-default-excludes", VIOLATIONS])
    out = capsys.readouterr().out
    assert code == EXIT_FINDINGS
    payload = json.loads(out)
    assert payload["version"] == 1
    assert payload["counts"]["total"] == 12
    assert payload["counts"]["by_rule"] == {
        "budget-tick": 1,
        "cache-mutation": 4,
        "determinism": 3,
        "float-equality": 1,
        "temporal-invariant": 1,
        "api-consistency": 1,
        "swallowed-exception": 1,
    }
    assert payload["errors"] == []
    for finding in payload["findings"]:
        assert os.path.isfile(finding["path"])
        assert finding["line"] >= 1


def test_rule_selection(capsys):
    code = main(["--rule", "budget-tick", "--no-default-excludes", VIOLATIONS])
    out = capsys.readouterr().out
    assert code == EXIT_FINDINGS
    assert "REP101" in out
    assert "REP105" not in out
    assert "1 finding" in out


def test_unknown_rule_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--rule", "no-such-rule", VIOLATIONS])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "no-such-rule" in err


def test_list_rules(capsys):
    code = main(["--list-rules"])
    out = capsys.readouterr().out
    assert code == EXIT_CLEAN
    for rule_code in ("REP101", "REP102", "REP103", "REP104", "REP105", "REP106"):
        assert rule_code in out


class _BoomRule(Rule):
    name = "boom"
    code = "REP999"
    description = "always crashes (test-only)"

    def check(self, module):
        raise RuntimeError("boom")


def test_internal_rule_failure_exits_three(monkeypatch, tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n", encoding="utf-8")
    monkeypatch.setattr(
        "repro.analysis.cli.get_rules", lambda names: [_BoomRule()]
    )
    code = main([str(target)])
    out = capsys.readouterr().out
    assert code == EXIT_INTERNAL_ERROR
    assert "internal error" in out
    assert "boom" in out


def test_repro_cli_forwards_lint_subcommand(capsys):
    from repro.cli import main as repro_main

    assert repro_main(["lint", "--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "REP101" in out
    code = repro_main(
        [
            "lint",
            "--no-default-excludes",
            os.path.join(VIOLATIONS, "repro", "core", "weights.py"),
        ]
    )
    assert code == EXIT_FINDINGS


def test_module_entry_point_subprocess():
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    bad = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.analysis",
            "--no-default-excludes",
            os.path.join(VIOLATIONS, "repro", "core", "weights.py"),
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    assert bad.returncode == EXIT_FINDINGS, bad.stdout + bad.stderr
    assert "REP104" in bad.stdout
    good = subprocess.run(
        [sys.executable, "-m", "repro.analysis", os.path.join(CLEAN)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    assert good.returncode == EXIT_CLEAN, good.stdout + good.stderr
