"""Tests for the experiment harness plumbing (runner + workloads)."""

import pytest

from repro.experiments.runner import TableResult, timed, timed_best_of
from repro.experiments.workloads import (
    MSTW_WORKLOADS,
    QUICK_MSTW_WORKLOADS,
    msta_graph,
    msta_protocol,
    mstw_workload,
)


class TestTableResult:
    def test_add_row_and_render(self):
        result = TableResult("t", "Test table", ["a", "b"])
        result.add_row(1, 2.5)
        result.add_row("x", "-")
        text = result.render()
        assert "Test table" in text
        assert "2.500" in text  # float formatting
        assert "x" in text

    def test_notes_rendered(self):
        result = TableResult("t", "T", ["a"])
        result.add_row(1)
        result.notes.append("important caveat")
        assert "important caveat" in result.render()

    def test_column(self):
        result = TableResult("t", "T", ["name", "value"])
        result.add_row("one", 1)
        result.add_row("two", 2)
        assert result.column("value") == [1, 2]

    def test_column_unknown(self):
        result = TableResult("t", "T", ["a"])
        with pytest.raises(ValueError):
            result.column("zz")


class TestTimers:
    def test_timed_returns_elapsed_and_result(self):
        elapsed, value = timed(sum, [1, 2, 3])
        assert value == 6
        assert elapsed >= 0

    def test_timed_best_of(self):
        calls = []

        def fn():
            calls.append(1)
            return "ok"

        elapsed, value = timed_best_of(3, fn)
        assert value == "ok"
        assert len(calls) == 3
        assert elapsed >= 0

    def test_timed_best_of_minimum_one_round(self):
        elapsed, value = timed_best_of(0, lambda: 5)
        assert value == 5


class TestWorkloads:
    def test_all_seven_datasets_configured(self):
        assert {c.name for c in MSTW_WORKLOADS} == {
            "slashdot",
            "epinions",
            "facebook",
            "enron",
            "hepph",
            "dblp",
            "phone",
        }

    def test_quick_variants_smaller(self):
        full = {c.name: c for c in MSTW_WORKLOADS}
        for quick in QUICK_MSTW_WORKLOADS:
            assert quick.scale < full[quick.name].scale
            assert quick.pruned_max_level <= full[quick.name].pruned_max_level

    def test_workload_cached(self):
        config = QUICK_MSTW_WORKLOADS[0]
        a = mstw_workload(config)
        b = mstw_workload(config)
        assert a is b

    def test_workload_pieces_consistent(self):
        config = next(c for c in QUICK_MSTW_WORKLOADS if c.name == "phone")
        workload = mstw_workload(config)
        assert workload.prepared.num_terminals >= 1
        assert workload.transformed.num_vertices >= workload.prepared.num_terminals
        assert workload.preprocessing_seconds >= 0
        assert workload.root in workload.graph.vertices

    def test_msta_graph_durations(self):
        unit = msta_graph("slashdot", duration=1, scale=0.1)
        assert all(e.duration == 1 for e in unit.edges)
        zero = msta_graph("slashdot", duration=0, scale=0.1)
        assert zero.has_zero_duration_edge()
        native = msta_graph("phone", duration=None, scale=0.1)
        assert any(e.duration > 1 for e in native.edges)

    def test_msta_protocol_full_range(self):
        graph = msta_graph("slashdot", duration=1, scale=0.2)
        root, window, active = msta_protocol(graph, None)
        assert window is None
        assert active is graph
        assert root in graph.vertices

    def test_msta_protocol_windowed(self):
        graph = msta_graph("slashdot", duration=1, scale=0.2)
        root, window, active = msta_protocol(graph, 0.5)
        assert window is not None
        assert active.num_edges <= graph.num_edges
        assert root in active.vertices


class TestCliExperiment:
    def test_experiment_subcommand(self, capsys):
        from repro.cli import main

        code = main(["experiment", "table1", "--quick"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 1" in out

    def test_experiment_fig8a(self, capsys):
        from repro.cli import main

        code = main(["experiment", "fig8a", "--quick"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 8(a)" in out
