"""Tests for explicit foremost-path retrieval."""

import pytest

from repro.temporal.paths import earliest_arrival_path, earliest_arrival_times
from repro.temporal.window import TimeWindow

from tests.conftest import random_temporal


class TestBasics:
    def test_figure1_path_to_5(self, figure1):
        path = earliest_arrival_path(figure1, 0, 5)
        assert [e.target for e in path] == [1, 3, 5]
        assert path[-1].arrival == 8

    def test_source_equals_target(self, figure1):
        assert earliest_arrival_path(figure1, 0, 0) == []

    def test_unreachable_returns_none(self, figure1):
        assert earliest_arrival_path(figure1, 5, 0) is None

    def test_unknown_vertices(self, figure1):
        assert earliest_arrival_path(figure1, 0, 99) is None
        assert earliest_arrival_path(figure1, 99, 0) is None

    def test_path_is_time_respecting(self, figure1):
        path = earliest_arrival_path(figure1, 0, 4)
        for a, b in zip(path, path[1:]):
            assert a.target == b.source
            assert a.arrival <= b.start

    def test_window_respected(self, figure1):
        assert earliest_arrival_path(figure1, 0, 4, TimeWindow(0, 6)) is None
        path = earliest_arrival_path(figure1, 0, 3, TimeWindow(0, 6))
        assert path[-1].arrival == 6

    def test_zero_duration_chain(self, figure3):
        path = earliest_arrival_path(figure3, 0, 2)
        assert [e.target for e in path] == [1, 4, 3, 2]


class TestOptimality:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("zero", [False, True])
    def test_path_arrival_matches_earliest_arrival_times(self, seed, zero):
        g = random_temporal(seed, n=12, m=50, zero_duration=zero)
        arrivals = earliest_arrival_times(g, 0)
        for target, expected in arrivals.items():
            if target == 0:
                continue
            path = earliest_arrival_path(g, 0, target)
            assert path is not None
            assert path[-1].arrival == expected
            # every edge of the path is a graph edge
            graph_edges = set(g.edges)
            assert all(e in graph_edges for e in path)
