"""Property-based tests for the temporal path algorithms."""

import math

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.paths import (
    earliest_arrival_times,
    fastest_path_durations,
    latest_departure_times,
    reachable_set,
    shortest_path_distances,
)
from repro.temporal.window import TimeWindow


@st.composite
def graphs(draw, max_vertices=7, max_edges=20):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    edges = []
    for _ in range(num_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        start = draw(st.integers(min_value=0, max_value=15))
        duration = draw(st.integers(min_value=0, max_value=4))
        weight = draw(st.integers(min_value=1, max_value=9))
        edges.append(TemporalEdge(u, v, start, start + duration, weight))
    return TemporalGraph(edges, vertices=range(n))


@settings(max_examples=100, deadline=None)
@given(graph=graphs())
def test_earliest_arrival_is_monotone_under_window_growth(graph):
    narrow = earliest_arrival_times(graph, 0, TimeWindow(0, 10))
    wide = earliest_arrival_times(graph, 0, TimeWindow(0, 20))
    # widening the window can only add reachable vertices, never worsen
    for v, t in narrow.items():
        assert v in wide
        assert wide[v] <= t


@settings(max_examples=100, deadline=None)
@given(graph=graphs())
def test_fastest_never_slower_than_foremost_span(graph):
    arrivals = earliest_arrival_times(graph, 0)
    fastest = fastest_path_durations(graph, 0)
    for v, t in arrivals.items():
        if v == 0:
            continue
        assert v in fastest
        # fastest duration <= foremost arrival - t_alpha
        assert fastest[v] <= t - 0 + 1e-9


@settings(max_examples=100, deadline=None)
@given(graph=graphs())
def test_shortest_cost_at_most_foremost_path_cost(graph):
    shortest = shortest_path_distances(graph, 0)
    arrivals = earliest_arrival_times(graph, 0)
    # same reachable set, and cost lower-bounded by cheapest single edge
    assert set(shortest) == set(arrivals)
    if graph.num_edges:
        cheapest_edge = min(e.weight for e in graph.edges)
        for v, cost in shortest.items():
            if v != 0:
                assert cost >= cheapest_edge - 1e-9


@settings(max_examples=100, deadline=None)
@given(graph=graphs(), horizon=st.integers(min_value=5, max_value=25))
def test_latest_departure_duality(graph, horizon):
    """If v can leave at time L(v) and reach the target, then the target
    is reachable from v within [L(v), horizon] -- and not from any later
    departure."""
    target = 1
    departures = latest_departure_times(graph, target, TimeWindow(0, horizon))
    for v, leave in departures.items():
        if v == target:
            continue
        reachable = reachable_set(graph, v, TimeWindow(leave, horizon))
        assert target in reachable


@settings(max_examples=100, deadline=None)
@given(graph=graphs())
def test_reachability_is_transitive(graph):
    reach_0 = reachable_set(graph, 0)
    arrivals = earliest_arrival_times(graph, 0)
    for v in list(reach_0)[:4]:
        # everything reachable from v after its arrival is reachable from 0
        onward = reachable_set(graph, v, TimeWindow(arrivals[v], math.inf))
        assert onward <= reach_0
