"""Property-based tests for timestamp transforms and invariances.

The MST algorithms should be invariant under time translation and
positive scaling; these are algebraic facts about the problem
definition, and make good hypothesis targets.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.msta import msta_stack
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.transforms import (
    normalize_epoch,
    quantize_timestamps,
    scale_time,
    shift_time,
)


@st.composite
def graphs(draw, max_vertices=7, max_edges=18):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    edges = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_edges))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        start = draw(st.integers(min_value=0, max_value=40))
        duration = draw(st.integers(min_value=0, max_value=6))
        edges.append(TemporalEdge(u, v, start, start + duration, 1.0))
    return TemporalGraph(edges, vertices=range(n))


@settings(max_examples=80, deadline=None)
@given(graph=graphs(), offset=st.integers(min_value=0, max_value=100))
def test_msta_invariant_under_time_shift(graph, offset):
    base = msta_stack(graph, 0).arrival_times
    shifted = msta_stack(shift_time(graph, offset), 0).arrival_times
    assert set(base) == set(shifted)
    for v, t in base.items():
        if v != 0:
            assert shifted[v] == t + offset


@settings(max_examples=80, deadline=None)
@given(graph=graphs(), factor=st.integers(min_value=1, max_value=10))
def test_msta_invariant_under_time_scaling(graph, factor):
    base = msta_stack(graph, 0).arrival_times
    scaled = msta_stack(scale_time(graph, factor), 0).arrival_times
    assert set(base) == set(scaled)
    for v, t in base.items():
        if v != 0:
            assert scaled[v] == pytest.approx(t * factor)


@settings(max_examples=80, deadline=None)
@given(graph=graphs())
def test_normalize_epoch_is_idempotent(graph):
    if graph.num_edges == 0:
        return
    once = normalize_epoch(graph)
    twice = normalize_epoch(once)
    assert [tuple(e) for e in once.edges] == [tuple(e) for e in twice.edges]
    assert once.time_span()[0] == 0


@settings(max_examples=80, deadline=None)
@given(graph=graphs(), granularity=st.integers(min_value=1, max_value=20))
def test_quantize_is_idempotent(graph, granularity):
    if graph.num_edges == 0:
        return
    once = quantize_timestamps(graph, granularity)
    twice = quantize_timestamps(once, granularity)
    assert [tuple(e) for e in once.edges] == [tuple(e) for e in twice.edges]


@settings(max_examples=80, deadline=None)
@given(graph=graphs(), granularity=st.integers(min_value=1, max_value=20))
def test_quantize_only_extends_reachability(graph, granularity):
    """Snapping times down can merge events but never break an existing
    time-respecting path: if a path was feasible, its quantised version
    still is (gaps only widen or stay when starts move down at least as
    much as the preceding arrivals)."""
    from repro.temporal.paths import reachable_set

    base = reachable_set(graph, 0)
    quantized = reachable_set(quantize_timestamps(graph, granularity), 0)
    assert base <= quantized
