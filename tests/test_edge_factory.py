"""The validated ``make_edge`` factory (temporal-invariant rule, REP105).

``TemporalEdge`` itself is an unchecked ``NamedTuple``; ``make_edge``
is the construction site that enforces the Section 2.1 invariants, and
the lint rule holds library code to it.
"""

import math

import pytest

from repro.core.errors import GraphFormatError
from repro.temporal.edge import TemporalEdge, make_edge


def test_make_edge_builds_a_temporal_edge():
    edge = make_edge("u", "v", 1.0, 3.0, 2.5)
    assert isinstance(edge, TemporalEdge)
    assert edge == TemporalEdge("u", "v", 1.0, 3.0, 2.5)
    assert edge.duration == pytest.approx(2.0)


def test_make_edge_default_weight_is_one():
    assert make_edge(0, 1, 0.0, 1.0).weight == pytest.approx(1.0)


def test_make_edge_allows_zero_duration():
    edge = make_edge(0, 1, 2.0, 2.0)
    assert edge.duration == pytest.approx(0.0)


def test_make_edge_rejects_arrival_before_start():
    with pytest.raises(GraphFormatError, match="arrives before it starts"):
        make_edge(0, 1, 2.0, 1.0)


def test_make_edge_rejects_negative_weight():
    with pytest.raises(GraphFormatError, match="negative weight"):
        make_edge(0, 1, 1.0, 2.0, -0.5)


@pytest.mark.parametrize(
    "start,arrival,weight",
    [
        (math.nan, 2.0, 1.0),
        (1.0, math.nan, 1.0),
        (1.0, 2.0, math.nan),
    ],
    ids=["start", "arrival", "weight"],
)
def test_make_edge_rejects_nan_fields(start, arrival, weight):
    with pytest.raises(GraphFormatError, match="NaN"):
        make_edge(0, 1, start, arrival, weight)
