"""The shipped tree must satisfy its own invariant linter.

This is the live gate: any new budget-free solver loop, cached-structure
mutation, wall-clock call, exact float comparison, raw TemporalEdge
construction, or stale ``__all__`` entry fails this test (and CI's
``lint`` job) at the offending file:line.
"""

import os

from repro.analysis import analyze_paths, default_rules

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_src_and_tests_are_lint_clean():
    findings, errors = analyze_paths(
        [os.path.join(REPO_ROOT, "src"), os.path.join(REPO_ROOT, "tests")],
        default_rules(),
    )
    assert errors == []
    assert findings == [], "\n".join(
        f"{f.location()} {f.code} [{f.rule}] {f.message}" for f in findings
    )
