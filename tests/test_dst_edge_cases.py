"""Degenerate and adversarial DST inputs."""

import math

import pytest

from repro.static.digraph import StaticDigraph
from repro.steiner.charikar import charikar_dst
from repro.steiner.improved import improved_dst
from repro.steiner.instance import DSTInstance, prepare_instance
from repro.steiner.pruned import pruned_dst

ALGORITHMS = [charikar_dst, improved_dst, pruned_dst]


def prepare(edges, root, terminals, vertices=None):
    g = StaticDigraph(vertices)
    for u, v, w in edges:
        g.add_edge(u, v, w)
    return prepare_instance(DSTInstance(g, root, tuple(terminals)))


class TestDegenerateInstances:
    @pytest.mark.parametrize("solver", ALGORITHMS)
    def test_empty_terminal_set(self, solver):
        prepared = prepare([("r", "x", 1.0)], "r", [])
        tree = solver(prepared, 2)
        assert tree.cost == 0.0
        assert tree.covered == frozenset()

    @pytest.mark.parametrize("solver", ALGORITHMS)
    def test_single_vertex_terminal(self, solver):
        prepared = prepare([("r", "t", 4.0)], "r", ["t"])
        tree = solver(prepared, 3)
        assert tree.cost == 4.0

    @pytest.mark.parametrize("solver", ALGORITHMS)
    def test_zero_weight_edges(self, solver):
        prepared = prepare(
            [("r", "a", 0.0), ("a", "t1", 0.0), ("a", "t2", 0.0)],
            "r",
            ["t1", "t2"],
        )
        tree = solver(prepared, 2)
        assert tree.cost == 0.0
        assert tree.covered == frozenset(prepared.terminals)

    @pytest.mark.parametrize("solver", ALGORITHMS)
    def test_k_larger_than_terminals_clamped(self, solver):
        prepared = prepare([("r", "t", 1.0)], "r", ["t"])
        tree = solver(prepared, 2, k=99)
        assert tree.covered == frozenset(prepared.terminals)

    @pytest.mark.parametrize("solver", ALGORITHMS)
    def test_level_deeper_than_graph(self, solver):
        # a 2-hop graph solved at level 3: extra levels must not hurt
        prepared = prepare(
            [("r", "a", 1.0), ("a", "t", 1.0)], "r", ["t"]
        )
        assert solver(prepared, 3).cost == 2.0


class TestDuplicateStructure:
    @pytest.mark.parametrize("solver", ALGORITHMS)
    def test_heavy_parallel_edges(self, solver):
        edges = [("r", "t", float(w)) for w in (9, 3, 7, 5)]
        prepared = prepare(edges, "r", ["t"])
        assert solver(prepared, 1).cost == 3.0

    @pytest.mark.parametrize("solver", ALGORITHMS)
    def test_terminal_reachable_only_through_terminal(self, solver):
        # t2 only reachable through t1: the tree must chain them
        prepared = prepare(
            [("r", "t1", 2.0), ("t1", "t2", 2.0)], "r", ["t1", "t2"]
        )
        tree = solver(prepared, 2)
        assert tree.covered == frozenset(prepared.terminals)
        # closure-tree cost counts the shared prefix once after expansion
        from repro.steiner.tree import expand_closure_tree

        cost, _ = expand_closure_tree(prepared, tree)
        assert cost == 4.0

    @pytest.mark.parametrize("solver", ALGORITHMS)
    def test_long_chain(self, solver):
        edges = [(i, i + 1, 1.0) for i in range(10)]
        prepared = prepare(edges, 0, [10])
        assert solver(prepared, 2).cost == 10.0


class TestNumericRobustness:
    @pytest.mark.parametrize("solver", ALGORITHMS)
    def test_tiny_and_huge_weights(self, solver):
        prepared = prepare(
            [("r", "a", 1e-12), ("a", "t", 1e12), ("r", "t", 1.0)],
            "r",
            ["t"],
        )
        assert solver(prepared, 2).cost == pytest.approx(1.0)

    def test_infinite_density_branches_never_chosen(self):
        # vertex "dead" reaches no terminal; solvers must route around it
        prepared = prepare(
            [("r", "dead", 0.1), ("r", "t", 5.0)], "r", ["t"]
        )
        for solver in ALGORITHMS:
            tree = solver(prepared, 2)
            assert tree.cost == 5.0
            assert math.isfinite(tree.density)
