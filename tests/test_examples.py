"""Smoke tests: every example script runs cleanly and prints its story."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)

EXPECTED_MARKERS = {
    "quickstart.py": "total cost: 11",
    "information_dissemination.py": "message reaches",
    "flight_logistics.py": "cheapest full distribution",
    "epidemic_window_sweep.py": "window start",
    "content_delivery.py": "cost saved by targeting",
    "dst_quality_study.py": "err is (Approx - Opt)/Opt",
    "streaming_broadcast_monitor.py": "identical to the",
}


def test_every_example_has_a_marker():
    names = {path.name for path in EXAMPLES}
    assert names == set(EXPECTED_MARKERS)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr
    assert EXPECTED_MARKERS[path.name] in completed.stdout
