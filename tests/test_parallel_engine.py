"""The process-pool execution core: chunking, merge layer, lifecycle.

The engine's contract is that ``ParallelExecutor.map`` output is
byte-identical to a serial loop at any ``jobs`` value, the per-worker
initializer runs exactly once per worker, and chunking is a pure
function of its inputs.
"""

import os

import pytest

from repro.parallel.engine import (
    ParallelExecutor,
    chunk_size_for,
    cpu_count,
    default_start_method,
)

# ----------------------------------------------------------------------
# Top-level task/initializer functions (must be picklable for jobs > 1).
# ----------------------------------------------------------------------
_INIT_CALLS = 0
_INIT_TOKEN = None


def _record_init(token):
    global _INIT_CALLS, _INIT_TOKEN
    _INIT_CALLS += 1
    _INIT_TOKEN = token


def _observe_init(_item):
    return (_INIT_CALLS, _INIT_TOKEN, os.getpid())


def _square(x):
    return x * x


class TestChunkSizeFor:
    def test_pure_and_deterministic(self):
        for num_items in range(0, 40):
            for jobs in (1, 2, 4, 8):
                first = chunk_size_for(num_items, jobs)
                assert first == chunk_size_for(num_items, jobs)
                assert first >= 1

    def test_covers_all_items(self):
        """chunks-per-worker bound: ceil division never strands items."""
        for num_items in (1, 7, 16, 100):
            for jobs in (1, 2, 4):
                chunk = chunk_size_for(num_items, jobs)
                chunks = -(-num_items // chunk)
                assert chunks * chunk >= num_items
                assert chunks <= max(1, jobs * 2) + 1

    def test_override_pins_exact_size(self):
        assert chunk_size_for(100, 4, override=7) == 7

    def test_bad_override_rejected(self):
        with pytest.raises(ValueError):
            chunk_size_for(10, 2, override=0)

    def test_empty_input(self):
        assert chunk_size_for(0, 4) == 1


class TestLifecycle:
    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(0)

    def test_close_is_idempotent(self):
        executor = ParallelExecutor(2)
        assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]
        executor.close()
        executor.close()

    def test_context_manager_reaps_pool(self):
        with ParallelExecutor(2) as executor:
            executor.map(_square, [1, 2])
        assert executor._pool is None

    def test_platform_probes(self):
        assert cpu_count() >= 1
        assert default_start_method() in ("fork", "spawn", "forkserver")
        assert ParallelExecutor(1).start_method == default_start_method()


class TestDeterministicMerge:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_map_matches_serial(self, jobs):
        items = list(range(37))
        expected = [_square(x) for x in items]
        with ParallelExecutor(jobs) as executor:
            assert executor.map(_square, items) == expected

    def test_unordered_tags_submission_indices(self):
        items = [5, 6, 7]
        with ParallelExecutor(2) as executor:
            pairs = sorted(executor.unordered(_square, items))
        assert pairs == [(0, 25), (1, 36), (2, 49)]

    def test_empty_items(self):
        with ParallelExecutor(2) as executor:
            assert executor.map(_square, []) == []


class TestInitializer:
    def test_initializer_runs_once_per_worker(self):
        with ParallelExecutor(
            2, initializer=_record_init, initargs=("tok",)
        ) as executor:
            seen = executor.map(_observe_init, range(16))
        # Every task observed exactly one initializer call in its
        # worker, with the initargs applied -- heavy state is paid per
        # worker, never per task.
        assert {(calls, token) for calls, token, _pid in seen} == {(1, "tok")}

    def test_inline_initializer_runs_once_across_calls(self):
        global _INIT_CALLS, _INIT_TOKEN
        _INIT_CALLS, _INIT_TOKEN = 0, None
        with ParallelExecutor(
            1, initializer=_record_init, initargs=("inline",)
        ) as executor:
            executor.map(_observe_init, [1])
            seen = executor.map(_observe_init, [2])
        assert seen == [(1, "inline", os.getpid())]
        _INIT_CALLS, _INIT_TOKEN = 0, None
