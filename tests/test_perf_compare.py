"""The bench comparator: tolerances, noise floor, exit codes."""

import json

import pytest

from repro.perf.compare import (
    DEFAULT_TOLERANCE,
    NOISE_FLOOR_S,
    compare_benchmarks,
    main,
)
from repro.perf.harness import SCHEMA_VERSION


def doc(*rows):
    return {
        "schema_version": SCHEMA_VERSION,
        "scale": "smoke",
        "repeats": 3,
        "platform": {},
        "scenarios": [dict(r) for r in rows],
    }


def row(name, median, tolerance=None):
    return {
        "name": name,
        "median_s": median,
        "tolerance": tolerance,
    }


class TestCompare:
    def test_clean_pass(self):
        report = compare_benchmarks(
            doc(row("a", 0.10), row("b", 0.20)),
            doc(row("a", 0.10), row("b", 0.21)),
        )
        assert report.ok
        assert [d.status for d in report.deltas] == ["ok", "ok"]

    def test_regression_flagged(self):
        report = compare_benchmarks(
            doc(row("a", 0.10)),
            doc(row("a", 0.20)),
        )
        assert not report.ok
        (delta,) = report.failures
        assert delta.name == "a"
        assert delta.status == "regression"
        assert delta.ratio == pytest.approx(2.0)

    def test_tolerance_boundary(self):
        """Exactly at tolerance passes; just above fails."""
        at = compare_benchmarks(
            doc(row("a", 0.10)), doc(row("a", 0.10 * DEFAULT_TOLERANCE))
        )
        assert at.ok
        above = compare_benchmarks(
            doc(row("a", 0.10)),
            doc(row("a", 0.10 * DEFAULT_TOLERANCE * 1.01)),
        )
        assert not above.ok

    def test_per_scenario_tolerance_overrides_default(self):
        baseline = doc(row("hot", 0.10, tolerance=3.0))
        assert compare_benchmarks(baseline, doc(row("hot", 0.25))).ok
        assert not compare_benchmarks(baseline, doc(row("hot", 0.35))).ok

    def test_call_level_tolerance(self):
        baseline = doc(row("a", 0.10))
        assert compare_benchmarks(
            baseline, doc(row("a", 0.28)), tolerance=3.0
        ).ok

    def test_noise_floor_never_flags(self):
        fast = NOISE_FLOOR_S / 4
        report = compare_benchmarks(
            doc(row("tiny", fast)), doc(row("tiny", fast * 3))
        )
        assert report.ok
        assert report.deltas[0].status == "skipped-noise"

    def test_noise_floor_requires_both_sides(self):
        """A scenario that grew *past* the floor is a real regression."""
        report = compare_benchmarks(
            doc(row("grew", NOISE_FLOOR_S / 2)),
            doc(row("grew", NOISE_FLOOR_S * 10)),
        )
        assert not report.ok

    def test_missing_scenario_fails(self):
        report = compare_benchmarks(doc(row("a", 0.1), row("b", 0.1)), doc(row("a", 0.1)))
        assert not report.ok
        (delta,) = report.failures
        assert delta.name == "b"
        assert delta.status == "missing"

    def test_new_scenario_never_fails(self):
        report = compare_benchmarks(
            doc(row("a", 0.1)), doc(row("a", 0.1), row("brand-new", 9.9))
        )
        assert report.ok
        statuses = {d.name: d.status for d in report.deltas}
        assert statuses["brand-new"] == "new"

    def test_new_scenario_warns_loudly(self):
        """Ungated scenarios are surfaced, not silently passed."""
        report = compare_benchmarks(
            doc(row("a", 0.1)), doc(row("a", 0.1), row("brand-new", 9.9))
        )
        assert [d.name for d in report.warnings] == ["brand-new"]
        text = report.render()
        assert "WARN" in text
        assert "brand-new" in text.splitlines()[-1]
        assert "no baseline entry" in text
        # A fully gated run renders no warning.
        clean = compare_benchmarks(doc(row("a", 0.1)), doc(row("a", 0.1)))
        assert clean.warnings == []
        assert "WARN" not in clean.render()

    def test_v1_baseline_accepted(self):
        """v2 only adds fields, so committed PR-2 baselines keep gating."""
        old = doc(row("a", 0.1))
        old["schema_version"] = 1
        report = compare_benchmarks(old, doc(row("a", 0.1)))
        assert report.ok

    def test_schema_mismatch_rejected(self):
        bad = doc(row("a", 0.1))
        bad["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            compare_benchmarks(bad, doc(row("a", 0.1)))
        with pytest.raises(ValueError, match="schema_version"):
            compare_benchmarks(doc(row("a", 0.1)), bad)

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_benchmarks(doc(), doc(), tolerance=0)

    def test_render_mentions_failures(self):
        report = compare_benchmarks(doc(row("a", 0.1)), doc(row("a", 0.5)))
        text = report.render()
        assert "FAIL" in text
        assert "REGRESSION" in text


class TestMain:
    def _write(self, path, document):
        path.write_text(json.dumps(document))
        return str(path)

    def test_exit_zero_on_clean(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", doc(row("a", 0.1)))
        cur = self._write(tmp_path / "cur.json", doc(row("a", 0.1)))
        assert main([base, cur]) == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", doc(row("a", 0.1)))
        cur = self._write(tmp_path / "cur.json", doc(row("a", 0.9)))
        assert main([base, cur]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_tolerance_flag(self, tmp_path):
        base = self._write(tmp_path / "base.json", doc(row("a", 0.1)))
        cur = self._write(tmp_path / "cur.json", doc(row("a", 0.9)))
        assert main([base, cur, "--tolerance", "10"]) == 0

    def test_exit_two_on_missing_file(self, tmp_path, capsys):
        cur = self._write(tmp_path / "cur.json", doc())
        assert main([str(tmp_path / "absent.json"), cur]) == 2
        assert "error" in capsys.readouterr().err

    def test_exit_two_on_malformed_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        cur = self._write(tmp_path / "cur.json", doc())
        assert main([str(bad), str(cur)]) == 2


class TestMetadataWarnings:
    def _doc(self, jobs=None, cpu_count=None, start_method=None):
        document = doc(row("a", 0.1))
        if jobs is not None:
            document["jobs"] = jobs
        platform = {}
        if cpu_count is not None:
            platform["cpu_count"] = cpu_count
        if start_method is not None:
            platform["start_method"] = start_method
        document["platform"] = platform
        return document

    def test_matching_metadata_stays_silent(self):
        base = self._doc(jobs=2, cpu_count=4, start_method="fork")
        report = compare_benchmarks(
            base, self._doc(jobs=2, cpu_count=4, start_method="fork")
        )
        assert report.metadata_warnings == []
        assert "metadata mismatch" not in report.render()

    def test_each_disagreeing_field_warns(self):
        report = compare_benchmarks(
            self._doc(jobs=1, cpu_count=8, start_method="fork"),
            self._doc(jobs=2, cpu_count=4, start_method="spawn"),
        )
        text = "\n".join(report.metadata_warnings)
        assert len(report.metadata_warnings) == 3
        assert "jobs differs" in text
        assert "cpu_count differs" in text
        assert "start_method differs" in text
        # Warnings render ahead of the scenario table, and never gate.
        assert report.ok
        assert report.render().startswith("WARN  metadata mismatch")

    def test_absent_fields_are_skipped(self):
        """v1 documents carry no jobs/cpu metadata: no spurious warning."""
        v1 = doc(row("a", 0.1))
        v1["schema_version"] = 1
        report = compare_benchmarks(
            v1, self._doc(jobs=2, cpu_count=4, start_method="fork")
        )
        assert report.metadata_warnings == []

    def test_warnings_never_fail_the_gate(self):
        report = compare_benchmarks(
            self._doc(jobs=1), self._doc(jobs=4)
        )
        assert report.ok
        assert len(report.metadata_warnings) == 1
