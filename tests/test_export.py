"""Tests for tree JSON/DOT export."""

import math

import pytest

from repro.core.errors import GraphFormatError
from repro.core.export import tree_from_json, tree_to_dot, tree_to_json
from repro.core.msta import minimum_spanning_tree_a
from repro.core.spanning_tree import TemporalSpanningTree
from repro.temporal.edge import TemporalEdge
from repro.temporal.window import TimeWindow


@pytest.fixture
def msta_tree(figure1):
    return minimum_spanning_tree_a(figure1, 0)


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self, msta_tree):
        restored = tree_from_json(tree_to_json(msta_tree))
        assert restored.root == msta_tree.root
        assert restored.parent_edge == msta_tree.parent_edge
        assert restored.window == msta_tree.window

    def test_round_trip_with_finite_window(self):
        tree = TemporalSpanningTree(
            "r", {"a": TemporalEdge("r", "a", 1, 2, 3)}, TimeWindow(0, 10)
        )
        restored = tree_from_json(tree_to_json(tree))
        assert restored.window == TimeWindow(0, 10)

    def test_infinite_window_encoded_as_null(self, msta_tree):
        doc = tree_to_json(msta_tree)
        assert '"t_omega": null' in doc
        assert math.isinf(tree_from_json(doc).window.t_omega)

    def test_indent_option(self, msta_tree):
        assert "\n" in tree_to_json(msta_tree, indent=2)

    def test_restored_tree_validates(self, msta_tree, figure1):
        tree_from_json(tree_to_json(msta_tree)).validate(figure1)


class TestJsonErrors:
    def test_invalid_json(self):
        with pytest.raises(GraphFormatError, match="invalid JSON"):
            tree_from_json("{nope")

    def test_wrong_format_marker(self):
        with pytest.raises(GraphFormatError, match="not a temporal-mst"):
            tree_from_json('{"format": "something-else"}')

    def test_wrong_version(self):
        with pytest.raises(GraphFormatError, match="version"):
            tree_from_json(
                '{"format": "temporal-mst/spanning-tree", "version": 99}'
            )

    def test_missing_fields(self):
        with pytest.raises(GraphFormatError, match="malformed"):
            tree_from_json(
                '{"format": "temporal-mst/spanning-tree", "version": 1}'
            )


class TestDot:
    def test_structure(self, msta_tree):
        dot = tree_to_dot(msta_tree, name="fig1")
        assert dot.startswith('digraph "fig1"')
        assert '"0" [shape=doublecircle];' in dot
        # one edge line per covered vertex
        assert dot.count("->") == msta_tree.num_edges

    def test_labels_contain_times_and_weight(self, msta_tree):
        dot = tree_to_dot(msta_tree)
        assert "[1, 3] (2)" in dot

    def test_weights_can_be_hidden(self, msta_tree):
        dot = tree_to_dot(msta_tree, show_weights=False)
        assert "(2)" not in dot

    def test_quote_escaping(self):
        tree = TemporalSpanningTree(
            'he said "hi"', {"x": TemporalEdge('he said "hi"', "x", 0, 1, 1)}
        )
        dot = tree_to_dot(tree)
        assert '\\"hi\\"' in dot
