"""Cross-backend identity suite for the columnar temporal-graph core.

Every query the :class:`repro.temporal.columnar.ColumnarEdgeStore`
answers has two implementations -- numpy arrays and the pure-Python
``array``/``bisect`` fallback -- and the contract is not "close enough"
but *byte-identical output*: same values, same types, same ordering,
all the way up through the MST_a / MST_w solvers.  These hypothesis
properties build both cores in one process via :func:`force_backend`
and compare outputs exactly.

CI runs this file on both matrix legs (numpy and ``REPRO_FORCE_PURE``)
and fails the job if any test here is skipped -- a silently skipped
identity suite would void the matrix's whole point.  The module-level
skip below can therefore only trigger in a genuinely numpy-less
environment, which no CI leg is.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.errors import UnreachableRootError, ZeroDurationError
from repro.core.msta import msta_chronological, msta_stack
from repro.core.mstw import minimum_spanning_tree_w
from repro.core.transformation import transform_temporal_graph
from repro.temporal.columnar import force_backend, numpy_available
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.index import TemporalEdgeIndex
from repro.temporal.paths import earliest_arrival_times
from repro.temporal.window import TimeWindow

pytestmark = pytest.mark.skipif(
    not numpy_available(),
    reason="cross-backend identity needs numpy importable",
)

BACKENDS = ("numpy", "pure")


@st.composite
def graphs(draw, max_vertices=8, max_edges=24):
    """Random temporal multigraphs exercising the nasty cases.

    Parallel edges, self-loops, zero durations, and *mixed numeric
    types*: timestamps and weights are drawn as ints or floats, because
    the store's ``arrivals_are_float``/``weights_are_float`` fast paths
    must fall back to the edge objects exactly when a graph carries
    non-float values.
    """
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    as_float = draw(st.booleans())
    edges = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_edges))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        start = draw(st.integers(min_value=0, max_value=30))
        duration = draw(st.integers(min_value=0, max_value=5))
        weight = draw(st.integers(min_value=0, max_value=9))
        if as_float:
            edges.append(
                TemporalEdge(u, v, float(start), float(start + duration), float(weight))
            )
        else:
            edges.append(TemporalEdge(u, v, start, start + duration, weight))
    return TemporalGraph(edges, vertices=range(n))


@st.composite
def windows(draw):
    lo = draw(st.integers(min_value=0, max_value=30))
    length = draw(st.integers(min_value=0, max_value=30))
    return TimeWindow(float(lo), float(lo + length))


def _per_backend(fn):
    """Run ``fn(backend)`` under each pinned backend, return both results."""
    results = []
    for backend in BACKENDS:
        with force_backend(backend):
            results.append(fn(backend))
    return results


def _fresh(graph: TemporalGraph) -> TemporalGraph:
    """A same-edges graph with no cached store (forces a clean build)."""
    return TemporalGraph(graph.edges, vertices=graph.vertices)


def _transform_fingerprint(tg):
    d = tg.digraph
    return (
        tuple(d.labels()),
        tuple(d.iter_labeled_edges()),
        tg.root_label,
        tuple(sorted((repr(v), tuple(i)) for v, i in tg.arrival_instances.items())),
        tuple(sorted(tg.solid_origin.items(), key=lambda kv: repr(kv[0]))),
        tg.skipped_edges,
    )


@settings(max_examples=60, deadline=None)
@given(graph=graphs(), window=windows())
def test_window_queries_identical(graph, window):
    def query(backend):
        g = _fresh(graph)
        store = g.columnar()
        assert store.backend == backend
        positions = [int(p) for p in store.window_positions(window.t_alpha, window.t_omega)]
        graph_order = [
            int(p)
            for p in store.window_positions_graph_order(window.t_alpha, window.t_omega)
        ]
        return (positions, graph_order, store.count_in(window.t_alpha, window.t_omega))

    numpy_out, pure_out = _per_backend(query)
    assert numpy_out == pure_out
    # And the positions really are the O(M) scan's membership.
    expected = [
        p
        for p, e in enumerate(graph.edges)
        if e.within(window.t_alpha, window.t_omega)
    ]
    assert numpy_out[1] == expected
    assert numpy_out[2] == len(expected)


@settings(max_examples=60, deadline=None)
@given(graph=graphs(), old=windows(), new=windows())
def test_delta_identical(graph, old, new):
    def query(backend):
        g = _fresh(graph)
        index = TemporalEdgeIndex(g)
        added, removed = index.delta(old, new)
        return ([tuple(e) for e in added], [tuple(e) for e in removed])

    numpy_out, pure_out = _per_backend(query)
    assert numpy_out == pure_out
    in_old = {
        p for p, e in enumerate(graph.edges) if e.within(old.t_alpha, old.t_omega)
    }
    in_new = {
        p for p, e in enumerate(graph.edges) if e.within(new.t_alpha, new.t_omega)
    }
    added, removed = numpy_out
    assert sorted(added) == sorted(
        tuple(graph.edges[p]) for p in in_new - in_old
    )
    assert sorted(removed) == sorted(
        tuple(graph.edges[p]) for p in in_old - in_new
    )


@settings(max_examples=60, deadline=None)
@given(graph=graphs(), window=windows(), source=st.integers(min_value=0, max_value=7))
def test_earliest_arrival_identical(graph, window, source):
    def query(backend):
        g = _fresh(graph)
        return list(earliest_arrival_times(g, source, window).items())

    numpy_out, pure_out = _per_backend(query)
    assert numpy_out == pure_out
    assert all(type(t) is float for _, t in numpy_out)


@settings(max_examples=60, deadline=None)
@given(graph=graphs(), window=windows(), root=st.integers(min_value=0, max_value=7))
def test_transformation_identical(graph, window, root):
    root = root % graph.num_vertices

    def query(backend):
        g = _fresh(graph)
        return _transform_fingerprint(
            transform_temporal_graph(g, root, window, use_cache=False)
        )

    numpy_out, pure_out = _per_backend(query)
    assert numpy_out == pure_out


@settings(max_examples=40, deadline=None)
@given(graph=graphs(), window=windows())
def test_restricted_identical(graph, window):
    def query(backend):
        g = _fresh(graph)
        g.columnar()  # warm store: restricted() answers from it
        sub = g.restricted(window.t_alpha, window.t_omega)
        return ([tuple(e) for e in sub.edges], sorted(map(repr, sub.vertices)))

    numpy_out, pure_out = _per_backend(query)
    assert numpy_out == pure_out
    cold = graph.restricted(window.t_alpha, window.t_omega)
    assert numpy_out[0] == [tuple(e) for e in cold.edges]


@settings(max_examples=25, deadline=None)
@given(graph=graphs(), root=st.integers(min_value=0, max_value=7))
def test_msta_identical(graph, root):
    root = root % graph.num_vertices

    def one(algorithm, g):
        try:
            tree = algorithm(g, root)
        except (UnreachableRootError, ZeroDurationError) as exc:
            return type(exc).__name__
        return sorted((repr(v), tuple(e)) for v, e in tree.parent_edge.items())

    def query(backend):
        g = _fresh(graph)
        return (one(msta_chronological, g), one(msta_stack, g))

    numpy_out, pure_out = _per_backend(query)
    assert numpy_out == pure_out


@settings(max_examples=15, deadline=None)
@given(graph=graphs(max_vertices=6, max_edges=16), root=st.integers(min_value=0, max_value=5))
def test_mstw_solver_identical(graph, root):
    root = root % graph.num_vertices

    def query(backend):
        g = _fresh(graph)
        try:
            result = minimum_spanning_tree_w(g, root, level=2, algorithm="pruned")
        except UnreachableRootError:
            return "unreachable"
        return (
            result.tree.total_weight,
            sorted((repr(v), tuple(e)) for v, e in result.tree.parent_edge.items()),
            result.num_terminals,
            result.transformed_vertices,
            result.transformed_edges,
            result.closure_tree_cost,
        )

    numpy_out, pure_out = _per_backend(query)
    assert numpy_out == pure_out
