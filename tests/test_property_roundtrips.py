"""Property-based round-trip tests for serialisation layers.

Fuzzes the native edge-list format, the SteinLib ``.stp`` writer/parser,
and the spanning-tree JSON export with hypothesis-generated inputs.
"""

import io

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.export import tree_from_json, tree_to_json
from repro.core.spanning_tree import TemporalSpanningTree
from repro.steiner.steinlib import SteinLibProblem, parse_stp, write_stp
from repro.temporal import io as tio
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.window import TimeWindow

vertices = st.integers(min_value=0, max_value=50)
times = st.integers(min_value=0, max_value=1000)
weights = st.integers(min_value=0, max_value=100)


@st.composite
def temporal_edges(draw):
    u = draw(vertices)
    v = draw(vertices.filter(lambda x: True))
    start = draw(times)
    duration = draw(st.integers(min_value=0, max_value=50))
    w = draw(weights)
    return TemporalEdge(u, v, float(start), float(start + duration), float(w))


@settings(max_examples=60, deadline=None)
@given(edges=st.lists(temporal_edges(), max_size=30))
def test_native_io_round_trip(edges):
    graph = TemporalGraph(edges)
    buffer = io.StringIO()
    tio.write_native(graph, buffer)
    loaded = tio.read_native(io.StringIO(buffer.getvalue()))
    assert sorted(map(tuple, loaded.edges)) == sorted(map(tuple, graph.edges))


@settings(max_examples=60, deadline=None)
@given(
    num_vertices=st.integers(min_value=2, max_value=20),
    data=st.data(),
)
def test_stp_round_trip(num_vertices, data):
    num_edges = data.draw(st.integers(min_value=1, max_value=30))
    edges = []
    for _ in range(num_edges):
        u = data.draw(st.integers(min_value=1, max_value=num_vertices))
        v = data.draw(st.integers(min_value=1, max_value=num_vertices))
        if u == v:
            continue
        edges.append((u, v, float(data.draw(st.integers(1, 10)))))
    if not edges:
        return
    k = data.draw(st.integers(min_value=1, max_value=num_vertices))
    terminals = tuple(sorted(set(
        data.draw(st.integers(min_value=1, max_value=num_vertices))
        for _ in range(k)
    )))
    problem = SteinLibProblem(
        "fuzz", num_vertices, tuple(edges), terminals, root=terminals[0]
    )
    again = parse_stp(write_stp(problem), name="fuzz")
    assert again.num_vertices == problem.num_vertices
    assert again.edges == problem.edges
    assert again.terminals == problem.terminals
    assert again.root == problem.root


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_tree_json_round_trip(data):
    # build a random valid rooted tree on 1..n with increasing times
    n = data.draw(st.integers(min_value=1, max_value=12))
    parent_edge = {}
    arrival = {0: 0.0}
    for v in range(1, n + 1):
        parent = data.draw(st.integers(min_value=0, max_value=v - 1))
        start = arrival[parent] + data.draw(st.integers(0, 5))
        duration = data.draw(st.integers(0, 5))
        weight = float(data.draw(st.integers(0, 9)))
        edge = TemporalEdge(parent, v, float(start), float(start + duration), weight)
        parent_edge[v] = edge
        arrival[v] = edge.arrival
    t_omega = data.draw(st.sampled_from([float("inf"), max(arrival.values()) + 1]))
    tree = TemporalSpanningTree(0, parent_edge, TimeWindow(0.0, t_omega))
    tree.validate()
    restored = tree_from_json(tree_to_json(tree))
    assert restored.root == tree.root
    assert restored.parent_edge == tree.parent_edge
    assert restored.window == tree.window
    restored.validate()
