"""Unit tests for Kruskal/Prim and the disjoint-set substrate."""

import random

import pytest

from repro.core.errors import GraphFormatError
from repro.static.mst import DisjointSet, kruskal_mst, prim_mst, tree_weight


class TestDisjointSet:
    def test_union_find(self):
        dsu = DisjointSet()
        for x in "abcd":
            dsu.add(x)
        assert dsu.union("a", "b")
        assert not dsu.union("a", "b")
        assert dsu.find("a") == dsu.find("b")
        assert dsu.find("c") != dsu.find("a")

    def test_transitive_merge(self):
        dsu = DisjointSet()
        for x in range(5):
            dsu.add(x)
        dsu.union(0, 1)
        dsu.union(1, 2)
        assert dsu.find(0) == dsu.find(2)

    def test_add_idempotent(self):
        dsu = DisjointSet()
        dsu.add(1)
        dsu.add(1)
        assert dsu.find(1) == 1
        assert not dsu.union(1, 1)


SQUARE = [("a", "b", 1.0), ("b", "c", 2.0), ("c", "d", 3.0), ("d", "a", 4.0)]


class TestKruskal:
    def test_square_drops_heaviest(self):
        tree = kruskal_mst(SQUARE)
        assert len(tree) == 3
        assert tree_weight(tree) == 6.0

    def test_forest_on_disconnected_input(self):
        tree = kruskal_mst([(0, 1, 1.0), (2, 3, 1.0)])
        assert len(tree) == 2

    def test_empty(self):
        assert kruskal_mst([]) == []

    def test_matches_prim_weight_on_random_graphs(self):
        rng = random.Random(11)
        for _ in range(5):
            n = 12
            edges = [(i - 1, i, float(rng.randint(1, 9))) for i in range(1, n)]
            edges += [
                (rng.randrange(n), rng.randrange(n), float(rng.randint(1, 9)))
                for _ in range(20)
            ]
            edges = [(u, v, w) for u, v, w in edges if u != v]
            k = tree_weight(kruskal_mst(edges))
            p = tree_weight(prim_mst(edges, 0))
            assert k == pytest.approx(p)


class TestPrim:
    def test_square(self):
        tree = prim_mst(SQUARE, "a")
        assert tree_weight(tree) == 6.0

    def test_spans_component_of_start(self):
        edges = [(0, 1, 1.0), (2, 3, 1.0)]
        tree = prim_mst(edges, 0)
        vertices = {v for e in tree for v in e[:2]}
        assert vertices == {0, 1}

    def test_isolated_start_rejected(self):
        with pytest.raises(GraphFormatError):
            prim_mst([(0, 1, 1.0)], 5)


class TestTreeWeight:
    def test_sum(self):
        assert tree_weight([(0, 1, 1.5), (1, 2, 2.5)]) == 4.0

    def test_empty(self):
        assert tree_weight([]) == 0.0
