"""Unit tests for :mod:`repro.temporal.io`."""

import io

import pytest

from repro.core.errors import GraphFormatError
from repro.temporal import io as tio
from repro.temporal.edge import TemporalEdge


class TestReadKonect:
    def test_full_rows(self):
        text = "% comment\n1 2 1.0 100\n2 3 1.0 200\n"
        g = tio.read_konect(io.StringIO(text), duration=1.0)
        assert g.num_edges == 2
        assert g.edges[0] == TemporalEdge(1, 2, 100.0, 101.0, 1.0)

    def test_missing_timestamp_uses_row_index(self):
        g = tio.read_konect(io.StringIO("1 2 5.0\n2 3 6.0\n"))
        assert [e.start for e in g.edges] == [0.0, 1.0]
        assert [e.weight for e in g.edges] == [5.0, 6.0]

    def test_missing_weight_uses_default(self):
        g = tio.read_konect(io.StringIO("1 2\n"), default_weight=3.0)
        assert g.edges[0].weight == 3.0

    def test_zero_duration_default(self):
        g = tio.read_konect(io.StringIO("1 2 1 50\n"))
        assert g.edges[0].duration == 0.0

    def test_string_vertices(self):
        g = tio.read_konect(io.StringIO("alice bob 1 10\n"))
        assert g.edges[0].source == "alice"

    def test_short_row_rejected(self):
        with pytest.raises(GraphFormatError, match="line 1"):
            tio.read_konect(io.StringIO("1\n"))

    def test_comments_and_blank_lines_skipped(self):
        text = "%h\n\n# note\n1 2 1 7\n"
        assert tio.read_konect(io.StringIO(text)).num_edges == 1

    def test_from_file(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("1 2 1 5\n")
        assert tio.read_konect(path).num_edges == 1


class TestNativeRoundTrip:
    def test_round_trip(self, figure1, tmp_path):
        path = tmp_path / "fig1.txt"
        tio.write_native(figure1, path)
        loaded = tio.read_native(path)
        assert {tuple(e) for e in loaded.edges} == {tuple(e) for e in figure1.edges}

    def test_write_is_chronological(self, figure1):
        buffer = io.StringIO()
        tio.write_native(figure1, buffer)
        lines = [l for l in buffer.getvalue().splitlines() if not l.startswith("#")]
        starts = [float(l.split()[2]) for l in lines]
        assert starts == sorted(starts)

    def test_native_wrong_columns(self):
        with pytest.raises(GraphFormatError, match="5 columns"):
            tio.read_native(io.StringIO("1 2 3\n"))


class TestFromString:
    def test_native(self):
        g = tio.from_string("0 1 1 3 2\n")
        assert g.edges[0] == TemporalEdge(0, 1, 1.0, 3.0, 2.0)

    def test_konect(self):
        g = tio.from_string("0 1 2 9\n", fmt="konect", duration=1.0)
        assert g.edges[0].arrival == 10.0

    def test_unknown_format(self):
        with pytest.raises(GraphFormatError):
            tio.from_string("x", fmt="csv")
