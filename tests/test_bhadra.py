"""Tests for the Bhadra-Ferreira modified Prim-Dijkstra baseline."""

import pytest

from repro.baselines.bhadra import bhadra_msta, _StaticEdgeGroup
from repro.core.errors import UnreachableRootError
from repro.temporal.edge import TemporalEdge
from repro.temporal.paths import earliest_arrival_times
from repro.temporal.window import TimeWindow

from tests.conftest import random_temporal


class TestStaticEdgeGroup:
    def test_suffix_minimum(self):
        # starts 1, 3, 5 with arrivals 9, 4, 6
        edges = [
            TemporalEdge(0, 1, 1, 9, 1),
            TemporalEdge(0, 1, 3, 4, 1),
            TemporalEdge(0, 1, 5, 6, 1),
        ]
        group = _StaticEdgeGroup(edges)
        assert group.earliest_from(0).arrival == 4
        assert group.earliest_from(4).arrival == 6
        assert group.earliest_from(6) is None

    def test_exact_start_included(self):
        group = _StaticEdgeGroup([TemporalEdge(0, 1, 3, 4, 1)])
        assert group.earliest_from(3) is not None

    def test_unsorted_input_handled(self):
        edges = [
            TemporalEdge(0, 1, 5, 6, 1),
            TemporalEdge(0, 1, 1, 2, 1),
        ]
        group = _StaticEdgeGroup(edges)
        assert group.earliest_from(0).arrival == 2


class TestBhadra:
    def test_figure1(self, figure1):
        tree = bhadra_msta(figure1, 0)
        assert tree.arrival_times == {0: 0.0, 1: 3, 2: 5, 3: 6, 4: 8, 5: 8}

    def test_zero_durations(self, figure3):
        tree = bhadra_msta(figure3, 0)
        assert tree.arrival_times == {0: 0.0, 1: 1, 4: 3, 3: 4, 2: 4}

    def test_window(self, figure1):
        tree = bhadra_msta(figure1, 0, TimeWindow(0, 6))
        assert tree.vertices == {0, 1, 2, 3}

    def test_tree_validates(self, figure1):
        bhadra_msta(figure1, 0).validate(figure1)

    def test_unknown_root(self, figure1):
        with pytest.raises(UnreachableRootError):
            bhadra_msta(figure1, -5)

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("zero", [False, True])
    def test_agrees_with_oracle(self, seed, zero):
        g = random_temporal(seed, n=14, m=70, zero_duration=zero)
        assert bhadra_msta(g, 0).arrival_times == earliest_arrival_times(g, 0)

    @pytest.mark.parametrize("seed", range(4))
    def test_windowed_agreement(self, seed):
        g = random_temporal(seed, n=12, m=50)
        w = TimeWindow(4, 22)
        assert bhadra_msta(g, 0, w).arrival_times == earliest_arrival_times(g, 0, w)
