"""Tests for the DST lower bounds."""

import math

import pytest

from repro.static.digraph import StaticDigraph
from repro.steiner.bounds import (
    cheapest_inedge_bound,
    combined_lower_bound,
    max_shortest_path_bound,
)
from repro.steiner.exact import exact_dst_cost
from repro.steiner.instance import DSTInstance, prepare_instance
from repro.steiner.pruned import pruned_dst

from tests.test_steiner_algorithms import hub_instance, random_instance


class TestIndividualBounds:
    def test_max_shortest_path_on_hub(self):
        prepared = hub_instance()
        # dist(r, t_i) = 4 via the hub
        assert max_shortest_path_bound(prepared) == 4.0

    def test_cheapest_inedge_on_hub(self):
        prepared = hub_instance()
        # each terminal's cheapest in-edge costs 1
        assert cheapest_inedge_bound(prepared) == 3.0

    def test_empty_terminals(self):
        g = StaticDigraph()
        g.add_edge("r", "x", 1.0)
        prepared = prepare_instance(DSTInstance(g, "r", ()))
        assert max_shortest_path_bound(prepared) == 0.0
        assert cheapest_inedge_bound(prepared) == 0.0

    def test_uncoverable_terminal_infinite(self):
        g = StaticDigraph(["island"])
        g.add_edge("r", "t", 1.0)
        prepared = prepare_instance(
            DSTInstance(g, "r", ("island",)), require_reachable=False
        )
        assert math.isinf(cheapest_inedge_bound(prepared))


class TestValidity:
    @pytest.mark.parametrize("seed", range(8))
    def test_bounds_below_exact_optimum(self, seed):
        prepared = random_instance(seed, k=4)
        opt = exact_dst_cost(prepared)
        assert combined_lower_bound(prepared) <= opt + 1e-9

    @pytest.mark.parametrize("seed", range(8))
    def test_bounds_below_any_approximation(self, seed):
        prepared = random_instance(100 + seed, k=5)
        approx = pruned_dst(prepared, 2).cost
        assert combined_lower_bound(prepared) <= approx + 1e-9

    def test_combined_is_max(self):
        prepared = hub_instance()
        assert combined_lower_bound(prepared) == max(
            max_shortest_path_bound(prepared), cheapest_inedge_bound(prepared)
        )

    def test_single_terminal_bound_is_tight(self):
        prepared = random_instance(7, k=1)
        assert combined_lower_bound(prepared) <= exact_dst_cost(prepared) + 1e-9
        assert max_shortest_path_bound(prepared) == pytest.approx(
            exact_dst_cost(prepared)
        )
