"""The exception hierarchy contract."""

import pytest

from repro.core.errors import (
    GraphFormatError,
    InvalidTreeError,
    ReproError,
    UnreachableRootError,
    ZeroDurationError,
)


@pytest.mark.parametrize(
    "exc",
    [GraphFormatError, InvalidTreeError, UnreachableRootError, ZeroDurationError],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("boom")


def test_repro_error_is_exception():
    assert issubclass(ReproError, Exception)


def test_public_reexports():
    import repro

    assert repro.ReproError is ReproError
    assert repro.GraphFormatError is GraphFormatError
    assert repro.ZeroDurationError is ZeroDurationError
    assert repro.UnreachableRootError is UnreachableRootError
