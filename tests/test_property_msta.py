"""Property-based tests (hypothesis) for the ``MST_a`` algorithms.

Strategy: random temporal multigraphs with integer timestamps and
optionally zero durations; properties assert the core invariants the
paper proves -- agreement of Algorithms 1/2, Bhadra, and the
fixpoint oracle, plus the structural spanning-tree conditions.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.baselines.bhadra import bhadra_msta
from repro.baselines.brute_force import brute_force_earliest_arrival
from repro.core.msta import msta_chronological, msta_stack
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.window import TimeWindow


@st.composite
def temporal_graphs(draw, max_vertices=8, max_edges=24, allow_zero=True):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    edges = []
    for _ in range(num_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        start = draw(st.integers(min_value=0, max_value=20))
        if allow_zero:
            duration = draw(st.integers(min_value=0, max_value=4))
        else:
            duration = draw(st.integers(min_value=1, max_value=4))
        weight = draw(st.integers(min_value=1, max_value=9))
        edges.append(TemporalEdge(u, v, start, start + duration, weight))
    return TemporalGraph(edges, vertices=range(n))


@settings(max_examples=120, deadline=None)
@given(graph=temporal_graphs(allow_zero=False))
def test_alg1_matches_oracle_nonzero_durations(graph):
    tree = msta_chronological(graph, 0)
    assert tree.arrival_times == brute_force_earliest_arrival(graph, 0)


@settings(max_examples=120, deadline=None)
@given(graph=temporal_graphs(allow_zero=True))
def test_alg2_matches_oracle_any_durations(graph):
    tree = msta_stack(graph, 0)
    assert tree.arrival_times == brute_force_earliest_arrival(graph, 0)


@settings(max_examples=120, deadline=None)
@given(graph=temporal_graphs(allow_zero=True))
def test_bhadra_matches_alg2(graph):
    assert (
        bhadra_msta(graph, 0).arrival_times == msta_stack(graph, 0).arrival_times
    )


@settings(max_examples=80, deadline=None)
@given(graph=temporal_graphs(allow_zero=True))
def test_tree_structure_invariants(graph):
    tree = msta_stack(graph, 0)
    tree.validate(graph)
    # every non-root covered vertex has exactly one in-edge targeting it
    for v, edge in tree.parent_edge.items():
        assert edge.target == v
        assert edge.source in tree.vertices


@settings(max_examples=80, deadline=None)
@given(
    graph=temporal_graphs(allow_zero=True),
    t_alpha=st.integers(min_value=0, max_value=10),
    length=st.integers(min_value=0, max_value=15),
)
def test_windowed_agreement(graph, t_alpha, length):
    window = TimeWindow(t_alpha, t_alpha + length)
    expected = brute_force_earliest_arrival(graph, 0, window)
    assert msta_stack(graph, 0, window).arrival_times == expected


@settings(max_examples=80, deadline=None)
@given(graph=temporal_graphs(allow_zero=False))
def test_arrival_times_are_edge_arrivals_or_t_alpha(graph):
    tree = msta_chronological(graph, 0)
    arrivals = {e.arrival for e in graph.edges} | {0.0}
    assert set(tree.arrival_times.values()) <= arrivals


@settings(max_examples=60, deadline=None)
@given(graph=temporal_graphs(allow_zero=True))
def test_msta_minimises_max_arrival(graph):
    """Section 2.3: MST_a also minimises the maximum arrival time."""
    tree = msta_stack(graph, 0)
    oracle = brute_force_earliest_arrival(graph, 0)
    if len(oracle) > 1:
        assert tree.max_arrival_time == max(oracle.values())
