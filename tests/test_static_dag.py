"""Tests for the DAG fast-path closure."""

import random

import numpy as np
import pytest

from repro.static.closure import build_metric_closure
from repro.static.dag import (
    build_metric_closure_auto,
    build_metric_closure_dag,
    topological_order,
)
from repro.static.digraph import StaticDigraph


def random_dag(seed, n=25, extra=40):
    rng = random.Random(seed)
    g = StaticDigraph(range(n))
    for v in range(1, n):
        g.add_edge(rng.randrange(v), v, rng.uniform(0.5, 9))
    for _ in range(extra):
        u, v = rng.randrange(n), rng.randrange(n)
        if u < v:  # edges only forward in index order: acyclic
            g.add_edge(u, v, rng.uniform(0.5, 9))
    return g


class TestTopologicalOrder:
    def test_line(self):
        g = StaticDigraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        order = topological_order(g)
        assert order.index(0) < order.index(1) < order.index(2)

    def test_cycle_returns_none(self):
        g = StaticDigraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 0, 1.0)
        assert topological_order(g) is None

    def test_self_loop_is_a_cycle(self):
        g = StaticDigraph()
        g.add_edge(0, 0, 1.0)
        assert topological_order(g) is None

    def test_respects_all_edges(self):
        g = random_dag(1)
        order = topological_order(g)
        position = {v: i for i, v in enumerate(order)}
        for u, v, _ in g.iter_edges():
            assert position[u] < position[v]


class TestDagClosure:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_dijkstra_closure(self, seed):
        g = random_dag(seed)
        dag = build_metric_closure_dag(g)
        dij = build_metric_closure(g)
        assert np.allclose(dag.dist, dij.dist, equal_nan=False)

    def test_cycle_rejected(self):
        g = StaticDigraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 0, 1.0)
        with pytest.raises(ValueError, match="cycle"):
            build_metric_closure_dag(g)

    def test_path_reconstruction(self):
        g = StaticDigraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        g.add_edge(0, 2, 5.0)
        closure = build_metric_closure_dag(g)
        assert closure.path(0, 2) == [0, 1, 2]
        assert closure.path_edges(0, 2) == [(0, 1, 1.0), (1, 2, 1.0)]
        assert closure.path(0, 0) == [0]
        assert closure.path(2, 0) == []

    @pytest.mark.parametrize("seed", range(4))
    def test_path_costs_match_distances(self, seed):
        g = random_dag(seed)
        closure = build_metric_closure_dag(g)
        for u in range(0, g.num_vertices, 5):
            for v in range(g.num_vertices):
                if closure.is_reachable(u, v) and u != v:
                    edges = closure.path_edges(u, v)
                    assert sum(w for _, _, w in edges) == pytest.approx(
                        closure.cost(u, v)
                    )

    def test_zero_weight_chains(self):
        g = StaticDigraph()
        g.add_edge(0, 1, 0.0)
        g.add_edge(1, 2, 0.0)
        closure = build_metric_closure_dag(g)
        assert closure.cost(0, 2) == 0.0


class TestAuto:
    def test_picks_dag_for_acyclic(self):
        from repro.static.dag import DagMetricClosure

        assert isinstance(build_metric_closure_auto(random_dag(3)), DagMetricClosure)

    def test_falls_back_on_cycles(self):
        from repro.static.closure import MetricClosure

        g = StaticDigraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 0, 1.0)
        assert isinstance(build_metric_closure_auto(g), MetricClosure)


class TestEndToEnd:
    def test_transformed_graph_is_dag_for_positive_durations(self, figure1):
        from repro.core.transformation import transform_temporal_graph

        transformed = transform_temporal_graph(figure1, 0)
        assert topological_order(transformed.digraph) is not None

    def test_mstw_same_result_with_both_closures(self, figure1):
        from repro.core.transformation import transform_temporal_graph
        from repro.steiner.instance import prepare_instance
        from repro.steiner.pruned import pruned_dst

        transformed = transform_temporal_graph(figure1, 0)
        instance = transformed.dst_instance()
        cost_dag = pruned_dst(
            prepare_instance(instance, closure_method="dag"), 2
        ).cost
        cost_dij = pruned_dst(
            prepare_instance(instance, closure_method="dijkstra"), 2
        ).cost
        assert cost_dag == pytest.approx(cost_dij)

    def test_unknown_method(self, figure1):
        from repro.core.transformation import transform_temporal_graph
        from repro.steiner.instance import prepare_instance

        transformed = transform_temporal_graph(figure1, 0)
        with pytest.raises(ValueError):
            prepare_instance(transformed.dst_instance(), closure_method="magic")
