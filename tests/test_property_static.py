"""Property-based tests for the static substrate."""

import math
import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.static.arborescence import (
    arborescence_weight,
    minimum_spanning_arborescence,
)
from repro.static.closure import build_metric_closure
from repro.static.dag import build_metric_closure_dag, topological_order
from repro.static.digraph import StaticDigraph
from repro.static.mst import kruskal_mst, prim_mst, tree_weight


@st.composite
def digraphs(draw, max_vertices=8, max_edges=20, rooted=True):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    g = StaticDigraph(range(n))
    if rooted:
        for v in range(1, n):
            parent = draw(st.integers(min_value=0, max_value=v - 1))
            g.add_edge(parent, v, draw(st.floats(0.1, 9, allow_nan=False)))
    extra = draw(st.integers(min_value=0, max_value=max_edges))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            g.add_edge(u, v, draw(st.floats(0.1, 9, allow_nan=False)))
    return g


@settings(max_examples=80, deadline=None)
@given(g=digraphs())
def test_closure_triangle_inequality(g):
    closure = build_metric_closure(g)
    n = g.num_vertices
    for a in range(n):
        for b in range(n):
            via = closure.dist[a] + closure.dist[:, b]
            assert closure.dist[a, b] <= via.min() + 1e-9


@settings(max_examples=80, deadline=None)
@given(g=digraphs())
def test_closure_paths_realise_distances(g):
    closure = build_metric_closure(g)
    for a in range(g.num_vertices):
        for b in range(g.num_vertices):
            if a != b and closure.is_reachable(a, b):
                edges = closure.path_edges(a, b)
                assert sum(w for _, _, w in edges) == pytest.approx(
                    closure.cost(a, b)
                )


@settings(max_examples=60, deadline=None)
@given(g=digraphs())
def test_arborescence_spans_with_minimal_weight_vs_greedy_bound(g):
    tree = minimum_spanning_arborescence(list(g.iter_labeled_edges()), 0)
    # structural: one in-edge per non-root vertex
    targets = sorted(v for _, v, _ in tree)
    assert targets == list(range(1, g.num_vertices))
    # lower bound: sum over vertices of the cheapest in-edge
    cheapest_in = {}
    for u, v, w in g.iter_labeled_edges():
        if u != v and v != 0:
            cheapest_in[v] = min(cheapest_in.get(v, math.inf), w)
    lower = sum(cheapest_in.values())
    assert arborescence_weight(tree) >= lower - 1e-9


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_kruskal_equals_prim_on_connected_graphs(seed):
    rng = random.Random(seed)
    n = rng.randint(3, 10)
    edges = [(i - 1, i, rng.uniform(0.1, 9)) for i in range(1, n)]
    edges += [
        (rng.randrange(n), rng.randrange(n), rng.uniform(0.1, 9))
        for _ in range(rng.randint(0, 12))
    ]
    edges = [(u, v, w) for u, v, w in edges if u != v]
    assert tree_weight(kruskal_mst(edges)) == pytest.approx(
        tree_weight(prim_mst(edges, 0))
    )


@settings(max_examples=60, deadline=None)
@given(g=digraphs())
def test_dag_closure_equals_dijkstra_when_acyclic(g):
    if topological_order(g) is None:
        return  # cyclic draw; nothing to check
    dag = build_metric_closure_dag(g)
    dij = build_metric_closure(g)
    import numpy as np

    assert np.allclose(dag.dist, dij.dist)
