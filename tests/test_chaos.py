"""Chaos suite: seeded fault schedules against every hardened layer.

Every test here runs real workloads under an installed
:class:`repro.faults.FaultPlan` and asserts the PR-6 contract:

* **byte-identical output** -- values, tables, and sweep rows match the
  fault-free run exactly (over-budget cells are compared structurally,
  since their recorded ``elapsed`` is a wall-clock measurement);
* **never a traceback** -- recovery absorbs every injected fault;
* **never silent data loss** -- faults leave evidence in the stats
  counters (``BatchResult.faults``, ``ExperimentContext.fault_stats``,
  ``SweepResult.stats``) or the process-local fired log.

Selected by the ``chaos`` marker (``make chaos``); also part of the
regular suite -- the schedules are deterministic, so these are ordinary
tests that happen to break things on purpose.
"""

import io
import json
import os
import pickle
import random

import pytest

from repro import faults
from repro.cli import main as cli_main
from repro.core.errors import (
    ExperimentInterruptedError,
    GraphFormatError,
)
from repro.core.mstw import (
    clear_prepare_memo,
    prepare_cache_info,
    prepare_mstw_instance,
)
from repro.core.sliding import sweep
from repro.experiments.checkpoint import (
    ExperimentContext,
    decode_cell,
    encode_cell,
)
from repro.experiments.registry import run_experiment
from repro.experiments.runner import DegradedCell, OverBudgetCell
from repro.faults import (
    CORRUPT_READ,
    FaultPlan,
    FaultSpec,
    TASK_ERROR,
    TASK_STALL,
    TORN_WRITE,
    WORKER_CRASH,
)
from repro.parallel.batch import SweepCell, run_batch, run_sweep_serial
from repro.parallel.engine import ParallelExecutor, TimeoutCell
from repro.temporal import io as tio
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.index import edge_index_for
from repro.temporal.window import TimeWindow

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Chaos must stay scoped: no plan may outlive its test."""
    assert faults.active_plan() is None
    yield
    assert faults.active_plan() is None


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def _sweep_graph(n=14, extra=30, seed=11):
    """The deterministic batch-sweep graph (mirrors test_parallel_batch)."""
    rng = random.Random(seed)
    edges = []
    for v in range(1, n):
        start = 4 + (v - 1)
        edges.append(TemporalEdge(v - 1, v, start, start, rng.randint(1, 9)))
    for _ in range(extra):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        start = rng.randint(0, 18)
        edges.append(
            TemporalEdge(u, v, start, start + rng.randint(0, 2), rng.randint(1, 9))
        )
    return TemporalGraph(edges, vertices=range(n))


WINDOWS = (TimeWindow(0, 20), TimeWindow(2, 16), TimeWindow(4, 12))
VARIANTS = (("pruned", 1), ("pruned", 2), ("improved", 1), ("improved", 2))


def _cells(windows=WINDOWS, fallback=False):
    return [
        SweepCell(0, window, level=level, algorithm=algorithm, fallback=fallback)
        for window in windows
        for algorithm, level in VARIANTS
    ]


def _normalized(values):
    """Cell values with wall-clock measurements erased.

    ``OverBudgetCell.elapsed`` records how long the cell ran before its
    budget tripped -- a timing, not a result -- so identity assertions
    compare the structured outcome (type + rung) instead.
    """
    return [
        (type(v).__name__, v.rung) if isinstance(v, OverBudgetCell) else v
        for v in values
    ]


# ----------------------------------------------------------------------
# Worker-side probes (top level: they cross the pickle boundary)
# ----------------------------------------------------------------------
_PROBE_GRAPH = None


def _install_probe_graph(payload):
    global _PROBE_GRAPH
    _PROBE_GRAPH = pickle.loads(payload)


def _cache_probe(_item):
    """Warm this worker's per-process caches and report their counters."""
    graph = _PROBE_GRAPH
    clear_prepare_memo()
    edge_index_for(graph)
    window = TimeWindow(0, 20)
    prepare_mstw_instance(graph, 0, window)
    prepare_mstw_instance(graph, 0, window)
    info = prepare_cache_info()
    return {
        "pid": os.getpid(),
        "index_warm": edge_index_for(graph, create=False) is not None,
        "memo_hits": info["hits"],
        "memo_misses": info["misses"],
    }


def _encode_probe(item):
    """A cell value of every structured flavor, encoded worker-side."""
    if item % 3 == 0:
        value = OverBudgetCell(elapsed=0.5, rung="pruned-1")
    elif item % 3 == 1:
        value = DegradedCell(value=float(item), rung="shortest-paths")
    else:
        value = float(item)
    return encode_cell(value)


def _double(item):
    return item * 2


# ----------------------------------------------------------------------
# Pool recovery
# ----------------------------------------------------------------------
class TestPoolRecovery:
    @pytest.mark.parametrize(
        "occurrence", [1, 3, 5], ids=["first-chunk", "middle-chunk", "last-chunk"]
    )
    def test_cell_round_trips_survive_worker_crash(self, occurrence):
        """OverBudget/Degraded markers survive a crash wherever it lands.

        12 tasks in 6 chunks over 2 workers: by pigeonhole one worker
        reaches at least 6 site visits, so occurrences 1/3/5 land in the
        first / a middle / a late chunk of some worker's run and are
        guaranteed to detonate.
        """
        plan = FaultPlan.of(
            FaultSpec("parallel.task", WORKER_CRASH, occurrence=occurrence)
        )
        items = list(range(12))
        expected = [decode_cell(_encode_probe(item)) for item in items]
        with faults.injected(plan):
            with ParallelExecutor(2, chunk_size=2) as executor:
                got = [decode_cell(v) for v in executor.map(_encode_probe, items)]
        assert got == expected
        assert executor.stats.rebuilds >= 1  # the crash left evidence

    def test_batch_values_identical_under_worker_crash(self):
        graph = _sweep_graph()
        cells = _cells()
        expected = run_sweep_serial(graph, cells)
        plan = FaultPlan.of(FaultSpec("parallel.task", WORKER_CRASH, occurrence=1))
        with faults.injected(plan):
            result = run_batch(graph, cells, jobs=2)
        assert result.values == expected
        assert result.faults["rebuilds"] >= 1
        # The replacement workers re-derived their extraction caches.
        assert result.reuse["misses"] >= 1

    def test_over_budget_cells_survive_worker_crash(self):
        graph = _sweep_graph()
        cells = _cells(windows=WINDOWS[:1])
        serial = run_sweep_serial(graph, cells, budget_seconds=1e-9)
        plan = FaultPlan.of(FaultSpec("parallel.task", WORKER_CRASH, occurrence=1))
        with faults.injected(plan):
            result = run_batch(graph, cells, jobs=2, budget_seconds=1e-9)
        assert all(isinstance(v, OverBudgetCell) for v in serial)
        assert _normalized(result.values) == _normalized(serial)
        assert result.faults["rebuilds"] >= 1

    def test_injected_task_error_is_retried_in_pool(self):
        graph = _sweep_graph()
        cells = _cells()
        expected = run_sweep_serial(graph, cells)
        plan = FaultPlan.of(FaultSpec("parallel.task", TASK_ERROR, occurrence=1))
        with faults.injected(plan):
            result = run_batch(graph, cells, jobs=2)
        assert result.values == expected
        assert result.faults["retries"] >= 1

    def test_stalled_chunk_times_out_and_recovers_inline(self):
        plan = FaultPlan.of(
            FaultSpec("parallel.task", TASK_STALL, occurrence=1, seconds=0.6)
        )
        items = list(range(8))
        with faults.injected(plan):
            with ParallelExecutor(
                2, chunk_size=2, task_timeout_seconds=0.1
            ) as executor:
                got = executor.map(_double, items)
        assert got == [item * 2 for item in items]
        assert executor.stats.timeouts >= 1
        for cell in executor.stats.timeout_cells:
            assert isinstance(cell, TimeoutCell)
            assert cell.elapsed_seconds > cell.timeout_seconds

    @pytest.mark.parametrize("seed", [7, 11, 23])
    def test_seeded_schedule_matrix_preserves_batch_output(self, seed):
        graph = _sweep_graph()
        cells = _cells()
        expected = run_sweep_serial(graph, cells)
        plan = FaultPlan.seeded(
            seed,
            sites=("parallel.task",),
            faults=2,
            max_occurrence=4,
            stall_seconds=0.05,
        )
        with faults.injected(plan):
            result = run_batch(graph, cells, jobs=2)
        assert result.values == expected


class TestCacheRewarm:
    def test_worker_caches_rewarm_after_pool_rebuild(self):
        """Satellite: per-process caches survive (re-warm after) a rebuild.

        ``edge_index_for`` and the ``prepare_mstw_instance`` memo are
        process-local, so a crashed worker takes its copies with it.
        The probes run after the rebuild and must see a *working* cache
        in the replacement workers: a miss on first derivation, a hit on
        the repeat, and a live shared edge index.
        """
        graph = _sweep_graph()
        payload = pickle.dumps(graph)
        plan = FaultPlan.of(FaultSpec("parallel.task", WORKER_CRASH, occurrence=1))
        driver_pid = os.getpid()
        with faults.injected(plan):
            with ParallelExecutor(
                2, initializer=_install_probe_graph, initargs=(payload,), chunk_size=1
            ) as executor:
                results = executor.map(_cache_probe, list(range(4)))
        assert executor.stats.rebuilds >= 1
        for entry in results:
            assert entry["pid"] != driver_pid  # computed in a (fresh) worker
            assert entry["index_warm"] is True
            assert entry["memo_misses"] >= 1  # re-derived, not inherited
            assert entry["memo_hits"] >= 1  # ...and serving hits again


# ----------------------------------------------------------------------
# Sliding sweeps
# ----------------------------------------------------------------------
class TestSlidingSweepChaos:
    def test_incremental_sweep_identity_with_empty_windows(self):
        """Patch faults fall back losslessly, empty windows included.

        Root 9's activity only starts at t=12, so the sweep's early
        windows are empty -- their rows must carry the empty-window
        contract (no coverage, zero cost, ``None`` makespan) identically
        in the cold reference and the fault-injected incremental run.
        """
        graph = _sweep_graph()
        root = 9  # chain edge (8, 9) starts at t=12
        expected = sweep(
            graph, root, window_length=6, step=5, kind="mstw", engine="cold"
        )
        plan = FaultPlan.of(
            FaultSpec("incremental.patch", TASK_ERROR, occurrence=1)
        )
        with faults.injected(plan):
            result = sweep(
                graph, root, window_length=6, step=5, kind="mstw",
                engine="incremental",
            )
            fired = faults.fired_log()
        assert fired  # the schedule detonated
        assert result.rows() == expected.rows()
        empty_rows = [row for row in result.rows() if row["coverage"] == 0]
        assert empty_rows, "workload must include empty windows"
        for row in empty_rows:
            assert row["cost"] == 0
            assert row["makespan"] is None
        # Recovery left evidence in the (rows-excluded) stats channel.
        stats = result.stats
        assert stats is not None
        assert stats["fault_retries"] + stats["fault_cold_prepares"] >= 1
        assert expected.stats is None  # cold sweeps carry no counters

    def test_sweep_stats_stay_out_of_rows(self):
        graph = _sweep_graph()
        plan = FaultPlan.of(
            FaultSpec("incremental.patch", TASK_ERROR, occurrence=1)
        )
        with faults.injected(plan):
            result = sweep(
                graph, 0, window_length=8, step=4, kind="mstw",
                engine="incremental",
            )
        for row in result.rows():
            assert set(row) == {
                "t_alpha", "t_omega", "coverage", "cost", "makespan", "caveat",
            }


# ----------------------------------------------------------------------
# Experiments and checkpoints
# ----------------------------------------------------------------------
EXPERIMENT = "table8"  # the suite's cheapest checkpointed table


class TestExperimentChaos:
    def test_table_identical_under_cell_and_write_faults(self, tmp_path):
        baseline = run_experiment(EXPERIMENT, quick=True)
        plan = FaultPlan.of(
            FaultSpec("experiments.cell", TASK_ERROR, occurrence=2),
            FaultSpec("checkpoint.write", TORN_WRITE, occurrence=3),
        )
        context = ExperimentContext(checkpoint_dir=str(tmp_path))
        with faults.injected(plan):
            result = run_experiment(EXPERIMENT, quick=True, context=context)
            fired = faults.fired_log()
        assert result.rows == baseline.rows
        assert result.render() == baseline.render()
        assert len(fired) == 2
        assert context.fault_stats["cell_retries"] == 1
        assert context.fault_stats["torn_writes"] == 1
        summary = context.fault_summary()
        assert summary is not None and "cell_retries=1" in summary
        # A torn intermediate save was overwritten by later good saves,
        # and the completed run removed its checkpoint as usual.
        assert not (tmp_path / f"{EXPERIMENT}.json").exists()

    def test_torn_final_checkpoint_is_quarantined_on_resume(self, tmp_path):
        baseline = run_experiment(EXPERIMENT, quick=True)
        interrupted = ExperimentContext(
            checkpoint_dir=str(tmp_path), interrupt_after=2
        )
        plan = FaultPlan.of(FaultSpec("checkpoint.write", TORN_WRITE, occurrence=2))
        with faults.injected(plan):
            with pytest.raises(ExperimentInterruptedError):
                run_experiment(EXPERIMENT, quick=True, context=interrupted)
        path = tmp_path / f"{EXPERIMENT}.json"
        assert path.exists()
        with pytest.raises(json.JSONDecodeError):
            json.loads(path.read_text())  # the tear reached the disk
        resumed = ExperimentContext(checkpoint_dir=str(tmp_path), resume=True)
        result = run_experiment(EXPERIMENT, quick=True, context=resumed)
        assert result.rows == baseline.rows
        assert result.render() == baseline.render()
        assert resumed.fault_stats["quarantined_files"] == 1
        # Quarantine preserves the evidence instead of deleting it.
        assert (tmp_path / f"{EXPERIMENT}.json.quarantined").exists()
        assert not path.exists()

    def test_parallel_prefetch_identity_under_worker_crash(self, tmp_path):
        baseline = run_experiment("table4", quick=True)
        plan = FaultPlan.of(FaultSpec("experiments.cell", WORKER_CRASH, occurrence=1))
        context = ExperimentContext(checkpoint_dir=str(tmp_path), jobs=2)
        with faults.injected(plan):
            result = run_experiment("table4", quick=True, context=context)
        assert result.rows == baseline.rows
        assert result.render() == baseline.render()
        assert context.fault_stats["pool_rebuilds"] >= 1

    def test_cli_reports_fault_note_on_stderr(self, tmp_path, capsys):
        clean_code = cli_main(["experiment", EXPERIMENT, "--quick"])
        clean_out = capsys.readouterr().out
        assert clean_code == 0
        plan = FaultPlan.of(FaultSpec("experiments.cell", TASK_ERROR, occurrence=1))
        with faults.injected(plan):
            code = cli_main(
                [
                    "experiment", EXPERIMENT, "--quick",
                    "--checkpoint-dir", str(tmp_path),
                ]
            )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == clean_out  # the table itself is untouched
        assert "note: fault recovery:" in captured.err
        assert "cell_retries=1" in captured.err


# ----------------------------------------------------------------------
# Dataset reads
# ----------------------------------------------------------------------
class TestIoChaos:
    def test_corrupt_read_recovers_from_path(self, tmp_path):
        graph = _sweep_graph()
        path = tmp_path / "graph.tg"
        tio.write_native(graph, str(path))
        clean = tio.read_native(str(path))
        plan = FaultPlan.of(FaultSpec("temporal.io.read", CORRUPT_READ, occurrence=3))
        with faults.injected(plan):
            recovered = tio.read_native(str(path))
            assert faults.fired_log() == (("temporal.io.read", CORRUPT_READ, 3),)
        assert recovered.edges == clean.edges
        assert recovered.vertices == clean.vertices

    def test_corrupt_read_on_konect_path_recovers(self, tmp_path):
        path = tmp_path / "contacts.tsv"
        path.write_text("1 2 1.0 100\n2 3 2.0 200\n3 4 1.5 300\n")
        clean = tio.read_konect(str(path))
        plan = FaultPlan.of(FaultSpec("temporal.io.read", CORRUPT_READ, occurrence=2))
        with faults.injected(plan):
            recovered = tio.read_konect(str(path))
        assert recovered.edges == clean.edges

    def test_corrupt_read_on_stream_fails_loudly(self):
        """A consumed stream cannot be rewound: one attempt, loud failure."""
        text = "0 1 0 1 2.0\n1 2 1 2 3.0\n"
        plan = FaultPlan.of(FaultSpec("temporal.io.read", CORRUPT_READ, occurrence=2))
        with faults.injected(plan):
            with pytest.raises(GraphFormatError):
                tio.read_native(io.StringIO(text))

    def test_genuine_format_error_is_not_retried(self, tmp_path):
        path = tmp_path / "bad.tg"
        path.write_text("0 1 0 1 not-a-number\n")
        plan = FaultPlan.of(FaultSpec("temporal.io.read", CORRUPT_READ, occurrence=9))
        with faults.injected(plan):
            with pytest.raises(GraphFormatError, match="not a number"):
                tio.read_native(str(path))
            # No fault fired: the file was broken all on its own.
            assert faults.fired_log() == ()
