"""The fault-injection framework: plans, the runtime, determinism.

Driver-side unit tests only.  ``worker-crash`` and ``task-stall`` are
worker-gated kinds -- actually detonating them would kill or stall the
test process -- so here we assert the *gating* (the runtime refuses to
fire them outside a marked worker and leaves the entry unconsumed);
their end-to-end behavior (pool rebuilds, deadline recovery) is covered
by the chaos suite in ``test_chaos.py``.
"""

import pickle

import pytest

from repro import faults
from repro.core.errors import TransientError
from repro.faults import (
    ALL_KINDS,
    CORRUPT_READ,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    SITES,
    TASK_ERROR,
    TASK_STALL,
    TORN_WRITE,
    WORKER_CRASH,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test must leave the process fault-free."""
    assert faults.active_plan() is None
    yield
    assert faults.active_plan() is None


class TestFaultSpec:
    def test_defaults(self):
        spec = FaultSpec("parallel.task", TASK_ERROR)
        assert spec.occurrence == 1
        assert spec.seconds == 0.25

    def test_rejects_nonpositive_occurrence(self):
        with pytest.raises(ValueError):
            FaultSpec("parallel.task", TASK_ERROR, occurrence=0)

    def test_rejects_negative_stall(self):
        with pytest.raises(ValueError):
            FaultSpec("parallel.task", TASK_STALL, seconds=-1.0)

    def test_specs_are_orderable_and_hashable(self):
        a = FaultSpec("parallel.task", TASK_ERROR, occurrence=1)
        b = FaultSpec("parallel.task", TASK_ERROR, occurrence=2)
        assert sorted([b, a]) == [a, b]
        assert len({a, b, a}) == 2


class TestFaultPlan:
    def test_sites_catalogue_is_consistent(self):
        for site, kinds in SITES.items():
            assert kinds, site
            assert set(kinds) <= set(ALL_KINDS)

    def test_none_is_falsy_and_valid(self):
        plan = FaultPlan.none()
        assert not plan
        assert plan.validated() is plan

    def test_of_sorts_entries_canonically(self):
        late = FaultSpec("parallel.task", TASK_ERROR, occurrence=3)
        early = FaultSpec("incremental.patch", TASK_ERROR, occurrence=1)
        plan = FaultPlan.of(late, early)
        assert plan.entries == (early, late)
        assert plan

    def test_of_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown injection site"):
            FaultPlan.of(FaultSpec("martian.site", TASK_ERROR))

    def test_of_rejects_unhonoured_kind(self):
        with pytest.raises(ValueError, match="does not honour"):
            FaultPlan.of(FaultSpec("checkpoint.write", WORKER_CRASH))

    def test_seeded_is_deterministic(self):
        assert FaultPlan.seeded(42) == FaultPlan.seeded(42)
        assert FaultPlan.seeded(42, faults=4) == FaultPlan.seeded(42, faults=4)

    def test_seeded_plans_vary_across_seeds(self):
        plans = {FaultPlan.seeded(seed).entries for seed in range(8)}
        assert len(plans) > 1

    def test_seeded_respects_site_restriction(self):
        plan = FaultPlan.seeded(7, sites=("incremental.patch",), faults=3)
        assert all(spec.site == "incremental.patch" for spec in plan.entries)
        assert all(spec.kind == TASK_ERROR for spec in plan.entries)

    def test_seeded_is_always_valid(self):
        for seed in range(20):
            FaultPlan.seeded(seed, faults=3).validated()

    def test_drop_kind(self):
        plan = FaultPlan.of(
            FaultSpec("parallel.task", WORKER_CRASH),
            FaultSpec("parallel.task", TASK_ERROR, occurrence=2),
        )
        survivor = plan.drop_kind(WORKER_CRASH)
        assert [spec.kind for spec in survivor.entries] == [TASK_ERROR]

    def test_for_site(self):
        plan = FaultPlan.of(
            FaultSpec("parallel.task", TASK_ERROR),
            FaultSpec("checkpoint.write", TORN_WRITE),
        )
        assert [s.site for s in plan.for_site("checkpoint.write")] == [
            "checkpoint.write"
        ]
        assert plan.for_site("temporal.io.read") == ()

    def test_plan_survives_pickling(self):
        plan = FaultPlan.seeded(13, faults=3)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestInjectedFault:
    def test_is_transient(self):
        assert issubclass(InjectedFault, TransientError)

    def test_pickle_round_trip_preserves_site(self):
        exc = InjectedFault("parallel.task", occurrence=3)
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.site == "parallel.task"
        assert clone.occurrence == 3
        assert "parallel.task" in str(clone)


class TestRuntime:
    def test_fire_without_plan_is_noop(self):
        assert faults.fire("parallel.task") is None
        assert faults.fired_log() == ()

    def test_injected_installs_and_restores(self):
        plan = FaultPlan.of(FaultSpec("parallel.task", TASK_ERROR))
        with faults.injected(plan):
            assert faults.active_plan() == plan
        assert faults.active_plan() is None

    def test_injected_restores_previous_plan(self):
        outer = FaultPlan.of(FaultSpec("parallel.task", TASK_ERROR, occurrence=5))
        inner = FaultPlan.of(FaultSpec("checkpoint.write", TORN_WRITE))
        with faults.injected(outer):
            with faults.injected(inner):
                assert faults.active_plan() == inner
            assert faults.active_plan() == outer

    def test_task_error_fires_at_exact_occurrence_once(self):
        plan = FaultPlan.of(FaultSpec("parallel.task", TASK_ERROR, occurrence=2))
        with faults.injected(plan):
            assert faults.fire("parallel.task") is None
            with pytest.raises(InjectedFault) as excinfo:
                faults.fire("parallel.task")
            assert excinfo.value.occurrence == 2
            # Consumed: the third visit (and every later one) is clean.
            assert faults.fire("parallel.task") is None
            assert faults.fired_log() == (("parallel.task", TASK_ERROR, 2),)

    def test_occurrence_counters_are_per_site(self):
        plan = FaultPlan.of(FaultSpec("incremental.patch", TASK_ERROR, occurrence=1))
        with faults.injected(plan):
            assert faults.fire("parallel.task") is None
            with pytest.raises(InjectedFault):
                faults.fire("incremental.patch")

    def test_torn_write_and_corrupt_read_return_kind(self):
        plan = FaultPlan.of(
            FaultSpec("checkpoint.write", TORN_WRITE),
            FaultSpec("temporal.io.read", CORRUPT_READ, occurrence=2),
        )
        with faults.injected(plan):
            assert faults.fire("checkpoint.write") == TORN_WRITE
            assert faults.fire("temporal.io.read") is None
            assert faults.fire("temporal.io.read") == CORRUPT_READ
        assert faults.active_plan() is None

    def test_crash_and_stall_refuse_to_fire_in_driver(self):
        plan = FaultPlan.of(
            FaultSpec("parallel.task", WORKER_CRASH, occurrence=1),
            FaultSpec("experiments.cell", TASK_STALL, occurrence=1),
        )
        assert not faults.in_worker()
        with faults.injected(plan):
            # Neither kind detonates outside a marked worker, and the
            # entries stay unconsumed (a real worker may pick them up).
            assert faults.fire("parallel.task") is None
            assert faults.fire("experiments.cell") is None
            assert faults.fired_log() == ()

    def test_install_resets_counters(self):
        plan = FaultPlan.of(FaultSpec("parallel.task", TASK_ERROR, occurrence=1))
        with faults.injected(plan):
            with pytest.raises(InjectedFault):
                faults.fire("parallel.task")
            faults.install(plan)  # re-arm
            with pytest.raises(InjectedFault):
                faults.fire("parallel.task")
        assert faults.active_plan() is None

    def test_multiple_entries_on_one_site(self):
        plan = FaultPlan.of(
            FaultSpec("parallel.task", TASK_ERROR, occurrence=1),
            FaultSpec("parallel.task", TASK_ERROR, occurrence=3),
        )
        with faults.injected(plan):
            with pytest.raises(InjectedFault):
                faults.fire("parallel.task")
            assert faults.fire("parallel.task") is None
            with pytest.raises(InjectedFault):
                faults.fire("parallel.task")
            assert len(faults.fired_log()) == 2
