"""Tests for time-slice snapshots."""

import pytest

from repro.core.errors import ReproError
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.snapshots import (
    activity_profile,
    coverage_lost_by_snapshotting,
    iter_snapshots,
    snapshot_list,
)


@pytest.fixture
def bursty():
    """Two bursts of activity separated by silence."""
    return TemporalGraph(
        [
            TemporalEdge(0, 1, 0, 1, 1),
            TemporalEdge(1, 2, 2, 3, 1),
            TemporalEdge(0, 2, 18, 19, 1),
            TemporalEdge(2, 3, 19, 20, 1),
            TemporalEdge(1, 3, 9, 11, 1),  # spans the bucket boundary at 10
        ]
    )


class TestIterSnapshots:
    def test_buckets_cover_time_span(self, bursty):
        snaps = snapshot_list(bursty, 10)
        assert snaps[0].window.t_alpha == 0
        assert snaps[-1].window.t_omega == 20

    def test_edges_assigned_to_buckets(self, bursty):
        snaps = snapshot_list(bursty, 10)
        assert snaps[0].num_contacts == 2  # the early burst
        assert snaps[1].num_contacts == 2  # the late burst

    def test_spanning_edge_dropped(self, bursty):
        snaps = snapshot_list(bursty, 10)
        total = sum(s.num_contacts for s in snaps)
        assert total == bursty.num_edges - 1  # the (9, 11) edge is lost

    def test_vertices_preserved(self, bursty):
        snaps = snapshot_list(bursty, 10)
        for snap in snaps:
            assert snap.graph.vertices == bursty.vertices

    def test_invalid_arguments(self, bursty):
        with pytest.raises(ReproError):
            list(iter_snapshots(bursty, 0))
        with pytest.raises(ReproError):
            list(iter_snapshots(TemporalGraph([], vertices=[0]), 5))

    def test_static_view(self, bursty):
        snap = snapshot_list(bursty, 10)[0]
        static = snap.static_view()
        assert static.num_edges == 2


class TestProfiles:
    def test_activity_profile(self, bursty):
        profile = activity_profile(bursty, 10)
        assert profile == [(0, 2), (10, 2)]

    def test_coverage_loss_accounting(self, bursty):
        report = coverage_lost_by_snapshotting(bursty, 10)
        assert report == {"total_edges": 5, "kept": 4, "lost": 1}

    def test_huge_bucket_keeps_everything(self, bursty):
        report = coverage_lost_by_snapshotting(bursty, 100)
        assert report["lost"] == 0

    def test_fine_buckets_lose_more(self, bursty):
        coarse = coverage_lost_by_snapshotting(bursty, 50)["lost"]
        fine = coverage_lost_by_snapshotting(bursty, 2)["lost"]
        assert fine >= coarse
