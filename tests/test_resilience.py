"""The resilience layer: budgets, budgeted solvers, the fallback chain.

Includes the acceptance scenario for the robustness work: a DST solve
given a 50 ms budget on an instance too large to finish must still
return a *valid* (degraded) covering tree through the fallback chain,
with the answering rung recorded.
"""

import time

import pytest

from repro.core.errors import BudgetExceededError
from repro.resilience import Budget, FallbackResult, run_with_fallback
from repro.resilience.budget import NULL_BUDGET
from repro.steiner.charikar import charikar_dst
from repro.steiner.exact import exact_dst
from repro.steiner.improved import improved_dst
from repro.steiner.instance import DSTInstance, prepare_instance
from repro.steiner.pruned import pruned_dst
from repro.steiner.tree import expand_closure_tree, validate_covering_tree
from repro.static.digraph import StaticDigraph

SOLVERS = [charikar_dst, improved_dst, pruned_dst]


def _instance(num_spokes=12, num_terminals=8):
    """A two-layer fan: root -> spokes -> terminals, plus direct edges."""
    n = 1 + num_spokes + num_terminals
    graph = StaticDigraph(range(n))
    spokes = range(1, 1 + num_spokes)
    terminals = list(range(1 + num_spokes, n))
    for i, s in enumerate(spokes):
        graph.add_edge(0, s, 1.0 + 0.01 * i)
        for j, t in enumerate(terminals):
            graph.add_edge(s, t, 1.0 + 0.01 * ((i + j) % 5))
    for j, t in enumerate(terminals):
        graph.add_edge(0, t, 5.0 + 0.1 * j)
    return prepare_instance(DSTInstance(graph, 0, tuple(terminals)))


def _large_instance():
    return _instance(num_spokes=30, num_terminals=24)


class TestBudget:
    def test_unlimited_never_trips(self):
        budget = Budget.unlimited()
        for _ in range(10_000):
            budget.checkpoint()
        assert budget.exceeded() is None
        assert not budget.is_limited

    def test_expansion_ceiling(self):
        budget = Budget(max_expansions=100)
        with pytest.raises(BudgetExceededError) as info:
            for _ in range(200):
                budget.checkpoint()
        assert info.value.reason == "expansions"
        assert info.value.expansions > 100

    def test_deadline(self):
        budget = Budget(deadline_seconds=0.01).start()
        time.sleep(0.02)
        with pytest.raises(BudgetExceededError) as info:
            budget.checkpoint()
        assert info.value.reason == "deadline"
        assert info.value.elapsed_seconds >= 0.01

    def test_start_is_idempotent(self):
        budget = Budget(deadline_seconds=10).start()
        first = budget._started_at
        time.sleep(0.005)
        budget.start()
        assert budget._started_at == first

    def test_restart_resets_clock(self):
        budget = Budget(deadline_seconds=10).start()
        first = budget._started_at
        time.sleep(0.005)
        budget.restart()
        assert budget._started_at > first

    def test_exceeded_probe_does_not_raise(self):
        budget = Budget(deadline_seconds=0.0).start()
        time.sleep(0.001)
        assert budget.exceeded() == "deadline"

    def test_null_budget_is_free(self):
        NULL_BUDGET.checkpoint(10**9)
        assert NULL_BUDGET.exceeded() is None

    def test_checkpoint_amount(self):
        budget = Budget(max_expansions=10)
        budget.checkpoint(amount=5)
        with pytest.raises(BudgetExceededError):
            budget.checkpoint(amount=6)


class TestBudgetedSolvers:
    @pytest.mark.parametrize("solver", SOLVERS)
    def test_solver_trips_on_tiny_expansion_budget(self, solver):
        prepared = _instance()
        with pytest.raises(BudgetExceededError):
            solver(prepared, 2, budget=Budget(max_expansions=3))

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_solver_unchanged_without_budget(self, solver):
        prepared = _instance()
        plain = solver(prepared, 2)
        budgeted = solver(prepared, 2, budget=Budget.unlimited())
        assert budgeted.cost == plain.cost

    def test_exact_trips(self):
        prepared = _instance(num_spokes=4, num_terminals=6)
        with pytest.raises(BudgetExceededError):
            exact_dst(prepared, budget=Budget(max_expansions=2))


class TestFallbackChain:
    def test_acceptance_50ms_budget_returns_valid_degraded_tree(self):
        """The tentpole acceptance scenario."""
        prepared = _large_instance()
        outcome = run_with_fallback(
            prepared, budget=Budget(deadline_seconds=0.05), level=3
        )
        assert isinstance(outcome, FallbackResult)
        assert outcome.rung is not None
        _, edges = expand_closure_tree(prepared, outcome.tree)
        assert validate_covering_tree(prepared, edges)
        if outcome.degraded:
            assert outcome.caveat
            statuses = [a.status for a in outcome.attempts]
            assert "budget_exceeded" in statuses or "skipped" in statuses

    def test_zero_budget_still_answers(self):
        prepared = _instance()
        outcome = run_with_fallback(
            prepared, budget=Budget(max_expansions=0), level=3
        )
        assert outcome.degraded
        assert outcome.rung == "shortest-paths"
        _, edges = expand_closure_tree(prepared, outcome.tree)
        assert validate_covering_tree(prepared, edges)

    def test_unlimited_budget_is_not_degraded(self):
        prepared = _instance()
        outcome = run_with_fallback(prepared, budget=None, level=2)
        assert not outcome.degraded
        assert outcome.rung == "pruned-2"
        assert "approximation" in outcome.caveat

    def test_attempts_record_the_ladder(self):
        prepared = _instance()
        outcome = run_with_fallback(
            prepared, budget=Budget(max_expansions=0), level=2
        )
        rungs = [a.rung for a in outcome.attempts]
        assert rungs == ["pruned-2", "pruned-1", "shortest-paths"]
        assert [a.status for a in outcome.attempts][-1] == "ok"

    def test_include_exact_rung_first(self):
        prepared = _instance(num_spokes=3, num_terminals=4)
        outcome = run_with_fallback(prepared, include_exact=True, level=2)
        assert outcome.rung == "exact"
        assert not outcome.degraded

    def test_degraded_cost_never_beats_stronger_rung_validity(self):
        """Degraded answers may cost more but must still cover."""
        prepared = _instance()
        full = run_with_fallback(prepared, budget=None, level=2)
        degraded = run_with_fallback(
            prepared, budget=Budget(max_expansions=0), level=2
        )
        assert degraded.cost >= full.cost
        _, edges = expand_closure_tree(prepared, degraded.tree)
        assert validate_covering_tree(prepared, edges)

    def test_unknown_solver_rejected(self):
        prepared = _instance(num_spokes=2, num_terminals=2)
        with pytest.raises(ValueError):
            run_with_fallback(prepared, solver="dijkstra")


class TestPipelineFallback:
    def test_mstw_fallback_never_raises_on_drained_budget(self):
        from repro.core.mstw import minimum_spanning_tree_w
        from repro.temporal.io import from_string

        lines = [f"0 {v} 0 1 1\n" for v in range(1, 20)]
        lines += [f"{u} {u + 1} 1 2 1\n" for u in range(1, 19)]
        graph = from_string("".join(lines))
        result = minimum_spanning_tree_w(
            graph, 0, budget=Budget(max_expansions=0), fallback=True
        )
        assert result.degraded
        assert result.rung == "shortest-paths"
        assert result.tree.total_weight > 0

    def test_mstw_without_fallback_raises(self):
        from repro.core.mstw import minimum_spanning_tree_w
        from repro.temporal.io import from_string

        lines = [f"0 {v} 0 1 1\n" for v in range(1, 20)]
        lines += [f"{u} {u + 1} 1 2 1\n" for u in range(1, 19)]
        graph = from_string("".join(lines))
        with pytest.raises(BudgetExceededError):
            minimum_spanning_tree_w(
                graph, 0, budget=Budget(max_expansions=0), fallback=False
            )
