"""Property-based tests (hypothesis) for the full ``MST_w`` pipeline."""

import hypothesis.strategies as st
import pytest
from hypothesis import assume, given, settings

from repro.baselines.brute_force import brute_force_mstw_weight
from repro.core.mstw import minimum_spanning_tree_w, prepare_mstw_instance
from repro.steiner.exact import exact_dst_cost
from repro.steiner.instance import approximation_ratio
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.paths import reachable_set


@st.composite
def reachable_graphs(draw, max_vertices=6, max_extra=8, allow_zero=True):
    """Temporal graphs where every vertex is reachable from root 0."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    edges = []
    arrival = {0: 0}
    for v in range(1, n):
        parent = draw(st.sampled_from(sorted(arrival)))
        start = arrival[parent] + draw(st.integers(min_value=0, max_value=3))
        duration = (
            draw(st.integers(min_value=0, max_value=2))
            if allow_zero
            else draw(st.integers(min_value=1, max_value=2))
        )
        weight = draw(st.integers(min_value=1, max_value=9))
        edges.append(TemporalEdge(parent, v, start, start + duration, weight))
        arrival[v] = start + duration
    extra = draw(st.integers(min_value=0, max_value=max_extra))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        start = draw(st.integers(min_value=0, max_value=12))
        duration = draw(st.integers(min_value=0 if allow_zero else 1, max_value=2))
        weight = draw(st.integers(min_value=1, max_value=9))
        edges.append(TemporalEdge(u, v, start, start + duration, weight))
    return TemporalGraph(edges, vertices=range(n))


@settings(max_examples=30, deadline=None)
@given(graph=reachable_graphs(), level=st.integers(min_value=1, max_value=3))
def test_pipeline_output_is_valid_spanning_tree(graph, level):
    result = minimum_spanning_tree_w(graph, 0, level=level)
    result.tree.validate(graph)
    assert result.tree.vertices == reachable_set(graph, 0)


@settings(max_examples=25, deadline=None)
@given(graph=reachable_graphs(max_vertices=5), level=st.integers(min_value=1, max_value=3))
def test_pipeline_respects_approximation_ratio(graph, level):
    result = minimum_spanning_tree_w(graph, 0, level=level)
    opt = brute_force_mstw_weight(graph, 0)
    k = result.num_terminals
    assert result.weight >= opt - 1e-9
    assert result.weight <= approximation_ratio(level, k) * opt + 1e-9


@settings(max_examples=25, deadline=None)
@given(graph=reachable_graphs(max_vertices=5))
def test_theorem5_exact_dst_is_exact_mstw(graph):
    assume(len(reachable_set(graph, 0)) > 1)
    _, prepared = prepare_mstw_instance(graph, 0)
    assert exact_dst_cost(prepared) == pytest.approx(
        brute_force_mstw_weight(graph, 0)
    )


@settings(max_examples=25, deadline=None)
@given(graph=reachable_graphs())
def test_postprocessing_never_increases_cost(graph):
    result = minimum_spanning_tree_w(graph, 0, level=2)
    assert result.weight <= result.closure_tree_cost + 1e-9


@settings(max_examples=20, deadline=None, derandomize=True)
@given(graph=reachable_graphs())
def test_algorithms_agree_through_pipeline(graph):
    weights = {
        algorithm: minimum_spanning_tree_w(graph, 0, level=2, algorithm=algorithm).weight
        for algorithm in ("charikar", "improved", "pruned")
    }
    values = list(weights.values())
    assert values[0] == pytest.approx(values[1])
    assert values[0] == pytest.approx(values[2])
