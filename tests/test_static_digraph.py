"""Unit tests for :mod:`repro.static.digraph`."""

import pytest

from repro.core.errors import GraphFormatError
from repro.static.digraph import StaticDigraph


class TestConstruction:
    def test_add_vertex_returns_index(self):
        g = StaticDigraph()
        assert g.add_vertex("a") == 0
        assert g.add_vertex("b") == 1
        assert g.add_vertex("a") == 0  # idempotent

    def test_initial_vertices(self):
        g = StaticDigraph(["x", "y"])
        assert g.num_vertices == 2
        assert g.index_of("y") == 1

    def test_add_edge_creates_endpoints(self):
        g = StaticDigraph()
        g.add_edge("u", "v", 3.0)
        assert g.num_vertices == 2
        assert g.num_edges == 1

    def test_negative_weight_rejected(self):
        g = StaticDigraph()
        with pytest.raises(GraphFormatError):
            g.add_edge(0, 1, -1.0)

    def test_zero_weight_allowed(self):
        g = StaticDigraph()
        g.add_edge(0, 1, 0.0)
        assert g.num_edges == 1

    def test_parallel_edges_kept(self):
        g = StaticDigraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 1, 2.0)
        assert g.num_edges == 2
        assert len(g.out_neighbors(0)) == 2


class TestAccessors:
    @pytest.fixture
    def triangle(self):
        g = StaticDigraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "c", 2.0)
        g.add_edge("c", "a", 3.0)
        return g

    def test_labels_in_index_order(self, triangle):
        assert triangle.labels() == ["a", "b", "c"]

    def test_label_round_trip(self, triangle):
        for label in ("a", "b", "c"):
            assert triangle.label_of(triangle.index_of(label)) == label

    def test_out_in_neighbors(self, triangle):
        a = triangle.index_of("a")
        b = triangle.index_of("b")
        assert triangle.out_neighbors(a) == [(b, 1.0)]
        assert triangle.in_neighbors(b) == [(a, 1.0)]

    def test_iter_edges(self, triangle):
        edges = set(triangle.iter_edges())
        assert (0, 1, 1.0) in edges
        assert len(edges) == 3

    def test_iter_labeled_edges(self, triangle):
        assert ("a", "b", 1.0) in set(triangle.iter_labeled_edges())

    def test_contains_and_has_vertex(self, triangle):
        assert "a" in triangle
        assert triangle.has_vertex("c")
        assert "z" not in triangle

    def test_index_of_missing_raises(self, triangle):
        with pytest.raises(KeyError):
            triangle.index_of("missing")


class TestDerived:
    def test_reversed(self):
        g = StaticDigraph()
        g.add_edge(0, 1, 5.0)
        r = g.reversed()
        assert set(r.iter_labeled_edges()) == {(1, 0, 5.0)}
        assert r.labels() == g.labels()

    def test_simplified_keeps_cheapest(self):
        g = StaticDigraph()
        g.add_edge(0, 1, 5.0)
        g.add_edge(0, 1, 2.0)
        g.add_edge(1, 2, 1.0)
        s = g.simplified()
        assert set(s.iter_labeled_edges()) == {(0, 1, 2.0), (1, 2, 1.0)}

    def test_tuple_labels(self):
        g = StaticDigraph()
        g.add_edge(("copy", 1, 0), ("dummy", 1), 0.0)
        assert g.has_vertex(("dummy", 1))
