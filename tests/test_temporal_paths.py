"""Unit tests for :mod:`repro.temporal.paths`."""

import math

import pytest

from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.paths import (
    earliest_arrival_times,
    fastest_path_durations,
    latest_departure_times,
    reachable_set,
    shortest_path_distances,
)
from repro.temporal.window import TimeWindow

from tests.conftest import random_temporal


class TestEarliestArrival:
    def test_figure1_arrivals(self, figure1):
        arrivals = earliest_arrival_times(figure1, 0)
        assert arrivals == {0: 0.0, 1: 3, 2: 5, 3: 6, 4: 8, 5: 8}

    def test_source_itself_at_t_alpha(self, figure1):
        w = TimeWindow(2, 100)
        assert earliest_arrival_times(figure1, 0, w)[0] == 2

    def test_respects_time_constraint(self):
        # 0->1 arrives at 5, 1->2 departs at 3: not time-respecting.
        g = TemporalGraph(
            [TemporalEdge(0, 1, 0, 5, 1), TemporalEdge(1, 2, 3, 4, 1)]
        )
        arrivals = earliest_arrival_times(g, 0)
        assert 2 not in arrivals

    def test_window_cuts_late_edges(self, figure1):
        arrivals = earliest_arrival_times(figure1, 0, TimeWindow(0, 6))
        assert set(arrivals) == {0, 1, 2, 3}

    def test_window_start_blocks_early_departures(self, figure1):
        arrivals = earliest_arrival_times(figure1, 0, TimeWindow(2, math.inf))
        # edges (0,1,1,3) and (0,2,1,5) depart before t_alpha = 2
        assert arrivals[1] == 5  # via (0,1,4,5)
        assert arrivals[2] == 6  # via (0,2,3,6)

    def test_zero_duration_chains(self, figure3):
        arrivals = earliest_arrival_times(figure3, 0)
        assert arrivals == {0: 0.0, 1: 1, 4: 3, 3: 4, 2: 4}

    def test_missing_source(self, figure1):
        assert earliest_arrival_times(figure1, 42) == {}

    def test_unreachable_absent(self):
        g = TemporalGraph([TemporalEdge(1, 0, 0, 1, 1)], vertices=[0, 1, 2])
        arrivals = earliest_arrival_times(g, 0)
        assert set(arrivals) == {0}


class TestReachableSet:
    def test_figure1(self, figure1):
        assert reachable_set(figure1, 0) == {0, 1, 2, 3, 4, 5}

    def test_includes_source_always(self):
        g = TemporalGraph([], vertices=[7])
        assert reachable_set(g, 7) == {7}


class TestLatestDeparture:
    def test_simple_chain(self):
        g = TemporalGraph(
            [TemporalEdge(0, 1, 2, 3, 1), TemporalEdge(1, 2, 5, 6, 1)]
        )
        departures = latest_departure_times(g, 2)
        assert departures[1] == 5
        assert departures[0] == 2

    def test_choice_of_later_edge(self):
        g = TemporalGraph(
            [
                TemporalEdge(0, 1, 1, 2, 1),
                TemporalEdge(0, 1, 4, 5, 1),
                TemporalEdge(1, 2, 6, 7, 1),
            ]
        )
        assert latest_departure_times(g, 2)[0] == 4

    def test_window_omega_bounds_target(self):
        g = TemporalGraph([TemporalEdge(0, 1, 2, 9, 1)])
        departures = latest_departure_times(g, 1, TimeWindow(0, 5))
        assert 0 not in departures  # arrival 9 exceeds the window

    def test_missing_target(self, figure1):
        assert latest_departure_times(figure1, "zz") == {}


class TestFastestPaths:
    def test_figure1_vertex1(self, figure1):
        durations = fastest_path_durations(figure1, 0)
        # departing at 4 via (0,1,4,5,1) spans 1 < the 2 of (0,1,1,3)
        assert durations[1] == 1

    def test_source_zero(self, figure1):
        assert fastest_path_durations(figure1, 0)[0] == 0.0

    def test_two_hop_span(self):
        g = TemporalGraph(
            [TemporalEdge(0, 1, 10, 11, 1), TemporalEdge(1, 2, 12, 13, 1)]
        )
        assert fastest_path_durations(g, 0)[2] == 3  # 13 - 10


class TestShortestPaths:
    def test_weight_not_time_optimised(self):
        # Heavy direct edge vs light two-hop path.
        g = TemporalGraph(
            [
                TemporalEdge(0, 2, 0, 1, 10),
                TemporalEdge(0, 1, 0, 1, 1),
                TemporalEdge(1, 2, 2, 3, 2),
            ]
        )
        dist = shortest_path_distances(g, 0)
        assert dist[2] == 3

    def test_time_infeasible_cheap_path_rejected(self):
        g = TemporalGraph(
            [
                TemporalEdge(0, 2, 0, 1, 10),
                TemporalEdge(0, 1, 5, 6, 1),
                TemporalEdge(1, 2, 2, 3, 1),  # departs before 1 is reached
            ]
        )
        assert shortest_path_distances(g, 0)[2] == 10

    def test_figure1_consistency_with_mstw_bound(self, figure1):
        dist = shortest_path_distances(figure1, 0)
        # per-vertex shortest costs are a lower bound for tree in-weights
        assert dist[1] == 1
        assert dist[3] == 4  # 2 (0->1) + 2 (1->3)

    def test_missing_source(self, figure1):
        assert shortest_path_distances(figure1, None) == {}


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("zero", [False, True])
    def test_earliest_arrival_matches_brute_force(self, seed, zero):
        from repro.baselines.brute_force import brute_force_earliest_arrival

        g = random_temporal(seed, zero_duration=zero)
        assert earliest_arrival_times(g, 0) == brute_force_earliest_arrival(g, 0)
