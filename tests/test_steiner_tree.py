"""Unit tests for closure trees and postprocessing Step 1."""

import math


from repro.static.digraph import StaticDigraph
from repro.steiner.instance import DSTInstance, prepare_instance
from repro.steiner.tree import (
    ClosureTree,
    expand_closure_tree,
    leaf_tree,
    validate_covering_tree,
)


class TestClosureTree:
    def test_empty_density_infinite(self):
        assert math.isinf(ClosureTree.EMPTY.density)
        assert ClosureTree.EMPTY.cost == 0.0
        assert ClosureTree.EMPTY.num_covered == 0

    def test_density(self):
        t = ClosureTree(((0, 1),), 6.0, frozenset((1, 2, 3)))
        assert t.density == 2.0

    def test_density_with_edge(self):
        t = ClosureTree(((0, 1),), 6.0, frozenset((1, 2)))
        assert t.density_with_edge(4.0) == 5.0
        assert math.isinf(ClosureTree.EMPTY.density_with_edge(1.0))

    def test_merged(self):
        a = ClosureTree(((0, 1),), 2.0, frozenset((1,)))
        b = ClosureTree(((0, 2),), 3.0, frozenset((2,)))
        m = a.merged(b)
        assert m.cost == 5.0
        assert m.covered == frozenset((1, 2))
        assert m.edges == ((0, 1), (0, 2))

    def test_merged_overlapping_cover(self):
        a = ClosureTree((), 2.0, frozenset((1,)))
        b = ClosureTree((), 3.0, frozenset((1,)))
        assert a.merged(b).num_covered == 1

    def test_with_edge_adds_cost_not_cover(self):
        t = ClosureTree((), 1.0, frozenset((5,)))
        t2 = t.with_edge(0, 3, 2.5)
        assert t2.cost == 3.5
        assert t2.covered == t.covered
        assert (0, 3) in t2.edges


def chain_instance():
    """r -> a -> t with a costly shortcut r -> t."""
    g = StaticDigraph()
    g.add_edge("r", "a", 1.0)
    g.add_edge("a", "t", 1.0)
    g.add_edge("r", "t", 10.0)
    return prepare_instance(DSTInstance(g, "r", ("t",)))


class TestLeafTree:
    def test_leaf(self):
        prepared = chain_instance()
        t = leaf_tree(prepared, prepared.root, prepared.terminals[0])
        assert t.cost == 2.0  # closure shortest path r->t
        assert t.covered == frozenset(prepared.terminals)


class TestExpand:
    def test_closure_edge_becomes_path(self):
        prepared = chain_instance()
        tree = leaf_tree(prepared, prepared.root, prepared.terminals[0])
        cost, edges = expand_closure_tree(prepared, tree)
        assert cost == 2.0
        assert len(edges) == 2  # r->a, a->t

    def test_duplicate_paths_dedup_reduces_cost(self):
        prepared = chain_instance()
        tree = leaf_tree(prepared, prepared.root, prepared.terminals[0])
        doubled = tree.merged(tree)
        cost, edges = expand_closure_tree(prepared, doubled)
        assert cost == 2.0  # dedup keeps one in-edge per vertex
        assert doubled.cost == 4.0
        assert len(edges) == 2

    def test_self_loop_closure_edges_ignored(self):
        prepared = chain_instance()
        tree = ClosureTree(((0, 0),), 0.0, frozenset())
        cost, edges = expand_closure_tree(prepared, tree)
        assert cost == 0.0
        assert edges == []

    def test_expanded_cost_never_exceeds_closure_cost(self):
        prepared = chain_instance()
        r, t = prepared.root, prepared.terminals[0]
        tree = ClosureTree(((r, t),), prepared.cost(r, t), frozenset((t,)))
        cost, _ = expand_closure_tree(prepared, tree)
        assert cost <= tree.cost


class TestValidateCovering:
    def test_valid(self):
        prepared = chain_instance()
        tree = leaf_tree(prepared, prepared.root, prepared.terminals[0])
        _, edges = expand_closure_tree(prepared, tree)
        assert validate_covering_tree(prepared, edges)

    def test_invalid_when_empty(self):
        prepared = chain_instance()
        assert not validate_covering_tree(prepared, [])
