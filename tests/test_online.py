"""Tests for the streaming MST_a maintenance."""

import pytest

from repro.core.errors import GraphFormatError
from repro.core.msta import msta_chronological
from repro.core.online import OnlineMSTa
from repro.temporal.edge import TemporalEdge
from repro.temporal.window import TimeWindow

from tests.conftest import random_temporal


class TestFeeding:
    def test_matches_offline_algorithm1(self, figure1):
        online = OnlineMSTa(0)
        online.feed_many(figure1.chronological_edges())
        offline = msta_chronological(figure1, 0)
        assert online.arrival_times() == offline.arrival_times
        assert online.snapshot().parent_edge == offline.parent_edge

    def test_feed_returns_improvement_flag(self):
        online = OnlineMSTa(0)
        assert online.feed(TemporalEdge(0, 1, 1, 2, 1))
        assert not online.feed(TemporalEdge(0, 1, 1, 3, 1))  # worse arrival
        assert not online.feed(TemporalEdge(5, 6, 2, 3, 1))  # disconnected

    def test_raw_tuples_accepted(self):
        online = OnlineMSTa(0)
        assert online.feed((0, 1, 1, 2, 1))

    def test_order_enforced(self):
        online = OnlineMSTa(0)
        online.feed(TemporalEdge(0, 1, 5, 6, 1))
        with pytest.raises(GraphFormatError, match="chronological"):
            online.feed(TemporalEdge(0, 2, 3, 4, 1))

    def test_order_enforcement_optional(self):
        online = OnlineMSTa(0, enforce_order=False)
        online.feed(TemporalEdge(0, 1, 5, 6, 1))
        online.feed(TemporalEdge(0, 2, 3, 4, 1))  # no raise
        assert online.coverage == 2

    def test_window_filtering(self):
        online = OnlineMSTa(0, TimeWindow(2, 10))
        assert not online.feed(TemporalEdge(0, 1, 1, 3, 1))  # starts early
        assert online.feed(TemporalEdge(0, 1, 3, 4, 1))
        assert not online.feed(TemporalEdge(1, 2, 5, 11, 1))  # ends late


class TestQueries:
    def test_counters(self, figure1):
        online = OnlineMSTa(0)
        improved = online.feed_many(figure1.chronological_edges())
        assert online.edges_seen == figure1.num_edges
        assert online.edges_applied == improved
        assert online.coverage == 5

    def test_arrival_queries(self):
        online = OnlineMSTa(0)
        online.feed(TemporalEdge(0, 1, 1, 2, 1))
        assert online.arrival_time(1) == 2
        assert online.arrival_time(99) is None
        assert online.arrival_time(0) == 0.0

    def test_snapshot_is_independent(self):
        online = OnlineMSTa(0)
        online.feed(TemporalEdge(0, 1, 1, 2, 1))
        snap = online.snapshot()
        online.feed(TemporalEdge(1, 2, 3, 4, 1))
        assert 2 not in snap.vertices
        assert online.coverage == 2

    def test_zero_duration_flag(self, figure3):
        online = OnlineMSTa(0)
        online.feed_many(figure3.chronological_edges())
        assert online.may_be_incomplete
        # the documented failure mode: vertex 2 is missed
        assert online.arrival_time(2) is None

    def test_positive_durations_flag_clear(self, figure1):
        online = OnlineMSTa(0)
        online.feed_many(figure1.chronological_edges())
        assert not online.may_be_incomplete


class TestAgainstOffline:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_streams(self, seed):
        g = random_temporal(seed, n=14, m=60)
        online = OnlineMSTa(0)
        online.feed_many(g.chronological_edges())
        offline = msta_chronological(g, 0)
        assert online.arrival_times() == offline.arrival_times

    def test_incremental_coverage_is_monotone(self, figure1):
        online = OnlineMSTa(0)
        coverages = []
        for edge in figure1.chronological_edges():
            online.feed(edge)
            coverages.append(online.coverage)
        assert coverages == sorted(coverages)
