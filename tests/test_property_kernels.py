"""Byte-identity suite for the batched DST density kernels (PR 10).

The vectorised solver cores in :mod:`repro.steiner.kernels` are only
admissible if they return *exactly* what the scalar scans returned --
same trees, same cost floats, same density logs, same budget trips,
same fallback caveats -- on both backends.  These properties pin that
against the verbatim pre-kernel solvers frozen in
:mod:`repro.perf.legacy` (``scalar_charikar_dst`` /
``scalar_improved_dst`` / ``scalar_pruned_dst``).

The kernel dispatch has a size floor (``KERNEL_MIN_CELLS``) below which
instances stay scalar; every test here pins the floor to 0 so the
batched paths run on the small generated fixtures (including walks long
enough to cross the pruned scan's scalar head into its chunked steps).

CI runs this file on both matrix legs (numpy and ``REPRO_FORCE_PURE``)
next to ``test_property_columnar.py`` and fails the job if any test
here is skipped -- the module-level skip below can only trigger in a
genuinely numpy-less environment, which no CI leg is.
"""

from __future__ import annotations

import math
import random
from contextlib import contextmanager

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.errors import BudgetExceededError
from repro.core.mstw import prepare_mstw_instance
from repro.experiments.runner import DegradedCell, OverBudgetCell
from repro.perf.legacy import (
    scalar_charikar_dst,
    scalar_improved_dst,
    scalar_pruned_dst,
)
from repro.resilience import fallback
from repro.resilience.budget import Budget
from repro.steiner import kernels
from repro.steiner.charikar import charikar_dst
from repro.steiner.improved import improved_dst
from repro.steiner.pruned import pruned_dst
from repro.temporal.columnar import force_backend, numpy_available
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph

pytestmark = pytest.mark.skipif(
    not numpy_available(),
    reason="cross-backend kernel identity needs numpy importable",
)

BACKENDS = ("numpy", "pure")

SOLVER_PAIRS = [
    (charikar_dst, scalar_charikar_dst),
    (improved_dst, scalar_improved_dst),
    (pruned_dst, scalar_pruned_dst),
]


@contextmanager
def kernel_floor(value):
    """Temporarily pin ``KERNEL_MIN_CELLS`` (0 = kernels always on)."""
    previous = kernels.KERNEL_MIN_CELLS
    kernels.KERNEL_MIN_CELLS = value
    try:
        yield
    finally:
        kernels.KERNEL_MIN_CELLS = previous


@st.composite
def reachable_graphs(draw, max_vertices=7, max_extra=10, unit_weights=False):
    """Temporal graphs where every vertex is reachable from root 0."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    edges = []
    arrival = {0: 0}
    for v in range(1, n):
        parent = draw(st.sampled_from(sorted(arrival)))
        start = arrival[parent] + draw(st.integers(min_value=0, max_value=3))
        duration = draw(st.integers(min_value=0, max_value=2))
        weight = 1 if unit_weights else draw(st.integers(min_value=1, max_value=9))
        edges.append(TemporalEdge(parent, v, start, start + duration, weight))
        arrival[v] = start + duration
    for _ in range(draw(st.integers(min_value=0, max_value=max_extra))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        start = draw(st.integers(min_value=0, max_value=12))
        duration = draw(st.integers(min_value=0, max_value=2))
        weight = 1 if unit_weights else draw(st.integers(min_value=1, max_value=9))
        edges.append(TemporalEdge(u, v, start, start + duration, weight))
    return TemporalGraph(edges, vertices=range(n))


def _random_reachable_graph(seed, n):
    """A seeded ``n``-vertex graph, big enough to cross chunk bounds."""
    rng = random.Random(seed)
    edges = []
    arrival = {0: 0}
    for v in range(1, n):
        parent = rng.choice(sorted(arrival))
        start = arrival[parent] + rng.randint(0, 3)
        duration = rng.randint(0, 2)
        edges.append(
            TemporalEdge(parent, v, start, start + duration, rng.randint(1, 9))
        )
        arrival[v] = start + duration
    for _ in range(3 * n):
        u, v = rng.randint(0, n - 1), rng.randint(0, n - 1)
        if u == v:
            continue
        start = rng.randint(0, 12)
        edges.append(TemporalEdge(u, v, start, start + rng.randint(0, 2),
                                  rng.randint(1, 9)))
    return TemporalGraph(edges, vertices=range(n))


def _fingerprint(tree):
    return tree.edges, tree.cost, tuple(sorted(tree.covered))


def _outcome(solver, prepared, level, max_expansions=None, **kwargs):
    """Everything observable about one solve, trips included."""
    budget = (
        None if max_expansions is None else Budget(max_expansions=max_expansions)
    )
    try:
        tree = solver(prepared, level, budget=budget, **kwargs)
    except BudgetExceededError:
        return ("trip",)
    return ("ok", _fingerprint(tree), None if budget is None else budget.expansions)


# ----------------------------------------------------------------------
# Solver-level identity: kernels vs the frozen scalar ladder
# ----------------------------------------------------------------------
class TestSolverIdentity:
    @settings(max_examples=30, deadline=None)
    @given(graph=reachable_graphs(), level=st.sampled_from([1, 2, 3]))
    def test_trees_match_scalar_on_both_backends(self, graph, level):
        _, prepared = prepare_mstw_instance(graph, 0, use_cache=False)
        with kernel_floor(0):
            for backend in BACKENDS:
                with force_backend(backend):
                    for new, old in SOLVER_PAIRS:
                        assert _outcome(new, prepared, level) == _outcome(
                            old, prepared, level
                        ), (backend, new.__name__)

    @settings(max_examples=20, deadline=None)
    @given(
        graph=reachable_graphs(),
        level=st.sampled_from([2, 3]),
        max_expansions=st.integers(min_value=1, max_value=60),
    )
    def test_budget_trips_match_scalar(self, graph, level, max_expansions):
        _, prepared = prepare_mstw_instance(graph, 0, use_cache=False)
        with kernel_floor(0):
            for backend in BACKENDS:
                with force_backend(backend):
                    for new, old in SOLVER_PAIRS:
                        assert _outcome(
                            new, prepared, level, max_expansions
                        ) == _outcome(old, prepared, level, max_expansions), (
                            backend,
                            new.__name__,
                        )

    @settings(max_examples=20, deadline=None)
    @given(graph=reachable_graphs(), level=st.sampled_from([2, 3]))
    def test_pruned_density_log_matches_scalar(self, graph, level):
        _, prepared = prepare_mstw_instance(graph, 0, use_cache=False)
        with kernel_floor(0):
            for backend in BACKENDS:
                with force_backend(backend):
                    log_new, log_old = [], []
                    new = pruned_dst(prepared, level, density_log=log_new)
                    old = scalar_pruned_dst(prepared, level, density_log=log_old)
                    assert _fingerprint(new) == _fingerprint(old)
                    assert log_new == log_old

    def test_long_walks_and_warm_bounds_match_scalar(self):
        """Seeded instances past the scalar head and chunk boundaries.

        ``n`` well above ``PRUNED_SCALAR_HEAD + PRUNED_CHUNK`` drives
        the pruned scan through its scalar head *and* several batched
        chunks; warm bounds at every tightness exercise the skip mask
        and the ``_WarmMiss`` cold-rerun path.  Level 2 only: the
        frozen scalar oracle is quadratic in Python at level 3, and the
        level-3 inner scans reuse the same level-2 walk anyway (the
        hypothesis properties above cover level 3 on small graphs).
        """
        for seed in range(3):
            graph = _random_reachable_graph(seed, n=70)
            _, prepared = prepare_mstw_instance(graph, 0, use_cache=False)
            with kernel_floor(0):
                for backend in BACKENDS:
                    with force_backend(backend):
                        log_new, log_old = [], []
                        new = pruned_dst(prepared, 2, density_log=log_new)
                        old = scalar_pruned_dst(prepared, 2, density_log=log_old)
                        assert _fingerprint(new) == _fingerprint(old)
                        assert log_new == log_old
                        finite = [d for d in log_old if math.isfinite(d)]
                        if not finite:
                            continue
                        for scale in (0.5, 1.0, 1.5, 10.0):
                            bound = max(finite) * scale
                            warm_new = pruned_dst(prepared, 2, warm_bound=bound)
                            warm_old = scalar_pruned_dst(
                                prepared, 2, warm_bound=bound
                            )
                            assert _fingerprint(warm_new) == _fingerprint(warm_old)

    def test_floor_keeps_small_instances_scalar(self):
        """Below ``KERNEL_MIN_CELLS`` the dispatch declines outright."""
        graph = _random_reachable_graph(0, n=12)
        _, prepared = prepare_mstw_instance(graph, 0, use_cache=False)
        assert prepared.num_vertices * prepared.num_terminals < 4096
        assert kernels.workspace_for(prepared) is None
        with kernel_floor(0):
            assert kernels.workspace_for(prepared) is not None


# ----------------------------------------------------------------------
# Kernel-level identity: numpy vs pure, and the sorted-layout tie-break
# ----------------------------------------------------------------------
class TestKernelTieBreak:
    @settings(max_examples=25, deadline=None)
    @given(graph=reachable_graphs(unit_weights=True))
    def test_sorted_terminals_tie_break_is_index_order(self, graph):
        """Equal costs order by terminal index, on both backends.

        Unit weights force dense cost ties, so any tie-break drift
        between the memoised scalar order and the kernel workspace's
        stable argsort layout would surface immediately.
        """
        _, prepared = prepare_mstw_instance(graph, 0, use_cache=False)
        with kernel_floor(0):
            for backend in BACKENDS:
                with force_backend(backend):
                    workspace = kernels.workspace_for(prepared)
                    assert workspace is not None
                    for source in range(prepared.num_vertices):
                        row = prepared.cost_row(source)
                        order = prepared.sorted_terminals_from(source)
                        keys = [(row[x], x) for x in order]
                        assert keys == sorted(keys)
                        if workspace.backend == "numpy":
                            layout = [int(x) for x in workspace.sorted_ids[source]]
                            costs = [float(c) for c in workspace.sorted_costs[source]]
                        else:
                            costs, ids = workspace.pure_row(prepared, source)
                            layout = list(ids)
                        assert layout == list(order)
                        assert costs == [row[x] for x in order]

    @settings(max_examples=25, deadline=None)
    @given(graph=reachable_graphs(), data=st.data())
    def test_best_prefix_candidate_backends_agree(self, graph, data):
        _, prepared = prepare_mstw_instance(graph, 0, use_cache=False)
        terminals = sorted(prepared.terminals)
        remaining = frozenset(
            data.draw(
                st.sets(st.sampled_from(terminals), min_size=1),
                label="remaining",
            )
        )
        k = data.draw(
            st.integers(min_value=1, max_value=len(remaining)), label="k"
        )
        source = data.draw(
            st.integers(min_value=0, max_value=prepared.num_vertices - 1),
            label="source",
        )
        results = {}
        with kernel_floor(0):
            for backend in BACKENDS:
                with force_backend(backend):
                    workspace = kernels.workspace_for(prepared)
                    results[backend] = kernels.best_prefix_candidate(
                        prepared, workspace, k, remaining, source
                    )
        assert results["numpy"] == results["pure"]


# ----------------------------------------------------------------------
# Fallback caveats: kernel-path cells == legacy-path cells as budgets drain
# ----------------------------------------------------------------------
class TestFallbackCaveatParity:
    def _ladder_outcome(self, prepared, max_expansions, solver):
        budget = Budget(max_expansions=max_expansions)
        outcome = fallback.run_with_fallback(
            prepared, budget=budget, level=2, solver=solver
        )
        # The attempt *detail* strings embed the expansion count at the
        # trip instant, which may sit mid-batch on the kernel path; the
        # rung sequence, statuses, caveat, and answer must not move.
        cells = [OverBudgetCell(0.0, outcome.rung)]
        if outcome.degraded:
            cells.append(DegradedCell(outcome.tree.cost, outcome.rung))
        return (
            outcome.rung,
            outcome.level,
            outcome.degraded,
            outcome.caveat,
            _fingerprint(outcome.tree),
            [(a.rung, a.status) for a in outcome.attempts],
            cells,
        )

    def test_degraded_cells_match_scalar_under_draining_budgets(self, monkeypatch):
        scalar_map = {
            "charikar": scalar_charikar_dst,
            "improved": scalar_improved_dst,
            "pruned": scalar_pruned_dst,
        }
        for seed, n in ((0, 40), (1, 24)):
            graph = _random_reachable_graph(seed, n=n)
            _, prepared = prepare_mstw_instance(graph, 0, use_cache=False)
            with kernel_floor(0):
                for solver in ("pruned", "improved", "charikar"):
                    for max_expansions in (1, 25, 400, 10**9):
                        with monkeypatch.context() as patch:
                            patch.setattr(
                                fallback, "_greedy_solvers", lambda: scalar_map
                            )
                            legacy = self._ladder_outcome(
                                prepared, max_expansions, solver
                            )
                        live = self._ladder_outcome(
                            prepared, max_expansions, solver
                        )
                        assert live == legacy, (seed, solver, max_expansions)
