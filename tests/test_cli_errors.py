"""CLI failure-path tests: bad files, bad arguments, graceful errors."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_msta_requires_root(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0 1 1\n")
        with pytest.raises(SystemExit):
            build_parser().parse_args(["msta", str(path)])

    def test_output_choices_validated(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["msta", "g.txt", "--root", "0", "--output", "xml"]
            )

    def test_generate_dataset_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "orkut"])


class TestRuntimeErrors:
    def test_missing_file(self, capsys):
        with pytest.raises(FileNotFoundError):
            main(["stats", "/nonexistent/file.txt"])

    def test_malformed_native_file(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 3\n")
        code = main(["stats", str(path)])
        err = capsys.readouterr().err
        assert code == 2
        assert "error" in err

    def test_mstw_on_isolated_root(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("1 2 0 1 1\n")
        code = main(["mstw", str(path), "--root", "9", "--level", "1"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_steiner_unreachable_without_flag(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0 1 1\n2 1 0 1 1\n")
        code = main(["steiner", str(path), "--root", "0", "--terminals", "2"])
        assert code == 2
        assert "unreachable" in capsys.readouterr().err

    def test_negative_window_rejected(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0 1 1\n")
        with pytest.raises(ValueError):
            main(
                [
                    "msta",
                    str(path),
                    "--root",
                    "0",
                    "--t-alpha",
                    "9",
                    "--t-omega",
                    "3",
                ]
            )

    def test_string_roots_parse(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("alice bob 0 1 1\n")
        code = main(["msta", str(path), "--root", "alice"])
        out = capsys.readouterr().out
        assert code == 0
        assert "bob" in out
