"""CLI failure-path tests: bad files, bad arguments, distinct exit codes."""

import pytest

from repro.cli import (
    EXIT_OTHER_REPRO_ERROR,
    build_parser,
    exit_code_for,
    main,
)
from repro.core.errors import (
    BudgetExceededError,
    ExperimentInterruptedError,
    GraphFormatError,
    ReproError,
    UnreachableRootError,
)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_msta_requires_root(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0 1 1\n")
        with pytest.raises(SystemExit):
            build_parser().parse_args(["msta", str(path)])

    def test_output_choices_validated(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["msta", "g.txt", "--root", "0", "--output", "xml"]
            )

    def test_generate_dataset_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "orkut"])


class TestExitCodeMapping:
    """Each ReproError family maps to its own sysexits-style code."""

    def test_format_error(self):
        assert exit_code_for(GraphFormatError("bad")) == 65

    def test_unreachable_error(self):
        assert exit_code_for(UnreachableRootError("isolated")) == 66

    def test_budget_error(self):
        assert exit_code_for(BudgetExceededError("drained")) == 67

    def test_interrupted_error(self):
        assert exit_code_for(ExperimentInterruptedError("stopped")) == 75

    def test_base_repro_error(self):
        assert exit_code_for(ReproError("other")) == EXIT_OTHER_REPRO_ERROR

    def test_codes_are_distinct_and_nonzero(self):
        errors = [
            GraphFormatError("a"),
            UnreachableRootError("b"),
            BudgetExceededError("c"),
            ExperimentInterruptedError("d"),
            ReproError("e"),
        ]
        codes = [exit_code_for(e) for e in errors]
        assert len(set(codes)) == len(codes)
        assert all(code not in (0, 1, 2) for code in codes)


class TestRuntimeErrors:
    def test_missing_file(self, capsys):
        with pytest.raises(FileNotFoundError):
            main(["stats", "/nonexistent/file.txt"])

    def test_malformed_native_file(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 3\n")
        code = main(["stats", str(path)])
        err = capsys.readouterr().err
        assert code == 65
        assert "error" in err

    def test_nan_weight_names_line(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 0 1 1\n1 2 0 1 nan\n")
        code = main(["stats", str(path)])
        err = capsys.readouterr().err
        assert code == 65
        assert "line 2" in err

    def test_mstw_on_isolated_root(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("1 2 0 1 1\n")
        code = main(["mstw", str(path), "--root", "9", "--level", "1"])
        assert code == 66
        assert "error" in capsys.readouterr().err

    def test_steiner_unreachable_without_flag(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0 1 1\n2 1 0 1 1\n")
        code = main(["steiner", str(path), "--root", "0", "--terminals", "2"])
        assert code == 66
        assert "unreachable" in capsys.readouterr().err

    def test_budget_without_fallback_exits_67(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        lines = [f"0 {v} 0 1 1\n" for v in range(1, 30)]
        lines += [f"{u} {u + 1} 1 2 1\n" for u in range(1, 29)]
        path.write_text("".join(lines))
        code = main(
            ["mstw", str(path), "--root", "0", "--budget", "0.0000001"]
        )
        err = capsys.readouterr().err
        assert code == 67
        assert "error" in err

    def test_budget_with_fallback_succeeds(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        lines = [f"0 {v} 0 1 1\n" for v in range(1, 30)]
        lines += [f"{u} {u + 1} 1 2 1\n" for u in range(1, 29)]
        path.write_text("".join(lines))
        code = main(
            [
                "mstw",
                str(path),
                "--root",
                "0",
                "--budget",
                "0.0000001",
                "--fallback",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "solved by" in out

    def test_negative_window_rejected(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0 1 1\n")
        with pytest.raises(ValueError):
            main(
                [
                    "msta",
                    str(path),
                    "--root",
                    "0",
                    "--t-alpha",
                    "9",
                    "--t-omega",
                    "3",
                ]
            )

    def test_string_roots_parse(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("alice bob 0 1 1\n")
        code = main(["msta", str(path), "--root", "alice"])
        out = capsys.readouterr().out
        assert code == 0
        assert "bob" in out
