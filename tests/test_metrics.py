"""Tests for temporal centrality/latency metrics."""

import math

import pytest

from repro.core.msta import minimum_spanning_tree_a
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.metrics import (
    average_latency,
    broadcast_makespan,
    broadcast_profile,
    information_latency,
    most_influential_roots,
    reachability_ratio,
    temporal_closeness,
)
from repro.temporal.window import TimeWindow


class TestInformationLatency:
    def test_figure1(self, figure1):
        latency = information_latency(figure1, 0)
        assert latency == {0: 0.0, 1: 3, 2: 5, 3: 6, 4: 8, 5: 8}

    def test_window_shifts_baseline(self, figure1):
        latency = information_latency(figure1, 0, TimeWindow(2, math.inf))
        assert latency[0] == 0.0
        assert latency[1] == 3  # arrival 5 - t_alpha 2

    def test_unreachable_absent(self):
        g = TemporalGraph([TemporalEdge(1, 2, 0, 1, 1)], vertices=[0, 1, 2])
        assert set(information_latency(g, 0)) == {0}


class TestCloseness:
    def test_chain_decreases_with_distance(self):
        g = TemporalGraph(
            [
                TemporalEdge(0, 1, 1, 2, 1),
                TemporalEdge(1, 2, 3, 4, 1),
                TemporalEdge(2, 3, 5, 6, 1),
            ]
        )
        assert temporal_closeness(g, 0) > temporal_closeness(g, 1) > 0

    def test_isolated_source_zero(self):
        g = TemporalGraph([TemporalEdge(1, 2, 0, 1, 1)], vertices=[0, 1, 2])
        assert temporal_closeness(g, 0) == 0.0

    def test_zero_latency_clamped_not_infinite(self, figure3):
        value = temporal_closeness(figure3, 0)
        assert math.isfinite(value)
        assert value > 0

    def test_single_vertex_graph(self):
        g = TemporalGraph([], vertices=[0])
        assert temporal_closeness(g, 0) == 0.0


class TestReachabilityRatio:
    def test_full_reach(self, figure1):
        assert reachability_ratio(figure1, 0) == 1.0

    def test_partial_reach(self):
        g = TemporalGraph([TemporalEdge(0, 1, 0, 1, 1)], vertices=[0, 1, 2])
        assert reachability_ratio(g, 0) == 0.5

    def test_trivial_graph(self):
        g = TemporalGraph([], vertices=[0])
        assert reachability_ratio(g, 0) == 0.0


class TestMostInfluential:
    def test_figure1_root_wins(self, figure1):
        ranked = most_influential_roots(figure1, top=3)
        assert ranked[0] == (0, 5)

    def test_top_limits_output(self, figure1):
        assert len(most_influential_roots(figure1, top=2)) == 2

    def test_deterministic_tie_break(self):
        g = TemporalGraph(
            [TemporalEdge(0, 2, 0, 1, 1), TemporalEdge(1, 2, 0, 1, 1)]
        )
        ranked = most_influential_roots(g, top=3)
        assert ranked[0][0] == 0  # 0 and 1 tie on reach; label order


class TestBroadcastProfile:
    def test_figure1_curve(self, figure1):
        tree = minimum_spanning_tree_a(figure1, 0)
        profile = broadcast_profile(tree)
        assert profile == [(0.0, 1), (3, 2), (5, 3), (6, 4), (8, 6)]

    def test_last_count_is_coverage(self, figure1):
        tree = minimum_spanning_tree_a(figure1, 0)
        assert broadcast_profile(tree)[-1][1] == len(tree.vertices)

    def test_makespan_and_average(self, figure1):
        tree = minimum_spanning_tree_a(figure1, 0)
        assert broadcast_makespan(tree) == 8
        assert average_latency(tree) == pytest.approx((3 + 5 + 6 + 8 + 8) / 5)

    def test_average_latency_root_only(self):
        from repro.core.spanning_tree import TemporalSpanningTree

        tree = TemporalSpanningTree("r", {})
        assert math.isnan(average_latency(tree))
