"""Tests for the synthetic dataset registry and weight models."""

import math

import pytest

from repro.datasets.registry import DATASETS, load_dataset
from repro.datasets.weights import apply_weight_cascade, weight_cascade_weights
from repro.temporal.stats import compute_statistics
from repro.temporal.graph import TemporalGraph
from repro.temporal.edge import TemporalEdge


class TestRegistry:
    def test_all_seven_paper_datasets_present(self):
        assert set(DATASETS) == {
            "slashdot",
            "epinions",
            "facebook",
            "enron",
            "hepph",
            "dblp",
            "phone",
        }

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_loadable_at_small_scale(self, name):
        g = load_dataset(name, scale=0.1)
        assert g.num_edges > 0
        assert g.num_vertices > 0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("orkut")

    def test_case_insensitive(self):
        a = load_dataset("Phone", scale=0.1)
        b = load_dataset("phone", scale=0.1)
        assert a.num_edges == b.num_edges

    def test_deterministic(self):
        a = load_dataset("slashdot", scale=0.1)
        b = load_dataset("slashdot", scale=0.1)
        assert a.edges == b.edges

    def test_seed_offset_changes_sample(self):
        a = load_dataset("slashdot", scale=0.1, seed=0)
        b = load_dataset("slashdot", scale=0.1, seed=1)
        assert a.edges != b.edges

    def test_scale_grows_graph(self):
        small = load_dataset("epinions", scale=0.1)
        large = load_dataset("epinions", scale=0.3)
        assert large.num_vertices > small.num_vertices


class TestRegimes:
    def test_epinions_pi_is_one(self):
        g = load_dataset("epinions", scale=0.2)
        assert compute_statistics(g).max_multiplicity == 1

    def test_facebook_heavy_multiplicity(self):
        g = load_dataset("facebook", scale=0.3)
        assert compute_statistics(g).max_multiplicity >= 5

    def test_zero_duration_datasets(self):
        for name in ("facebook", "enron", "hepph", "dblp"):
            assert DATASETS[name].zero_durations
            g = load_dataset(name, scale=0.1)
            assert g.has_zero_duration_edge()

    def test_phone_native_weights(self):
        g = load_dataset("phone", scale=0.1)
        assert DATASETS["phone"].native_weights
        # weights equal call durations
        assert all(e.weight == e.duration for e in g.edges)

    def test_dblp_coarse_timestamps(self):
        g = load_dataset("dblp", scale=0.05)
        assert g.distinct_time_instances() <= 25

    def test_weighted_loading(self):
        g = load_dataset("slashdot", scale=0.1, weighted=True)
        assert any(e.weight != 1.0 for e in g.edges)


class TestWeightCascade:
    def test_minus_log_out_degree(self):
        g = TemporalGraph(
            [
                TemporalEdge(0, 1, 0, 1, 1),
                TemporalEdge(0, 2, 0, 1, 1),
                TemporalEdge(1, 2, 0, 1, 1),
            ]
        )
        w = weight_cascade_weights(g)
        # vertex 0 has out-degree 2: weight -log(1/2) = log 2
        assert w[(0, 1)] == pytest.approx(math.log(2))
        assert w[(0, 2)] == pytest.approx(math.log(2))
        # vertex 1 has out-degree 1: floored above 0
        assert w[(1, 2)] > 0

    def test_in_degree_variant(self):
        g = TemporalGraph(
            [
                TemporalEdge(0, 2, 0, 1, 1),
                TemporalEdge(1, 2, 0, 1, 1),
            ]
        )
        w = weight_cascade_weights(g, use_out_degree=False)
        assert w[(0, 2)] == pytest.approx(math.log(2))

    def test_parallel_edges_share_weight(self):
        g = TemporalGraph(
            [
                TemporalEdge(0, 1, 0, 1, 1),
                TemporalEdge(0, 1, 5, 6, 1),
                TemporalEdge(0, 2, 0, 1, 1),
            ]
        )
        applied = apply_weight_cascade(g)
        weights = {e.weight for e in applied.edges if e.static_key() == (0, 1)}
        assert len(weights) == 1

    def test_all_weights_positive(self):
        g = load_dataset("slashdot", scale=0.1)
        w = weight_cascade_weights(g)
        assert all(value > 0 for value in w.values())
