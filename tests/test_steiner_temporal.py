"""Tests for the temporal directed Steiner tree extension (Section 7)."""

import pytest

from repro.core.errors import UnreachableRootError
from repro.core.steiner_temporal import minimum_steiner_tree_w
from repro.steiner.instance import approximation_ratio
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.window import TimeWindow

from tests.conftest import random_temporal


class TestFigure1Targets:
    def test_single_target_is_cheapest_feasible_path(self, figure1):
        result = minimum_steiner_tree_w(figure1, 0, [3], level=3)
        # cheapest time-respecting path to 3: (0,1,1,3,2) + (1,3,4,6,2)
        assert result.weight == 4.0
        assert 3 in result.tree.vertices
        assert result.steiner_vertices == {1}

    def test_all_vertices_recovers_mstw(self, figure1):
        result = minimum_steiner_tree_w(figure1, 0, [1, 2, 3, 4, 5], level=3)
        assert result.weight == 11.0

    def test_subset_cheaper_than_full(self, figure1):
        sub = minimum_steiner_tree_w(figure1, 0, [4], level=3)
        full = minimum_steiner_tree_w(figure1, 0, [1, 2, 3, 4, 5], level=3)
        assert sub.weight < full.weight

    def test_tree_is_time_respecting(self, figure1):
        result = minimum_steiner_tree_w(figure1, 0, [4, 5], level=2)
        result.tree.validate(figure1)

    def test_root_in_terminals_ignored(self, figure1):
        result = minimum_steiner_tree_w(figure1, 0, [0, 3], level=2)
        assert result.terminals == (3,)


class TestArguments:
    def test_no_terminals(self, figure1):
        with pytest.raises(UnreachableRootError):
            minimum_steiner_tree_w(figure1, 0, [0])

    def test_unknown_terminal(self, figure1):
        with pytest.raises(UnreachableRootError, match="not graph vertices"):
            minimum_steiner_tree_w(figure1, 0, [42])

    def test_unknown_algorithm(self, figure1):
        with pytest.raises(ValueError):
            minimum_steiner_tree_w(figure1, 0, [3], algorithm="nope")

    def test_bad_level(self, figure1):
        with pytest.raises(ValueError):
            minimum_steiner_tree_w(figure1, 0, [3], level=0)

    def test_unreachable_terminal_raises_by_default(self):
        g = TemporalGraph(
            [TemporalEdge(0, 1, 0, 1, 1), TemporalEdge(2, 1, 0, 1, 1)]
        )
        with pytest.raises(UnreachableRootError, match="unreachable"):
            minimum_steiner_tree_w(g, 0, [1, 2])

    def test_allow_unreachable(self):
        g = TemporalGraph(
            [TemporalEdge(0, 1, 0, 1, 1), TemporalEdge(2, 1, 0, 1, 1)]
        )
        result = minimum_steiner_tree_w(g, 0, [1, 2], allow_unreachable=True)
        assert result.terminals == (1,)
        assert result.unreachable == (2,)

    def test_all_unreachable(self):
        g = TemporalGraph(
            [TemporalEdge(0, 1, 0, 1, 1)], vertices=[0, 1, 2]
        )
        with pytest.raises(UnreachableRootError, match="no requested terminal"):
            minimum_steiner_tree_w(g, 0, [2], allow_unreachable=True)


class TestWindow:
    def test_window_limits_targets(self, figure1):
        with pytest.raises(UnreachableRootError):
            minimum_steiner_tree_w(figure1, 0, [4], window=TimeWindow(0, 6))

    def test_window_feasible_target(self, figure1):
        result = minimum_steiner_tree_w(figure1, 0, [3], window=TimeWindow(0, 6))
        result.tree.validate(figure1)


class TestGuarantee:
    @pytest.mark.parametrize("seed", range(6))
    def test_covers_requested_targets_on_random_graphs(self, seed):
        from repro.temporal.paths import reachable_set

        g = random_temporal(seed, n=10, m=40)
        reach = sorted(reachable_set(g, 0) - {0}, key=repr)
        if len(reach) < 3:
            pytest.skip("root reaches too little")
        targets = reach[:3]
        result = minimum_steiner_tree_w(g, 0, targets, level=2)
        result.tree.validate(g)
        assert set(targets) <= result.tree.vertices

    @pytest.mark.parametrize("seed", range(4))
    def test_within_ratio_of_exact(self, seed):
        from repro.core.transformation import transform_temporal_graph
        from repro.steiner.exact import exact_dst_cost
        from repro.steiner.instance import prepare_instance
        from repro.temporal.paths import reachable_set

        g = random_temporal(seed, n=8, m=30)
        reach = sorted(reachable_set(g, 0) - {0}, key=repr)
        if len(reach) < 2:
            pytest.skip("root reaches too little")
        targets = reach[:2]
        result = minimum_steiner_tree_w(g, 0, targets, level=2)
        transformed = transform_temporal_graph(g, 0)
        prepared = prepare_instance(transformed.dst_instance(terminals=targets))
        opt = exact_dst_cost(prepared)
        assert result.weight <= approximation_ratio(2, 2) * opt + 1e-9
        # note: postprocessing keeps one in-edge per vertex, so the
        # final weight can even drop below the closure-tree cost but
        # never below the DST optimum of the *covered* structure.
        assert result.closure_tree_cost >= opt - 1e-9
