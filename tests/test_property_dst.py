"""Property-based tests (hypothesis) for the DST solvers.

Random rooted digraphs with float weights (ties have measure zero)
exercise Theorem 7 / Theorem 9 (algorithm equivalence), the
approximation guarantee against the exact solver, and cover validity.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.static.digraph import StaticDigraph
from repro.steiner.charikar import charikar_dst
from repro.steiner.exact import exact_dst_cost
from repro.steiner.improved import improved_dst
from repro.steiner.instance import DSTInstance, approximation_ratio, prepare_instance
from repro.steiner.pruned import pruned_dst
from repro.steiner.tree import expand_closure_tree, validate_covering_tree


@st.composite
def dst_instances(draw, max_vertices=10, max_extra_edges=14, max_terminals=4):
    n = draw(st.integers(min_value=3, max_value=max_vertices))
    g = StaticDigraph(range(n))
    # backbone guarantees reachability of every vertex from root 0
    for v in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        w = draw(st.floats(min_value=0.1, max_value=10, allow_nan=False))
        g.add_edge(parent, v, w)
    extra = draw(st.integers(min_value=0, max_value=max_extra_edges))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        w = draw(st.floats(min_value=0.1, max_value=10, allow_nan=False))
        g.add_edge(u, v, w)
    k = draw(st.integers(min_value=1, max_value=min(max_terminals, n - 1)))
    terminals = draw(
        st.lists(
            st.integers(min_value=1, max_value=n - 1),
            min_size=k,
            max_size=k,
            unique=True,
        )
    )
    return prepare_instance(DSTInstance(g, 0, tuple(terminals)))


@settings(max_examples=40, deadline=None, derandomize=True)
@given(prepared=dst_instances(), level=st.integers(min_value=1, max_value=3))
def test_theorem7_and_9_equivalence(prepared, level):
    c = charikar_dst(prepared, level)
    i4 = improved_dst(prepared, level)
    a6 = pruned_dst(prepared, level)
    assert c.cost == pytest.approx(i4.cost)
    assert c.cost == pytest.approx(a6.cost)


@settings(max_examples=40, deadline=None)
@given(prepared=dst_instances(), level=st.integers(min_value=1, max_value=3))
def test_approximation_guarantee(prepared, level):
    approx = pruned_dst(prepared, level).cost
    opt = exact_dst_cost(prepared)
    k = prepared.num_terminals
    assert opt <= approx + 1e-6
    assert approx <= approximation_ratio(level, k) * opt + 1e-6


@settings(max_examples=40, deadline=None)
@given(prepared=dst_instances(), level=st.integers(min_value=1, max_value=3))
def test_cover_complete_and_expandable(prepared, level):
    tree = improved_dst(prepared, level)
    assert tree.covered == frozenset(prepared.terminals)
    cost, edges = expand_closure_tree(prepared, tree)
    assert validate_covering_tree(prepared, edges)
    assert cost <= tree.cost + 1e-9


@settings(max_examples=30, deadline=None)
@given(prepared=dst_instances())
def test_partial_k_monotone_cost(prepared):
    """Covering more terminals can never be cheaper."""
    k = prepared.num_terminals
    costs = [pruned_dst(prepared, 2, k=j).cost for j in range(1, k + 1)]
    assert all(a <= b + 1e-9 for a, b in zip(costs, costs[1:]))


@settings(max_examples=30, deadline=None)
@given(prepared=dst_instances())
def test_exact_lower_bounds_every_level(prepared):
    opt = exact_dst_cost(prepared)
    for level in (1, 2, 3):
        assert opt <= charikar_dst(prepared, level).cost + 1e-6
