"""Tests for Algorithms 1 and 2 (``MST_a``), including the paper's examples."""

import pytest

from repro.core.errors import UnreachableRootError, ZeroDurationError
from repro.core.msta import minimum_spanning_tree_a, msta_chronological, msta_stack
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.paths import earliest_arrival_times
from repro.temporal.window import TimeWindow

from tests.conftest import random_temporal


class TestAlgorithm1:
    def test_figure2a_arrival_times(self, figure1):
        tree = msta_chronological(figure1, 0)
        assert tree.arrival_times == {0: 0.0, 1: 3, 2: 5, 3: 6, 4: 8, 5: 8}

    def test_example3_first_updates(self, figure1):
        tree = msta_chronological(figure1, 0)
        # Example 3: A(1)=3 via (0,1,1,3), A(2)=5 via (0,2,1,5)
        assert tuple(tree.parent_edge[1]) == (0, 1, 1, 3, 2)
        assert tuple(tree.parent_edge[2]) == (0, 2, 1, 5, 4)

    def test_rejects_zero_durations_by_default(self, figure3):
        with pytest.raises(ZeroDurationError):
            msta_chronological(figure3, 0)

    def test_example4_failure_reproduced(self, figure3):
        # With the guard disabled, Algorithm 1 misses vertex 2 exactly
        # as Example 4 describes.
        tree = msta_chronological(figure3, 0, check_durations=False)
        assert 2 not in tree.vertices
        assert tree.vertices == {0, 1, 3, 4}

    def test_window_omega_cuts_edges(self, figure1):
        tree = msta_chronological(figure1, 0, TimeWindow(0, 6))
        assert tree.vertices == {0, 1, 2, 3}

    def test_window_alpha_blocks_early_starts(self, figure1):
        tree = msta_chronological(figure1, 0, TimeWindow(2, float("inf")))
        assert tree.arrival_times[1] == 5  # (0,1,1,3) departs too early

    def test_unknown_root(self, figure1):
        with pytest.raises(UnreachableRootError):
            msta_chronological(figure1, 77)

    def test_root_only_when_isolated(self):
        g = TemporalGraph([TemporalEdge(1, 2, 0, 1, 1)], vertices=[0, 1, 2])
        tree = msta_chronological(g, 0)
        assert tree.vertices == {0}
        assert tree.num_edges == 0

    def test_arrival_sorted_input_also_works(self, figure1):
        # Section 3: Algorithm 1 is also correct on arrival-ordered input.
        arrival = {0: 0.0}
        parent = {}
        inf = float("inf")
        for e in figure1.arrival_sorted_edges():
            if e.start >= arrival.get(e.source, inf) and e.arrival < arrival.get(
                e.target, inf
            ):
                arrival[e.target] = e.arrival
                parent[e.target] = e
        assert arrival == {0: 0.0, 1: 3, 2: 5, 3: 6, 4: 8, 5: 8}


class TestAlgorithm2:
    def test_figure2a_arrival_times(self, figure1):
        tree = msta_stack(figure1, 0)
        assert tree.arrival_times == {0: 0.0, 1: 3, 2: 5, 3: 6, 4: 8, 5: 8}

    def test_zero_durations_handled(self, figure3):
        tree = msta_stack(figure3, 0)
        assert tree.arrival_times == {0: 0.0, 1: 1, 4: 3, 3: 4, 2: 4}

    def test_each_vertex_single_in_edge(self, figure1):
        tree = msta_stack(figure1, 0)
        assert set(tree.parent_edge) == {1, 2, 3, 4, 5}
        for v, e in tree.parent_edge.items():
            assert e.target == v

    def test_tree_validates(self, figure1):
        tree = msta_stack(figure1, 0)
        tree.validate(figure1)

    def test_window(self, figure1):
        tree = msta_stack(figure1, 0, TimeWindow(0, 6))
        assert tree.vertices == {0, 1, 2, 3}

    def test_unknown_root(self, figure1):
        with pytest.raises(UnreachableRootError):
            msta_stack(figure1, "nope")

    def test_multi_visit_improvement(self):
        # 3 is first reached late via 1, then earlier via 2; its
        # out-edge to 4 only becomes usable after the improvement.
        g = TemporalGraph(
            [
                TemporalEdge(0, 1, 0, 1, 1),
                TemporalEdge(1, 3, 8, 9, 1),
                TemporalEdge(0, 2, 0, 2, 1),
                TemporalEdge(2, 3, 3, 4, 1),
                TemporalEdge(3, 4, 5, 6, 1),
            ]
        )
        tree = msta_stack(g, 0)
        assert tree.arrival_times[3] == 4
        assert tree.arrival_times[4] == 6


class TestDispatch:
    def test_auto_picks_stack_for_zero_durations(self, figure3):
        tree = minimum_spanning_tree_a(figure3, 0)
        assert 2 in tree.vertices

    def test_auto_picks_chronological_otherwise(self, figure1):
        tree = minimum_spanning_tree_a(figure1, 0)
        assert tree.arrival_times[5] == 8

    def test_explicit_choices(self, figure1):
        a = minimum_spanning_tree_a(figure1, 0, algorithm="chronological")
        b = minimum_spanning_tree_a(figure1, 0, algorithm="stack")
        assert a.arrival_times == b.arrival_times

    def test_unknown_algorithm(self, figure1):
        with pytest.raises(ValueError):
            minimum_spanning_tree_a(figure1, 0, algorithm="dijkstra")


class TestCrossAlgorithmAgreement:
    @pytest.mark.parametrize("seed", range(10))
    def test_alg1_alg2_oracle_agree_nonzero(self, seed):
        g = random_temporal(seed, n=15, m=60)
        expected = earliest_arrival_times(g, 0)
        t1 = msta_chronological(g, 0)
        t2 = msta_stack(g, 0)
        assert t1.arrival_times == expected
        assert t2.arrival_times == expected

    @pytest.mark.parametrize("seed", range(10))
    def test_alg2_oracle_agree_zero_durations(self, seed):
        g = random_temporal(seed, n=15, m=60, zero_duration=True)
        expected = earliest_arrival_times(g, 0)
        t2 = msta_stack(g, 0)
        assert t2.arrival_times == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_trees_validate(self, seed):
        g = random_temporal(seed, n=10, m=35)
        for algorithm in ("chronological", "stack"):
            tree = minimum_spanning_tree_a(g, 0, algorithm=algorithm)
            tree.validate(g)

    @pytest.mark.parametrize("seed", range(5))
    def test_windowed_agreement(self, seed):
        g = random_temporal(seed, n=12, m=50)
        w = TimeWindow(5, 25)
        expected = earliest_arrival_times(g, 0, w)
        assert msta_chronological(g, 0, w).arrival_times == expected
        assert msta_stack(g, 0, w).arrival_times == expected
