"""Property suite: the sharded sweep equals the serial sweep, always.

Satellite of the time-sharded engine: over random temporal graphs,
random slide sequences (window length and step), and random shard
counts, ``sweep_sharded`` / ``run_batch_sharded`` reproduce the serial
reference row-for-row and value-for-value.  The strategy deliberately
manufactures the nasty corners:

* *empty shards* -- windows whose slice holds no edges (sparse graphs,
  short windows) and shard counts above the window count (clamped);
* *halo boundaries* -- integer timestamps with step dividing the window
  length, so window edges land exactly on shard-hull boundaries and an
  off-by-one in the bisect maths would drop or duplicate an edge;
* *seeded worker crashes* -- a deterministic :class:`FaultPlan` firing
  mid-run in a real pool must leave the merged output untouched.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import faults
from repro.core.sliding import iter_windows, sweep
from repro.faults import FaultPlan, FaultSpec, WORKER_CRASH
from repro.parallel.batch import SweepCell, run_sweep_serial
from repro.parallel.shard import plan_shards, run_batch_sharded, sweep_sharded
from repro.temporal.edge import TemporalEdge
from repro.temporal.paths import reachable_set
from repro.temporal.graph import TemporalGraph
from repro.temporal.window import TimeWindow


@st.composite
def shard_graphs(draw, max_vertices=8, max_edges=20):
    """Random temporal graphs with integer timestamps on [0, 24].

    Integer times + integer window grids make halo boundaries exact:
    many drawn examples put an edge's start or arrival precisely on a
    shard hull or window boundary, where ``>=``/``<=`` discipline in
    the slice bisects is make-or-break.
    """
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    edges = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_edges))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        start = draw(st.integers(min_value=0, max_value=24))
        duration = draw(st.integers(min_value=0, max_value=4))
        weight = draw(st.integers(min_value=1, max_value=9))
        edges.append(TemporalEdge(u, v, start, start + duration, weight))
    return TemporalGraph(edges, vertices=range(n))


@st.composite
def slides(draw):
    """A slide sequence: window length plus a step dividing it evenly."""
    length = draw(st.integers(min_value=2, max_value=12))
    step = draw(st.sampled_from([d for d in (1, 2, 3, 4, 6) if d <= length]))
    return float(length), float(step)


class TestShardedSweepProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        graph=shard_graphs(),
        slide=slides(),
        shards=st.integers(min_value=1, max_value=6),
        kind=st.sampled_from(["msta", "mstw"]),
    )
    def test_sweep_rows_identical_to_serial(self, graph, slide, shards, kind):
        length, step = slide
        serial = sweep(graph, 0, length, step=step, kind=kind)
        sharded = sweep_sharded(
            graph, 0, length, step=step, kind=kind, shards=shards
        )
        assert sharded.rows() == serial.rows()
        # The plan covered every window exactly once, empty or not.
        windows = list(iter_windows(graph, length, step))
        assert sum(
            entry["windows"] for entry in sharded.stats["shards"]
        ) == len(windows)

    @settings(max_examples=25, deadline=None)
    @given(
        graph=shard_graphs(),
        slide=slides(),
        shards=st.integers(min_value=1, max_value=5),
        level=st.integers(min_value=1, max_value=2),
    )
    def test_batch_values_identical_to_serial(self, graph, slide, shards, level):
        length, step = slide
        # The cell pipeline (unlike the measurement sweep) propagates
        # UnreachableRootError on both paths identically, but it aborts
        # the reference loop too -- restrict to solvable windows.
        windows = [
            w
            for w in iter_windows(graph, length, step)
            if len(reachable_set(graph, 0, w)) > 1
        ]
        cells = [
            SweepCell(0, window, level=level, algorithm=algorithm)
            for window in windows
            for algorithm in ("pruned", "improved")
        ]
        if not cells:
            return

        expected = run_sweep_serial(graph, cells)
        result = run_batch_sharded(graph, cells, jobs=1, shards=shards)
        assert result.values == expected

    @settings(max_examples=40, deadline=None)
    @given(
        graph=shard_graphs(),
        slide=slides(),
        shards=st.integers(min_value=1, max_value=8),
    )
    def test_plan_partitions_the_grid_exactly(self, graph, slide, shards):
        length, step = slide
        windows = list(iter_windows(graph, length, step))
        specs = plan_shards(windows, shards)
        flattened = [w for spec in specs for w in spec.windows]
        assert flattened == sorted(
            set(windows), key=lambda w: (w.t_alpha, w.t_omega)
        )
        assert all(spec.windows for spec in specs)  # never padded empty
        for spec in specs:
            for window in spec.windows:
                assert spec.t_lo <= window.t_alpha <= window.t_omega <= spec.t_hi

    def test_halo_boundary_edges_stay_in_every_owner_window(self):
        """An edge exactly on two shards' hull boundary serves both.

        Window grid [0,4],[2,6],[4,8] at 2 shards splits into hulls
        [0,6] and [4,8]; the edge (0,1) at time 4 sits on both hulls and
        must appear in each shard's slice for its windows to solve.
        """
        edges = [
            TemporalEdge(0, 2, 0, 0, 3),
            TemporalEdge(0, 1, 4, 4, 1),
            TemporalEdge(1, 2, 5, 5, 1),
            TemporalEdge(2, 1, 7, 8, 2),
        ]
        graph = TemporalGraph(edges, vertices=range(3))
        serial = sweep(graph, 0, 4.0, step=2.0, kind="msta")
        sharded = sweep_sharded(graph, 0, 4.0, step=2.0, kind="msta", shards=2)
        assert sharded.rows() == serial.rows()
        lows = [entry["t_lo"] for entry in sharded.stats["shards"]]
        highs = [entry["t_hi"] for entry in sharded.stats["shards"]]
        assert highs[0] > lows[1]  # the halo really overlaps

    @pytest.mark.parametrize("seed", [3, 17])
    def test_seeded_worker_crash_leaves_output_unchanged(self, seed):
        """A seeded crash schedule in a real pool never alters the rows."""
        import random

        rng = random.Random(seed)
        edges = [
            TemporalEdge(
                rng.randrange(6), rng.randrange(6),
                rng.randint(0, 20), rng.randint(0, 2) + rng.randint(0, 20),
                rng.randint(1, 9),
            )
            for _ in range(24)
        ]
        edges = [e for e in edges if e.arrival >= e.start]
        graph = TemporalGraph(
            [TemporalEdge(e.source, e.target, e.start, max(e.start, e.arrival), e.weight) for e in edges],
            vertices=range(6),
        )
        serial = sweep(graph, 0, 8.0, kind="msta")
        # occurrence=1: with one task per shard each worker fires the
        # site once, so later occurrences would never detonate.
        plan = FaultPlan.of(
            FaultSpec("parallel.task", WORKER_CRASH, occurrence=1)
        )
        with faults.injected(plan):
            sharded = sweep_sharded(graph, 0, 8.0, kind="msta", jobs=2)
        assert sharded.rows() == serial.rows()
        assert sharded.stats["faults"]["rebuilds"] >= 1
