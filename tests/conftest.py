"""Shared fixtures: paper example graphs and random-graph helpers."""

from __future__ import annotations

import random

import pytest

from repro.datasets.paper_examples import figure1_graph, figure3_graph
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph


@pytest.fixture
def figure1():
    """The paper's running example (Figures 1/2/4-7)."""
    return figure1_graph()


@pytest.fixture
def figure3():
    """The zero-duration graph G_0 of Figure 3 / Example 4."""
    return figure3_graph()


@pytest.fixture
def tiny_line():
    """0 -> 1 -> 2 with compatible times."""
    return TemporalGraph(
        [
            TemporalEdge(0, 1, 1, 2, 5),
            TemporalEdge(1, 2, 3, 4, 7),
        ]
    )


def random_temporal(
    seed: int,
    n: int = 12,
    m: int = 40,
    zero_duration: bool = False,
) -> TemporalGraph:
    """A small random temporal multigraph for cross-checking algorithms."""
    rng = random.Random(seed)
    edges = []
    for _ in range(m):
        u = rng.randrange(n)
        v = rng.randrange(n - 1)
        if v >= u:
            v += 1
        start = rng.randint(0, 30)
        duration = 0 if zero_duration else rng.randint(1, 5)
        weight = rng.randint(1, 9)
        edges.append(TemporalEdge(u, v, start, start + duration, weight))
    return TemporalGraph(edges, vertices=range(n))
