"""Violation fixture: duplicate ``__all__`` entry."""

__all__ = ["thing", "thing"]


def thing():
    return 1
