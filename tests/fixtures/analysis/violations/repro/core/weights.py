"""Violation fixture: exact float comparison on edge weights."""


def same_weight(a, b):
    return a.weight == b.weight
