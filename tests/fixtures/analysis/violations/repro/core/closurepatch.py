"""Fixture: writing into a patched closure's shared cost row.

``costs_from`` returns a row of the closure's distance matrix -- the
same array the incremental patcher copies forward between windows.
"""


def zero_out(closure, source):
    row = closure.costs_from(source)
    row[0] = 0.0
    return row
