"""Fixture: mutating a shared TemporalEdgeIndex window slice.

``edges_in`` hands out the index's derived view; appending to it
corrupts every later window query and delta.
"""


def widen(index, window, extra_edge):
    edges = index.edges_in(window)
    edges.append(extra_edge)
    return edges
