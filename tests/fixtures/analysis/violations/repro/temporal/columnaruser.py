"""Fixture: mutating a shared columnar sorted view.

``sorted_starts`` hands out the store's cached array, not a copy;
writing into it corrupts every later window query on the graph.
"""


def shift_starts(graph, offset):
    starts = graph.columnar().sorted_starts()
    starts[0] = starts[0] + offset
    return starts
