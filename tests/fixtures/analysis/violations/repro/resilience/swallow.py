"""Fixture: a broad exception silently swallowed (REP107).

The handler catches everything and does nothing -- any failure in the
cleanup disappears without a retry, a counter, or a typed conversion.
"""


def best_effort_cleanup(path, remover):
    try:
        remover(path)
    except Exception:
        pass
