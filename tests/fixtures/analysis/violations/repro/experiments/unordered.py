"""Violation fixture: unordered pool-result consumption (REP103).

Consuming ``imap_unordered`` outside the deterministic merge layer in
``repro.parallel.engine`` makes output depend on worker scheduling.
"""


def collect(pool, items):
    results = []
    for value in pool.imap_unordered(str, items):
        results.append(value)
    return results
