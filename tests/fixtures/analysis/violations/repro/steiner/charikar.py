"""Violation fixture: unbounded solver loop without a budget checkpoint."""


def drain(queue):
    total = 0
    while queue:
        total += queue.pop()
    return total
