"""Violation fixture: mutating a cached adjacency outside its owning module."""


def corrupt(graph, vertex, edge):
    adjacency = graph.ascending_adjacency()
    adjacency[vertex].append(edge)
    return adjacency
