"""Violation fixture: raw TemporalEdge construction bypassing make_edge."""

from repro.temporal.edge import TemporalEdge


def bad_edge():
    return TemporalEdge(0, 1, 2.0, 1.0, 1.0)
