"""Violation fixture: wall-clock timing inside a benchmarked path."""

import time


def stamp():
    return time.time()
