"""Drains shard results unordered -- the REP103 violation.

The time-sharded executor surface must merge deterministically; only
``repro.parallel.engine`` may consume completion-ordered results.
"""


def run_shards(pool, tasks):
    """One task per shard, results in completion order (wrong)."""
    return sorted(pool.imap_unordered(tuple, tasks))
