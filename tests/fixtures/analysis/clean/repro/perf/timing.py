"""Clean fixture: monotonic timing is allowed in benchmarked paths."""

import time


def stamp():
    return time.perf_counter()
