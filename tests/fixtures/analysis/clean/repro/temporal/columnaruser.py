"""Clean counterpart: copy the sorted view before writing into it."""


def shift_starts(graph, offset):
    starts = list(graph.columnar().sorted_starts())
    starts[0] = starts[0] + offset
    return starts
