"""Clean counterpart: copy the window slice before extending it."""


def widen(index, window, extra_edge):
    edges = list(index.edges_in(window))
    edges.append(extra_edge)
    return edges
