"""Clean fixture: the merge layer itself may consume unordered results.

``repro.parallel.engine`` is the one audited module allowed to call
``imap_unordered`` -- it tags every payload with its submission index
and restores order before results leave the module.
"""


def drain(pool, payloads):
    indexed = []
    for index, value in pool.imap_unordered(_invoke, payloads):
        indexed.append((index, value))
    return [value for _index, value in sorted(indexed)]


def _invoke(payload):
    index, fn, item = payload
    return index, fn(item)
