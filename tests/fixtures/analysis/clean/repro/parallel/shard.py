"""Drains shard results in submission order (clean REP103 form).

``time.perf_counter`` is the allowed elapsed-time probe -- per-shard
timings are diagnostics, not schedule inputs -- and ``pool.map``
preserves submission order, so the merge is deterministic.
"""

import time


def run_shards(pool, tasks):
    """One task per shard, merged in submission order."""
    started = time.perf_counter()
    results = list(pool.map(tuple, tasks))
    return results, time.perf_counter() - started
