"""Clean counterpart: ordered pool iteration preserves determinism."""


def collect(pool, items):
    results = []
    for value in pool.imap(str, items):
        results.append(value)
    return results
