"""Clean fixture: epsilon comparison on weights, NaN idiom exempted."""

from repro.core.numeric import close


def same_weight(a, b):
    return close(a.weight, b.weight)


def is_nan(value):
    return value != value
