"""Clean counterpart: copy the cost row before writing to it."""


def zero_out(closure, source):
    row = closure.costs_from(source).copy()
    row[0] = 0.0
    return row
