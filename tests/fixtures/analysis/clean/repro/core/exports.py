"""Clean fixture: ``__all__`` matches the module's bindings."""

__all__ = ["thing"]


def thing():
    return 1
