"""Fixture: the compliant failure-handling forms.

Either name the exact failure being discarded (a narrow swallow is an
explicit decision), or catch broadly but *act* -- count it, convert it,
re-raise it.
"""


def best_effort_cleanup(path, remover):
    try:
        remover(path)
    except OSError:
        # Named failure: cleanup may race with concurrent deletion.
        pass


def counted_guard(task, stats):
    try:
        return task()
    except Exception as exc:
        stats["failures"] = stats.get("failures", 0) + 1
        raise RuntimeError(f"task failed: {exc}") from exc
