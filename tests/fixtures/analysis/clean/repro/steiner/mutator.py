"""Clean fixture: reading a cached adjacency without mutating it."""


def degree(graph, vertex):
    adjacency = graph.ascending_adjacency()
    return len(adjacency[vertex])
