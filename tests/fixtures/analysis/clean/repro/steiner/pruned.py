"""Clean fixture: an unbounded loop explicitly waived with a suppression."""


def spin(queue):
    while queue:  # repro: ignore[budget-tick] -- bounded by caller contract
        queue.pop()
