"""Clean fixture: solver loop that checkpoints its budget."""


def drain(queue, budget):
    total = 0
    while queue:
        budget.checkpoint()
        total += queue.pop()
    return total


def delegated(queue, budget):
    while queue:
        _scan(queue, budget=budget)


def _scan(queue, budget):
    budget.checkpoint()
    queue.pop()
