"""Clean fixture: edges built through the validated factory."""

from repro.temporal.edge import make_edge


def good_edge():
    return make_edge(0, 1, 1.0, 2.0, 1.0)
