"""The batched-kernel owner module: unguarded ``_np`` is legal here.

``repro.steiner.kernels`` is in ``BACKEND_OWNERS`` -- it implements the
dual-backend dispatch itself, so its numpy-only helpers dereference
``_np`` without per-function guards and REP203 must stay silent.
"""

try:
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def batched_densities(costs):
    """Prefix densities for a batch of cost rows (owner module: exempt)."""
    return _np.cumsum(costs, axis=1)
