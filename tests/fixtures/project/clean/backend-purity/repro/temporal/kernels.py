"""Optional-numpy module with a properly guarded dereference (clean)."""

try:
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def accumulate(values):
    """Sum values, falling back to the pure backend without numpy."""
    if _np is None:
        return float(sum(values))
    return float(_np.asarray(values).sum())
