"""Ships the module-level shard worker entry point (clean)."""

from repro.parallel.engine import ParallelExecutor


def run_shard_task(payload):
    """The picklable per-shard worker entry point."""
    return payload


def run_shards(payloads):
    """One task per shard through the executor."""
    pool = ParallelExecutor(jobs=2)
    return list(pool.map(run_shard_task, payloads))
