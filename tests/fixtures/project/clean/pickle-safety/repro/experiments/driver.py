"""Ships a module-level function across the process boundary (clean)."""

from repro.parallel.engine import ParallelExecutor


def _double(item):
    """The picklable cell function."""
    return item * 2


def run_cells(items):
    """Map a cell function over items through the executor."""
    pool = ParallelExecutor(jobs=2)
    return list(pool.map(_double, items))
