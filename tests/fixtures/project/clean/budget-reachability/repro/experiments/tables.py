"""Entry point that threads its budget through to the solver (clean)."""

from repro.baselines import solve


def run_table(quick=False, budget=None):
    """Build one table row through the solver, budget threaded."""
    items = [3, 1, 2] if quick else [5, 4, 3, 2, 1]
    return solve(items, 0, budget=budget)
