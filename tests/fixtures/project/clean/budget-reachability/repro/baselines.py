"""Solver-grade sink for the budget-reachability fixtures (clean pair)."""


def solve(items, root=0, budget=None):
    """A stand-in solver loop that honours a cooperative budget."""
    total = 0
    for item in items:
        if budget is not None:
            budget.checkpoint()
        total += item
    return total
