"""A never-raise contract that contains the raise (clean pair)."""

from repro.core.errors import BudgetExceededError


def _hot_path(budget):
    """Checkpoint the budget once per call (can raise)."""
    budget.checkpoint()
    return 1


class Engine:
    """Carries the declared degradation contract."""

    def measure(self, budget=None):
        """Exact answer with a caveat when degraded; never raises."""
        try:
            return _hot_path(budget)
        except BudgetExceededError:
            return 0
