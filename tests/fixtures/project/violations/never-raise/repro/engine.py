"""A never-raise contract that leaks BudgetExceededError -- REP204."""


def _hot_path(budget):
    """Checkpoint the budget once per call (can raise)."""
    budget.checkpoint()
    return 1


class Engine:
    """Carries the declared degradation contract."""

    def measure(self, budget=None):
        """Exact answer with a caveat when degraded; never raises."""
        return _hot_path(budget)
