"""Entry point that drops its budget on the way to the solver.

``run_table`` has a budget in scope but calls the solver without it --
the REP201 violation this fixture pins.
"""

from repro.baselines import solve


def run_table(quick=False, budget=None):
    """Build one table row through the solver."""
    items = [3, 1, 2] if quick else [5, 4, 3, 2, 1]
    return solve(items, 0)
