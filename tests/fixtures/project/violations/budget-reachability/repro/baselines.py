"""Solver-grade sink for the budget-reachability fixtures.

Mirrors the real ``repro.baselines`` shape: a budget-accepting loop
that cooperatively checkpoints, making it a REP201 sink.
"""


def solve(items, root=0, budget=None):
    """A stand-in solver loop that honours a cooperative budget."""
    total = 0
    for item in items:
        if budget is not None:
            budget.checkpoint()
        total += item
    return total
