"""Optional-numpy module with an unguarded dereference -- REP203."""

try:
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def accumulate(values):
    """Sum values through the accelerated backend (unguarded: the bug)."""
    return float(_np.asarray(values).sum())
