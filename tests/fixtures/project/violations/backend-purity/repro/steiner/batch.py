"""Optional-numpy solver helper outside the owner set -- REP203.

Same shape as the real batched kernels, but living in a module that is
*not* in ``BACKEND_OWNERS``: the unguarded ``_np`` dereference must
fire.
"""

try:
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def batched_densities(costs):
    """Prefix densities for a batch of cost rows (unguarded: the bug)."""
    return _np.cumsum(costs, axis=1)
