"""Ships a lambda across the process boundary -- the REP202 violation."""

from repro.parallel.engine import ParallelExecutor


def run_cells(items):
    """Map a cell function over items through the executor."""
    pool = ParallelExecutor(jobs=2)
    return list(pool.map(lambda item: item * 2, items))
