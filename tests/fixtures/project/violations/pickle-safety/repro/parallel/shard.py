"""Ships a shard task lambda across the process boundary -- REP202."""

from repro.parallel.engine import ParallelExecutor


def run_shards(payloads):
    """One task per shard; the lambda cannot cross the pool boundary."""
    pool = ParallelExecutor(jobs=2)
    return list(pool.map(lambda payload: payload, payloads))
