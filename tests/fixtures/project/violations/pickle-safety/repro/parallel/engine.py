"""Minimal executor mirror for the pickle-safety fixtures."""


class ParallelExecutor:
    """Stand-in for the real process-pool executor."""

    def __init__(self, jobs=None, initializer=None, initargs=()):
        self.jobs = jobs
        self.initializer = initializer
        self.initargs = initargs

    def map(self, fn, items):
        """Run ``fn`` over ``items`` (serially here; the shape matters)."""
        return [fn(item) for item in items]
