"""Tests for the ignore-time (static projection) baseline."""

import pytest

from repro.baselines.static_projection import (
    StaticComparison,
    realize_static_tree,
    static_arborescence,
    static_gap_report,
)
from repro.core.errors import UnreachableRootError
from repro.core.mstw import minimum_spanning_tree_w
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph

from tests.conftest import random_temporal


class TestStaticArborescence:
    def test_figure1_weight_is_lower_bound(self, figure1):
        tree = static_arborescence(figure1, 0)
        static_weight = sum(w for _, _, w in tree)
        # the cheapest parallel copy of each pair ignores feasibility,
        # so the static weight can only undercut the true MST_w (11)
        assert static_weight <= 11.0

    def test_unreachable_root(self):
        g = TemporalGraph([TemporalEdge(1, 2, 0, 1, 1)], vertices=[0, 1, 2])
        with pytest.raises(UnreachableRootError):
            static_arborescence(g, 0)

    def test_restricted_to_reachable_component(self):
        g = TemporalGraph(
            [TemporalEdge(0, 1, 0, 1, 1), TemporalEdge(2, 3, 0, 1, 1)]
        )
        tree = static_arborescence(g, 0)
        assert [(u, v) for u, v, _ in tree] == [(0, 1)]


class TestRealization:
    def test_feasibility_failure_detected(self):
        # statically 0->1->2 is cheapest, but 1->2 departs before 1 is
        # reached; the realisation loses vertex 2.
        g = TemporalGraph(
            [
                TemporalEdge(0, 1, 5, 6, 1),
                TemporalEdge(1, 2, 0, 1, 1),
                TemporalEdge(0, 2, 0, 1, 100),
            ]
        )
        comparison = realize_static_tree(g, 0)
        assert comparison.static_weight == 2.0
        assert 2 in comparison.infeasible
        assert comparison.feasible == {1}
        assert comparison.feasible_fraction == 0.5

    def test_subtree_infeasibility_cascades(self):
        g = TemporalGraph(
            [
                TemporalEdge(0, 1, 5, 6, 1),
                TemporalEdge(1, 2, 0, 1, 1),  # infeasible hop
                TemporalEdge(2, 3, 10, 11, 1),  # child of the infeasible one
            ]
        )
        comparison = realize_static_tree(g, 0)
        assert {2, 3} <= comparison.infeasible

    def test_fully_feasible_graph(self, figure1):
        comparison = realize_static_tree(figure1, 0)
        # figure 1 has generous timestamps; everything stays realisable
        assert comparison.infeasible == set()
        assert comparison.feasible == {1, 2, 3, 4, 5}
        assert comparison.realized_weight > 0

    def test_static_weight_lower_bounds_temporal(self, figure1):
        comparison = realize_static_tree(figure1, 0)
        temporal = minimum_spanning_tree_w(figure1, 0, level=3).weight
        assert comparison.static_weight <= temporal + 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs_partition_feasibility(self, seed):
        g = random_temporal(seed, n=10, m=40)
        try:
            comparison = realize_static_tree(g, 0)
        except UnreachableRootError:
            pytest.skip("root statically isolated")
        # feasible and infeasible partition the non-root tree vertices
        assert not (comparison.feasible & comparison.infeasible)
        assert comparison.realized_weight >= 0

    def test_empty_feasibility_fraction(self):
        comparison = StaticComparison(0.0, 0.0, set(), set())
        assert comparison.feasible_fraction == 1.0


class TestGapReport:
    def test_report_keys_and_consistency(self, figure1):
        temporal = minimum_spanning_tree_w(figure1, 0, level=2).weight
        report = static_gap_report(figure1, 0, temporal)
        assert set(report) == {
            "static_weight",
            "realized_weight",
            "temporal_weight",
            "feasible_fraction",
            "coverage_lost",
        }
        assert report["temporal_weight"] == temporal
        assert 0 <= report["feasible_fraction"] <= 1
