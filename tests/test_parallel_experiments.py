"""Parallel experiment grids: identical tables and checkpoints at any jobs.

Satellite properties of the batch-query engine PR:

* a table run at ``--jobs N`` renders byte-identically to ``--jobs 1``
  (the prefetch layer fills the same keyed cell cache the serial
  assembly loop reads), and the checkpoint files are byte-identical;
* that identity holds when cells go over budget (the structured
  markers round-trip losslessly across the process boundary);
* a parallel run killed mid-grid resumes at a *different* ``--jobs``
  value and still converges to the uninterrupted output.

``table6`` is the workload: its 14 quick cells are deterministic
weights (no timings), so byte-identity is meaningful.
"""

import json

import pytest

from repro.core.errors import ExperimentInterruptedError
from repro.experiments import ExperimentContext, run_experiment
from repro.experiments.mstw_tables import run_table6
from repro.experiments.runner import DegradedCell, OverBudgetCell
from repro.parallel.tasks import experiment_tasks

EXPERIMENT = "table6"


def _run_with_checkpoint(tmp_path, jobs, budget=None):
    """One full table run, keeping the final checkpoint for comparison.

    Drives the context directly (prefetch + serial assembly, the same
    steps ``run_experiment`` performs) but skips ``complete()`` so the
    checkpoint file survives for byte comparison.
    """
    directory = tmp_path / f"jobs{jobs}"
    context = ExperimentContext(
        checkpoint_dir=str(directory), jobs=jobs, cell_budget_seconds=budget
    )
    context.begin(EXPERIMENT, True)
    if jobs > 1:
        context.prefetch(experiment_tasks(EXPERIMENT, True))
    result = run_table6(quick=True, context=context)
    checkpoint = (directory / f"{EXPERIMENT}.json").read_text()
    return result, checkpoint


class TestParallelIdentity:
    def test_tables_and_checkpoints_identical_across_jobs(self, tmp_path):
        baseline, base_checkpoint = _run_with_checkpoint(tmp_path, jobs=1)
        for jobs in (2, 4):
            result, checkpoint = _run_with_checkpoint(tmp_path, jobs=jobs)
            assert result.render() == baseline.render()
            assert result.rows == baseline.rows
            assert checkpoint == base_checkpoint

    def test_identity_holds_with_degraded_cells(self, tmp_path):
        """An impossible budget degrades every cell down the ladder;
        the DegradedCell markers are deterministic, so byte-identity
        still holds across jobs."""
        baseline, base_checkpoint = _run_with_checkpoint(
            tmp_path, jobs=1, budget=1e-9
        )
        cells = [c for row in baseline.rows for c in row]
        assert any(isinstance(c, DegradedCell) for c in cells)
        for jobs in (2, 4):
            result, checkpoint = _run_with_checkpoint(
                tmp_path, jobs=jobs, budget=1e-9
            )
            assert result.render() == baseline.render()
            assert checkpoint == base_checkpoint

    def test_over_budget_cells_survive_parallel_runs(self, tmp_path):
        """fig8a has no fallback ladder: an impossible budget turns
        every cell into an OverBudgetCell.  The measured elapsed is
        inherently nondeterministic, so the parallel run must agree
        with the serial one cell-for-cell *structurally*."""
        baseline = run_experiment(
            "fig8a",
            quick=True,
            context=ExperimentContext(
                checkpoint_dir=str(tmp_path / "a1"),
                jobs=1,
                cell_budget_seconds=1e-9,
            ),
        )
        cells = [c for row in baseline.rows for c in row]
        assert any(isinstance(c, OverBudgetCell) for c in cells)
        parallel = run_experiment(
            "fig8a",
            quick=True,
            context=ExperimentContext(
                checkpoint_dir=str(tmp_path / "a2"),
                jobs=2,
                cell_budget_seconds=1e-9,
            ),
        )
        assert parallel.header == baseline.header
        assert len(parallel.rows) == len(baseline.rows)
        for parallel_row, baseline_row in zip(parallel.rows, baseline.rows):
            for parallel_cell, baseline_cell in zip(parallel_row, baseline_row):
                assert type(parallel_cell) is type(baseline_cell)
                if not isinstance(parallel_cell, OverBudgetCell):
                    assert parallel_cell == baseline_cell

    def test_run_experiment_dispatches_prefetch(self, tmp_path):
        serial = run_experiment(EXPERIMENT, quick=True)
        parallel = run_experiment(
            EXPERIMENT,
            quick=True,
            context=ExperimentContext(checkpoint_dir=str(tmp_path), jobs=2),
        )
        assert parallel.render() == serial.render()
        # completed runs delete their checkpoint, parallel or not
        assert not (tmp_path / f"{EXPERIMENT}.json").exists()


class TestInterruptResumeAcrossJobs:
    def test_parallel_interrupt_resumes_at_different_jobs(self, tmp_path):
        baseline = run_experiment(EXPERIMENT, quick=True)

        interrupted = ExperimentContext(
            checkpoint_dir=str(tmp_path), jobs=2, interrupt_after=5
        )
        with pytest.raises(ExperimentInterruptedError):
            run_experiment(EXPERIMENT, quick=True, context=interrupted)
        path = tmp_path / f"{EXPERIMENT}.json"
        assert path.exists()
        saved = json.loads(path.read_text())
        assert len(saved["cells"]) == 5

        # Resume with a different worker count than the killed run.
        for resume_jobs in (4, 1):
            resumed_context = ExperimentContext(
                checkpoint_dir=str(tmp_path), jobs=resume_jobs, resume=True
            )
            resumed = run_experiment(
                EXPERIMENT, quick=True, context=resumed_context
            )
            assert resumed.rows == baseline.rows
            assert resumed.render() == baseline.render()
            # the first resume completes and deletes the checkpoint;
            # later iterations recompute from scratch, which is fine
            if resume_jobs == 4:
                assert resumed_context.fresh_cells == 14 - 5
                assert not path.exists()

    def test_prefetch_honors_interrupt_after(self, tmp_path):
        context = ExperimentContext(
            checkpoint_dir=str(tmp_path), jobs=2, interrupt_after=3
        )
        context.begin(EXPERIMENT, True)
        with pytest.raises(ExperimentInterruptedError):
            context.prefetch(experiment_tasks(EXPERIMENT, True))
        assert context.fresh_cells == 3
        saved = json.loads((tmp_path / f"{EXPERIMENT}.json").read_text())
        assert len(saved["cells"]) == 3
