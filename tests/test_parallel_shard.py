"""The time-sharded sweep engine: planner, payloads, identity, faults.

Headline property (the tentpole's contract): ``run_batch_sharded`` and
``sweep_sharded`` produce output byte-identical to the serial reference
(``run_sweep_serial`` / ``sweep(engine="incremental")``) at *any* shard
and job count, while each worker deserializes only its shard's columnar
slice -- never the whole graph.  Randomised coverage (slide sequences,
empty shards, halo boundaries, seeded crashes) lives in
``test_property_shard.py``; this file pins the deterministic surface.
"""

import pickle
import random
from array import array

import pytest

from repro import faults
from repro.core.errors import ReproError
from repro.core.sliding import iter_windows, sweep
from repro.experiments.runner import OverBudgetCell
from repro.faults import FaultPlan, FaultSpec, TASK_ERROR, WORKER_CRASH
from repro.parallel.batch import (
    BatchResult,
    SweepCell,
    run_batch,
    run_sweep_serial,
)
from repro.parallel.shard import (
    ShardPayload,
    ShardSpec,
    plan_shards,
    run_batch_sharded,
    sweep_sharded,
)
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.window import TimeWindow


def _sweep_graph(n=14, extra=30, seed=11):
    """The deterministic batch-sweep graph (mirrors test_parallel_batch)."""
    rng = random.Random(seed)
    edges = []
    for v in range(1, n):
        start = 4 + (v - 1)
        edges.append(TemporalEdge(v - 1, v, start, start, rng.randint(1, 9)))
    for _ in range(extra):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        start = rng.randint(0, 18)
        edges.append(
            TemporalEdge(u, v, start, start + rng.randint(0, 2), rng.randint(1, 9))
        )
    return TemporalGraph(edges, vertices=range(n))


#: A sliding grid (not nested): contiguous runs shard naturally.
WINDOWS = tuple(TimeWindow(float(t), float(t + 8)) for t in range(0, 14, 2))

VARIANTS = (("pruned", 1), ("pruned", 2), ("improved", 2))


def _cells(windows=WINDOWS, fallback=False):
    return [
        SweepCell(0, window, level=level, algorithm=algorithm, fallback=fallback)
        for window in windows
        for algorithm, level in VARIANTS
    ]


class TestPlanShards:
    def test_partition_is_contiguous_and_ordered(self):
        specs = plan_shards(WINDOWS, 3)
        assert [s.index for s in specs] == [0, 1, 2]
        flattened = [w for s in specs for w in s.windows]
        assert flattened == sorted(
            set(WINDOWS), key=lambda w: (w.t_alpha, w.t_omega)
        )

    def test_near_equal_sizes_first_shards_get_extra(self):
        specs = plan_shards(WINDOWS, 3)  # 7 windows -> 3, 2, 2
        assert [len(s.windows) for s in specs] == [3, 2, 2]

    def test_single_shard_is_whole_grid(self):
        (spec,) = plan_shards(WINDOWS, 1)
        assert spec.windows == WINDOWS
        assert spec.t_lo == WINDOWS[0].t_alpha
        assert spec.t_hi == WINDOWS[-1].t_omega

    def test_more_shards_than_windows_clamps_without_empties(self):
        specs = plan_shards(WINDOWS, 100)
        assert len(specs) == len(WINDOWS)
        assert all(len(s.windows) == 1 for s in specs)

    def test_duplicate_windows_deduplicated(self):
        specs = plan_shards(WINDOWS + WINDOWS, 2)
        assert sum(len(s.windows) for s in specs) == len(WINDOWS)

    def test_empty_input_plans_nothing(self):
        assert plan_shards([], 4) == []

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ReproError):
            plan_shards(WINDOWS, 0)

    def test_halo_hulls_cover_every_window(self):
        """Each window fits inside its own shard's time hull.

        This is the halo invariant the byte-identity argument rests on:
        a shard can extract any of its windows without seeing edges
        owned by another shard.  Adjacent hulls overlap by up to one
        window length.
        """
        specs = plan_shards(WINDOWS, 3)
        for spec in specs:
            for window in spec.windows:
                assert spec.t_lo <= window.t_alpha
                assert window.t_omega <= spec.t_hi
        for left, right in zip(specs, specs[1:]):
            overlap = left.t_hi - right.t_lo
            assert overlap <= WINDOWS[0].t_omega - WINDOWS[0].t_alpha

    def test_spec_hull_properties(self):
        spec = ShardSpec(index=0, windows=(TimeWindow(2, 9), TimeWindow(4, 11)))
        assert spec.t_lo == 2
        assert spec.t_hi == 11


class TestShardPayload:
    def test_slice_matches_direct_window_filter(self):
        graph = _sweep_graph()
        payload = ShardPayload.slice_of(graph.columnar(), 4.0, 12.0)
        expected = [e for e in graph.edges if e.within(4.0, 12.0)]
        rebuilt = payload.to_graph()
        assert [tuple(e) for e in rebuilt.edges] == [tuple(e) for e in expected]
        assert payload.num_edges == len(expected)

    def test_columns_are_stdlib_arrays_not_edge_objects(self):
        """The compactness contract: arrays only, no per-edge objects."""
        graph = _sweep_graph()
        payload = ShardPayload.slice_of(graph.columnar(), 0.0, 20.0)
        assert isinstance(payload.columns["sources"], array)
        assert isinstance(payload.columns["targets"], array)
        for key in ("starts", "arrivals", "weights"):
            assert isinstance(payload.columns[key], (array, tuple))
        assert type(payload.columns["labels"]) is tuple

    def test_slice_pickles_smaller_than_whole_graph(self):
        graph = _sweep_graph(n=30, extra=120)
        windows = list(iter_windows(graph, 4.0))
        spec = plan_shards(windows, 4)[0]
        payload = ShardPayload.slice_of(graph.columnar(), spec.t_lo, spec.t_hi)
        assert len(pickle.dumps(payload)) < len(pickle.dumps(graph))

    def test_slice_excludes_out_of_range_edges(self):
        graph = _sweep_graph()
        payload = ShardPayload.slice_of(graph.columnar(), 6.0, 10.0)
        for edge in payload.to_graph().edges:
            assert edge.start >= 6.0
            assert edge.arrival <= 10.0

    def test_empty_slice_rebuilds_edgeless_graph(self):
        graph = _sweep_graph()
        payload = ShardPayload.slice_of(graph.columnar(), 100.0, 101.0)
        assert payload.num_edges == 0
        rebuilt = payload.to_graph()
        assert rebuilt.num_edges == 0
        assert rebuilt.num_vertices == 0

    def test_rebuilt_edges_keep_value_types(self):
        edges = [
            TemporalEdge("a", "b", 1, 2, 3),
            TemporalEdge("b", "c", 2.5, 3.5, 4.5),
        ]
        graph = TemporalGraph(edges)
        payload = ShardPayload.slice_of(graph.columnar(), 0.0, 10.0)
        rebuilt = payload.to_graph().edges
        assert [tuple(e) for e in rebuilt] == [tuple(e) for e in edges]
        assert type(rebuilt[0].weight) is int
        assert type(rebuilt[1].weight) is float

    def test_payload_round_trips_through_pickle(self):
        graph = _sweep_graph()
        payload = ShardPayload.slice_of(graph.columnar(), 0.0, 20.0)
        clone = pickle.loads(pickle.dumps(payload))
        assert [tuple(e) for e in clone.to_graph().edges] == [
            tuple(e) for e in payload.to_graph().edges
        ]


class TestBatchShardedEqualsSerial:
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_values_identical_at_any_shard_count(self, shards):
        graph = _sweep_graph()
        cells = _cells()
        expected = run_sweep_serial(graph, cells)
        result = run_batch_sharded(graph, cells, jobs=1, shards=shards)
        assert isinstance(result, BatchResult)
        assert result.values == expected
        assert result.fallback_summaries == [None] * len(cells)

    def test_values_identical_in_real_pool(self):
        graph = _sweep_graph()
        cells = _cells()
        expected = run_sweep_serial(graph, cells)
        result = run_batch_sharded(graph, cells, jobs=2)
        assert result.values == expected

    def test_fallback_cells_round_trip(self):
        graph = _sweep_graph()
        cells = _cells(windows=WINDOWS[:3], fallback=True)
        expected = run_sweep_serial(graph, cells)
        result = run_batch_sharded(graph, cells, jobs=1, shards=2)
        assert result.values == expected
        for summary in result.fallback_summaries:
            assert summary is not None
            assert summary["attempts"][0]["status"] == "ok"

    def test_over_budget_cells_survive_the_boundary(self):
        graph = _sweep_graph()
        cells = _cells(windows=WINDOWS[:1])
        result = run_batch_sharded(
            graph, cells, jobs=1, shards=2, budget_seconds=1e-9
        )
        assert all(isinstance(v, OverBudgetCell) for v in result.values)

    def test_shard_diagnostics_shape(self):
        graph = _sweep_graph()
        cells = _cells()
        result = run_batch_sharded(graph, cells, jobs=1, shards=3)
        assert result.shards is not None
        assert len(result.shards) == 3
        for entry in result.shards:
            assert set(entry) >= {
                "shard", "t_lo", "t_hi", "windows",
                "edges", "payload_bytes", "cells", "elapsed_s",
            }
            assert entry["payload_bytes"] > 0
            assert entry["elapsed_s"] >= 0
        assert sum(e["cells"] for e in result.shards) == len(cells)

    def test_run_batch_routes_shards_argument(self):
        """``run_batch(..., shards=N)`` delegates to the sharded engine."""
        graph = _sweep_graph()
        cells = _cells()
        expected = run_sweep_serial(graph, cells)
        routed = run_batch(graph, cells, jobs=1, shards=2)
        assert routed.values == expected
        assert routed.shards is not None and len(routed.shards) == 2
        legacy = run_batch(graph, cells, jobs=1)
        assert legacy.values == expected
        assert legacy.shards is None

    def test_reuse_counters_aggregate_across_shards(self):
        graph = _sweep_graph()
        cells = _cells()
        result = run_batch_sharded(graph, cells, jobs=1, shards=2)
        # Each shard's worker shares one reuse index across its cells:
        # same-window variants hit it.
        assert result.reuse["hits"] >= len(cells) - len(WINDOWS)
        assert result.reuse["misses"] >= 2  # one cold extraction per shard


class TestSweepSharded:
    @pytest.mark.parametrize("shards", [1, 2, 3, 5])
    def test_msta_rows_identical_to_serial_sweep(self, shards):
        graph = _sweep_graph()
        serial = sweep(graph, 0, 8.0, kind="msta")
        sharded = sweep_sharded(graph, 0, 8.0, kind="msta", shards=shards)
        assert sharded.rows() == serial.rows()
        assert sharded.engine == "sharded"
        assert sharded.kind == "msta"

    @pytest.mark.parametrize("shards", [2, 3])
    def test_mstw_rows_identical_to_serial_sweep(self, shards):
        graph = _sweep_graph()
        serial = sweep(graph, 0, 8.0, kind="mstw")
        sharded = sweep_sharded(graph, 0, 8.0, kind="mstw", shards=shards)
        assert sharded.rows() == serial.rows()

    def test_rows_identical_in_real_pool(self):
        graph = _sweep_graph()
        serial = sweep(graph, 0, 8.0, kind="msta")
        sharded = sweep_sharded(graph, 0, 8.0, kind="msta", jobs=2)
        assert sharded.rows() == serial.rows()

    def test_explicit_step_is_honoured(self):
        graph = _sweep_graph()
        serial = sweep(graph, 0, 8.0, step=3.0, kind="msta")
        sharded = sweep_sharded(graph, 0, 8.0, step=3.0, kind="msta", shards=3)
        assert sharded.rows() == serial.rows()

    def test_stats_carry_shard_and_fault_diagnostics(self):
        graph = _sweep_graph()
        result = sweep_sharded(graph, 0, 8.0, kind="msta", shards=2)
        assert result.stats is not None
        shards = result.stats["shards"]
        assert len(shards) == 2
        assert all(entry["payload_bytes"] > 0 for entry in shards)
        assert sum(entry["windows"] for entry in shards) == len(
            list(iter_windows(graph, 8.0))
        )
        assert result.stats["faults"] == {
            "retries": 0, "rebuilds": 0, "inline_fallbacks": 0, "timeouts": 0,
        }

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="kind"):
            sweep_sharded(_sweep_graph(), 0, 8.0, kind="mst")

    def test_jobs_aligned_default_plans_one_shard_per_job(self):
        graph = _sweep_graph()
        result = sweep_sharded(graph, 0, 8.0, kind="msta", jobs=2)
        assert len(result.stats["shards"]) == 2


class TestShardedFaultRecovery:
    """Shard tasks ride the executor's crash/retry/rebuild ladder."""

    def test_task_error_retried_values_unchanged(self):
        graph = _sweep_graph()
        cells = _cells()
        expected = run_sweep_serial(graph, cells)
        plan = FaultPlan.of(FaultSpec("parallel.task", TASK_ERROR, occurrence=1))
        with faults.injected(plan):
            result = run_batch_sharded(graph, cells, jobs=2)
        assert result.values == expected
        assert result.faults["retries"] >= 1

    def test_worker_crash_rebuilds_pool_values_unchanged(self):
        graph = _sweep_graph()
        cells = _cells()
        expected = run_sweep_serial(graph, cells)
        plan = FaultPlan.of(FaultSpec("parallel.task", WORKER_CRASH, occurrence=1))
        with faults.injected(plan):
            result = run_batch_sharded(graph, cells, jobs=2)
        assert result.values == expected
        assert result.faults["rebuilds"] >= 1

    def test_sweep_survives_worker_crash(self):
        graph = _sweep_graph()
        serial = sweep(graph, 0, 8.0, kind="msta")
        plan = FaultPlan.of(FaultSpec("parallel.task", WORKER_CRASH, occurrence=1))
        with faults.injected(plan):
            sharded = sweep_sharded(graph, 0, 8.0, kind="msta", jobs=2)
        assert sharded.rows() == serial.rows()
        assert sharded.stats["faults"]["rebuilds"] >= 1
