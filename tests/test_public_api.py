"""Public API surface checks.

Locks down the names downstream users import, so accidental removals or
renames fail loudly here rather than in user code.
"""

import importlib

import pytest


EXPECTED_TOP_LEVEL = {
    "TemporalEdge",
    "TemporalGraph",
    "TemporalSpanningTree",
    "TemporalSteinerResult",
    "TimeWindow",
    "TransformedGraph",
    "MSTwResult",
    "minimum_spanning_tree_a",
    "minimum_spanning_tree_w",
    "minimum_steiner_tree_w",
    "msta_chronological",
    "msta_stack",
    "transform_temporal_graph",
    "ReproError",
    "GraphFormatError",
    "UnreachableRootError",
    "ZeroDurationError",
}


def test_top_level_exports():
    import repro

    assert EXPECTED_TOP_LEVEL <= set(repro.__all__)
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize(
    "module,names",
    [
        ("repro.temporal", ["TemporalEdgeIndex", "earliest_arrival_times",
                            "information_latency", "iter_snapshots"]),
        ("repro.static", ["StaticDigraph", "build_metric_closure",
                          "build_metric_closure_dag", "LazyMetricClosure",
                          "minimum_spanning_arborescence"]),
        ("repro.steiner", ["charikar_dst", "improved_dst", "pruned_dst",
                           "exact_dst_cost", "exact_dst_cost_labeling",
                           "prepare_instance", "combined_lower_bound"]),
        ("repro.core", ["OnlineMSTa", "sliding_msta", "cluster_by_weight",
                        "sweep", "SweepResult", "WindowMeasurement",
                        "tree_to_json", "tree_from_json"]),
        ("repro.incremental", ["IncrementalMSTa", "SlidingEngine",
                               "patch_prepared_instance",
                               "sliding_msta_incremental",
                               "sliding_mstw_incremental"]),
        ("repro.baselines", ["bhadra_msta", "brute_force_mstw_weight",
                             "realize_static_tree"]),
        ("repro.hardness", ["max_leaf_spanning_tree", "max_leaf_to_mstw_graph"]),
        ("repro.datasets", ["load_dataset", "figure1_graph",
                            "weight_cascade_weights"]),
        ("repro.experiments", ["run_experiment", "EXPERIMENTS", "TableResult"]),
    ],
)
def test_subpackage_exports(module, names):
    mod = importlib.import_module(module)
    for name in names:
        assert hasattr(mod, name), f"{module}.{name} missing"
        assert name in mod.__all__ or module == "repro.experiments" or not hasattr(
            mod, "__all__"
        ) or name in getattr(mod, "__all__"), name


def test_all_lists_are_sorted_ish_and_resolvable():
    for module in (
        "repro",
        "repro.temporal",
        "repro.static",
        "repro.steiner",
        "repro.core",
        "repro.incremental",
        "repro.baselines",
        "repro.hardness",
        "repro.datasets",
        "repro.experiments",
    ):
        mod = importlib.import_module(module)
        exported = getattr(mod, "__all__", [])
        for name in exported:
            assert hasattr(mod, name), f"{module}.{name} in __all__ but missing"


def test_version_string():
    import repro

    assert repro.__version__ == "1.0.0"


def test_docstrings_on_public_callables():
    """Every public function/class in the core modules is documented."""
    import repro

    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj):
            assert obj.__doc__, f"{name} lacks a docstring"
