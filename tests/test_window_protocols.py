"""Protocol-level tests for windowed evaluation (Section 5.1 mechanics)."""


import pytest

from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.window import (
    TimeWindow,
    extract_window,
    middle_tenth_window,
    select_root,
)

from tests.conftest import random_temporal


class TestMiddleTenthProtocol:
    @pytest.mark.parametrize("seed", range(4))
    def test_window_is_centred(self, seed):
        g = random_temporal(seed, n=10, m=50)
        t_a, t_omega = g.time_span()
        w = middle_tenth_window(g)
        left_margin = w.t_alpha - t_a
        right_margin = t_omega - w.t_omega
        assert left_margin == pytest.approx(right_margin)

    @pytest.mark.parametrize("fraction", [0.1, 0.25, 0.5, 1.0])
    def test_window_length_fraction(self, fraction, figure1):
        t_a, t_omega = figure1.time_span()
        w = middle_tenth_window(figure1, fraction=fraction)
        assert w.length == pytest.approx(fraction * (t_omega - t_a))

    def test_extracted_edges_strictly_within(self, figure1):
        w = middle_tenth_window(figure1, fraction=0.5)
        sub = extract_window(figure1, w)
        for e in sub.edges:
            assert w.t_alpha <= e.start
            assert e.arrival <= w.t_omega


class TestRootSelectionProtocol:
    def test_scans_in_label_order(self):
        # both 3 and 1 reach enough; the smaller label wins
        g = TemporalGraph(
            [
                TemporalEdge(3, 4, 0, 1, 1),
                TemporalEdge(1, 2, 0, 1, 1),
            ],
            vertices=range(5),
        )
        assert select_root(g, min_reach_fraction=0.1) == 1

    def test_fraction_zero_accepts_any_reaching_vertex(self, figure1):
        assert select_root(figure1, min_reach_fraction=0.0) == 0

    def test_windowed_selection_uses_window(self, figure1):
        # within [7, 11] only vertex 4 has a usable out-edge (4->5 @8)
        w = TimeWindow(7, 11)
        root = select_root(extract_window(figure1, w), w, min_reach_fraction=0.1)
        assert root == 4


class TestWindowEdgeCases:
    def test_point_window_only_instantaneous_edges(self, figure3):
        w = TimeWindow(4, 4)
        sub = extract_window(figure3, w)
        assert all(e.start == e.arrival == 4 for e in sub.edges)
        assert sub.num_edges == 2

    def test_infinite_window_is_identity(self, figure1):
        sub = extract_window(figure1, TimeWindow.unbounded())
        assert sub.num_edges == figure1.num_edges

    def test_window_hash_and_equality(self):
        assert TimeWindow(0, 5) == TimeWindow(0, 5)
        assert len({TimeWindow(0, 5), TimeWindow(0, 5)}) == 1
        assert TimeWindow(0, 5) != TimeWindow(0, 6)

    def test_window_with_infinite_bounds_contains(self):
        w = TimeWindow.unbounded()
        assert w.contains(0)
        assert w.contains(1e18)
        assert not w.contains(-1)
