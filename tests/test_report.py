"""Tests for markdown report generation."""


from repro.experiments.report import PAPER_CLAIMS, build_report, table_to_markdown
from repro.experiments.runner import TableResult


class TestTableToMarkdown:
    def test_structure(self):
        result = TableResult("x", "Title", ["a", "b"])
        result.add_row(1, 2.0)
        md = table_to_markdown(result)
        lines = md.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2.000 |"

    def test_dash_cells_preserved(self):
        result = TableResult("x", "T", ["a"])
        result.add_row("-")
        assert "| - |" in table_to_markdown(result)


class TestBuildReport:
    def test_single_experiment(self):
        report = build_report(["table1"], quick=True)
        assert report.startswith("# Regenerated evaluation")
        assert "## Table 1" in report
        assert "*Paper claim:*" in report
        assert "| dataset |" in report

    def test_notes_become_quotes(self):
        report = build_report(["table1"], quick=True)
        assert "> regimes preserved" in report

    def test_claims_cover_all_experiments(self):
        from repro.experiments import EXPERIMENTS

        assert set(PAPER_CLAIMS) == set(EXPERIMENTS)

    def test_cli_markdown_to_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        code = main(["experiment", "table1", "--quick", "--markdown", str(out)])
        assert code == 0
        assert "## Table 1" in out.read_text()
