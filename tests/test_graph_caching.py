"""Behavioural tests for TemporalGraph's cached derived structures."""

import pytest

from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph


class TestCaching:
    def test_chronological_cached_identity(self, figure1):
        assert figure1.chronological_edges() is figure1.chronological_edges()

    def test_sorted_adjacency_cached_identity(self, figure1):
        assert figure1.sorted_adjacency() is figure1.sorted_adjacency()

    def test_arrival_sorted_cached_identity(self, figure1):
        assert figure1.arrival_sorted_edges() is figure1.arrival_sorted_edges()

    def test_out_edges_consistent_with_adjacency(self, figure1):
        adjacency = figure1.sorted_adjacency()
        for v in figure1.vertices:
            assert sorted(map(tuple, figure1.out_edges(v))) == sorted(
                map(tuple, adjacency[v])
            )

    def test_derived_graphs_do_not_share_caches(self, figure1):
        restricted = figure1.restricted(0, 6)
        assert restricted.chronological_edges() is not figure1.chronological_edges()
        assert len(restricted.chronological_edges()) < len(
            figure1.chronological_edges()
        )


class TestImmutability:
    def test_edges_tuple_is_immutable(self, figure1):
        with pytest.raises((TypeError, AttributeError)):
            figure1.edges[0] = TemporalEdge(9, 9, 0, 1, 1)

    def test_vertices_frozenset(self, figure1):
        assert isinstance(figure1.vertices, frozenset)

    def test_with_durations_leaves_original_untouched(self, figure1):
        before = [tuple(e) for e in figure1.edges]
        figure1.with_durations(0)
        assert [tuple(e) for e in figure1.edges] == before

    def test_with_weights_leaves_original_untouched(self, tiny_line):
        before = [tuple(e) for e in tiny_line.edges]
        tiny_line.with_weights({(0, 1): 9, (1, 2): 9})
        assert [tuple(e) for e in tiny_line.edges] == before


class TestAdjacencyMutationSafety:
    def test_mutating_returned_lists_is_callers_problem_but_detectable(self, figure1):
        """The adjacency dict is cached; the contract is read-only use.

        This test documents the sharing (it is intentional, for O(M)
        algorithm inputs) so any future defensive-copy change is
        deliberate.
        """
        adjacency = figure1.sorted_adjacency()
        again = figure1.sorted_adjacency()
        assert adjacency is again
