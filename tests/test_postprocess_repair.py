"""Direct tests of the postprocessing internals, including the repair pass.

The smallest-arrival rule of Step 2(b) is provably safe except in
degenerate zero-duration graphs with mutually-enabling same-timestamp
edges; these tests drive :func:`_repair_selection` and
:func:`_smallest_arrival_selection` directly so the defensive path is
covered even if no dataset happens to trigger it.
"""

import pytest

from repro.core.errors import InvalidTreeError
from repro.core.postprocess import (
    _repair_selection,
    _smallest_arrival_selection,
)
from repro.temporal.edge import TemporalEdge


class TestSmallestArrival:
    def test_picks_minimum_arrival(self):
        candidates = {
            "v": [
                TemporalEdge("a", "v", 0, 5, 1),
                TemporalEdge("b", "v", 0, 3, 9),
            ]
        }
        chosen = _smallest_arrival_selection(candidates)
        assert chosen["v"].arrival == 3

    def test_tie_broken_by_weight_then_start(self):
        candidates = {
            "v": [
                TemporalEdge("a", "v", 1, 3, 5),
                TemporalEdge("b", "v", 2, 3, 2),
            ]
        }
        assert _smallest_arrival_selection(candidates)["v"].weight == 2


class TestRepairSelection:
    def test_repairs_mutual_cycle(self):
        # a and b enable each other at time 4; the smallest-arrival rule
        # could pick the cycle, but only a is genuinely fed by the root.
        candidates = {
            "a": [
                TemporalEdge("r", "a", 2, 4, 5),
                TemporalEdge("b", "a", 4, 4, 1),
            ],
            "b": [TemporalEdge("a", "b", 4, 4, 1)],
        }
        parent = _repair_selection("r", 0.0, candidates)
        assert parent["a"].source == "r"
        assert parent["b"].source == "a"

    def test_prefers_earliest_feasible(self):
        candidates = {
            "x": [
                TemporalEdge("r", "x", 1, 9, 1),
                TemporalEdge("r", "x", 1, 2, 1),
            ]
        }
        parent = _repair_selection("r", 0.0, candidates)
        assert parent["x"].arrival == 2

    def test_respects_t_alpha(self):
        candidates = {
            "x": [
                TemporalEdge("r", "x", 1, 2, 1),  # departs before t_alpha=3
                TemporalEdge("r", "x", 5, 6, 1),
            ]
        }
        parent = _repair_selection("r", 3.0, candidates)
        assert parent["x"].arrival == 6

    def test_unconnectable_vertex_raises(self):
        candidates = {
            "x": [TemporalEdge("ghost", "x", 0, 1, 1)],
        }
        with pytest.raises(InvalidTreeError, match="could not connect"):
            _repair_selection("r", 0.0, candidates)

    def test_chain_through_repairs(self):
        candidates = {
            "a": [TemporalEdge("r", "a", 0, 1, 1)],
            "b": [TemporalEdge("a", "b", 2, 3, 1)],
            "c": [TemporalEdge("b", "c", 3, 4, 1)],
        }
        parent = _repair_selection("r", 0.0, candidates)
        assert set(parent) == {"a", "b", "c"}
        # the chain respects time constraints end to end
        assert parent["c"].start >= parent["b"].arrival
