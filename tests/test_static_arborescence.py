"""Unit tests for Chu-Liu/Edmonds minimum spanning arborescences."""

import itertools
import random

import pytest

from repro.core.errors import UnreachableRootError
from repro.static.arborescence import (
    arborescence_weight,
    minimum_spanning_arborescence,
)


def brute_force_weight(edges, root):
    """Exhaustive minimum over all in-edge assignments forming an arborescence."""
    vertices = {root}
    for u, v, _ in edges:
        vertices.update((u, v))
    others = sorted(v for v in vertices if v != root)
    candidates = [[e for e in edges if e[1] == v and e[0] != v] for v in others]
    best = float("inf")
    for choice in itertools.product(*candidates):
        parent = {v: e[0] for v, e in zip(others, choice)}
        ok = True
        for v in others:
            seen = set()
            cur = v
            while cur != root:
                if cur in seen or cur not in parent:
                    ok = False
                    break
                seen.add(cur)
                cur = parent[cur]
            if not ok:
                break
        if ok:
            best = min(best, sum(e[2] for e in choice))
    return best


class TestBasics:
    def test_line(self):
        edges = [(0, 1, 2.0), (1, 2, 3.0)]
        tree = minimum_spanning_arborescence(edges, 0)
        assert set(tree) == set(edges)

    def test_picks_cheaper_in_edge(self):
        edges = [(0, 1, 5.0), (0, 2, 1.0), (2, 1, 1.0)]
        tree = minimum_spanning_arborescence(edges, 0)
        assert arborescence_weight(tree) == 2.0

    def test_unreachable_raises(self):
        with pytest.raises(UnreachableRootError):
            minimum_spanning_arborescence([(1, 2, 1.0)], 0)

    def test_self_loops_ignored(self):
        edges = [(0, 0, 0.5), (0, 1, 1.0)]
        tree = minimum_spanning_arborescence(edges, 0)
        assert tree == [(0, 1, 1.0)]

    def test_parallel_edges(self):
        edges = [(0, 1, 9.0), (0, 1, 2.0)]
        tree = minimum_spanning_arborescence(edges, 0)
        assert tree == [(0, 1, 2.0)]


class TestCycles:
    def test_two_cycle_resolved(self):
        # Cheapest in-edges 1<-2 and 2<-1 form a cycle; must break it via 0.
        edges = [(0, 1, 10.0), (0, 2, 10.0), (1, 2, 1.0), (2, 1, 1.0)]
        tree = minimum_spanning_arborescence(edges, 0)
        assert arborescence_weight(tree) == 11.0
        assert len(tree) == 2

    def test_three_cycle(self):
        edges = [
            (0, 1, 8.0),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (3, 1, 1.0),
            (0, 3, 4.0),
        ]
        tree = minimum_spanning_arborescence(edges, 0)
        # enter the cycle via (0,3): 4 + 1 + 1
        assert arborescence_weight(tree) == 6.0

    def test_nested_cycles(self):
        edges = [
            (1, 2, 1.0),
            (2, 1, 1.0),
            (3, 4, 1.0),
            (4, 3, 1.0),
            (2, 3, 2.0),
            (0, 1, 5.0),
        ]
        tree = minimum_spanning_arborescence(edges, 0)
        assert arborescence_weight(tree) == 9.0
        assert len(tree) == 4


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_small_graphs(self, seed):
        rng = random.Random(seed)
        n = 5
        edges = [(0, v, float(rng.randint(1, 9))) for v in range(1, n)]
        edges += [
            (rng.randrange(n), rng.randrange(n), float(rng.randint(1, 9)))
            for _ in range(8)
        ]
        edges = [(u, v, w) for u, v, w in edges if u != v]
        tree = minimum_spanning_arborescence(edges, 0)
        assert arborescence_weight(tree) == pytest.approx(
            brute_force_weight(edges, 0)
        )

    def test_each_vertex_one_in_edge(self):
        rng = random.Random(99)
        n = 7
        edges = [(0, v, float(rng.randint(1, 9))) for v in range(1, n)]
        edges += [
            (rng.randrange(n), rng.randrange(n), float(rng.randint(1, 9)))
            for _ in range(15)
        ]
        edges = [(u, v, w) for u, v, w in edges if u != v]
        tree = minimum_spanning_arborescence(edges, 0)
        targets = [v for _, v, _ in tree]
        assert sorted(targets) == list(range(1, n))
