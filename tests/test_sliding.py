"""Tests for sliding-window sweeps."""

import pytest

from repro.core.errors import ReproError
from repro.core.sliding import (
    WindowMeasurement,
    iter_windows,
    sliding_msta,
    sliding_mstw,
)
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.window import TimeWindow

from tests.conftest import random_temporal


class TestIterWindows:
    def test_covers_full_range(self, figure1):
        windows = list(iter_windows(figure1, window_length=4, step=2))
        t_start, t_end = figure1.time_span()
        assert windows[0].t_alpha == t_start
        assert windows[-1].t_omega == t_end
        assert all(w.length == pytest.approx(4) for w in windows)

    def test_default_step_is_half_length(self, figure1):
        windows = list(iter_windows(figure1, window_length=4))
        assert windows[1].t_alpha - windows[0].t_alpha == pytest.approx(2)

    def test_oversized_window_collapses_to_range(self, figure1):
        windows = list(iter_windows(figure1, window_length=1000))
        assert len(windows) == 1
        assert windows[0].as_tuple() == figure1.time_span()

    def test_invalid_arguments(self, figure1):
        with pytest.raises(ReproError):
            list(iter_windows(figure1, window_length=0))
        with pytest.raises(ReproError):
            list(iter_windows(figure1, window_length=2, step=0))

    def test_windows_are_monotone(self, figure1):
        windows = list(iter_windows(figure1, window_length=3, step=1))
        starts = [w.t_alpha for w in windows]
        assert starts == sorted(starts)


class TestSlidingMsta:
    def test_figure1_sweep(self, figure1):
        sweep = sliding_msta(figure1, 0, window_length=5, step=2)
        assert len(sweep) >= 2
        # early windows reach something, late windows (root inactive) do not
        assert sweep[0].coverage > 0
        assert all(isinstance(m, WindowMeasurement) for m in sweep)

    def test_full_window_matches_direct_computation(self, figure1):
        from repro.core.msta import minimum_spanning_tree_a

        sweep = sliding_msta(figure1, 0, window_length=1000)
        direct = minimum_spanning_tree_a(
            figure1, 0, TimeWindow(*figure1.time_span())
        )
        assert sweep[0].coverage == direct.num_edges

    def test_root_absent_from_window(self):
        g = TemporalGraph(
            [TemporalEdge(0, 1, 0, 1, 1), TemporalEdge(2, 3, 10, 11, 1)]
        )
        sweep = sliding_msta(g, 0, window_length=3, step=3)
        assert sweep[-1].tree is None
        assert sweep[-1].coverage == 0
        assert sweep[-1].makespan is None

    def test_measurement_properties(self, figure1):
        sweep = sliding_msta(figure1, 0, window_length=8, step=4)
        first = sweep[0]
        assert first.cost == first.tree.total_weight
        assert first.makespan == first.tree.max_arrival_time


class TestSlidingMstw:
    def test_costs_positive_where_covered(self, figure1):
        sweep = sliding_mstw(figure1, 0, window_length=8, step=4, level=2)
        covered = [m for m in sweep if m.coverage > 0]
        assert covered
        assert all(m.cost > 0 for m in covered)

    def test_trees_validate(self, figure1):
        for m in sliding_mstw(figure1, 0, window_length=6, step=3):
            if m.tree is not None:
                m.tree.validate()

    @pytest.mark.parametrize("seed", range(3))
    def test_random_graphs_do_not_crash(self, seed):
        g = random_temporal(seed, n=10, m=40)
        sweep = sliding_mstw(g, 0, window_length=12, step=6, level=1)
        assert len(sweep) >= 1
