"""Property-based fuzzing (hypothesis) of the edge-list parsers.

The contract under test: ``from_string`` either returns a
``TemporalGraph`` or raises ``GraphFormatError`` -- never ValueError,
IndexError, or any other leak from the parsing internals -- no matter
how malformed the input text is.  A second group checks that the
validation layer rejects every non-finite or time-inverted row it is
specified to reject, with the offending line number in the message.
"""

import math

import hypothesis.strategies as st
import pytest
from hypothesis import example, given, settings

from repro.core.errors import GraphFormatError
from repro.temporal.graph import TemporalGraph
from repro.temporal.io import from_string

FORMATS = ("native", "konect")

# Tokens that stress the tokenizer and float parsing: valid numbers,
# float-accepted spellings the validator must reject (nan/inf), and junk.
_tokens = st.one_of(
    st.integers(min_value=-99, max_value=99).map(str),
    st.floats(allow_nan=False, allow_infinity=False, width=16).map(repr),
    st.sampled_from(
        ["nan", "inf", "-inf", "NaN", "Infinity", "1e999", "-1e999",
         "a", "x7", "--", "0x1f", "1_0", "", "#", "%"]
    ),
    st.text(alphabet="0123456789.eE+-naif_", min_size=0, max_size=8),
)

_lines = st.lists(_tokens, min_size=0, max_size=7).map(" ".join)
_documents = st.lists(_lines, min_size=0, max_size=12).map("\n".join)


class TestParserNeverLeaks:
    """Arbitrary text produces a graph or GraphFormatError, nothing else."""

    @settings(max_examples=300, deadline=None)
    @given(text=_documents, fmt=st.sampled_from(FORMATS))
    @example(text="1 2 1e999 1 1", fmt="native")
    @example(text="1 2 0 1 1_0", fmt="native")
    @example(text="1 2 0x10", fmt="konect")
    @example(text="\x00 \x00 0 1 1", fmt="native")
    def test_only_graph_or_format_error(self, text, fmt):
        try:
            graph = from_string(text, fmt)
        except GraphFormatError:
            return
        assert isinstance(graph, TemporalGraph)

    @settings(max_examples=100, deadline=None)
    @given(text=_documents, duration=st.floats(0, 4, allow_nan=False))
    def test_konect_duration_variants(self, text, duration):
        try:
            graph = from_string(text, "konect", duration=duration)
        except GraphFormatError:
            return
        assert isinstance(graph, TemporalGraph)


class TestParsedGraphsAreSane:
    """Whatever parses must satisfy the validated invariants."""

    @settings(max_examples=200, deadline=None)
    @given(text=_documents, fmt=st.sampled_from(FORMATS))
    def test_accepted_edges_are_finite_and_ordered(self, text, fmt):
        try:
            graph = from_string(text, fmt)
        except GraphFormatError:
            return
        for edge in graph.edges:
            assert math.isfinite(edge.start)
            assert math.isfinite(edge.arrival)
            assert math.isfinite(edge.weight)
            assert edge.arrival >= edge.start
            assert edge.weight >= 0


class TestRejections:
    """The specified bad rows are rejected and the line is named."""

    @pytest.mark.parametrize("bad", ["nan", "inf", "-inf", "1e999"])
    @pytest.mark.parametrize("column", [2, 3, 4])
    def test_native_nonfinite_columns(self, bad, column):
        parts = ["1", "2", "0", "1", "1"]
        parts[column] = bad
        with pytest.raises(GraphFormatError, match="line 2"):
            from_string("0 1 0 1 1\n" + " ".join(parts), "native")

    @pytest.mark.parametrize("row", ["1 2 nan 0", "1 2 1 inf", "1 2 1 nan"])
    def test_konect_nonfinite_columns(self, row):
        with pytest.raises(GraphFormatError, match="line 1"):
            from_string(row, "konect")

    def test_arrival_before_start(self):
        with pytest.raises(GraphFormatError, match="precedes"):
            from_string("1 2 9 3 1", "native")

    def test_negative_weight(self):
        with pytest.raises(GraphFormatError, match="negative weight"):
            from_string("1 2 0 1 -5", "native")

    def test_unknown_format_is_format_error(self):
        with pytest.raises(GraphFormatError):
            from_string("1 2 0 1 1", "matrixmarket")
