"""The whole-program interprocedural pass: rules, cache, baseline, CLI.

Fixture contract: every tree under ``tests/fixtures/project/violations``
trips its namesake rule -- and only it -- a known number of times with
all four project rules active (one finding per offending module; the
pickle-safety tree carries two offenders, the legacy cell driver plus
the shard-boundary lambda; the backend-purity tree carries two
unguarded optional-numpy modules, neither in the owner set), and the
matching ``clean`` tree is silent -- including an unguarded
``repro.steiner.kernels`` twin, which the ``BACKEND_OWNERS`` exemption
must keep quiet.  The live ``src`` tree must be project-clean with the
committed (empty) baseline.
"""

import json
import os
import shutil

import pytest

from repro.analysis.cli import EXIT_CLEAN, EXIT_FINDINGS, main
from repro.analysis.core import Finding
from repro.analysis.project import (
    analyze_project,
    apply_baseline,
    load_baseline,
    write_baseline,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO_ROOT, "tests", "fixtures", "project")
BASELINE = os.path.join(REPO_ROOT, "lint-baseline.json")

#: rule name -> stable code, mirroring the catalogue.
RULES = {
    "budget-reachability": "REP201",
    "pickle-safety": "REP202",
    "backend-purity": "REP203",
    "never-raise": "REP204",
}

#: findings the namesake violation tree must produce, one per offender.
EXPECTED_FINDINGS = {
    "budget-reachability": 1,
    "pickle-safety": 2,  # legacy cell driver + shard-boundary lambda
    "backend-purity": 2,  # temporal helper + non-owner steiner batch module
    "never-raise": 1,
}


def _tree(kind, rule):
    return os.path.join(FIXTURES, kind, rule)


# ----------------------------------------------------------------------
# Rule fixtures: known finding counts, clean pairs silent
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rule", sorted(RULES))
def test_violation_fixture_fires_expected_count(rule):
    findings, errors, _stats = analyze_project([_tree("violations", rule)], excludes=())
    assert errors == []
    assert [f.rule for f in findings] == [rule] * EXPECTED_FINDINGS[rule]
    for finding in findings:
        assert finding.code == RULES[rule]
        assert os.path.isfile(finding.path)
        assert finding.line >= 1
    # Distinct offenders: never the same module flagged twice.
    assert len({f.path for f in findings}) == len(findings)


@pytest.mark.parametrize("rule", sorted(RULES))
def test_clean_fixture_is_silent(rule):
    findings, errors, _stats = analyze_project([_tree("clean", rule)], excludes=())
    assert errors == []
    assert findings == []


def test_suppression_comment_silences_project_rule(tmp_path):
    root = tmp_path / "case"
    shutil.copytree(_tree("violations", "budget-reachability"), root)
    offender = root / "repro" / "experiments" / "tables.py"
    source = offender.read_text(encoding="utf-8")
    patched = source.replace(
        "return solve(items, 0)",
        "return solve(items, 0)  # repro: ignore[budget-reachability]",
    )
    assert patched != source
    offender.write_text(patched, encoding="utf-8")
    findings, errors, _stats = analyze_project([str(root)], excludes=())
    assert errors == []
    assert findings == []


# ----------------------------------------------------------------------
# The shipped tree is project-clean (and the committed baseline is empty)
# ----------------------------------------------------------------------
def test_shipped_tree_is_project_clean(capsys):
    code = main(["--project", os.path.join(REPO_ROOT, "src")])
    out = capsys.readouterr().out
    assert code == EXIT_CLEAN, out
    assert "ok: no findings" in out


def test_committed_baseline_is_empty():
    assert load_baseline(BASELINE) == []


def test_shipped_tree_clean_under_committed_baseline(capsys):
    code = main(
        ["--project", "--baseline", BASELINE, os.path.join(REPO_ROOT, "src")]
    )
    out = capsys.readouterr().out
    assert code == EXIT_CLEAN, out


# ----------------------------------------------------------------------
# Baseline mechanics
# ----------------------------------------------------------------------
def test_baseline_roundtrip_drops_recorded_findings(tmp_path):
    tree = _tree("violations", "never-raise")
    findings, _errors, _stats = analyze_project([tree], excludes=())
    assert len(findings) == 1
    baseline_path = tmp_path / "baseline.json"
    write_baseline(str(baseline_path), findings)
    keys = load_baseline(str(baseline_path))
    assert apply_baseline(findings, keys) == []


def test_baseline_matches_as_multiset():
    finding = Finding(
        path="x.py", line=3, col=0, rule="never-raise", code="REP204", message="m"
    )
    twin = Finding(
        path="x.py", line=9, col=0, rule="never-raise", code="REP204", message="m"
    )
    keys = [("x.py", "never-raise", "REP204", "m")]
    # Same key, different line: the single baseline entry absorbs one
    # occurrence, the duplicate still trips.
    assert apply_baseline([finding, twin], keys) == [twin]


def test_baseline_ignores_line_shifts():
    finding = Finding(
        path="x.py", line=3, col=0, rule="never-raise", code="REP204", message="m"
    )
    shifted = Finding(
        path="x.py", line=30, col=4, rule="never-raise", code="REP204", message="m"
    )
    keys = [("x.py", "never-raise", "REP204", "m")]
    assert apply_baseline([finding], keys) == []
    assert apply_baseline([shifted], keys) == []


def test_cli_write_then_apply_baseline(tmp_path, capsys):
    tree = _tree("violations", "pickle-safety")
    baseline_path = str(tmp_path / "baseline.json")
    code = main(
        ["--project", "--no-default-excludes", "--write-baseline", baseline_path, tree]
    )
    capsys.readouterr()
    assert code == EXIT_CLEAN
    code = main(
        ["--project", "--no-default-excludes", "--baseline", baseline_path, tree]
    )
    out = capsys.readouterr().out
    assert code == EXIT_CLEAN, out
    # Without the baseline the same tree still fails.
    code = main(["--project", "--no-default-excludes", tree])
    capsys.readouterr()
    assert code == EXIT_FINDINGS


def test_cli_rejects_malformed_baseline(tmp_path, capsys):
    bad = tmp_path / "baseline.json"
    bad.write_text("{\"version\": 99}", encoding="utf-8")
    with pytest.raises(SystemExit) as excinfo:
        main(["--project", "--baseline", str(bad), _tree("clean", "never-raise")])
    assert excinfo.value.code == 2


# ----------------------------------------------------------------------
# Summary cache: reuse, invalidation, byte-identical reports
# ----------------------------------------------------------------------
def test_cache_cold_and_warm_reports_are_byte_identical(tmp_path, capsys):
    tree = _tree("violations", "budget-reachability")
    argv = [
        "--project",
        "--no-default-excludes",
        "--format",
        "json",
        "--cache-dir",
        str(tmp_path),
        tree,
    ]
    code_cold = main(argv)
    out_cold = capsys.readouterr().out
    code_warm = main(argv)
    out_warm = capsys.readouterr().out
    assert code_cold == code_warm == EXIT_FINDINGS
    assert out_cold == out_warm
    payload = json.loads(out_warm)
    assert payload["counts"]["by_rule"] == {"budget-reachability": 1}
    assert os.path.exists(os.path.join(str(tmp_path), "project-summaries.json"))


def test_cache_reuses_unchanged_modules(tmp_path):
    root = tmp_path / "case"
    shutil.copytree(_tree("clean", "budget-reachability"), root)
    cache = str(tmp_path / "summaries.json")
    _f, _e, cold = analyze_project([str(root)], excludes=(), cache_path=cache)
    assert cold.parsed == 2
    assert cold.reused == 0
    _f, _e, warm = analyze_project([str(root)], excludes=(), cache_path=cache)
    assert warm.parsed == 0
    assert warm.reused == 2
    assert warm.invalidated == []


def test_cache_invalidates_only_the_edited_module(tmp_path):
    root = tmp_path / "case"
    shutil.copytree(_tree("clean", "budget-reachability"), root)
    cache = str(tmp_path / "summaries.json")
    analyze_project([str(root)], excludes=(), cache_path=cache)
    leaf = root / "repro" / "experiments" / "tables.py"
    leaf.write_text(
        leaf.read_text(encoding="utf-8") + "\n# touched\n", encoding="utf-8"
    )
    # ``tables`` imports ``baselines`` but not vice versa -- no cycle,
    # so only the edited module re-parses.
    _f, _e, stats = analyze_project([str(root)], excludes=(), cache_path=cache)
    assert stats.invalidated == ["repro.experiments.tables"]
    assert stats.parsed == 1
    assert stats.reused == 1


def test_cache_invalidates_whole_import_cycle(tmp_path):
    root = tmp_path / "case" / "repro"
    root.mkdir(parents=True)
    (root / "alpha.py").write_text(
        '"""Cycle member."""\nimport repro.beta\n\n\ndef a():\n    return repro.beta.b\n',
        encoding="utf-8",
    )
    (root / "beta.py").write_text(
        '"""Cycle member."""\nimport repro.alpha\n\n\ndef b():\n    return repro.alpha.a\n',
        encoding="utf-8",
    )
    (root / "gamma.py").write_text(
        '"""Independent leaf."""\n\n\ndef c():\n    return 3\n',
        encoding="utf-8",
    )
    cache = str(tmp_path / "summaries.json")
    _f, _e, cold = analyze_project([str(root)], excludes=(), cache_path=cache)
    assert cold.parsed == 3
    (root / "alpha.py").write_text(
        (root / "alpha.py").read_text(encoding="utf-8") + "\n# touched\n",
        encoding="utf-8",
    )
    # alpha and beta import each other: editing alpha re-parses both.
    # gamma is outside the cycle and stays cached.
    _f, _e, stats = analyze_project([str(root)], excludes=(), cache_path=cache)
    assert stats.invalidated == ["repro.alpha", "repro.beta"]
    assert stats.parsed == 2
    assert stats.reused == 1


def test_cache_disabled_parses_everything(tmp_path):
    root = tmp_path / "case"
    shutil.copytree(_tree("clean", "backend-purity"), root)
    _f, _e, stats = analyze_project([str(root)], excludes=(), cache_path=None)
    assert stats.parsed == 2  # temporal helper + steiner kernels owner twin
    assert stats.reused == 0


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_project_list_rules(capsys):
    code = main(["--project", "--list-rules"])
    out = capsys.readouterr().out
    assert code == EXIT_CLEAN
    for rule, rule_code in RULES.items():
        assert rule in out
        assert rule_code in out


def test_project_rule_selection(capsys):
    tree = _tree("violations", "pickle-safety")
    code = main(
        ["--project", "--no-default-excludes", "--rule", "backend-purity", tree]
    )
    capsys.readouterr()
    assert code == EXIT_CLEAN
    code = main(
        ["--project", "--no-default-excludes", "--rule", "pickle-safety", tree]
    )
    capsys.readouterr()
    assert code == EXIT_FINDINGS


def test_unknown_project_rule_is_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--project", "--rule", "no-such-rule", "src"])
    assert excinfo.value.code == 2


@pytest.mark.parametrize("flag", ["--baseline", "--write-baseline", "--cache-dir"])
def test_project_only_flags_require_project(flag, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([flag, "somewhere", "src"])
    assert excinfo.value.code == 2


def test_default_excludes_skip_fixture_trees(capsys):
    # The fixture trees live under a `fixtures` path component, which
    # the default excludes skip -- scanning them finds nothing.
    code = main(["--project", FIXTURES])
    out = capsys.readouterr().out
    assert code == EXIT_CLEAN
    assert "ok: no findings" in out
