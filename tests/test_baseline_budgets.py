"""Budget cooperation of the baseline solvers.

The ``budget-tick`` lint rule requires every unbounded loop in
``repro.baselines`` to checkpoint; these tests pin the behavioural side
of that contract: a tiny budget interrupts each baseline with
:class:`BudgetExceededError`, and a generous budget leaves results
identical to the unbudgeted run.
"""

import pytest

from repro.baselines.bhadra import bhadra_msta
from repro.baselines.brute_force import (
    brute_force_earliest_arrival,
    brute_force_mstw_weight,
)
from repro.baselines.static_projection import (
    realize_static_tree,
    static_arborescence,
)
from repro.core.errors import BudgetExceededError
from repro.resilience.budget import Budget

from tests.conftest import random_temporal


@pytest.fixture
def graph():
    return random_temporal(seed=7, n=8, m=24)


def test_bhadra_trips_on_tiny_budget(graph):
    with pytest.raises(BudgetExceededError):
        bhadra_msta(graph, 0, budget=Budget(max_expansions=0))


def test_bhadra_unaffected_by_generous_budget(graph):
    free = bhadra_msta(graph, 0)
    budgeted = bhadra_msta(graph, 0, budget=Budget(max_expansions=10**6))
    assert budgeted.parent_edge == free.parent_edge


def test_brute_force_arrival_trips_on_tiny_budget(graph):
    with pytest.raises(BudgetExceededError):
        brute_force_earliest_arrival(graph, 0, budget=Budget(max_expansions=0))


def test_brute_force_arrival_unaffected_by_generous_budget(graph):
    free = brute_force_earliest_arrival(graph, 0)
    budgeted = brute_force_earliest_arrival(
        graph, 0, budget=Budget(max_expansions=10**7)
    )
    assert budgeted == free


def test_brute_force_mstw_trips_on_tiny_budget():
    graph = random_temporal(seed=3, n=5, m=10)
    with pytest.raises(BudgetExceededError):
        brute_force_mstw_weight(graph, 0, budget=Budget(max_expansions=0))


def test_static_arborescence_trips_on_tiny_budget(graph):
    with pytest.raises(BudgetExceededError):
        static_arborescence(graph, 0, budget=Budget(max_expansions=0))


def test_static_arborescence_unaffected_by_generous_budget(graph):
    free = static_arborescence(graph, 0)
    budgeted = static_arborescence(graph, 0, budget=Budget(max_expansions=10**6))
    assert budgeted == free


def test_realize_static_tree_trips_on_tiny_budget(graph):
    with pytest.raises(BudgetExceededError):
        realize_static_tree(graph, 0, budget=Budget(max_expansions=0))
