"""Checkpointed, resumable experiment runs.

The headline property: a table run interrupted mid-way (via the
``interrupt_after`` fresh-cell limit) and then resumed produces rows
identical to an uninterrupted run, and the checkpoint file disappears
once the run completes.
"""

import json
import os

import pytest

from repro.core.errors import CheckpointFormatError, ExperimentInterruptedError
from repro.experiments import (
    DegradedCell,
    ExperimentContext,
    OverBudgetCell,
    run_experiment,
)
from repro.experiments.checkpoint import (
    CHECKPOINT_VERSION,
    decode_cell,
    encode_cell,
)

#: The cheapest deterministic table in the suite (3 opt + 6 error cells
#: in quick mode), used as the interruption workload.
EXPERIMENT = "table8"


def _run_to_completion(context=None):
    return run_experiment(EXPERIMENT, quick=True, context=context)


class TestCellEncoding:
    def test_plain_values_pass_through(self):
        for value in (1, 2.5, "x", [1, 2], None):
            assert decode_cell(encode_cell(value)) == value

    def test_over_budget_round_trip(self):
        cell = OverBudgetCell(elapsed=1.25, rung="pruned-1")
        assert decode_cell(encode_cell(cell)) == cell
        assert decode_cell(encode_cell(OverBudgetCell(elapsed=0.5))) == (
            OverBudgetCell(elapsed=0.5)
        )

    def test_degraded_round_trip(self):
        cell = DegradedCell(value=12.5, rung="shortest-paths")
        assert decode_cell(encode_cell(cell)) == cell

    def test_round_trip_survives_json(self):
        cell = DegradedCell(value=3.25, rung="pruned-2")
        dumped = json.dumps(encode_cell(cell))
        assert decode_cell(json.loads(dumped)) == cell

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            decode_cell({"__cell__": "martian"})


class TestInterruptAndResume:
    def test_interrupt_leaves_checkpoint(self, tmp_path):
        context = ExperimentContext(
            checkpoint_dir=str(tmp_path), interrupt_after=2
        )
        with pytest.raises(ExperimentInterruptedError):
            _run_to_completion(context)
        path = tmp_path / f"{EXPERIMENT}.json"
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["version"] == CHECKPOINT_VERSION
        assert payload["experiment"] == EXPERIMENT
        assert payload["quick"] is True
        assert len(payload["cells"]) == 2

    def test_resumed_run_matches_uninterrupted(self, tmp_path):
        baseline = _run_to_completion()

        context = ExperimentContext(
            checkpoint_dir=str(tmp_path), interrupt_after=2
        )
        with pytest.raises(ExperimentInterruptedError):
            _run_to_completion(context)

        resumed_context = ExperimentContext(
            checkpoint_dir=str(tmp_path), resume=True
        )
        resumed = _run_to_completion(resumed_context)

        assert resumed.rows == baseline.rows
        assert resumed.render() == baseline.render()
        # the resumed run recomputed only the missing cells
        assert resumed_context.fresh_cells < len(resumed.rows) * (
            len(resumed.header) - 1
        ) + len(resumed.rows)

    def test_checkpoint_deleted_on_completion(self, tmp_path):
        context = ExperimentContext(
            checkpoint_dir=str(tmp_path), interrupt_after=2
        )
        with pytest.raises(ExperimentInterruptedError):
            _run_to_completion(context)
        resumed_context = ExperimentContext(
            checkpoint_dir=str(tmp_path), resume=True
        )
        _run_to_completion(resumed_context)
        assert not (tmp_path / f"{EXPERIMENT}.json").exists()

    def test_repeated_interrupts_make_progress(self, tmp_path):
        """Each restart adds cells; eventually the run completes."""
        baseline = _run_to_completion()
        for _ in range(30):
            context = ExperimentContext(
                checkpoint_dir=str(tmp_path), resume=True, interrupt_after=1
            )
            try:
                result = _run_to_completion(context)
            except ExperimentInterruptedError:
                continue
            break
        else:  # pragma: no cover - would mean no progress per restart
            pytest.fail("run never completed under repeated interruption")
        assert result.rows == baseline.rows

    def test_quick_mismatch_ignores_checkpoint(self, tmp_path):
        path = tmp_path / f"{EXPERIMENT}.json"
        path.write_text(
            json.dumps(
                {
                    "version": CHECKPOINT_VERSION,
                    "experiment": EXPERIMENT,
                    "quick": False,
                    "cells": {"opt:b01": 9999},
                }
            )
        )
        context = ExperimentContext(checkpoint_dir=str(tmp_path), resume=True)
        context.begin(EXPERIMENT, quick=True)
        assert not context.has("opt:b01")

    def test_version_mismatch_rejected_with_clear_error(self, tmp_path):
        """A stale schema is a loud, named failure -- never a guess."""
        path = tmp_path / f"{EXPERIMENT}.json"
        path.write_text(
            json.dumps(
                {
                    "version": CHECKPOINT_VERSION + 1,
                    "experiment": EXPERIMENT,
                    "quick": True,
                    "cells": {"opt:b01": 9999},
                }
            )
        )
        context = ExperimentContext(checkpoint_dir=str(tmp_path), resume=True)
        with pytest.raises(CheckpointFormatError) as excinfo:
            context.begin(EXPERIMENT, quick=True)
        # The error names the offending file and both versions.
        assert str(path) in str(excinfo.value)
        assert str(CHECKPOINT_VERSION) in str(excinfo.value)
        assert str(CHECKPOINT_VERSION + 1) in str(excinfo.value)

    def test_checkpointed_cells_are_authoritative(self, tmp_path):
        """Resume trusts the file: a poisoned cell value is reused."""
        context = ExperimentContext(checkpoint_dir=str(tmp_path))
        context.begin(EXPERIMENT, quick=True)
        context.cell("opt:b01", lambda budget: 4242)
        resumed = ExperimentContext(checkpoint_dir=str(tmp_path), resume=True)
        resumed.begin(EXPERIMENT, quick=True)
        assert resumed.has("opt:b01")
        assert resumed.cell("opt:b01", lambda budget: 0) == 4242
        assert resumed.fresh_cells == 0


class TestChecksumIntegrity:
    def test_tampered_cell_is_quarantined_and_recomputed(self, tmp_path):
        """A bit-flipped cell fails its checksum; the rest is salvaged."""
        context = ExperimentContext(checkpoint_dir=str(tmp_path))
        context.begin(EXPERIMENT, quick=True)
        context.cell("opt:a", lambda budget: 1.5)
        context.cell("opt:b", lambda budget: 2.5)
        path = tmp_path / f"{EXPERIMENT}.json"
        payload = json.loads(path.read_text())
        payload["cells"]["opt:a"]["value"] = 9999  # the flip
        path.write_text(json.dumps(payload))

        resumed = ExperimentContext(checkpoint_dir=str(tmp_path), resume=True)
        resumed.begin(EXPERIMENT, quick=True)
        # The tampered cell is dropped (to be recomputed), the intact
        # sibling survives, and both failures are counted -- the file
        # checksum no longer matches its edited body, and one cell
        # failed its own check.
        assert not resumed.has("opt:a")
        assert resumed.has("opt:b")
        assert resumed.cell("opt:b", lambda budget: 0) == 2.5
        assert resumed.cell("opt:a", lambda budget: -1.0) == -1.0
        assert resumed.fault_stats["checksum_mismatches"] == 1
        assert resumed.fault_stats["quarantined_cells"] == 1

    def test_unparseable_checkpoint_is_quarantined_to_sidecar(self, tmp_path):
        path = tmp_path / f"{EXPERIMENT}.json"
        path.write_text('{"version": 2, "experiment": "table8"')  # torn
        resumed = ExperimentContext(checkpoint_dir=str(tmp_path), resume=True)
        resumed.begin(EXPERIMENT, quick=True)
        assert resumed.fresh_cells == 0
        assert resumed.fault_stats["quarantined_files"] == 1
        assert not path.exists()
        assert (tmp_path / f"{EXPERIMENT}.json.quarantined").exists()


class TestBudgetedCells:
    def test_over_budget_cell_is_structured(self, tmp_path):
        context = ExperimentContext(
            cell_budget_seconds=1e-9, checkpoint_dir=str(tmp_path)
        )
        context.begin(EXPERIMENT, quick=True)

        def slow_cell(budget):
            import time

            time.sleep(0.002)
            budget.checkpoint()
            return 1.0  # pragma: no cover - budget trips first

        value = context.cell("opt:b01", slow_cell)
        assert isinstance(value, OverBudgetCell)
        assert value.elapsed > 0
        assert str(value).startswith("-[")

    def test_no_checkpoint_dir_means_no_files(self, tmp_path):
        context = ExperimentContext()
        context.begin(EXPERIMENT, quick=True)
        context.cell("opt:b01", lambda budget: 1)
        assert os.listdir(tmp_path) == []
