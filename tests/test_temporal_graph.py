"""Unit tests for :mod:`repro.temporal.graph`."""

import pytest

from repro.core.errors import GraphFormatError
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph, from_quintuples


class TestConstruction:
    def test_counts(self, figure1):
        assert figure1.num_vertices == 6
        assert figure1.num_edges == 10

    def test_isolated_vertices_preserved(self):
        g = TemporalGraph([TemporalEdge(0, 1, 0, 1, 1)], vertices=[0, 1, 9])
        assert 9 in g.vertices
        assert g.num_vertices == 3

    def test_rejects_arrival_before_start(self):
        with pytest.raises(GraphFormatError):
            TemporalGraph([TemporalEdge(0, 1, 5, 3, 1)])

    def test_rejects_negative_weight(self):
        with pytest.raises(GraphFormatError):
            TemporalGraph([TemporalEdge(0, 1, 1, 3, -2)])

    def test_accepts_raw_tuples(self):
        g = TemporalGraph([(0, 1, 1, 3, 2)])
        assert g.edges[0] == TemporalEdge(0, 1, 1, 3, 2)

    def test_parallel_edges_preserved(self):
        g = TemporalGraph(
            [TemporalEdge(0, 1, 0, 1, 1), TemporalEdge(0, 1, 2, 3, 1)]
        )
        assert g.num_edges == 2

    def test_len_and_iter(self, tiny_line):
        assert len(tiny_line) == 2
        assert list(tiny_line) == list(tiny_line.edges)

    def test_contains_vertex(self, tiny_line):
        assert 0 in tiny_line
        assert 99 not in tiny_line


class TestFormats:
    def test_chronological_sorted_by_start(self, figure1):
        starts = [e.start for e in figure1.chronological_edges()]
        assert starts == sorted(starts)

    def test_chronological_matches_example3_prefix(self, figure1):
        first_four = [tuple(e) for e in figure1.chronological_edges()[:4]]
        assert first_four == [
            (0, 1, 1, 3, 2),
            (0, 2, 1, 5, 4),
            (0, 2, 3, 6, 3),
            (0, 1, 4, 5, 1),
        ]

    def test_arrival_sorted(self, figure1):
        arrivals = [e.arrival for e in figure1.arrival_sorted_edges()]
        assert arrivals == sorted(arrivals)

    def test_sorted_adjacency_descending_starts(self, figure1):
        adjacency = figure1.sorted_adjacency()
        assert set(adjacency) == figure1.vertices
        for edges in adjacency.values():
            starts = [e.start for e in edges]
            assert starts == sorted(starts, reverse=True)

    def test_sorted_adjacency_covers_all_edges(self, figure1):
        adjacency = figure1.sorted_adjacency()
        total = sum(len(edges) for edges in adjacency.values())
        assert total == figure1.num_edges

    def test_out_and_in_edges(self, figure1):
        assert len(figure1.out_edges(0)) == 4
        assert {e.target for e in figure1.out_edges(0)} == {1, 2}
        assert len(figure1.in_edges(1)) == 2
        assert figure1.in_edges(0) == []


class TestDerivedGraphs:
    def test_static_edges_distinct_pairs(self, figure1):
        static = figure1.static_edges()
        assert (0, 1) in static
        # the cheapest parallel weight is kept
        assert static[(0, 1)] == 1

    def test_restricted_window(self, figure1):
        sub = figure1.restricted(3, 7)
        assert all(e.start >= 3 and e.arrival <= 7 for e in sub.edges)
        assert sub.num_edges == 4

    def test_restricted_empty(self, figure1):
        assert figure1.restricted(100, 200).num_edges == 0

    def test_with_durations_one(self, figure1):
        g = figure1.with_durations(1)
        assert all(e.duration == 1 for e in g.edges)
        assert [e.start for e in g.edges] == [e.start for e in figure1.edges]

    def test_with_durations_zero(self, figure1):
        g = figure1.with_durations(0)
        assert g.has_zero_duration_edge()

    def test_with_durations_negative_rejected(self, figure1):
        with pytest.raises(GraphFormatError):
            figure1.with_durations(-1)

    def test_with_weights(self, tiny_line):
        g = tiny_line.with_weights({(0, 1): 10, (1, 2): 20})
        assert [e.weight for e in g.edges] == [10, 20]

    def test_with_weights_missing_pair(self, tiny_line):
        with pytest.raises(GraphFormatError):
            tiny_line.with_weights({(0, 1): 10})


class TestTimeHelpers:
    def test_time_span(self, figure1):
        assert figure1.time_span() == (1, 11)

    def test_time_span_empty_graph(self):
        with pytest.raises(GraphFormatError):
            TemporalGraph([]).time_span()

    def test_zero_duration_detection(self, figure1, figure3):
        assert not figure1.has_zero_duration_edge()
        assert figure3.has_zero_duration_edge()

    def test_distinct_time_instances(self, figure3):
        # starts {1,2,3,4} and arrivals {1,2,3,4}
        assert figure3.distinct_time_instances() == 4


class TestFromQuintuples:
    def test_five_tuples(self):
        g = from_quintuples([(0, 1, 1, 3, 2)])
        assert g.edges[0].weight == 2

    def test_four_tuples_default_weight(self):
        g = from_quintuples([(0, 1, 1, 3)])
        assert g.edges[0].weight == 1.0

    def test_bad_arity(self):
        with pytest.raises(GraphFormatError):
            from_quintuples([(0, 1, 1)])
