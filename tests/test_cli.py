"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main
from repro.datasets.paper_examples import figure1_graph
from repro.temporal import io as tio


@pytest.fixture
def fig1_file(tmp_path):
    path = tmp_path / "fig1.txt"
    tio.write_native(figure1_graph(), path)
    return str(path)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestStats:
    def test_row_printed(self, capsys, fig1_file):
        code, out, _ = run_cli(capsys, "stats", fig1_file, "--name", "fig1")
        assert code == 0
        assert "fig1" in out
        assert "10" in out  # M

    def test_konect_format(self, capsys, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("1 2 1 100\n2 3 1 200\n")
        code, out, _ = run_cli(
            capsys, "stats", str(path), "--format", "konect", "--duration", "1"
        )
        assert code == 0


class TestMsta:
    def test_arrivals(self, capsys, fig1_file):
        code, out, _ = run_cli(capsys, "msta", fig1_file, "--root", "0")
        assert code == 0
        lines = [l for l in out.splitlines() if not l.startswith("#")]
        # columns: vertex parent start arrival weight
        arrivals = {l.split()[0]: float(l.split()[3]) for l in lines}
        assert arrivals == {"1": 3, "2": 5, "3": 6, "4": 8, "5": 8}

    def test_window_flags(self, capsys, fig1_file):
        code, out, _ = run_cli(
            capsys, "msta", fig1_file, "--root", "0", "--t-omega", "6"
        )
        lines = [l for l in out.splitlines() if not l.startswith("#")]
        assert len(lines) == 3  # only vertices 1, 2, 3

    def test_explicit_algorithm(self, capsys, fig1_file):
        code, out, _ = run_cli(
            capsys, "msta", fig1_file, "--root", "0", "--algorithm", "stack"
        )
        assert code == 0

    def test_bad_root_reports_error(self, capsys, fig1_file):
        code, _, err = run_cli(capsys, "msta", fig1_file, "--root", "99")
        assert code == 66
        assert "error" in err


class TestMstw:
    def test_weight_11(self, capsys, fig1_file):
        code, out, _ = run_cli(
            capsys, "mstw", fig1_file, "--root", "0", "--level", "3"
        )
        assert code == 0
        assert "weight 11" in out

    def test_charikar_choice(self, capsys, fig1_file):
        code, out, _ = run_cli(
            capsys,
            "mstw",
            fig1_file,
            "--root",
            "0",
            "--algorithm",
            "charikar",
            "--level",
            "2",
        )
        assert code == 0
        assert "weight 11" in out


class TestSteiner:
    def test_single_target(self, capsys, fig1_file):
        code, out, _ = run_cli(
            capsys,
            "steiner",
            fig1_file,
            "--root",
            "0",
            "--terminals",
            "3",
            "--level",
            "3",
        )
        assert code == 0
        assert "weight 4" in out
        assert "steiner relays 1" in out

    def test_unreachable_flag(self, capsys, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0 1 1\n2 1 0 1 1\n")
        code, out, _ = run_cli(
            capsys,
            "steiner",
            str(path),
            "--root",
            "0",
            "--terminals",
            "1,2",
            "--allow-unreachable",
        )
        assert code == 0
        assert "unreachable 1" in out


class TestOutputFormats:
    def test_json_output_round_trips(self, capsys, fig1_file):
        from repro.core.export import tree_from_json

        code, out, _ = run_cli(
            capsys, "msta", fig1_file, "--root", "0", "--output", "json"
        )
        assert code == 0
        tree = tree_from_json(out)
        assert tree.root == 0
        assert tree.arrival_times[5] == 8

    def test_dot_output(self, capsys, fig1_file):
        code, out, _ = run_cli(
            capsys, "mstw", fig1_file, "--root", "0", "--output", "dot"
        )
        assert code == 0
        assert out.startswith("digraph")
        assert out.count("->") == 5

    def test_steiner_json(self, capsys, fig1_file):
        code, out, _ = run_cli(
            capsys,
            "steiner",
            fig1_file,
            "--root",
            "0",
            "--terminals",
            "3",
            "--output",
            "json",
        )
        assert code == 0
        assert '"temporal-mst/spanning-tree"' in out


class TestGenerate:
    def test_round_trip_via_stdout(self, capsys):
        code, out, _ = run_cli(
            capsys, "generate", "slashdot", "--scale", "0.05"
        )
        assert code == 0
        graph = tio.read_native(io.StringIO(out))
        assert graph.num_edges > 0

    def test_to_file(self, capsys, tmp_path):
        path = tmp_path / "out.txt"
        code, _, err = run_cli(
            capsys, "generate", "phone", "--scale", "0.05", "--out", str(path)
        )
        assert code == 0
        assert "wrote" in err
        assert path.exists()
