"""Unit tests for DST instances and preparation."""

import pytest

from repro.core.errors import GraphFormatError, UnreachableRootError
from repro.static.digraph import StaticDigraph
from repro.steiner.instance import (
    DSTInstance,
    approximation_ratio,
    prepare_instance,
    restrict_reachable,
)


def diamond():
    g = StaticDigraph()
    g.add_edge("r", "a", 1.0)
    g.add_edge("r", "b", 2.0)
    g.add_edge("a", "t1", 1.0)
    g.add_edge("b", "t2", 1.0)
    return g


class TestDSTInstance:
    def test_valid(self):
        inst = DSTInstance(diamond(), "r", ("t1", "t2"))
        assert inst.num_terminals == 2

    def test_unknown_root(self):
        with pytest.raises(GraphFormatError):
            DSTInstance(diamond(), "zz", ("t1",))

    def test_unknown_terminal(self):
        with pytest.raises(GraphFormatError):
            DSTInstance(diamond(), "r", ("zz",))

    def test_root_as_terminal_rejected(self):
        with pytest.raises(GraphFormatError):
            DSTInstance(diamond(), "r", ("r",))

    def test_duplicate_terminal_rejected(self):
        with pytest.raises(GraphFormatError):
            DSTInstance(diamond(), "r", ("t1", "t1"))


class TestPrepare:
    def test_indices_and_costs(self):
        prepared = prepare_instance(DSTInstance(diamond(), "r", ("t1", "t2")))
        r = prepared.root
        t1, t2 = prepared.terminals
        assert prepared.cost(r, t1) == 2.0
        assert prepared.cost(r, t2) == 3.0
        assert prepared.num_terminals == 2
        assert prepared.num_vertices == 5

    def test_unreachable_terminal_raises(self):
        g = diamond()
        g.add_vertex("island")
        with pytest.raises(UnreachableRootError):
            prepare_instance(DSTInstance(g, "r", ("island",)))

    def test_unreachable_allowed_when_disabled(self):
        g = diamond()
        g.add_vertex("island")
        prepared = prepare_instance(
            DSTInstance(g, "r", ("island",)), require_reachable=False
        )
        assert prepared.num_terminals == 1

    def test_restrict_reachable_drops_islands(self):
        g = diamond()
        g.add_vertex("island")
        inst = restrict_reachable(DSTInstance(g, "r", ("t1", "island")))
        assert inst.terminals == ("t1",)


class TestApproximationRatio:
    def test_level_one_is_k(self):
        assert approximation_ratio(1, 10) == 10.0

    def test_paper_formula(self):
        # i^2 (i-1) k^(1/i)
        assert approximation_ratio(2, 16) == pytest.approx(4 * 1 * 4.0)
        assert approximation_ratio(3, 8) == pytest.approx(9 * 2 * 2.0)

    def test_degenerate_k(self):
        assert approximation_ratio(3, 0) == 1.0

    def test_bad_level(self):
        with pytest.raises(ValueError):
            approximation_ratio(0, 5)
