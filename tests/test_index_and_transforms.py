"""Tests for the window index and timestamp transforms."""

import pytest

from repro.core.errors import GraphFormatError
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.index import TemporalEdgeIndex
from repro.temporal.paths import earliest_arrival_times
from repro.temporal.transforms import (
    map_weights,
    normalize_epoch,
    quantize_timestamps,
    relabel_vertices,
    scale_time,
    shift_time,
)
from repro.temporal.window import TimeWindow

from tests.conftest import random_temporal


class TestTemporalEdgeIndex:
    def test_matches_restricted_on_figure1(self, figure1):
        index = TemporalEdgeIndex(figure1)
        for window in (TimeWindow(0, 6), TimeWindow(3, 8), TimeWindow(9, 10)):
            expected = {
                tuple(e)
                for e in figure1.restricted(window.t_alpha, window.t_omega).edges
            }
            got = {tuple(e) for e in index.edges_in(window)}
            assert got == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_restricted_on_random_graphs(self, seed):
        g = random_temporal(seed, n=12, m=60)
        index = TemporalEdgeIndex(g)
        for t_alpha in (0, 5, 12, 25):
            window = TimeWindow(t_alpha, t_alpha + 10)
            expected = {
                tuple(e)
                for e in g.restricted(window.t_alpha, window.t_omega).edges
            }
            assert {tuple(e) for e in index.edges_in(window)} == expected

    def test_count(self, figure1):
        index = TemporalEdgeIndex(figure1)
        window = TimeWindow(0, 6)
        assert index.count_in(window) == len(index.edges_in(window))

    def test_subgraph_default_drops_isolated(self, figure1):
        index = TemporalEdgeIndex(figure1)
        sub = index.subgraph(TimeWindow(0, 6))
        assert sub.vertices == {0, 1, 2, 3}

    def test_subgraph_keep_vertices(self, figure1):
        index = TemporalEdgeIndex(figure1)
        sub = index.subgraph(TimeWindow(0, 6), keep_vertices=True)
        assert sub.vertices == figure1.vertices

    def test_first_start_after(self, figure1):
        index = TemporalEdgeIndex(figure1)
        assert index.first_start_after(0) == 1
        assert index.first_start_after(7) == 8
        assert index.first_start_after(100) is None

    def test_len(self, figure1):
        assert len(TemporalEdgeIndex(figure1)) == figure1.num_edges

    def test_iteration_is_chronological(self, figure1):
        index = TemporalEdgeIndex(figure1)
        starts = [e.start for e in index.iter_edges_in(TimeWindow(0, 100))]
        assert starts == sorted(starts)


class TestShiftAndScale:
    def test_shift_preserves_structure(self, figure1):
        shifted = shift_time(figure1, 100)
        assert shifted.time_span() == (101, 111)
        # arrival times shift uniformly
        base = earliest_arrival_times(figure1, 0)
        moved = earliest_arrival_times(shifted, 0)
        for v in base:
            if v != 0:
                assert moved[v] == base[v] + 100

    def test_normalize_epoch(self, figure1):
        shifted = shift_time(figure1, 10_000)
        assert normalize_epoch(shifted).time_span()[0] == 0

    def test_normalize_empty_graph(self):
        g = TemporalGraph([], vertices=[0])
        assert normalize_epoch(g) is g

    def test_scale(self, figure1):
        scaled = scale_time(figure1, 60)  # minutes -> seconds
        assert scaled.time_span() == (60, 660)

    def test_scale_rejects_nonpositive(self, figure1):
        with pytest.raises(GraphFormatError):
            scale_time(figure1, 0)


class TestQuantize:
    def test_snaps_down(self):
        g = TemporalGraph([TemporalEdge(0, 1, 7, 13, 1)])
        q = quantize_timestamps(g, 5)
        assert tuple(q.edges[0])[2:4] == (5, 10)

    def test_within_bucket_becomes_zero_duration(self):
        g = TemporalGraph([TemporalEdge(0, 1, 11, 13, 1)])
        q = quantize_timestamps(g, 10)
        assert q.edges[0].duration == 0
        assert q.has_zero_duration_edge()

    def test_arrival_never_precedes_start(self, figure1):
        q = quantize_timestamps(figure1, 4)
        assert all(e.arrival >= e.start for e in q.edges)

    def test_rejects_nonpositive_granularity(self, figure1):
        with pytest.raises(GraphFormatError):
            quantize_timestamps(figure1, 0)


class TestWeightAndLabelMaps:
    def test_map_weights(self, figure1):
        doubled = map_weights(figure1, lambda e: e.weight * 2)
        assert sum(e.weight for e in doubled.edges) == 2 * sum(
            e.weight for e in figure1.edges
        )

    def test_map_weights_rejects_negative(self, figure1):
        with pytest.raises(GraphFormatError):
            map_weights(figure1, lambda e: -1.0)

    def test_relabel(self, figure1):
        renamed = relabel_vertices(figure1, lambda v: f"v{v}")
        assert "v0" in renamed.vertices
        assert renamed.num_edges == figure1.num_edges
        arrivals = earliest_arrival_times(renamed, "v0")
        assert arrivals["v5"] == 8

    def test_relabel_must_be_injective(self, figure1):
        with pytest.raises(GraphFormatError, match="injective"):
            relabel_vertices(figure1, lambda v: "same")
