"""Output-identity guarantees behind every PR-2 perf optimisation.

Each cache / hoisting change is only admissible if the optimised code
returns *exactly* what the unoptimised code returned.  These property
tests pin that down:

* cached vs uncached transformed-graph construction (labels, edges,
  arrival instances) across random graphs, roots, and windows;
* cache invalidation: changing the window yields the window's own
  index, never a stale one;
* end-to-end ``MST_w`` weight identity with caches on vs off;
* the optimised level-``i`` solvers vs the verbatim pre-optimisation
  implementation (:mod:`repro.perf.legacy`);
* the memoised per-source rows/orders vs their numpy originals.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.mstw import (
    clear_prepare_memo,
    minimum_spanning_tree_w,
    prepare_mstw_instance,
)
from repro.core.transformation import (
    clear_transformation_cache,
    transform_temporal_graph,
    transformation_cache_info,
)
import repro.steiner.instance as steiner_instance
from repro.perf.legacy import legacy_improved_dst
from repro.steiner.improved import improved_dst
from repro.steiner.pruned import pruned_dst
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.window import TimeWindow


@st.composite
def reachable_graphs(draw, max_vertices=6, max_extra=8):
    """Temporal graphs where every vertex is reachable from root 0."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    edges = []
    arrival = {0: 0}
    for v in range(1, n):
        parent = draw(st.sampled_from(sorted(arrival)))
        start = arrival[parent] + draw(st.integers(min_value=0, max_value=3))
        duration = draw(st.integers(min_value=0, max_value=2))
        weight = draw(st.integers(min_value=1, max_value=9))
        edges.append(TemporalEdge(parent, v, start, start + duration, weight))
        arrival[v] = start + duration
    extra = draw(st.integers(min_value=0, max_value=max_extra))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        start = draw(st.integers(min_value=0, max_value=12))
        duration = draw(st.integers(min_value=0, max_value=2))
        weight = draw(st.integers(min_value=1, max_value=9))
        edges.append(TemporalEdge(u, v, start, start + duration, weight))
    return TemporalGraph(edges, vertices=range(n))


windows = st.sampled_from(
    [
        None,
        TimeWindow(0, float("inf")),
        TimeWindow(0, 8),
        TimeWindow(2, 10),
    ]
)


def _transform_fingerprint(transformed):
    """Everything observable about a transformed graph, as plain data."""
    return (
        tuple(transformed.digraph.labels()),
        sorted(transformed.digraph.iter_labeled_edges()),
        transformed.root_label,
        {
            v: tuple(instants)
            for v, instants in transformed.arrival_instances.items()
        },
        transformed.skipped_edges,
    )


class TestTransformationCache:
    @settings(max_examples=40, deadline=None)
    @given(graph=reachable_graphs(), window=windows)
    def test_cached_equals_uncached(self, graph, window):
        clear_transformation_cache()
        uncached = transform_temporal_graph(graph, 0, window, use_cache=False)
        cold = transform_temporal_graph(graph, 0, window, use_cache=True)
        warm = transform_temporal_graph(graph, 0, window, use_cache=True)
        expected = _transform_fingerprint(uncached)
        assert _transform_fingerprint(cold) == expected
        assert _transform_fingerprint(warm) == expected

    @settings(max_examples=25, deadline=None)
    @given(graph=reachable_graphs())
    def test_window_change_invalidates(self, graph):
        """A different window must never see the previous window's index."""
        clear_transformation_cache()
        narrow = TimeWindow(0, 3)
        wide = TimeWindow(0, float("inf"))
        cached_narrow = transform_temporal_graph(graph, 0, narrow)
        cached_wide = transform_temporal_graph(graph, 0, wide)
        fresh_narrow = transform_temporal_graph(
            graph, 0, narrow, use_cache=False
        )
        fresh_wide = transform_temporal_graph(graph, 0, wide, use_cache=False)
        assert _transform_fingerprint(cached_narrow) == _transform_fingerprint(
            fresh_narrow
        )
        assert _transform_fingerprint(cached_wide) == _transform_fingerprint(
            fresh_wide
        )

    def test_cache_counters(self):
        clear_transformation_cache()
        graph = TemporalGraph(
            [TemporalEdge(0, 1, 1, 2, 1)], vertices=range(2)
        )
        assert transformation_cache_info() == {
            "hits": 0,
            "misses": 0,
            "containment": 0,
            "delta_derived": 0,
        }
        transform_temporal_graph(graph, 0)
        transform_temporal_graph(graph, 0)
        info = transformation_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 1
        # A narrower window nested inside the cached unbounded one is
        # derived by filtering the container's index (not a full scan,
        # not a stale hit).
        transform_temporal_graph(graph, 0, TimeWindow(0, 1.5))
        info = transformation_cache_info()
        assert info["misses"] == 1
        assert info["containment"] == 1


class TestPipelineCacheIdentity:
    @settings(max_examples=30, deadline=None)
    @given(
        graph=reachable_graphs(),
        level=st.integers(min_value=1, max_value=3),
    )
    def test_mstw_weight_identical_with_caches(self, graph, level):
        clear_transformation_cache()
        clear_prepare_memo()
        first = minimum_spanning_tree_w(graph, 0, level=level)
        # Second run hits the window index and the prepare memo.
        second = minimum_spanning_tree_w(graph, 0, level=level)
        assert first.weight == second.weight
        assert first.tree.parent_edge == second.tree.parent_edge

    @settings(max_examples=25, deadline=None)
    @given(graph=reachable_graphs())
    def test_prepare_memo_returns_equal_instance(self, graph):
        clear_prepare_memo()
        t1, p1 = prepare_mstw_instance(graph, 0)
        t2, p2 = prepare_mstw_instance(graph, 0)
        assert t2 is t1  # memo hit
        assert p2 is p1
        t3, p3 = prepare_mstw_instance(graph, 0, use_cache=False)
        assert t3 is not t1
        assert _transform_fingerprint(t3) == _transform_fingerprint(t1)
        assert p3.num_terminals == p1.num_terminals


class TestSolverEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        graph=reachable_graphs(),
        level=st.integers(min_value=1, max_value=3),
    )
    def test_improved_matches_legacy(self, graph, level):
        """The optimised Algorithm 4/5 returns the legacy solver's tree."""
        _, prepared = prepare_mstw_instance(graph, 0, use_cache=False)
        old = legacy_improved_dst(prepared, level)
        new = improved_dst(prepared, level)
        assert new.cost == old.cost
        assert sorted(new.edges) == sorted(old.edges)
        assert new.covered == old.covered

    @settings(max_examples=25, deadline=None)
    @given(
        graph=reachable_graphs(),
        level=st.integers(min_value=1, max_value=3),
    )
    def test_pruned_matches_legacy(self, graph, level):
        """Algorithm 6 still agrees with the legacy solver (Theorem 9)."""
        _, prepared = prepare_mstw_instance(graph, 0, use_cache=False)
        old = legacy_improved_dst(prepared, level)
        new = pruned_dst(prepared, level)
        assert new.cost == pytest.approx(old.cost)
        assert new.covered == old.covered

    @settings(max_examples=25, deadline=None)
    @given(
        graph=reachable_graphs(),
        level=st.integers(min_value=1, max_value=2),
        k=st.integers(min_value=1, max_value=4),
    )
    def test_partial_coverage_matches_legacy(self, graph, level, k):
        _, prepared = prepare_mstw_instance(graph, 0, use_cache=False)
        old = legacy_improved_dst(prepared, level, k=k)
        new = improved_dst(prepared, level, k=k)
        assert new.cost == old.cost
        assert new.covered == old.covered


class TestRowMemoEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(graph=reachable_graphs())
    def test_cost_row_matches_closure(self, graph):
        _, prepared = prepare_mstw_instance(graph, 0, use_cache=False)
        for source in range(prepared.num_vertices):
            row = prepared.cost_row(source)
            costs = prepared.closure.costs_from(source)
            assert row == [float(c) for c in costs]
            # Memoised: same list object on repeat.
            assert prepared.cost_row(source) is row

    @settings(max_examples=30, deadline=None)
    @given(graph=reachable_graphs())
    def test_sorted_terminals_matches_fresh_sort(self, graph):
        _, prepared = prepare_mstw_instance(graph, 0, use_cache=False)
        for source in range(prepared.num_vertices):
            order = prepared.sorted_terminals_from(source)
            costs = prepared.closure.costs_from(source)
            expected = tuple(
                sorted(prepared.terminals, key=lambda x: (costs[x], x))
            )
            assert order == expected

    def test_cost_row_memo_is_bounded(self, monkeypatch):
        """Eviction cap: the row memo never exceeds COST_ROW_MEMO_SIZE.

        The cap is shrunk to 3 so a small instance exercises eviction:
        the oldest entry leaves first, a fresh (equal) list is rebuilt
        on re-query, and recently-used entries survive insertion.
        """
        monkeypatch.setattr(steiner_instance, "COST_ROW_MEMO_SIZE", 3)
        graph = TemporalGraph(
            [
                TemporalEdge(0, v, t, t, 1.0)
                for t, v in enumerate(range(1, 6), start=1)
            ]
        )
        _, prepared = prepare_mstw_instance(graph, 0, use_cache=False)
        assert prepared.num_vertices >= 5
        rows = [prepared.cost_row(s) for s in range(5)]
        assert len(prepared._cost_rows) == 3
        assert set(prepared._cost_rows) == {2, 3, 4}
        # Evicted source 0 is recomputed: equal values, new list object.
        rebuilt = prepared.cost_row(0)
        assert rebuilt == rows[0]
        assert rebuilt is not rows[0]
        # LRU, not FIFO: touching source 2 keeps it through an insert.
        prepared.cost_row(2)
        prepared.cost_row(1)
        assert 2 in prepared._cost_rows
        assert len(prepared._cost_rows) == 3
