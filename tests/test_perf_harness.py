"""The bench harness: scenarios, timing document, CLI subcommand."""

import json
import subprocess
import sys

import pytest

from repro.perf.harness import (
    SCHEMA_VERSION,
    run_benchmarks,
    summarize,
    write_benchmarks,
)
from repro.perf.scenarios import SCALES, build_scenarios, scenario_names

#: A cheap scenario subset exercised by the timing tests (full smoke
#: runs live in CI's bench-smoke job, not the unit suite).
FAST = ["transform_uncached", "msta_stack"]


class TestScenarios:
    def test_scales_exist(self):
        assert set(SCALES) >= {"smoke", "full"}

    @pytest.mark.parametrize("scale", sorted(SCALES))
    def test_scenario_suite_shape(self, scale):
        scenarios = build_scenarios(scale)
        # The acceptance floor: at least 8 scenarios per scale.
        assert len(scenarios) >= 8
        names = [s.name for s in scenarios]
        assert len(names) == len(set(names)), "duplicate scenario names"
        by_name = {s.name: s for s in scenarios}
        for scenario in scenarios:
            assert scenario.group
            assert scenario.description
            if scenario.baseline is not None:
                assert scenario.baseline in by_name

    def test_speedup_pair_present(self):
        """The committed >=1.5x claim needs its pair at full scale."""
        names = scenario_names("full")
        assert "solve_improved_i2" in names
        assert "solve_improved_i2_legacy" in names

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            build_scenarios("galactic")

    def test_parallel_scenarios_gated_by_jobs(self):
        """Pool-backed variants only join the suite at their jobs level."""
        at_one = scenario_names("smoke", jobs=1)
        assert "parallel_sweep_serial" in at_one
        assert "parallel_sweep_jobs1" in at_one
        assert "parallel_sweep_jobs2" not in at_one
        at_four = scenario_names("smoke", jobs=4)
        assert "parallel_sweep_jobs2" in at_four
        assert "parallel_sweep_jobs4" in at_four

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            build_scenarios("smoke", jobs=0)


class TestHarness:
    def test_document_schema(self):
        doc = run_benchmarks("smoke", repeats=1, names=FAST)
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["scale"] == "smoke"
        assert doc["repeats"] == 1
        assert "python" in doc["platform"]
        rows = doc["scenarios"]
        assert {r["name"] for r in rows} == set(FAST)
        for row in rows:
            assert row["median_s"] >= 0
            assert row["min_s"] <= row["median_s"] <= row["max_s"]
            assert row["repeats"] == 1
            assert row["peak_alloc_bytes"] > 0
            assert "n" in row["params"] and "M" in row["params"]

    def test_baseline_pulled_in_and_speedup_computed(self):
        doc = run_benchmarks("smoke", repeats=1, names=["transform_cached"])
        names = {r["name"] for r in doc["scenarios"]}
        # transform_cached's baseline joins the run automatically.
        assert names == {"transform_cached", "transform_uncached"}
        cached = next(
            r for r in doc["scenarios"] if r["name"] == "transform_cached"
        )
        assert cached["baseline"] == "transform_uncached"
        assert cached["speedup"] is not None and cached["speedup"] > 0

    def test_solver_scenario_reports_expansions(self):
        doc = run_benchmarks("smoke", repeats=1, names=["solve_pruned_i2"])
        row = next(
            r for r in doc["scenarios"] if r["name"] == "solve_pruned_i2"
        )
        assert row["expansions"] > 0
        assert row["params"]["i"] == 2
        assert row["params"]["k"] > 0

    def test_determinism_across_runs(self):
        """Same scale, same seeds: identical workloads, identical counts."""
        doc1 = run_benchmarks(
            "smoke", repeats=1, names=["solve_pruned_i2"], track_alloc=False
        )
        doc2 = run_benchmarks(
            "smoke", repeats=1, names=["solve_pruned_i2"], track_alloc=False
        )
        row1 = doc1["scenarios"][-1]
        row2 = doc2["scenarios"][-1]
        assert row1["expansions"] == row2["expansions"]
        assert row1["params"] == row2["params"]

    def test_document_records_execution_environment(self):
        """Schema v2: jobs + CPU/start-method provenance in the doc."""
        doc = run_benchmarks("smoke", repeats=1, names=FAST, track_alloc=False)
        assert doc["jobs"] == 1
        assert doc["platform"]["cpu_count"] >= 1
        assert doc["platform"]["start_method"] in (
            "fork",
            "spawn",
            "forkserver",
        )

    def test_parallel_scenario_reports_reuse_hits(self):
        doc = run_benchmarks(
            "smoke",
            repeats=1,
            names=["parallel_sweep_jobs1"],
            track_alloc=False,
        )
        rows = {r["name"]: r for r in doc["scenarios"]}
        # the serial baseline joins the run automatically
        assert set(rows) == {"parallel_sweep_serial", "parallel_sweep_jobs1"}
        assert rows["parallel_sweep_jobs1"]["reuse_hits"] >= 1
        assert rows["parallel_sweep_serial"]["reuse_hits"] is None
        with pytest.raises(KeyError):
            run_benchmarks("smoke", repeats=1, names=["nope"])

    def test_bad_repeats(self):
        with pytest.raises(ValueError):
            run_benchmarks("smoke", repeats=0)

    def test_write_round_trip(self, tmp_path):
        doc = run_benchmarks("smoke", repeats=1, names=FAST, track_alloc=False)
        path = tmp_path / "bench.json"
        write_benchmarks(doc, str(path))
        assert json.loads(path.read_text()) == doc

    def test_summarize_renders(self, capsys):
        doc = run_benchmarks("smoke", repeats=1, names=FAST, track_alloc=False)
        summarize(doc)
        out = capsys.readouterr().out
        for name in FAST:
            assert name in out


class TestBenchCli:
    def _run(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_list(self, capsys):
        assert self._run("bench", "--list", "--scale", "smoke") == 0
        out = capsys.readouterr().out.splitlines()
        assert "solve_improved_i2" in out
        assert len(out) >= 8

    def test_run_only_and_out(self, tmp_path, capsys):
        out_path = tmp_path / "doc.json"
        code = self._run(
            "bench",
            "--repeats",
            "1",
            "--only",
            "msta_stack",
            "--out",
            str(out_path),
        )
        assert code == 0
        doc = json.loads(out_path.read_text())
        assert doc["schema_version"] == SCHEMA_VERSION

    def test_self_compare_is_clean(self, tmp_path):
        out_path = tmp_path / "doc.json"
        assert (
            self._run(
                "bench",
                "--repeats",
                "1",
                "--only",
                "msta_stack",
                "--out",
                str(out_path),
            )
            == 0
        )
        # Generous tolerance: this asserts the wiring (schema match,
        # clean diff, exit code), not micro-timing stability.
        code = self._run(
            "bench",
            "--repeats",
            "1",
            "--only",
            "msta_stack",
            "--compare",
            str(out_path),
            "--tolerance",
            "100",
        )
        assert code == 0

    def test_compare_missing_baseline_file(self, tmp_path, capsys):
        code = self._run(
            "bench",
            "--repeats",
            "1",
            "--only",
            "msta_stack",
            "--compare",
            str(tmp_path / "absent.json"),
        )
        assert code == 2

    def test_module_entry_point(self, tmp_path):
        """`python -m repro bench` works as documented in the issue."""
        out_path = tmp_path / "doc.json"
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "bench",
                "--scale",
                "smoke",
                "--repeats",
                "1",
                "--only",
                "msta_stack",
                "--out",
                str(out_path),
            ],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        assert out_path.exists()


class TestShardedScenarios:
    def test_sharded_scenarios_gated_by_jobs(self):
        at_one = scenario_names("smoke", jobs=1)
        assert "sharded_sweep_jobs1" in at_one
        assert "sharded_sweep_shards1" in at_one
        assert "sharded_sweep_jobs2" not in at_one
        at_two = scenario_names("smoke", jobs=2)
        assert "sharded_sweep_jobs2" in at_two
        assert "sharded_sweep_jobs2_wholegraph" in at_two

    def test_bad_shards_rejected(self):
        with pytest.raises(ValueError):
            build_scenarios("smoke", jobs=2, shards=0)

    def test_shard_stats_surface_in_document(self):
        doc = run_benchmarks(
            "smoke",
            repeats=1,
            names=["sharded_sweep_shards1"],
            track_alloc=False,
        )
        rows = {r["name"]: r for r in doc["scenarios"]}
        stats = rows["sharded_sweep_shards1"]["shard_stats"]
        assert isinstance(stats, list) and stats
        for entry in stats:
            assert set(entry) >= {
                "shard", "t_lo", "t_hi", "windows",
                "edges", "payload_bytes", "cells", "elapsed_s",
            }
        # The jobs1 baseline runs the legacy engine: no shard stats.
        assert rows["sharded_sweep_jobs1"]["shard_stats"] is None

    def test_speedup_pair_present_at_full_scale(self):
        """The committed BENCH_PR9 claim needs its pair at full scale."""
        names = scenario_names("full", jobs=2)
        assert "sharded_sweep_jobs2" in names
        assert "sharded_sweep_jobs1" in names
