"""Unit tests for Dijkstra and path reconstruction."""

import math
import random

import pytest

from repro.static.digraph import StaticDigraph
from repro.static.shortest_paths import dijkstra, reconstruct_path


def build(edges, n=None):
    g = StaticDigraph(range(n) if n else None)
    for u, v, w in edges:
        g.add_edge(u, v, w)
    return g


class TestDijkstra:
    def test_line(self):
        g = build([(0, 1, 2.0), (1, 2, 3.0)])
        dist, pred = dijkstra(g, 0)
        assert dist == [0.0, 2.0, 5.0]
        assert pred == [-1, 0, 1]

    def test_picks_cheaper_detour(self):
        g = build([(0, 1, 10.0), (0, 2, 1.0), (2, 1, 2.0)])
        dist, _ = dijkstra(g, 0)
        assert dist[g.index_of(1)] == 3.0

    def test_unreachable_is_inf(self):
        g = build([(0, 1, 1.0)], n=3)
        dist, pred = dijkstra(g, 0)
        assert math.isinf(dist[2])
        assert pred[2] == -1

    def test_zero_weight_edges(self):
        g = build([(0, 1, 0.0), (1, 2, 0.0)])
        dist, _ = dijkstra(g, 0)
        assert dist == [0.0, 0.0, 0.0]

    def test_parallel_edges_use_cheapest(self):
        g = build([(0, 1, 9.0), (0, 1, 4.0)])
        dist, _ = dijkstra(g, 0)
        assert dist[1] == 4.0

    def test_early_stop_with_targets(self):
        g = build([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        dist, _ = dijkstra(g, 0, targets=[1])
        assert dist[1] == 1.0  # target settled correctly

    def test_self_distance_zero(self):
        g = build([(0, 1, 1.0)])
        dist, _ = dijkstra(g, 0)
        assert dist[0] == 0.0

    def test_random_agrees_with_bellman_ford(self):
        rng = random.Random(3)
        n = 20
        edges = [
            (rng.randrange(n), rng.randrange(n), rng.randint(1, 9))
            for _ in range(60)
        ]
        g = build(edges, n=n)
        dist, _ = dijkstra(g, 0)
        # Bellman-Ford reference
        ref = [math.inf] * n
        ref[0] = 0.0
        for _ in range(n):
            for u, v, w in edges:
                if ref[u] + w < ref[v]:
                    ref[v] = ref[u] + w
        assert dist == pytest.approx(ref)


class TestReconstructPath:
    def test_path(self):
        g = build([(0, 1, 1.0), (1, 2, 1.0)])
        _, pred = dijkstra(g, 0)
        assert reconstruct_path(pred, 0, 2) == [0, 1, 2]

    def test_source_to_source(self):
        g = build([(0, 1, 1.0)])
        _, pred = dijkstra(g, 0)
        assert reconstruct_path(pred, 0, 0) == [0]

    def test_unreachable_empty(self):
        g = build([(0, 1, 1.0)], n=3)
        _, pred = dijkstra(g, 0)
        assert reconstruct_path(pred, 0, 2) == []
