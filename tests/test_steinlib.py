"""Tests for SteinLib parsing/writing and the b-series generator."""

import pytest

from repro.core.errors import GraphFormatError
from repro.steiner.steinlib import (
    B_SERIES_SHAPES,
    SteinLibProblem,
    generate_b_instance,
    generate_b_series,
    parse_stp,
    write_stp,
)

SAMPLE = """\
33D32945 STP File, STP Format Version 1.0
SECTION Comment
Name    "toy"
END

SECTION Graph
Nodes 4
Edges 3
E 1 2 5
E 2 3 2
E 2 4 7
END

SECTION Terminals
Terminals 2
T 3
T 4
END

EOF
"""


class TestParse:
    def test_sample(self):
        p = parse_stp(SAMPLE, name="toy")
        assert p.num_vertices == 4
        assert p.edges == ((1, 2, 5.0), (2, 3, 2.0), (2, 4, 7.0))
        assert p.terminals == (3, 4)
        assert p.root is None

    def test_root_directive(self):
        text = SAMPLE.replace("T 3", "Root 1\nT 3")
        assert parse_stp(text).root == 1

    def test_arcs_accepted(self):
        text = SAMPLE.replace("E 1 2 5", "A 1 2 5")
        assert parse_stp(text).edges[0] == (1, 2, 5.0)

    def test_missing_sections_rejected(self):
        with pytest.raises(GraphFormatError):
            parse_stp("SECTION Graph\nNodes 3\nEND\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(GraphFormatError, match="line"):
            parse_stp(SAMPLE.replace("E 1 2 5", "E 1 x 5"))


class TestRoundTrip:
    def test_write_then_parse(self):
        p = parse_stp(SAMPLE, name="toy")
        again = parse_stp(write_stp(p), name="toy")
        assert again.edges == p.edges
        assert again.terminals == p.terminals

    def test_root_survives(self):
        p = SteinLibProblem("x", 3, ((1, 2, 1.0), (2, 3, 1.0)), (3,), root=1)
        assert parse_stp(write_stp(p)).root == 1


class TestToDSTInstance:
    def test_bidirection(self):
        p = parse_stp(SAMPLE)
        inst = p.to_dst_instance(root=1)
        assert inst.graph.num_edges == 6  # each undirected edge twice
        assert inst.root == 1
        assert inst.terminals == (3, 4)

    def test_default_root_is_first_terminal(self):
        p = parse_stp(SAMPLE)
        inst = p.to_dst_instance()
        assert inst.root == 3
        assert inst.terminals == (4,)


class TestGenerator:
    def test_shape(self):
        p = generate_b_instance(30, 45, 6, seed=1)
        assert p.num_vertices == 30
        assert len(p.edges) == 45
        assert len(p.terminals) == 6
        assert p.root is not None
        assert p.root not in p.terminals

    def test_connected(self):
        from repro.steiner.instance import prepare_instance

        p = generate_b_instance(25, 30, 5, seed=2)
        prepared = prepare_instance(p.to_dst_instance())  # raises if unreachable
        assert prepared.num_terminals == 5

    def test_weights_in_range(self):
        p = generate_b_instance(20, 30, 4, max_weight=10, seed=3)
        assert all(1 <= w <= 10 for _, _, w in p.edges)

    def test_deterministic(self):
        a = generate_b_instance(20, 30, 4, seed=7)
        b = generate_b_instance(20, 30, 4, seed=7)
        assert a == b

    def test_no_duplicate_undirected_pairs(self):
        p = generate_b_instance(15, 40, 4, seed=4)
        pairs = [tuple(sorted(e[:2])) for e in p.edges]
        assert len(pairs) == len(set(pairs))

    def test_argument_validation(self):
        with pytest.raises(ValueError):
            generate_b_instance(10, 5, 3)
        with pytest.raises(ValueError):
            generate_b_instance(10, 15, 10)


class TestBSeries:
    def test_all_shapes_generated(self):
        problems = generate_b_series()
        assert set(problems) == set(B_SERIES_SHAPES)
        for name, p in problems.items():
            n, m, k = B_SERIES_SHAPES[name]
            assert p.num_vertices == n
            assert len(p.edges) == m
            assert len(p.terminals) == k

    def test_subset_selection(self):
        problems = generate_b_series(["b01", "b05"])
        assert sorted(problems) == ["b01", "b05"]

    def test_unknown_name(self):
        with pytest.raises(GraphFormatError):
            generate_b_series(["b99"])
