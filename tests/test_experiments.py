"""Tests for the programmatic experiment harness (quick mode).

These exercise every registered experiment end-to-end at CI scale and
assert the qualitative shapes the paper reports; the statistically
careful timing runs live in ``benchmarks/``.
"""

import math

import pytest

from repro.experiments import EXPERIMENTS, TableResult, run_experiment


@pytest.fixture(scope="module")
def results():
    """Run every experiment once in quick mode (shared across tests)."""
    return {name: run_experiment(name, quick=True) for name in EXPERIMENTS}


class TestRegistry:
    def test_all_tables_and_figures_registered(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "table7",
            "table8",
            "fig8a",
            "fig8b",
            "sweep",
        }

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            run_experiment("table99")

    def test_case_insensitive(self):
        result = run_experiment("TABLE1", quick=True)
        assert result.name == "table1"


class TestResultShape:
    def test_every_result_renders(self, results):
        for name, result in results.items():
            assert isinstance(result, TableResult)
            text = result.render()
            assert result.title in text
            assert len(result.rows) >= 1
            for row in result.rows:
                assert len(row) == len(result.header)

    def test_column_accessor(self, results):
        table1 = results["table1"]
        assert table1.column("dataset") == [r[0] for r in table1.rows]
        with pytest.raises(ValueError):
            table1.column("nope")


class TestPaperShapes:
    def test_table1_regimes(self, results):
        by_name = {row[0]: row for row in results["table1"].rows}
        pi = results["table1"].header.index("pi")
        assert by_name["epinions"][pi] == 1
        assert by_name["facebook"][pi] > by_name["slashdot"][pi]

    def test_table2_linear_algorithms_win(self, results):
        table = results["table2"]
        bhadra = table.header.index("Bhadra")
        alg1 = table.header.index("Alg1")
        wins = sum(1 for row in table.rows if row[alg1] < row[bhadra])
        assert wins >= len(table.rows) - 1  # allow one noisy row

    def test_table3_alg2_wins(self, results):
        table = results["table3"]
        bhadra = table.header.index("Bhadra")
        alg2 = table.header.index("Alg2")
        wins = sum(1 for row in table.rows if row[alg2] < row[bhadra])
        assert wins >= len(table.rows) - 1

    def test_table4_linear_expansion(self, results):
        table = results["table4"]
        e_g = table.header.index("|E(G')|")
        v_gg = table.header.index("|V(GG)|")
        for row in table.rows:
            # Lemma 2: |V(GG)| = O(|E(G')|)
            assert row[v_gg] <= 2 * row[e_g] + 2

    def test_table5_ordering(self, results):
        table = results["table5"]
        rows = {row[0]: row[1:] for row in table.rows}
        for charik, alg6 in zip(rows["Charik-2"], rows["Alg6-2"]):
            if charik == "-" or alg6 == "-":
                continue
            assert alg6 < charik

    def test_table6_weights_improve(self, results):
        table = results["table6"]
        rows = {row[0]: row[1:] for row in table.rows}
        for w1, w2 in zip(rows["i=1"], rows["i=2"]):
            if w1 == "-" or w2 == "-":
                continue
            assert w2 <= w1 * 1.05 + 1e-9

    def test_table7_alg6_beats_charik(self, results):
        table = results["table7"]
        charik = table.header.index("Charik-3")
        alg6 = table.header.index("Alg6-3")
        for row in table.rows:
            assert row[alg6] < row[charik]

    def test_table8_errors_nonnegative_and_improving(self, results):
        table = results["table8"]
        rows = {row[0]: row[1:] for row in table.rows}
        for e1, e2 in zip(rows["i=1"], rows["i=2"]):
            assert e2 >= -1e-9
            assert e2 <= e1 + 1e-9

    def test_fig8a_flat(self, results):
        times = [c for c in results["fig8a"].rows[0][1:]]
        assert max(times) <= 5 * min(times) + 0.05

    def test_fig8b_growing(self, results):
        for row in results["fig8b"].rows:
            times = row[1:]
            assert times[-1] > times[0]
            assert not any(math.isnan(t) for t in times)

class TestSweep:
    """The Section 2.3 sliding-window forecast table."""

    def test_shape_and_incremental_engagement(self, results):
        table = results["sweep"]
        assert table.header == [
            "t_alpha", "t_omega", "reached", "makespan", "mstw cost",
        ]
        for row in table.rows:
            reached, makespan, cost = row[2], row[3], row[4]
            if reached == 0:
                assert makespan == "-"
                assert cost == 0.0
            else:
                assert not math.isnan(makespan)
                assert not math.isnan(cost)
        # The quick sweep is tuned so the repair path actually engages.
        repair_note = next(n for n in table.notes if "dirty-cone" in n)
        assert not repair_note.startswith("MST_a sweep: 0 slides")
        assert any("never NaN" in n for n in table.notes)

    def test_empty_window_exports_dash_not_nan(self):
        """Table export of an empty window: '-', 0, 0.0 -- never NaN."""
        from repro.experiments.checkpoint import ExperimentContext
        from repro.experiments.sliding_tables import run_sweep

        empty = {
            "t_alpha": 0.0, "t_omega": 5.0,
            "coverage": 0, "cost": 0.0, "makespan": None, "caveat": None,
        }
        full = {
            "t_alpha": 5.0, "t_omega": 10.0,
            "coverage": 3, "cost": 7.0, "makespan": 4.0, "caveat": None,
        }
        ctx = ExperimentContext()
        ctx._cells = {
            "sweep:msta": {
                "rows": [empty, full],
                "stats": {"incremental_slides": 1, "cold_solves": 1},
            },
            "sweep:mstw": {
                "rows": [empty, full],
                "stats": {
                    "incremental_slides": 1, "cold_solves": 1,
                    "patched_prepares": 0, "cold_prepares": 1,
                    "warm_solves": 1,
                },
            },
        }
        table = run_sweep(quick=True, context=ctx)
        assert table.rows[0][2:] == [0, "-", 0.0]
        assert table.rows[1][2:] == [3, 4.0, 7.0]
        cells = "\n".join(
            str(cell) for row in table.rows for cell in row
        )
        assert "nan" not in cells.lower()
        assert "None" not in cells


class TestMstaBudgetThreading:
    """The cell budget must reach the MST_a solvers (the REP201 fix).

    Before the fix, ``run_table2``/``run_table3`` timed their solvers
    outside the cell protocol: the budget in scope was silently dropped
    and a pathological dataset could hang the table.  These tests pin
    the threaded path from both sides.
    """

    def test_tiny_cell_budget_degrades_structurally(self):
        from repro.experiments.checkpoint import ExperimentContext
        from repro.experiments.msta_tables import run_table2
        from repro.experiments.runner import OverBudgetCell

        ctx = ExperimentContext(cell_budget_seconds=1e-9)
        table = run_table2(quick=True, context=ctx)
        bhadra = table.header.index("Bhadra")
        alg2 = table.header.index("Alg2")
        for row in table.rows:
            # Bhadra and Alg2 checkpoint every expansion, so a
            # zero-width deadline degrades every one of their cells to
            # a structured over-budget marker instead of raising.
            assert isinstance(row[bhadra], OverBudgetCell)
            assert isinstance(row[alg2], OverBudgetCell)

    def test_default_context_stays_exact(self, results):
        from repro.experiments.runner import OverBudgetCell

        for name in ("table2", "table3"):
            for row in results[name].rows:
                assert not any(
                    isinstance(cell, OverBudgetCell) for cell in row
                )
