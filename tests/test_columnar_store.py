"""Unit tests for the columnar edge store and its cache discipline.

The cross-backend *output identity* is property-tested in
``test_property_columnar.py``; this file pins down the store's
contracts one by one -- backend selection precedence, interning order,
generation monotonicity, the per-graph store cache, and the
generation-keyed shared edge index (the regression test for serving a
stale index over a rebuilt store).
"""

from __future__ import annotations

import pytest

from repro.temporal.columnar import (
    ColumnarEdgeStore,
    active_backend,
    force_backend,
    numpy_available,
)
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.index import TemporalEdgeIndex, edge_index_for
from repro.temporal.window import TimeWindow

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not importable"
)


def small_graph() -> TemporalGraph:
    return TemporalGraph(
        [
            TemporalEdge("b", "c", 3.0, 5.0, 1.0),
            TemporalEdge("a", "b", 1.0, 2.0, 1.0),
            TemporalEdge("a", "c", 1.0, 4.0, 2.0),
            TemporalEdge("c", "a", 6.0, 7.0, 1.0),
        ],
        vertices=["isolated"],
    )


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
def test_force_backend_overrides_environment(monkeypatch):
    monkeypatch.setenv("REPRO_FORCE_PURE", "1")
    assert active_backend() == "pure"
    if numpy_available():
        with force_backend("numpy"):
            assert active_backend() == "numpy"
        assert active_backend() == "pure"


def test_force_pure_env_values(monkeypatch):
    monkeypatch.setenv("REPRO_FORCE_PURE", "0")
    default = "numpy" if numpy_available() else "pure"
    assert active_backend() == default
    monkeypatch.setenv("REPRO_FORCE_PURE", "")
    assert active_backend() == default
    monkeypatch.setenv("REPRO_FORCE_PURE", "yes")
    assert active_backend() == "pure"


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        with force_backend("cuda"):
            pass  # pragma: no cover
    with pytest.raises(ValueError):
        ColumnarEdgeStore((), backend="cuda")


# ----------------------------------------------------------------------
# Store construction
# ----------------------------------------------------------------------
def test_interning_is_first_occurrence_order():
    graph = small_graph()
    with force_backend("pure"):
        store = graph.columnar()
    # Edge endpoints in insertion order, then the extras.
    assert store.vertex_labels == ["b", "c", "a", "isolated"]
    assert store.vertex_ids == {"b": 0, "c": 1, "a": 2, "isolated": 3}
    assert list(store.sources) == [0, 2, 2, 1]
    assert list(store.targets) == [1, 0, 1, 2]
    assert store.num_edges == 4
    assert store.num_vertices == 4


def test_sort_orders_and_ranks():
    graph = small_graph()
    with force_backend("pure"):
        store = graph.columnar()
    # (start, arrival, position): positions 1 (1,2), 2 (1,4), 0 (3,5), 3 (6,7)
    assert list(store.positions_by_start()) == [1, 2, 0, 3]
    assert list(store.sorted_starts()) == [1.0, 1.0, 3.0, 6.0]
    assert list(store.arrivals_by_start_order()) == [2.0, 4.0, 5.0, 7.0]
    # (arrival, start, position) happens to coincide here.
    assert list(store.positions_by_arrival()) == [1, 2, 0, 3]
    # start_ranks inverts positions_by_start.
    ranks = store.start_ranks()
    assert [int(ranks[p]) for p in store.positions_by_start()] == [0, 1, 2, 3]


def test_value_type_flags():
    float_graph = small_graph()
    int_graph = TemporalGraph([TemporalEdge(0, 1, 1, 2, 3)])
    mixed = TemporalGraph(
        [TemporalEdge(0, 1, 1.0, 2.0, 3.0), TemporalEdge(1, 0, 4, 5, 6)]
    )
    with force_backend("pure"):
        assert float_graph.columnar().arrivals_are_float
        assert float_graph.columnar().weights_are_float
        assert not int_graph.columnar().arrivals_are_float
        assert not int_graph.columnar().weights_are_float
        assert not mixed.columnar().arrivals_are_float
        assert not mixed.columnar().weights_are_float


def test_generations_are_unique_and_monotone():
    edges = small_graph().edges
    with force_backend("pure"):
        a = ColumnarEdgeStore(edges)
        b = ColumnarEdgeStore(edges)
    assert b.generation > a.generation


def test_empty_store():
    with force_backend("pure"):
        store = ColumnarEdgeStore(())
    assert store.num_edges == 0
    assert store.start_bounds(0.0, 10.0) == (0, 0)
    assert list(store.window_positions(0.0, 10.0)) == []
    assert store.count_in(0.0, 10.0) == 0
    assert store.edges_at(store.window_positions(0.0, 10.0)) == []


# ----------------------------------------------------------------------
# Queries (exact values; cross-backend identity lives in the property suite)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "backend",
    ["pure", pytest.param("numpy", marks=needs_numpy)],
)
def test_window_queries(backend):
    graph = small_graph()
    with force_backend(backend):
        store = graph.columnar()
    assert store.backend == backend
    # Window [1, 4]: positions 1 (1->2) and 2 (1->4) qualify; position 0
    # starts at 3 but arrives at 5, outside.
    assert [int(p) for p in store.window_positions(1.0, 4.0)] == [1, 2]
    assert [int(p) for p in store.window_positions_graph_order(1.0, 4.0)] == [1, 2]
    assert store.count_in(1.0, 4.0) == 2
    assert [tuple(e) for e in store.edges_at(store.window_positions(1.0, 4.0))] == [
        ("a", "b", 1.0, 2.0, 1.0),
        ("a", "c", 1.0, 4.0, 2.0),
    ]


@pytest.mark.parametrize(
    "backend",
    ["pure", pytest.param("numpy", marks=needs_numpy)],
)
def test_delta_positions(backend):
    graph = small_graph()
    with force_backend(backend):
        store = graph.columnar()
    added, removed = store.delta_positions((1.0, 4.0), (1.0, 7.0))
    assert [int(p) for p in added] == [0, 3]
    assert [int(p) for p in removed] == []
    added, removed = store.delta_positions((1.0, 7.0), (3.0, 7.0))
    assert [int(p) for p in added] == []
    assert sorted(int(p) for p in removed) == [1, 2]


@needs_numpy
def test_earliest_arrival_kernel():
    graph = small_graph()
    with force_backend("numpy"):
        store = graph.columnar()
    labels = store.earliest_arrival("a", 0.0, 10.0)
    assert labels == [("a", 0.0), ("b", 2.0), ("c", 4.0)]
    assert store.earliest_arrival("missing", 0.0, 10.0) == []


# ----------------------------------------------------------------------
# The per-graph store cache
# ----------------------------------------------------------------------
def test_graph_store_is_cached_and_rebuilt_on_backend_switch():
    graph = small_graph()
    assert graph.columnar_or_none() is None
    with force_backend("pure"):
        first = graph.columnar()
        assert graph.columnar() is first
        assert graph.columnar_or_none() is first
    if not numpy_available():
        return
    with force_backend("numpy"):
        rebuilt = graph.columnar()
    assert rebuilt is not first
    assert rebuilt.backend == "numpy"
    assert rebuilt.generation > first.generation


# ----------------------------------------------------------------------
# Regression: the shared edge index must be keyed on store generation
# ----------------------------------------------------------------------
def test_edge_index_cache_invalidated_by_store_rebuild():
    """A backend switch rebuilds the store; the cached ``TemporalEdgeIndex``
    over the dropped arrays must not be served for the new store."""
    graph = small_graph()
    with force_backend("pure"):
        index = edge_index_for(graph)
        assert isinstance(index, TemporalEdgeIndex)
        assert edge_index_for(graph) is index
        assert index.generation == graph.columnar().generation
    if not numpy_available():
        return
    with force_backend("numpy"):
        store = graph.columnar()  # rebuild under the new backend
        # A create=False probe must report the stale entry as a miss...
        assert edge_index_for(graph, create=False) is None
        # ...and a full call must rebuild against the new store.
        fresh = edge_index_for(graph)
        assert fresh is not index
        assert fresh.generation == store.generation
        assert edge_index_for(graph) is fresh


def test_edge_index_create_false_does_not_build():
    graph = small_graph()
    assert edge_index_for(graph, create=False) is None
    assert graph.columnar_or_none() is None


def test_edge_index_results_match_restricted():
    graph = small_graph()
    window = TimeWindow(1.0, 4.0)
    with force_backend("pure"):
        index = edge_index_for(graph)
        assert [tuple(e) for e in index.edges_in_graph_order(window)] == [
            tuple(e)
            for e in graph.edges
            if e.within(window.t_alpha, window.t_omega)
        ]
        assert index.count_in(window) == 2


# ----------------------------------------------------------------------
# Columnar pickling (TemporalGraph.__getstate__)
# ----------------------------------------------------------------------
def test_warm_graph_pickles_in_columnar_form():
    """A cached store switches the pickle to tagged column arrays."""
    import pickle

    from repro.temporal.graph import _COLUMNAR_STATE_TAG

    graph = small_graph()
    with force_backend("pure"):
        graph.columnar()
    tag, columns = graph.__getstate__()
    assert tag == _COLUMNAR_STATE_TAG
    assert set(columns) >= {
        "labels", "sources", "targets", "starts", "arrivals", "weights",
    }
    clone = pickle.loads(pickle.dumps(graph))
    assert [tuple(e) for e in clone.edges] == [tuple(e) for e in graph.edges]
    assert clone.vertices == graph.vertices  # isolated vertex survives


def test_cold_graph_pickles_in_legacy_form():
    import pickle

    graph = small_graph()
    assert graph.columnar_or_none() is None
    state = graph.__getstate__()
    assert state[0] == graph.edges  # legacy (edges, vertices) tuple
    clone = pickle.loads(pickle.dumps(graph))
    assert clone.edges == graph.edges
    assert clone.vertices == graph.vertices


def test_legacy_state_still_loads():
    """Pickles written before the columnar form keep deserializing."""
    graph = small_graph()
    clone = TemporalGraph([])
    clone.__setstate__((graph.edges, graph.vertices))
    assert clone.edges == graph.edges
    assert clone.vertices == graph.vertices


def test_columnar_pickle_rebuilds_caches_lazily():
    import pickle

    graph = small_graph()
    with force_backend("pure"):
        graph.columnar()
        clone = pickle.loads(pickle.dumps(graph))
        assert clone.columnar_or_none() is None  # no store smuggled across
        assert clone.columnar().backend == "pure"


@needs_numpy
def test_columnar_pickle_round_trips_across_backends():
    """Satellite contract: dump under numpy, load under pure (and back).

    The exported columns are stdlib arrays/tuples, so the receiving
    process needs no numpy -- and value types survive exactly.
    """
    import pickle

    graph = TemporalGraph(
        [
            TemporalEdge("a", "b", 1, 2, 3),          # ints stay ints
            TemporalEdge("b", "c", 2.5, 3.5, 4.25),   # floats stay floats
        ],
        vertices=["lonely"],
    )
    for dump_backend, load_backend in (("numpy", "pure"), ("pure", "numpy")):
        fresh = TemporalGraph(graph.edges, vertices=graph.vertices)
        with force_backend(dump_backend):
            fresh.columnar()
            blob = pickle.dumps(fresh)
        with force_backend(load_backend):
            clone = pickle.loads(blob)
            assert [tuple(e) for e in clone.edges] == [
                tuple(e) for e in graph.edges
            ]
            assert clone.vertices == graph.vertices
            assert type(clone.edges[0].weight) is int
            assert type(clone.edges[1].weight) is float
            assert clone.columnar().backend == load_backend
