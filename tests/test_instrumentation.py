"""Tests for the operation-counting instrumentation.

These make the paper's complexity claims machine-checkable: the
improved algorithm performs strictly fewer closure accesses than
Charikar's, and the pruned variant fewer still -- independent of
wall-clock noise.
"""

import pytest

from repro.steiner.charikar import charikar_dst
from repro.steiner.improved import improved_dst
from repro.steiner.instrumentation import (
    CountingInstance,
    compare_solvers,
    count_operations,
)
from repro.steiner.pruned import pruned_dst

from tests.test_steiner_algorithms import hub_instance, random_instance


class TestCountingInstance:
    def test_counts_cost_lookups(self):
        prepared = hub_instance()
        counting = CountingInstance(prepared)
        counting.cost(0, 1)
        counting.cost(0, 2)
        assert counting.counts.cost_lookups == 2

    def test_counts_row_scans(self):
        prepared = hub_instance()
        counting = CountingInstance(prepared)
        counting.closure.costs_from(0)
        assert counting.counts.row_scans == 1

    def test_delegates_values(self):
        prepared = hub_instance()
        counting = CountingInstance(prepared)
        assert counting.cost(0, 1) == prepared.cost(0, 1)
        assert counting.num_vertices == prepared.num_vertices
        assert counting.terminals == prepared.terminals
        assert counting.root == prepared.root

    def test_closure_attribute_passthrough(self):
        prepared = hub_instance()
        counting = CountingInstance(prepared)
        assert counting.closure.num_vertices == prepared.closure.num_vertices

    def test_reset(self):
        prepared = hub_instance()
        counting = CountingInstance(prepared)
        counting.cost(0, 1)
        counting.counts.reset()
        assert counting.counts.total == 0


class TestSolverTransparency:
    @pytest.mark.parametrize("solver", [charikar_dst, improved_dst, pruned_dst])
    @pytest.mark.parametrize("level", [1, 2])
    def test_counting_does_not_change_results(self, solver, level):
        prepared = random_instance(11, k=4)
        plain = solver(prepared, level)
        counting = CountingInstance(prepared)
        wrapped = solver(counting, level)
        assert wrapped.cost == pytest.approx(plain.cost)
        assert wrapped.covered == plain.covered


class TestComplexityClaims:
    @pytest.mark.parametrize("seed", range(3))
    def test_improved_does_less_work_than_charikar(self, seed):
        prepared = random_instance(seed, n=14, m=40, k=6)
        counts = compare_solvers(prepared, level=2)
        assert counts["improved"].total < counts["charikar"].total

    @pytest.mark.parametrize("seed", range(3))
    def test_pruned_does_less_work_than_improved(self, seed):
        prepared = random_instance(seed, n=14, m=40, k=6)
        counts = compare_solvers(prepared, level=2)
        assert counts["pruned"].total <= counts["improved"].total

    def test_gap_grows_with_terminal_count(self):
        small = random_instance(5, n=14, m=40, k=3)
        large = random_instance(5, n=14, m=40, k=8)
        ratio_small = (
            count_operations(charikar_dst, small, 2).total
            / count_operations(improved_dst, small, 2).total
        )
        ratio_large = (
            count_operations(charikar_dst, large, 2).total
            / count_operations(improved_dst, large, 2).total
        )
        # the paper: O(n^i k^{2i}) vs O(n^i k^i) -- the advantage scales with k
        assert ratio_large > ratio_small

    def test_level_one_identical_work(self):
        prepared = random_instance(9, k=5)
        counts = compare_solvers(prepared, level=1)
        assert counts["charikar"].total == counts["improved"].total
        assert counts["improved"].total == counts["pruned"].total
