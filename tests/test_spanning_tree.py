"""Tests for the TemporalSpanningTree result object."""

import pytest

from repro.core.errors import InvalidTreeError
from repro.core.spanning_tree import TemporalSpanningTree, arrival_map_of
from repro.temporal.edge import TemporalEdge
from repro.temporal.window import TimeWindow


def small_tree():
    return TemporalSpanningTree(
        "r",
        {
            "a": TemporalEdge("r", "a", 1, 2, 5),
            "b": TemporalEdge("a", "b", 3, 4, 7),
        },
    )


class TestStructure:
    def test_vertices_and_edges(self):
        t = small_tree()
        assert t.vertices == {"r", "a", "b"}
        assert t.num_edges == 2
        assert len(t.edges) == 2

    def test_parents(self):
        t = small_tree()
        assert t.parent("r") is None
        assert t.parent("a") == "r"
        assert t.parent("b") == "a"

    def test_children(self):
        t = small_tree()
        assert t.children() == {"r": ["a"], "a": ["b"]}

    def test_path_to(self):
        t = small_tree()
        path = t.path_to("b")
        assert [e.target for e in path] == ["a", "b"]
        assert t.path_to("r") == []

    def test_path_to_uncovered_raises(self):
        with pytest.raises(KeyError):
            small_tree().path_to("zz")

    def test_root_with_in_edge_rejected(self):
        with pytest.raises(InvalidTreeError):
            TemporalSpanningTree("r", {"r": TemporalEdge("a", "r", 0, 1, 1)})

    def test_parent_cycle_detected(self):
        t = TemporalSpanningTree(
            "r",
            {
                "a": TemporalEdge("b", "a", 0, 1, 1),
                "b": TemporalEdge("a", "b", 0, 1, 1),
            },
        )
        with pytest.raises(InvalidTreeError, match="cycle"):
            t.path_to("a")


class TestObjectives:
    def test_total_weight(self):
        assert small_tree().total_weight == 12

    def test_arrival_times(self):
        t = small_tree()
        assert t.arrival_times == {"r": 0.0, "a": 2, "b": 4}
        assert arrival_map_of(t) == t.arrival_times

    def test_max_arrival(self):
        assert small_tree().max_arrival_time == 4

    def test_window_sets_root_arrival(self):
        t = TemporalSpanningTree(
            "r", {"a": TemporalEdge("r", "a", 5, 6, 1)}, TimeWindow(5, 10)
        )
        assert t.arrival_times["r"] == 5


class TestValidate:
    def test_valid_tree_passes(self):
        small_tree().validate()

    def test_edge_outside_window(self):
        t = TemporalSpanningTree(
            "r", {"a": TemporalEdge("r", "a", 1, 20, 1)}, TimeWindow(0, 10)
        )
        with pytest.raises(InvalidTreeError, match="outside"):
            t.validate()

    def test_time_constraint_violation(self):
        t = TemporalSpanningTree(
            "r",
            {
                "a": TemporalEdge("r", "a", 0, 5, 1),
                "b": TemporalEdge("a", "b", 3, 4, 1),  # departs before a is reached
            },
        )
        with pytest.raises(InvalidTreeError, match="time constraint"):
            t.validate()

    def test_wrong_target_mapping(self):
        t = TemporalSpanningTree("r", {"a": TemporalEdge("r", "b", 0, 1, 1)})
        with pytest.raises(InvalidTreeError, match="targets"):
            t.validate()

    def test_edge_not_in_graph(self, figure1):
        t = TemporalSpanningTree("0?", {})
        t2 = TemporalSpanningTree(0, {1: TemporalEdge(0, 1, 1, 3, 99)})
        with pytest.raises(InvalidTreeError, match="not an edge"):
            t2.validate(figure1)

    def test_departure_before_window_start(self):
        t = TemporalSpanningTree(
            "r", {"a": TemporalEdge("r", "a", 1, 3, 1)}, TimeWindow(2, 10)
        )
        with pytest.raises(InvalidTreeError):
            t.validate()
