"""Tests for the lazy metric closure."""

import math

import numpy as np
import pytest

from repro.static.closure import build_metric_closure
from repro.static.digraph import StaticDigraph
from repro.static.lazy import LazyMetricClosure, prepare_instance_lazy
from repro.steiner.charikar import charikar_dst
from repro.steiner.instance import DSTInstance, prepare_instance
from repro.steiner.pruned import pruned_dst

from tests.test_static_dag import random_dag


class TestLaziness:
    def test_no_rows_up_front(self):
        closure = LazyMetricClosure(random_dag(1))
        assert closure.rows_materialised == 0

    def test_row_computed_on_first_access(self):
        closure = LazyMetricClosure(random_dag(1))
        closure.cost(0, 5)
        assert closure.rows_materialised == 1
        closure.cost(0, 7)  # same row, no new Dijkstra
        assert closure.rows_materialised == 1
        closure.costs_from(3)
        assert closure.rows_materialised == 2

    def test_dist_materialises_everything(self):
        g = random_dag(2, n=10, extra=10)
        closure = LazyMetricClosure(g)
        matrix = closure.dist
        assert closure.rows_materialised == g.num_vertices
        assert matrix.shape == (g.num_vertices, g.num_vertices)


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_eager_closure(self, seed):
        g = random_dag(seed)
        lazy = LazyMetricClosure(g)
        eager = build_metric_closure(g)
        assert np.allclose(lazy.dist, eager.dist)

    def test_paths(self):
        g = StaticDigraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        g.add_edge(0, 2, 5.0)
        closure = LazyMetricClosure(g)
        assert closure.path(0, 2) == [0, 1, 2]
        assert closure.path_edges(0, 2) == [(0, 1, 1.0), (1, 2, 1.0)]
        assert closure.is_reachable(0, 2)
        assert not closure.is_reachable(2, 0)


class TestPrepareInstanceLazy:
    def _instance(self):
        g = StaticDigraph()
        for i in range(6):
            g.add_edge("r", i, float(i + 1))
        return DSTInstance(g, "r", tuple(range(4)))

    def test_level1_touches_one_row(self):
        prepared = prepare_instance_lazy(self._instance())
        tree = charikar_dst(prepared, 1)
        assert tree.cost == 1 + 2 + 3 + 4
        # only the root's row was ever needed
        assert prepared.closure.rows_materialised == 1

    def test_matches_eager_results_at_level2(self):
        instance = self._instance()
        lazy = prepare_instance_lazy(instance)
        eager = prepare_instance(instance)
        assert pruned_dst(lazy, 2).cost == pytest.approx(
            pruned_dst(eager, 2).cost
        )

    def test_unreachable_terminal_detected(self):
        from repro.core.errors import UnreachableRootError

        g = StaticDigraph(["island"])
        g.add_edge("r", "t", 1.0)
        with pytest.raises(UnreachableRootError):
            prepare_instance_lazy(DSTInstance(g, "r", ("island",)))

    def test_reachability_check_skippable(self):
        g = StaticDigraph(["island"])
        g.add_edge("r", "t", 1.0)
        prepared = prepare_instance_lazy(
            DSTInstance(g, "r", ("island",)), require_reachable=False
        )
        assert math.isinf(prepared.cost(prepared.root, prepared.terminals[0]))
