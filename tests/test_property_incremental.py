"""Property-based tests: incremental sweeps equal cold recomputation.

Strategy: random temporal multigraphs paired with random *slide
sequences* -- window moves of varying delta including slides larger
than the window length (disjoint jumps) and backward moves, which the
engine must answer by falling back to a cold solve.  For every window
in the sequence the incremental engine's answer must equal the cold
per-window computation exactly: ``MST_a`` arrival maps, serialized
trees, and ``MST_w`` cost.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.errors import UnreachableRootError
from repro.core.msta import minimum_spanning_tree_a
from repro.core.mstw import minimum_spanning_tree_w
from repro.incremental import SlidingEngine
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.index import TemporalEdgeIndex
from repro.temporal.window import TimeWindow

SPAN = 24  # timestamps are drawn from [0, SPAN]


@st.composite
def graphs_and_slides(draw, max_vertices=7, max_edges=20, max_windows=6):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=1, max_value=max_edges))
    edges = []
    for _ in range(num_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        start = draw(st.integers(min_value=0, max_value=SPAN - 4))
        duration = draw(st.integers(min_value=0, max_value=4))
        weight = draw(st.integers(min_value=1, max_value=9))
        edges.append(TemporalEdge(u, v, start, start + duration, weight))
    graph = TemporalGraph(edges, vertices=range(n))

    length = draw(st.integers(min_value=2, max_value=SPAN))
    start0 = draw(st.integers(min_value=0, max_value=SPAN - length))
    windows = [TimeWindow(start0, start0 + length)]
    num_slides = draw(st.integers(min_value=1, max_value=max_windows - 1))
    for _ in range(num_slides):
        # Deltas from small forward nudges through full disjoint jumps
        # to backward moves (negative): every regime the engine claims
        # to handle.
        delta = draw(st.integers(min_value=-SPAN, max_value=2 * SPAN))
        t_alpha = min(max(0, windows[-1].t_alpha + delta), SPAN - length)
        windows.append(TimeWindow(t_alpha, t_alpha + length))
    return graph, windows


def _ser(tree):
    if tree is None:
        return None
    return (tree.root, sorted(tree.parent_edge.items()))


def _cold_msta(index, root, window):
    active = index.subgraph(window)
    if root not in active.vertices:
        return None
    return minimum_spanning_tree_a(active, root, window)


def _cold_mstw(index, root, window):
    active = index.subgraph(window)
    if root not in active.vertices:
        return None
    try:
        return minimum_spanning_tree_w(active, root, window, level=2).tree
    except UnreachableRootError:
        return None


@settings(max_examples=80, deadline=None)
@given(data=graphs_and_slides())
def test_incremental_msta_equals_cold_on_any_slide_sequence(data):
    graph, windows = data
    index = TemporalEdgeIndex(graph)
    engine = SlidingEngine(graph, 0, index=index)
    for window in windows:
        warm = engine.measure_msta(window).tree
        cold = _cold_msta(index, 0, window)
        assert _ser(warm) == _ser(cold), window
        if cold is not None:
            assert warm.arrival_times == cold.arrival_times


@settings(max_examples=40, deadline=None)
@given(data=graphs_and_slides(max_edges=14, max_windows=4))
def test_incremental_mstw_equals_cold_on_any_slide_sequence(data):
    graph, windows = data
    index = TemporalEdgeIndex(graph)
    engine = SlidingEngine(graph, 0, index=index)
    for window in windows:
        warm = engine.measure_mstw(window).tree
        cold = _cold_mstw(index, 0, window)
        assert _ser(warm) == _ser(cold), window
        if cold is not None:
            assert warm.total_weight == cold.total_weight
