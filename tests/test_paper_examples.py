"""Every worked example of the paper as a literal regression test.

Example numbering follows Sections 2-4; each test cites the claim it
encodes.
"""

import pytest

from repro.baselines.brute_force import brute_force_mstw_weight
from repro.core.msta import msta_chronological, msta_stack
from repro.core.mstw import minimum_spanning_tree_w, prepare_mstw_instance
from repro.core.transformation import copy_label, dummy_label
from repro.datasets.paper_examples import figure1_graph, figure3_graph
from repro.steiner.exact import exact_dst_cost
from repro.temporal.edge import TemporalEdge


class TestExample1:
    """The bold edge of Figure 1 is a call 0 -> 1 at [1, 3] with weight 2."""

    def test_red_edge_present(self):
        g = figure1_graph()
        assert TemporalEdge(0, 1, 1, 3, 2) in g.edges

    def test_weights_equal_durations(self):
        g = figure1_graph()
        assert all(e.weight == e.duration for e in g.edges)


class TestExample2:
    """Figure 2: MST_a arrivals 3,5,6,8,8; MST_w weight 11."""

    def test_msta_arrivals(self):
        tree = msta_chronological(figure1_graph(), 0)
        assert [tree.arrival_times[v] for v in (1, 2, 3, 4, 5)] == [3, 5, 6, 8, 8]

    def test_mstw_weight_is_11(self):
        assert brute_force_mstw_weight(figure1_graph(), 0) == 11.0

    def test_reachable_set_is_all_others(self):
        from repro.temporal.paths import reachable_set

        assert reachable_set(figure1_graph(), 0) == {0, 1, 2, 3, 4, 5}


class TestExample3:
    """Algorithm 1's trace on the chronological list of Figure 1."""

    def test_first_two_edges_update(self):
        g = figure1_graph()
        tree = msta_chronological(g, 0)
        assert tuple(tree.parent_edge[1]) == (0, 1, 1, 3, 2)
        assert tuple(tree.parent_edge[2]) == (0, 2, 1, 5, 4)

    def test_third_and_fourth_no_update(self):
        # (0,2,3,6,3) and (0,1,4,5,1) fail the Line 3 condition
        g = figure1_graph()
        chron = g.chronological_edges()
        arrival = {0: 0.0, 1: 3, 2: 5}
        for e in (chron[2], chron[3]):
            assert not (
                e.start >= arrival.get(e.source, float("inf"))
                and e.arrival < arrival.get(e.target, float("inf"))
            )


class TestExample4:
    """Figure 3: Algorithm 1 fails on zero durations; vertex 2 is missed."""

    def test_chronological_order_matches_paper(self):
        order = [tuple(e) for e in figure3_graph().chronological_edges()]
        assert order == [
            (0, 1, 1, 1, 0),
            (2, 0, 2, 2, 0),
            (3, 1, 2, 2, 0),
            (1, 4, 3, 3, 0),
            (3, 2, 4, 4, 0),
            (4, 3, 4, 4, 0),
        ]

    def test_alg1_misses_vertex_2(self):
        tree = msta_chronological(figure3_graph(), 0, check_durations=False)
        assert 2 not in tree.vertices

    def test_alg2_covers_vertex_2(self):
        tree = msta_stack(figure3_graph(), 0)
        assert 2 in tree.vertices
        assert tree.arrival_times[2] == 4


class TestExample5:
    """Figure 4: the transformation of Figure 1."""

    def test_vertex1_copies(self):
        transformed, _ = prepare_mstw_instance(figure1_graph(), 0)
        assert transformed.arrival_instances[1] == [3, 5]
        assert transformed.digraph.has_vertex(dummy_label(1))

    def test_solid_edge_1_1_to_3(self):
        transformed, _ = prepare_mstw_instance(figure1_graph(), 0)
        g = transformed.digraph
        src = g.index_of(copy_label(1, 0))
        j = transformed.arrival_instances[3].index(6)
        dst = g.index_of(copy_label(3, j))
        assert (dst, 2.0) in g.out_neighbors(src)


class TestExamples6and7:
    """Postprocessing and the improved algorithm produce the weight-11 tree."""

    @pytest.mark.parametrize("algorithm", ["charikar", "improved", "pruned"])
    def test_level2_postprocessed_result(self, algorithm):
        result = minimum_spanning_tree_w(
            figure1_graph(), 0, level=2, algorithm=algorithm
        )
        result.tree.validate(figure1_graph())
        # the approximation at i=2 already reaches the optimum here
        assert result.weight == 11.0

    def test_exact_dst_on_transformed_graph_is_11(self):
        _, prepared = prepare_mstw_instance(figure1_graph(), 0)
        assert exact_dst_cost(prepared) == 11.0
