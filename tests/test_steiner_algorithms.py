"""Tests for the three DST approximation algorithms (Algorithms 3, 4, 6).

Includes the executable versions of Theorem 7 and Theorem 9: on random
instances with generic (float) weights the three algorithms return the
same tree cost at every level.
"""

import random

import pytest

from repro.static.digraph import StaticDigraph
from repro.steiner.charikar import charikar_dst
from repro.steiner.exact import exact_dst_cost
from repro.steiner.improved import improved_dst
from repro.steiner.instance import DSTInstance, approximation_ratio, prepare_instance
from repro.steiner.pruned import pruned_dst
from repro.steiner.tree import expand_closure_tree, validate_covering_tree

ALGORITHMS = [charikar_dst, improved_dst, pruned_dst]


def star_instance():
    g = StaticDigraph()
    for i in range(4):
        g.add_edge("r", f"t{i}", float(i + 1))
    return prepare_instance(DSTInstance(g, "r", tuple(f"t{i}" for i in range(4))))


def hub_instance():
    """Direct edges cost 10 each; a hub serves all terminals for 3 + 3x1."""
    g = StaticDigraph()
    for i in range(3):
        g.add_edge("r", f"t{i}", 10.0)
        g.add_edge("hub", f"t{i}", 1.0)
    g.add_edge("r", "hub", 3.0)
    return prepare_instance(DSTInstance(g, "r", ("t0", "t1", "t2")))


def random_instance(seed, n=14, m=40, k=5, float_weights=True):
    rng = random.Random(seed)
    g = StaticDigraph(range(n))
    # random backbone from 0 so terminals are reachable
    for v in range(1, n):
        w = rng.uniform(1, 10) if float_weights else float(rng.randint(1, 10))
        g.add_edge(rng.randrange(v), v, w)
    for _ in range(m - n + 1):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        w = rng.uniform(1, 10) if float_weights else float(rng.randint(1, 10))
        g.add_edge(u, v, w)
    terminals = tuple(rng.sample(range(1, n), k))
    return prepare_instance(DSTInstance(g, 0, terminals))


class TestLevelOne:
    @pytest.mark.parametrize("solver", ALGORITHMS)
    def test_star_selects_all_direct_edges(self, solver):
        prepared = star_instance()
        tree = solver(prepared, 1)
        assert tree.cost == 1 + 2 + 3 + 4
        assert tree.covered == frozenset(prepared.terminals)

    @pytest.mark.parametrize("solver", ALGORITHMS)
    def test_partial_k(self, solver):
        prepared = star_instance()
        tree = solver(prepared, 1, k=2)
        assert tree.cost == 3.0  # two cheapest terminals
        assert tree.num_covered == 2

    @pytest.mark.parametrize("solver", ALGORITHMS)
    def test_level_one_uses_shortest_paths(self, solver):
        prepared = hub_instance()
        tree = solver(prepared, 1)
        # closure shortest path r->t_i costs 4 via the hub
        assert tree.cost == 12.0


class TestLevelTwo:
    @pytest.mark.parametrize("solver", ALGORITHMS)
    def test_hub_found(self, solver):
        prepared = hub_instance()
        tree = solver(prepared, 2)
        # one branch through the hub covering everything: 3 + 3*1 = 6
        assert tree.cost == 6.0
        assert tree.covered == frozenset(prepared.terminals)

    @pytest.mark.parametrize("solver", ALGORITHMS)
    def test_invalid_level(self, solver):
        with pytest.raises(ValueError):
            solver(star_instance(), 0)


class TestEquivalence:
    """Theorem 7 and Theorem 9 as executable properties."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_three_algorithms_agree(self, seed, level):
        prepared = random_instance(seed)
        costs = [solver(prepared, level).cost for solver in ALGORITHMS]
        assert costs[0] == pytest.approx(costs[1])
        assert costs[0] == pytest.approx(costs[2])

    @pytest.mark.parametrize("seed", range(3))
    def test_identical_trees_not_just_costs(self, seed):
        prepared = random_instance(seed)
        t_charikar = charikar_dst(prepared, 2)
        t_improved = improved_dst(prepared, 2)
        assert sorted(t_charikar.edges) == sorted(t_improved.edges)
        assert t_charikar.covered == t_improved.covered


class TestQualityAndValidity:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_within_approximation_ratio_of_exact(self, seed, level):
        prepared = random_instance(seed, k=5)
        approx = pruned_dst(prepared, level).cost
        opt = exact_dst_cost(prepared)
        assert opt <= approx + 1e-9
        assert approx <= approximation_ratio(level, 5) * opt + 1e-9

    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_monotone_improvement_trend(self, level):
        # not guaranteed monotone per level in theory, but level >= 2
        # must never be worse than the ratio at that level
        prepared = random_instance(42, k=6)
        approx = pruned_dst(prepared, level).cost
        opt = exact_dst_cost(prepared)
        assert approx / opt <= approximation_ratio(level, 6) + 1e-9

    @pytest.mark.parametrize("solver", ALGORITHMS)
    def test_expanded_tree_covers_terminals(self, solver):
        prepared = random_instance(3)
        tree = solver(prepared, 2)
        _, edges = expand_closure_tree(prepared, tree)
        assert validate_covering_tree(prepared, edges)

    def test_covers_all_terminals_every_level(self):
        prepared = random_instance(8, k=7)
        for level in (1, 2, 3):
            tree = pruned_dst(prepared, level)
            assert tree.covered == frozenset(prepared.terminals)


class TestPruningConsistency:
    def test_pruned_equals_improved_on_integer_weights_cost(self):
        # integer weights create density ties; costs can legitimately
        # differ only if tie-breaking diverged AND produced different
        # quality, which the greedy guarantees cannot -- both must still
        # be valid covers with equal density sequences, so compare cost
        # within the approximation bound instead of exactly.
        prepared = random_instance(21, float_weights=False)
        c_improved = improved_dst(prepared, 2).cost
        c_pruned = pruned_dst(prepared, 2).cost
        assert c_improved == pytest.approx(c_pruned)
