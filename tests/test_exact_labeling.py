"""Cross-certification of the two exact DST solvers."""

import math

import pytest

from repro.static.digraph import StaticDigraph
from repro.steiner.exact import exact_dst_cost
from repro.steiner.exact_labeling import exact_dst_cost_labeling
from repro.steiner.instance import DSTInstance, prepare_instance

from tests.test_steiner_algorithms import hub_instance, random_instance


class TestBasics:
    def test_hub_instance(self):
        prepared = hub_instance()
        assert exact_dst_cost_labeling(prepared) == 6.0

    def test_single_terminal_is_shortest_path(self):
        g = StaticDigraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        g.add_edge(0, 2, 5.0)
        prepared = prepare_instance(DSTInstance(g, 0, (2,)))
        assert exact_dst_cost_labeling(prepared) == 2.0

    def test_no_terminals(self):
        g = StaticDigraph()
        g.add_edge(0, 1, 1.0)
        prepared = prepare_instance(DSTInstance(g, 0, ()))
        assert exact_dst_cost_labeling(prepared) == 0.0

    def test_unreachable_is_inf(self):
        g = StaticDigraph(range(3))
        g.add_edge(0, 1, 1.0)
        prepared = prepare_instance(
            DSTInstance(g, 0, (2,)), require_reachable=False
        )
        assert math.isinf(exact_dst_cost_labeling(prepared))

    def test_terminal_cap(self):
        g = StaticDigraph()
        terminals = []
        for i in range(19):
            g.add_edge("r", i, 1.0)
            terminals.append(i)
        prepared = prepare_instance(DSTInstance(g, "r", tuple(terminals)))
        with pytest.raises(ValueError):
            exact_dst_cost_labeling(prepared)


class TestCrossCertification:
    @pytest.mark.parametrize("seed", range(12))
    def test_agrees_with_dreyfus_wagner(self, seed):
        prepared = random_instance(seed, n=12, m=35, k=4)
        assert exact_dst_cost_labeling(prepared) == pytest.approx(
            exact_dst_cost(prepared)
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_agrees_on_integer_weights(self, seed):
        prepared = random_instance(
            100 + seed, n=10, m=30, k=5, float_weights=False
        )
        assert exact_dst_cost_labeling(prepared) == pytest.approx(
            exact_dst_cost(prepared)
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_agrees_on_larger_terminal_sets(self, seed):
        prepared = random_instance(200 + seed, n=14, m=45, k=7)
        assert exact_dst_cost_labeling(prepared) == pytest.approx(
            exact_dst_cost(prepared)
        )
