"""Tests for the exact directed Dreyfus-Wagner solver."""

import itertools
import math
import random

import pytest

from repro.static.digraph import StaticDigraph
from repro.steiner.exact import MAX_EXACT_TERMINALS, exact_dst, exact_dst_cost
from repro.steiner.instance import DSTInstance, prepare_instance
from repro.steiner.tree import validate_covering_tree


def build_instance(edges, root, terminals, n=None):
    g = StaticDigraph(range(n) if n else None)
    for u, v, w in edges:
        g.add_edge(u, v, w)
    return prepare_instance(DSTInstance(g, root, tuple(terminals)))


def brute_force_dst(prepared):
    """Minimum over all edge subsets that connect root to all terminals."""
    edges = list(prepared.instance.graph.iter_edges())
    best = math.inf
    for r in range(len(edges) + 1):
        if r * math.log(max(len(edges), 2)) > 30:  # keep the search tiny
            break
        for subset in itertools.combinations(edges, r):
            cost = sum(w for _, _, w in subset)
            if cost >= best:
                continue
            if validate_covering_tree(prepared, list(subset)):
                best = cost
    return best


class TestSmallCases:
    def test_single_terminal_is_shortest_path(self):
        prepared = build_instance(
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)], 0, [2]
        )
        assert exact_dst_cost(prepared) == 2.0

    def test_shared_prefix_counted_once(self):
        # r -> m (3), m -> t1 (1), m -> t2 (1); direct edges cost 10
        prepared = build_instance(
            [(0, 1, 3.0), (1, 2, 1.0), (1, 3, 1.0), (0, 2, 10.0), (0, 3, 10.0)],
            0,
            [2, 3],
        )
        assert exact_dst_cost(prepared) == 5.0

    def test_split_vs_chain_decision(self):
        # terminals in a chain: t1 -> t2 reachable through t1 cheaply
        prepared = build_instance(
            [(0, 1, 2.0), (1, 2, 2.0), (0, 2, 3.0)], 0, [1, 2]
        )
        assert exact_dst_cost(prepared) == 4.0

    def test_unreachable_terminal_inf(self):
        # prepare_instance would raise; build manually without the check
        g = StaticDigraph(range(3))
        g.add_edge(0, 1, 1.0)
        inst = DSTInstance(g, 0, (2,))
        prepared = prepare_instance(inst, require_reachable=False)
        assert math.isinf(exact_dst_cost(prepared))

    def test_terminal_cap(self):
        g = StaticDigraph()
        terminals = []
        for i in range(MAX_EXACT_TERMINALS + 1):
            g.add_edge("r", i, 1.0)
            terminals.append(i)
        prepared = prepare_instance(DSTInstance(g, "r", tuple(terminals)))
        with pytest.raises(ValueError):
            exact_dst_cost(prepared)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_tiny_instances(self, seed):
        rng = random.Random(seed)
        n = 6
        edges = []
        for v in range(1, n):
            edges.append((rng.randrange(v), v, float(rng.randint(1, 5))))
        for _ in range(4):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edges.append((u, v, float(rng.randint(1, 5))))
        terminals = rng.sample(range(1, n), 2)
        prepared = build_instance(edges, 0, terminals)
        assert exact_dst_cost(prepared) == pytest.approx(brute_force_dst(prepared))


class TestReconstruction:
    @pytest.mark.parametrize("seed", range(5))
    def test_edges_realise_cost_and_cover(self, seed):
        rng = random.Random(100 + seed)
        n = 12
        edges = []
        for v in range(1, n):
            edges.append((rng.randrange(v), v, float(rng.randint(1, 9))))
        for _ in range(15):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edges.append((u, v, float(rng.randint(1, 9))))
        terminals = rng.sample(range(1, n), 4)
        prepared = build_instance(edges, 0, terminals)
        cost, tree_edges = exact_dst(prepared)
        assert validate_covering_tree(prepared, tree_edges)
        # the realised edge set costs at most the DP optimum (dedup may
        # only help) and at least ... exactly the optimum, since the DP
        # cost is a lower bound for any covering subgraph.
        realised = sum(w for _, _, w in tree_edges)
        assert realised == pytest.approx(cost)

    def test_reconstruction_on_shared_prefix(self):
        prepared = build_instance(
            [(0, 1, 3.0), (1, 2, 1.0), (1, 3, 1.0), (0, 2, 10.0), (0, 3, 10.0)],
            0,
            [2, 3],
        )
        cost, tree_edges = exact_dst(prepared)
        assert cost == 5.0
        assert sorted(tree_edges) == [(0, 1, 3.0), (1, 2, 1.0), (1, 3, 1.0)]
