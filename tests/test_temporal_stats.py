"""Unit tests for :mod:`repro.temporal.stats` (Table 1 statistics)."""

from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.stats import GraphStatistics, compute_statistics, multiplicity_map


class TestComputeStatistics:
    def test_figure1_row(self, figure1):
        stats = compute_statistics(figure1)
        assert stats.num_vertices == 6
        assert stats.num_temporal_edges == 10
        # static pairs: (0,1) (0,2) (1,3) (2,3) (2,4) (3,4) (3,5) (4,5)
        assert stats.num_static_edges == 8
        assert stats.max_multiplicity == 2  # (0,1) and (0,2) twice each

    def test_temporal_degree_counts_both_directions(self):
        g = TemporalGraph(
            [TemporalEdge(0, 1, 0, 1, 1), TemporalEdge(1, 0, 2, 3, 1)]
        )
        stats = compute_statistics(g)
        assert stats.max_temporal_degree == 2
        assert stats.max_static_degree == 2  # (0,1) and (1,0) are distinct pairs

    def test_pi_of_parallel_heavy_pair(self):
        edges = [TemporalEdge(0, 1, t, t + 1, 1) for t in range(7)]
        edges.append(TemporalEdge(1, 2, 10, 11, 1))
        stats = compute_statistics(TemporalGraph(edges))
        assert stats.max_multiplicity == 7
        assert stats.num_static_edges == 2

    def test_distinct_time_instances(self):
        g = TemporalGraph(
            [TemporalEdge(0, 1, 0, 1, 1), TemporalEdge(1, 2, 1, 2, 1)]
        )
        assert compute_statistics(g).distinct_time_instances == 3

    def test_empty_graph(self):
        stats = compute_statistics(TemporalGraph([], vertices=[0, 1]))
        assert stats.num_temporal_edges == 0
        assert stats.max_temporal_degree == 0
        assert stats.max_multiplicity == 0


class TestFormatting:
    def test_header_and_row_align(self):
        header = GraphStatistics.header()
        row = compute_statistics(TemporalGraph([TemporalEdge(0, 1, 0, 1, 1)])).as_row(
            "tiny"
        )
        assert len(header.split(" | ")) == len(row.split(" | "))

    def test_row_contains_values(self, figure1):
        row = compute_statistics(figure1).as_row("fig1")
        assert "fig1" in row
        assert "10" in row  # M


class TestMultiplicityMap:
    def test_counts_per_pair(self, figure1):
        counts = multiplicity_map(figure1)
        assert counts[(0, 1)] == 2
        assert counts[(1, 3)] == 1

    def test_directional(self):
        g = TemporalGraph(
            [TemporalEdge(0, 1, 0, 1, 1), TemporalEdge(1, 0, 0, 1, 1)]
        )
        counts = multiplicity_map(g)
        assert counts == {(0, 1): 1, (1, 0): 1}
