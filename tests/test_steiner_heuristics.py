"""Tests for the extra DST heuristic baselines."""

import pytest

from repro.core.errors import UnreachableRootError
from repro.static.digraph import StaticDigraph
from repro.steiner.exact import exact_dst_cost
from repro.steiner.heuristics import (
    arborescence_prune_heuristic,
    shortest_paths_heuristic,
)
from repro.steiner.instance import DSTInstance, prepare_instance
from repro.steiner.tree import validate_covering_tree

from tests.test_steiner_algorithms import hub_instance, random_instance


class TestShortestPaths:
    def test_hub_instance(self):
        prepared = hub_instance()
        cost, edges = shortest_paths_heuristic(prepared)
        assert validate_covering_tree(prepared, edges)
        # every path routes through the hub; dedup shares the r->hub edge
        assert cost == 6.0

    @pytest.mark.parametrize("seed", range(5))
    def test_valid_cover_and_above_optimum(self, seed):
        prepared = random_instance(seed, k=4)
        cost, edges = shortest_paths_heuristic(prepared)
        assert validate_covering_tree(prepared, edges)
        assert cost >= exact_dst_cost(prepared) - 1e-9

    def test_single_terminal_is_optimal(self):
        prepared = random_instance(3, k=1)
        cost, _ = shortest_paths_heuristic(prepared)
        assert cost == pytest.approx(exact_dst_cost(prepared))


class TestArborescencePrune:
    def test_hub_instance(self):
        prepared = hub_instance()
        cost, edges = arborescence_prune_heuristic(prepared)
        assert validate_covering_tree(prepared, edges)
        assert cost == 6.0  # all vertices are useful here

    @pytest.mark.parametrize("seed", range(5))
    def test_valid_cover_and_above_optimum(self, seed):
        prepared = random_instance(seed, k=4)
        cost, edges = arborescence_prune_heuristic(prepared)
        assert validate_covering_tree(prepared, edges)
        assert cost >= exact_dst_cost(prepared) - 1e-9

    def test_prunes_useless_leaves(self):
        # a star: root -> t plus root -> useless; the useless branch
        # must be pruned away.
        g = StaticDigraph()
        g.add_edge("r", "t", 1.0)
        g.add_edge("r", "useless", 5.0)
        prepared = prepare_instance(DSTInstance(g, "r", ("t",)))
        cost, edges = arborescence_prune_heuristic(prepared)
        assert cost == 1.0
        assert len(edges) == 1

    def test_prunes_chains(self):
        g = StaticDigraph()
        g.add_edge("r", "t", 1.0)
        g.add_edge("r", "a", 1.0)
        g.add_edge("a", "b", 1.0)  # chain a->b is useless
        prepared = prepare_instance(DSTInstance(g, "r", ("t",)))
        cost, _ = arborescence_prune_heuristic(prepared)
        assert cost == 1.0

    def test_unreachable_terminal(self):
        g = StaticDigraph(["r", "island"])
        g.add_edge("r", "t", 1.0)
        inst = DSTInstance(g, "r", ("island",))
        prepared = prepare_instance(inst, require_reachable=False)
        with pytest.raises(UnreachableRootError):
            arborescence_prune_heuristic(prepared)


class TestRelativeQuality:
    @pytest.mark.parametrize("seed", range(3))
    def test_greedy_density_no_worse_than_either_heuristic_at_level3(self, seed):
        """Not a theorem, but holds on these instances and documents the
        motivation for the DST machinery over the folklore baselines."""
        from repro.steiner.pruned import pruned_dst
        from repro.steiner.tree import expand_closure_tree

        prepared = random_instance(40 + seed, n=16, m=48, k=5)
        greedy_cost, _ = expand_closure_tree(prepared, pruned_dst(prepared, 3))
        sp_cost, _ = shortest_paths_heuristic(prepared)
        assert greedy_cost <= sp_cost + 1e-9
