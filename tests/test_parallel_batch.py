"""The batch sweep engine and its window-containment reuse index.

Headline property (the engine's reason to exist): ``run_batch`` output
equals the pre-engine serial reference loop ``run_sweep_serial`` on the
same cells at any ``jobs`` value -- including cells that go over budget
or answer through the fallback ladder -- while the reuse index derives
nested-window artifacts exactly.
"""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.parallel.batch import (
    BatchResult,
    SweepCell,
    run_batch,
    run_sweep_serial,
)
from repro.parallel.reuse import WindowReuseIndex
from repro.experiments.runner import OverBudgetCell
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.window import TimeWindow, extract_window


def _sweep_graph(n=14, extra=30, seed=11):
    """A deterministic temporal graph with activity spread over [0, 20].

    Vertex 0 reaches a growing prefix of the chain as the window widens,
    so nested sweep windows give distinct but always-solvable cells.
    """
    rng = random.Random(seed)
    edges = []
    for v in range(1, n):
        start = 4 + (v - 1)
        edges.append(TemporalEdge(v - 1, v, start, start, rng.randint(1, 9)))
    for _ in range(extra):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        start = rng.randint(0, 18)
        edges.append(
            TemporalEdge(u, v, start, start + rng.randint(0, 2), rng.randint(1, 9))
        )
    return TemporalGraph(edges, vertices=range(n))


#: Nested sweep windows, widest first (mirrors the bench scenarios).
WINDOWS = (TimeWindow(0, 20), TimeWindow(2, 16), TimeWindow(4, 12))

VARIANTS = (("pruned", 1), ("pruned", 2), ("improved", 1), ("improved", 2))


def _cells(windows=WINDOWS, fallback=False):
    return [
        SweepCell(0, window, level=level, algorithm=algorithm, fallback=fallback)
        for window in windows
        for algorithm, level in VARIANTS
    ]


class TestWindowReuseIndex:
    def test_contained_extraction_is_exact(self):
        graph = _sweep_graph()
        index = WindowReuseIndex()
        for window in WINDOWS:  # widest first: narrower ones derive
            derived = index.extract(graph, window)
            direct = extract_window(graph, window)
            assert derived.edges == direct.edges
            assert derived.vertices == direct.vertices

    def test_in_window_edges_match_direct_filter(self):
        graph = _sweep_graph()
        index = WindowReuseIndex()
        for window in WINDOWS:
            expected = tuple(
                e for e in graph.edges if e.within(window.t_alpha, window.t_omega)
            )
            assert index.in_window_edges(graph, window) == expected

    def test_stats_count_hits_misses_and_derivations(self):
        graph = _sweep_graph()
        index = WindowReuseIndex()
        assert index.stats() == {
            "hits": 0,
            "misses": 0,
            "containment_derived": 0,
            "index_served_misses": 0,
        }
        index.extract(graph, WINDOWS[0])  # miss, served by the edge index
        index.extract(graph, WINDOWS[0])  # exact hit
        index.extract(graph, WINDOWS[1])  # derived from the container
        stats = index.stats()
        assert stats["misses"] == 1
        assert stats["index_served_misses"] == 1
        assert stats["containment_derived"] == 1
        # hits aggregates exact hits and derivations (both skip the scan)
        assert stats["hits"] == 2
        index.clear()
        assert index.stats()["hits"] == 0

    def test_extract_returns_same_object_per_window(self):
        graph = _sweep_graph()
        index = WindowReuseIndex()
        first = index.extract(graph, WINDOWS[1])
        assert index.extract(graph, WINDOWS[1]) is first

    def test_lru_bound_evicts_oldest(self):
        graph = _sweep_graph()
        index = WindowReuseIndex(max_windows=1)
        index.extract(graph, WINDOWS[2])
        index.extract(graph, TimeWindow(0, 3))  # disjoint; evicts WINDOWS[2]
        index.extract(graph, WINDOWS[2])  # full scan again
        assert index.stats()["misses"] == 3

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError):
            WindowReuseIndex(max_windows=0)


class TestBatchEqualsSerial:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_values_identical_to_reference_loop(self, jobs):
        graph = _sweep_graph()
        cells = _cells()
        expected = run_sweep_serial(graph, cells)
        result = run_batch(graph, cells, jobs=jobs)
        assert isinstance(result, BatchResult)
        assert result.values == expected
        assert result.jobs == jobs
        # Same-window variants + nested windows => the engine shared
        # work the reference loop repeated.
        assert result.reuse["hits"] >= 1
        assert result.fallback_summaries == [None] * len(cells)

    def test_containment_derivation_fires_at_jobs1(self):
        graph = _sweep_graph()
        result = run_batch(graph, _cells(), jobs=1)
        # One worker sees all three nested windows: the two narrower
        # ones derive from the widest instead of rescanning the graph.
        assert result.reuse["containment_derived"] >= 2
        assert result.reuse["misses"] == 1

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_fallback_cells_round_trip(self, jobs):
        graph = _sweep_graph()
        cells = _cells(windows=WINDOWS[:2], fallback=True)
        expected = run_sweep_serial(graph, cells)
        result = run_batch(graph, cells, jobs=jobs)
        assert result.values == expected
        # The ladder answered at its first rung (no budget pressure),
        # and its summary survived the process boundary.
        for summary in result.fallback_summaries:
            assert summary is not None
            assert summary["degraded"] is False
            assert summary["attempts"][0]["status"] == "ok"

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_over_budget_cells_survive_the_boundary(self, jobs):
        graph = _sweep_graph()
        cells = _cells(windows=WINDOWS[:1])
        serial = run_sweep_serial(graph, cells, budget_seconds=1e-9)
        result = run_batch(graph, cells, jobs=jobs, budget_seconds=1e-9)
        assert all(isinstance(v, OverBudgetCell) for v in serial)
        assert all(isinstance(v, OverBudgetCell) for v in result.values)
        assert len(result.values) == len(serial)
        for value in result.values:
            assert value.elapsed > 0

    def test_chunk_override_does_not_change_output(self):
        graph = _sweep_graph()
        cells = _cells()
        expected = run_sweep_serial(graph, cells)
        pinned = run_batch(graph, cells, jobs=2, chunk_size=len(VARIANTS))
        assert pinned.values == expected


@st.composite
def small_graphs(draw, max_vertices=6):
    """Reachable random graphs (mirrors the perf-cache strategy)."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    edges = []
    arrival = {0: 0}
    for v in range(1, n):
        parent = draw(st.sampled_from(sorted(arrival)))
        start = arrival[parent] + draw(st.integers(min_value=0, max_value=3))
        duration = draw(st.integers(min_value=0, max_value=2))
        edges.append(
            TemporalEdge(
                parent, v, start, start + duration,
                draw(st.integers(min_value=1, max_value=9)),
            )
        )
        arrival[v] = start + duration
    return TemporalGraph(edges, vertices=range(n))


class TestBatchProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        graph=small_graphs(),
        level=st.integers(min_value=1, max_value=2),
    )
    def test_inline_batch_equals_serial_on_random_graphs(self, graph, level):
        windows = (TimeWindow(0, float("inf")), TimeWindow(0, 8))
        cells = [
            SweepCell(0, window, level=level, algorithm=algorithm)
            for window in windows
            for algorithm in ("pruned", "improved")
        ]
        assert run_batch(graph, cells, jobs=1).values == run_sweep_serial(
            graph, cells
        )
