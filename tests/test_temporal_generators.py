"""Unit tests for :mod:`repro.temporal.generators`."""

import random

import pytest

from repro.temporal.generators import (
    layered_temporal_graph,
    preferential_temporal_graph,
    reachable_temporal_graph,
    uniform_temporal_graph,
)
from repro.temporal.paths import reachable_set
from repro.temporal.stats import compute_statistics


class TestUniform:
    def test_sizes(self):
        g = uniform_temporal_graph(20, 55, seed=1)
        assert g.num_vertices == 20
        assert g.num_edges == 55

    def test_deterministic_with_seed(self):
        a = uniform_temporal_graph(15, 30, seed=9)
        b = uniform_temporal_graph(15, 30, seed=9)
        assert a.edges == b.edges

    def test_different_seeds_differ(self):
        a = uniform_temporal_graph(15, 30, seed=1)
        b = uniform_temporal_graph(15, 30, seed=2)
        assert a.edges != b.edges

    def test_zero_duration_flag(self):
        g = uniform_temporal_graph(10, 20, zero_duration=True, seed=3)
        assert all(e.duration == 0 for e in g.edges)

    def test_nonzero_durations_by_default(self):
        g = uniform_temporal_graph(10, 20, seed=3)
        assert all(e.duration >= 1 for e in g.edges)

    def test_no_self_loops(self):
        g = uniform_temporal_graph(5, 200, seed=4)
        assert all(e.source != e.target for e in g.edges)

    def test_needs_two_vertices(self):
        with pytest.raises(ValueError):
            uniform_temporal_graph(1, 5)

    def test_accepts_random_instance(self):
        rng = random.Random(0)
        g = uniform_temporal_graph(8, 10, seed=rng)
        assert g.num_edges == 10


class TestPreferential:
    def test_multiplicity_shows_in_pi(self):
        low = preferential_temporal_graph(60, 300, multiplicity=1, seed=5)
        high = preferential_temporal_graph(60, 300, multiplicity=20, seed=5)
        assert (
            compute_statistics(high).max_multiplicity
            > compute_statistics(low).max_multiplicity
        )

    def test_hub_bias_skews_degree(self):
        flat = preferential_temporal_graph(100, 400, hub_bias=0.0, seed=6)
        skewed = preferential_temporal_graph(100, 400, hub_bias=0.95, seed=6)
        assert (
            compute_statistics(skewed).max_temporal_degree
            > compute_statistics(flat).max_temporal_degree
        )

    def test_edge_count_exact(self):
        g = preferential_temporal_graph(30, 123, multiplicity=7, seed=7)
        assert g.num_edges == 123


class TestReachable:
    @pytest.mark.parametrize("zero", [False, True])
    def test_all_vertices_reachable_from_root(self, zero):
        g = reachable_temporal_graph(25, 30, root=0, zero_duration=zero, seed=8)
        assert reachable_set(g, 0) == set(range(25))

    def test_custom_root(self):
        g = reachable_temporal_graph(12, 5, root=7, seed=9)
        assert reachable_set(g, 7) == set(range(12))

    def test_edge_count(self):
        g = reachable_temporal_graph(10, 13, seed=10)
        assert g.num_edges == 9 + 13  # backbone + extras


class TestLayered:
    def test_vertex_count(self):
        g = layered_temporal_graph([3, 4, 5], edges_per_layer=6, seed=11)
        assert g.num_vertices == 12
        assert g.num_edges == 12  # 2 gaps x 6

    def test_edges_cross_consecutive_layers(self):
        g = layered_temporal_graph([2, 3], edges_per_layer=10, seed=12)
        for e in g.edges:
            assert e.source < 2 and 2 <= e.target < 5

    def test_times_increase_with_layer(self):
        g = layered_temporal_graph([2, 2, 2], edges_per_layer=5, layer_gap=100, seed=13)
        layer0 = [e.start for e in g.edges if e.source < 2]
        layer1 = [e.start for e in g.edges if 2 <= e.source < 4]
        assert max(layer0) < min(layer1)
