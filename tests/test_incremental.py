"""Unit and equivalence tests for the incremental sliding-window stack.

Covers the four layers of :mod:`repro.incremental` -- delta extraction
(:class:`TemporalEdgeIndex.delta`), ``MST_a`` maintenance
(:class:`IncrementalMSTa`), closure patching
(:func:`patch_prepared_instance`), and the composed
:class:`SlidingEngine` -- plus the empty-window measurement contract
and the budget-degradation caveats.  Every incremental result is
checked against the cold recomputation it claims to equal.
"""

import numpy as np
import pytest

from repro.core.errors import ReproError, UnreachableRootError
from repro.core.msta import minimum_spanning_tree_a
from repro.core.sliding import (
    SweepResult,
    WindowMeasurement,
    iter_windows,
    sliding_msta,
    sliding_mstw,
    sweep,
)
from repro.core.transformation import transform_temporal_graph
from repro.incremental import (
    IncrementalMSTa,
    SlidingEngine,
    patch_prepared_instance,
    sliding_msta_incremental,
    sliding_mstw_incremental,
)
from repro.resilience.budget import Budget
from repro.steiner.instance import prepare_instance
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.index import TemporalEdgeIndex, edge_index_for
from repro.temporal.window import TimeWindow

from tests.conftest import random_temporal


def _ser(tree):
    """Order-independent serialization of a spanning tree (or None)."""
    if tree is None:
        return None
    return (tree.root, sorted(tree.parent_edge.items()))


def _in_window(edge, window):
    return edge.start >= window.t_alpha and edge.arrival <= window.t_omega


class TestDeltaExtraction:
    WINDOWS = [
        (TimeWindow(0, 10), TimeWindow(2, 12)),
        (TimeWindow(0, 10), TimeWindow(0, 10)),
        (TimeWindow(0, 10), TimeWindow(10, 20)),
        (TimeWindow(0, 10), TimeWindow(25, 36)),  # disjoint full jump
        (TimeWindow(5, 15), TimeWindow(0, 10)),  # backward
        (TimeWindow(0, 36), TimeWindow(12, 20)),  # shrink
        (TimeWindow(12, 20), TimeWindow(0, 36)),  # grow
    ]

    @pytest.mark.parametrize("seed", range(6))
    def test_delta_matches_set_difference(self, seed):
        graph = random_temporal(seed, n=10, m=60)
        index = TemporalEdgeIndex(graph)
        for old, new in self.WINDOWS:
            added, removed = index.delta(old, new)
            in_old = set(index.edges_in(old))
            in_new = set(index.edges_in(new))
            assert set(added) == in_new - in_old, (old, new)
            assert set(removed) == in_old - in_new, (old, new)
            assert not (set(added) & set(removed))

    @pytest.mark.parametrize("seed", range(4))
    def test_delta_with_zero_duration_edges(self, seed):
        graph = random_temporal(seed, n=8, m=40, zero_duration=True)
        index = TemporalEdgeIndex(graph)
        # Slide boundaries landing exactly on the instantaneous edges.
        for old, new in [
            (TimeWindow(0, 5), TimeWindow(5, 10)),
            (TimeWindow(0, 5), TimeWindow(0, 5)),
            (TimeWindow(3, 7), TimeWindow(4, 8)),
        ]:
            added, removed = index.delta(old, new)
            in_old = set(index.edges_in(old))
            in_new = set(index.edges_in(new))
            assert set(added) == in_new - in_old
            assert set(removed) == in_old - in_new

    def test_identical_windows_yield_empty_delta(self, figure1):
        index = TemporalEdgeIndex(figure1)
        window = TimeWindow(*figure1.time_span())
        added, removed = index.delta(window, window)
        assert added == [] and removed == []

    def test_edges_in_matches_naive_filter(self, figure1):
        index = TemporalEdgeIndex(figure1)
        window = TimeWindow(2, 6)
        expected = {e for e in figure1.edges if _in_window(e, window)}
        assert set(index.edges_in(window)) == expected
        assert index.count_in(window) == len(expected)

    def test_edges_in_graph_order_matches_graph_scan(self):
        graph = random_temporal(3, n=9, m=50)
        index = TemporalEdgeIndex(graph)
        for window in [TimeWindow(0, 12), TimeWindow(7, 22), TimeWindow(30, 36)]:
            expected = tuple(e for e in graph.edges if _in_window(e, window))
            assert index.edges_in_graph_order(window) == expected

    def test_shared_index_is_per_graph(self, figure1, figure3):
        a = edge_index_for(figure1)
        assert edge_index_for(figure1) is a
        assert edge_index_for(figure3) is not a


class TestIncrementalMSTa:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("window_length,step", [(12, 3), (8, 8), (20, 5)])
    def test_forward_sweep_matches_cold(self, seed, window_length, step):
        graph = random_temporal(seed, n=10, m=45)
        cold = sliding_msta(graph, 0, window_length, step)
        warm = sliding_msta_incremental(graph, 0, window_length, step)
        assert len(cold) == len(warm)
        for c, w in zip(cold, warm):
            assert c.window == w.window
            assert _ser(c.tree) == _ser(w.tree)
            if c.tree is not None:
                assert c.tree.arrival_times == w.tree.arrival_times

    def test_incremental_slides_actually_happen(self):
        graph = random_temporal(1, n=10, m=45)
        inc = IncrementalMSTa(graph, 0)
        for window in iter_windows(graph, 12, 3):
            inc.advance(window)
        assert inc.stats["incremental_slides"] > 0
        assert inc.stats["cold_solves"] >= 1  # the first window

    def test_backward_slide_recomputes_cold(self):
        graph = random_temporal(2, n=10, m=45)
        index = TemporalEdgeIndex(graph)
        inc = IncrementalMSTa(graph, 0)
        w2, w1 = TimeWindow(10, 22), TimeWindow(4, 16)
        inc.advance(w2)
        tree = inc.advance(w1)  # backward: both boundaries decrease
        assert inc.stats["cold_solves"] == 2
        expected = minimum_spanning_tree_a(index.subgraph(w1), 0, w1)
        assert _ser(tree) == _ser(expected)

    def test_budget_drain_degrades_to_cold_with_caveat(self):
        graph = random_temporal(4, n=10, m=45)
        index = TemporalEdgeIndex(graph)
        inc = IncrementalMSTa(graph, 0)
        windows = list(iter_windows(graph, 14, 3))
        inc.advance(windows[0])
        tree = inc.advance(windows[1], budget=Budget(max_expansions=0).start())
        assert inc.stats["budget_fallbacks"] == 1
        assert inc.last_caveat is not None
        # The degraded window still produces the exact cold answer.
        expected = minimum_spanning_tree_a(
            index.subgraph(windows[1]), 0, windows[1]
        )
        assert _ser(tree) == _ser(expected)
        # A later unbudgeted slide clears the caveat again.
        inc.advance(windows[2])
        assert inc.last_caveat is None


class TestClosurePatch:
    def _prepared_for(self, graph, root, window, terminals):
        active = edge_index_for(graph).subgraph(window)
        transformed = transform_temporal_graph(active, root, window)
        prepared = prepare_instance(
            transformed.dst_instance(terminals=terminals)
        )
        return transformed, prepared

    def test_noop_patch_is_bitwise_identical(self, figure1):
        window = TimeWindow(*figure1.time_span())
        tree = minimum_spanning_tree_a(figure1, 0, window)
        terminals = sorted(v for v in tree.vertices if v != 0)
        transformed, prepared = self._prepared_for(figure1, 0, window, terminals)
        patched = patch_prepared_instance(
            transformed, prepared, transformed, terminals, set()
        )
        assert patched is not None
        assert np.array_equal(patched.closure.dist, prepared.closure.dist)
        assert np.array_equal(patched.closure.next_hop, prepared.closure.next_hop)

    def test_all_dirty_refuses(self, figure1):
        window = TimeWindow(*figure1.time_span())
        tree = minimum_spanning_tree_a(figure1, 0, window)
        terminals = sorted(v for v in tree.vertices if v != 0)
        transformed, prepared = self._prepared_for(figure1, 0, window, terminals)
        patched = patch_prepared_instance(
            transformed, prepared, transformed, terminals, set(figure1.vertices)
        )
        assert patched is None

    @pytest.mark.parametrize("seed", range(6))
    def test_engine_patched_closures_match_cold_bitwise(self, seed):
        graph = random_temporal(seed, n=12, m=70)
        engine = SlidingEngine(graph, 0)
        patched_windows = 0
        for window in iter_windows(graph, 16, 2):
            before = engine.stats["patched_prepares"]
            engine.measure_mstw(window)
            if engine._prev is None or engine.stats["patched_prepares"] == before:
                continue
            patched_windows += 1
            _, transformed, prepared = engine._prev
            terminals = sorted(
                (v for v in engine.msta.covered() if v != 0), key=repr
            )
            cold = prepare_instance(
                transformed.dst_instance(terminals=terminals)
            )
            assert np.array_equal(prepared.closure.dist, cold.closure.dist)
            assert np.array_equal(
                prepared.closure.next_hop, cold.closure.next_hop
            )
        if seed == 0:
            # At least the first seed must exercise the patch path, or
            # the bitwise assertion above never ran.
            assert patched_windows > 0


class TestSlidingEngine:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("level", [2, 3])
    def test_mstw_sweep_matches_cold(self, seed, level):
        graph = random_temporal(seed, n=10, m=45)
        cold = sliding_mstw(graph, 0, 14, 4, level=level)
        warm = sliding_mstw_incremental(graph, 0, 14, 4, level=level)
        assert len(cold) == len(warm)
        for c, w in zip(cold, warm):
            assert c.window == w.window
            assert c.coverage == w.coverage
            assert c.cost == pytest.approx(w.cost)
            assert c.makespan == w.makespan
            assert _ser(c.tree) == _ser(w.tree)

    def test_engine_stats_accumulate(self):
        graph = random_temporal(5, n=10, m=45)
        engine = SlidingEngine(graph, 0)
        windows = list(iter_windows(graph, 14, 4))
        for window in windows:
            engine.measure_mstw(window)
        stats = engine.stats
        assert stats["windows"] == len(windows)
        assert stats["patched_prepares"] + stats["cold_prepares"] <= len(windows)
        assert stats["cold_prepares"] >= 1

    def test_budget_drain_degrades_with_caveat(self):
        graph = random_temporal(6, n=10, m=45)
        cold = sliding_mstw(graph, 0, 14, 4)
        engine = SlidingEngine(graph, 0)
        warm = [
            engine.measure_mstw(w, budget=Budget(max_expansions=0))
            for w in iter_windows(graph, 14, 4)
        ]
        # Output-identical despite every incremental path being cut off.
        for c, w in zip(cold, warm):
            assert _ser(c.tree) == _ser(w.tree)
        assert any(m.caveat for m in warm)
        assert (
            engine.stats["budget_fallbacks"]
            + engine.msta.stats["budget_fallbacks"]
            > 0
        )

    def test_unknown_algorithm_rejected(self, figure1):
        engine = SlidingEngine(figure1, 0, algorithm="bogus")
        with pytest.raises(ValueError):
            engine.measure_mstw(TimeWindow(*figure1.time_span()))


class TestEngineParameterRouting:
    def test_sliding_msta_engines_agree(self, figure1):
        cold = sliding_msta(figure1, 0, 5, 2, engine="cold")
        warm = sliding_msta(figure1, 0, 5, 2, engine="incremental")
        assert [_ser(m.tree) for m in cold] == [_ser(m.tree) for m in warm]

    def test_sliding_mstw_engines_agree(self, figure1):
        cold = sliding_mstw(figure1, 0, 6, 3, engine="cold")
        warm = sliding_mstw(figure1, 0, 6, 3, engine="incremental")
        assert [_ser(m.tree) for m in cold] == [_ser(m.tree) for m in warm]

    def test_unknown_engine_rejected(self, figure1):
        with pytest.raises(ReproError):
            sliding_msta(figure1, 0, 5, engine="warmish")
        with pytest.raises(ReproError):
            sliding_mstw(figure1, 0, 5, engine="warmish")

    def test_sweep_front_door(self, figure1):
        result = sweep(figure1, 0, 5, 2, kind="msta")
        assert isinstance(result, SweepResult)
        assert result.kind == "msta" and result.engine == "incremental"
        rows = result.rows()
        assert len(rows) == len(result.measurements)
        assert set(rows[0]) == {
            "t_alpha", "t_omega", "coverage", "cost", "makespan", "caveat",
        }
        assert result.series("cost") == [row["cost"] for row in rows]
        with pytest.raises(ReproError):
            sweep(figure1, 0, 5, kind="mst_q")


class TestEmptyWindowContract:
    def _gapped_graph(self):
        # Root only active early; a far-away burst keeps the span long.
        return TemporalGraph(
            [
                TemporalEdge(0, 1, 0, 1, 1),
                TemporalEdge(1, 2, 1, 2, 1),
                TemporalEdge(3, 4, 30, 31, 1),
            ],
            vertices=range(5),
        )

    @pytest.mark.parametrize("engine", ["cold", "incremental"])
    @pytest.mark.parametrize("kind", ["msta", "mstw"])
    def test_empty_windows_export_none_makespan(self, engine, kind):
        result = sweep(self._gapped_graph(), 0, 6, 6, kind=kind, engine=engine)
        empty = [m for m in result.measurements if m.tree is None]
        assert empty, "expected at least one empty window"
        for m in empty:
            assert m.coverage == 0
            assert m.cost == 0.0
            assert m.makespan is None  # None, never NaN
        for row in result.rows():
            makespan = row["makespan"]
            assert makespan is None or makespan == makespan  # no NaN leaks

    def test_nan_arrival_never_leaks(self, figure1):
        # Even a pathological tree whose max arrival is NaN must export
        # None from the measurement layer.
        window = TimeWindow(*figure1.time_span())
        tree = minimum_spanning_tree_a(figure1, 0, window)
        m = WindowMeasurement(window, tree)
        assert m.makespan == m.makespan  # healthy tree: finite
        assert WindowMeasurement(window, None).makespan is None

    def test_caveat_defaults_to_none(self, figure1):
        for m in sliding_msta(figure1, 0, 5, 2):
            assert m.caveat is None
