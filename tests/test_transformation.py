"""Tests for the Section 4.2 graph transformation (Figure 4 / Example 5)."""

import pytest

from repro.core.errors import UnreachableRootError
from repro.core.transformation import (
    copy_label,
    dummy_label,
    transform_temporal_graph,
)
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.window import TimeWindow

from tests.conftest import random_temporal


class TestExample5:
    """The paper's worked transformation of Figure 1 into Figure 4."""

    @pytest.fixture
    def transformed(self, figure1):
        return transform_temporal_graph(figure1, 0)

    def test_vertex1_has_two_copies_and_dummy(self, transformed):
        g = transformed.digraph
        assert g.has_vertex(copy_label(1, 0))  # arrival 3 -> "1_1"
        assert g.has_vertex(copy_label(1, 1))  # arrival 5 -> "1_2"
        assert not g.has_vertex(copy_label(1, 2))
        assert g.has_vertex(dummy_label(1))
        assert transformed.arrival_instances[1] == [3, 5]

    def test_virtual_chain_for_vertex1(self, transformed):
        g = transformed.digraph
        c0, c1 = g.index_of(copy_label(1, 0)), g.index_of(copy_label(1, 1))
        d = g.index_of(dummy_label(1))
        assert (c1, 0.0) in g.out_neighbors(c0)
        assert (d, 0.0) in g.out_neighbors(c1)

    def test_solid_edge_from_copy_1_1(self, transformed):
        # Example 5: temporal edge (1,3,4,6,2) leaves copy 1_1 (time 3 <= 4)
        g = transformed.digraph
        src = g.index_of(copy_label(1, 0))
        arrival_instances = transformed.arrival_instances[3]
        j = arrival_instances.index(6)
        dst = g.index_of(copy_label(3, j))
        assert (dst, 2.0) in g.out_neighbors(src)

    def test_root_single_copy_no_dummy(self, transformed):
        g = transformed.digraph
        assert transformed.root_label == copy_label(0, 0)
        assert not g.has_vertex(dummy_label(0))
        assert transformed.arrival_instances[0] == [0.0]

    def test_lemma2_linear_size(self, transformed, figure1):
        # |V(G)| and |E(G)| are O(|E|)
        assert transformed.num_vertices <= 2 * figure1.num_edges + 1
        assert transformed.num_edges <= 2 * figure1.num_edges


class TestWindowHandling:
    def test_out_of_window_edges_skipped(self, figure1):
        t = transform_temporal_graph(figure1, 0, TimeWindow(0, 6))
        in_window = figure1.restricted(0, 6).num_edges
        solid = len(t.solid_origin)
        assert solid <= in_window

    def test_window_start_shifts_root_instance(self, figure1):
        t = transform_temporal_graph(figure1, 0, TimeWindow(2, 100))
        assert t.arrival_instances[0] == [2]

    def test_unusable_source_edges_counted(self):
        # edge from 1 departs before 1 can ever be reached
        g = TemporalGraph(
            [TemporalEdge(0, 1, 5, 6, 1), TemporalEdge(1, 2, 0, 1, 1)]
        )
        t = transform_temporal_graph(g, 0)
        assert t.skipped_edges == 1

    def test_edges_into_root_skipped(self):
        g = TemporalGraph(
            [TemporalEdge(0, 1, 0, 1, 1), TemporalEdge(1, 0, 2, 3, 1)]
        )
        t = transform_temporal_graph(g, 0)
        assert t.skipped_edges == 1
        assert len(t.solid_origin) == 1

    def test_self_loops_skipped(self):
        g = TemporalGraph(
            [TemporalEdge(0, 1, 0, 1, 1), TemporalEdge(1, 1, 2, 3, 1)]
        )
        t = transform_temporal_graph(g, 0)
        assert t.skipped_edges == 1


class TestStructuralInvariants:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("zero", [False, True])
    def test_every_solid_edge_time_consistent(self, seed, zero):
        g = random_temporal(seed, n=10, m=40, zero_duration=zero)
        t = transform_temporal_graph(g, 0)
        for (src, dst, w), edge in t.solid_origin.items():
            _, u, i = src
            _, v, j = dst
            # the source copy's instance must not exceed the start time
            assert t.arrival_instances[u][i] <= edge.start
            # the target copy's instance equals the arrival
            assert t.arrival_instances[v][j] == edge.arrival
            assert w == edge.weight

    @pytest.mark.parametrize("seed", range(5))
    def test_copies_sorted_ascending(self, seed):
        g = random_temporal(seed)
        t = transform_temporal_graph(g, 0)
        for instants in t.arrival_instances.values():
            assert instants == sorted(instants)
            assert len(instants) == len(set(instants))

    def test_dummies_listed(self, figure1):
        t = transform_temporal_graph(figure1, 0)
        assert sorted(t.dummies()) == [dummy_label(v) for v in (1, 2, 3, 4, 5)]

    def test_unknown_root(self, figure1):
        with pytest.raises(UnreachableRootError):
            transform_temporal_graph(figure1, 99)


class TestDSTInstanceCreation:
    def test_default_terminals(self, figure1):
        t = transform_temporal_graph(figure1, 0)
        inst = t.dst_instance()
        assert set(inst.terminals) == {dummy_label(v) for v in (1, 2, 3, 4, 5)}
        assert inst.root == t.root_label

    def test_explicit_terminals(self, figure1):
        t = transform_temporal_graph(figure1, 0)
        inst = t.dst_instance(terminals=[1, 3])
        assert set(inst.terminals) == {dummy_label(1), dummy_label(3)}

    def test_root_excluded_from_terminals(self, figure1):
        t = transform_temporal_graph(figure1, 0)
        inst = t.dst_instance(terminals=[0, 1])
        assert set(inst.terminals) == {dummy_label(1)}
