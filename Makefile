# Convenience targets for the temporal-mst reproduction.

PYTHON ?= python

.PHONY: install test chaos bench bench-full bench-parallel bench-sliding bench-shard bench-dst bench-check pybench examples report quickcheck ci lint typecheck clean

# Bench defaults (override: make bench BENCH_SCALE=full BENCH_REPEATS=9).
BENCH_SCALE ?= smoke
BENCH_REPEATS ?= 5
BENCH_OUT ?= BENCH_PR2.json
BENCH_BASELINE ?= benchmarks/baseline_smoke.json
BENCH_JOBS ?= 4
BENCH_PARALLEL_OUT ?= BENCH_PR4.json
BENCH_SLIDING_OUT ?= BENCH_PR5.json
BENCH_SHARD_OUT ?= BENCH_PR9.json
BENCH_DST_OUT ?= BENCH_PR10.json

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# The fault-injection suite alone: seeded chaos schedules asserting
# byte-identical output and populated recovery counters.
chaos:
	$(PYTHON) -m pytest tests/ -m chaos

# The deterministic perf suite (repro.perf): median-of-N timings to a
# schema-versioned JSON document.
bench:
	$(PYTHON) -m repro bench --scale $(BENCH_SCALE) --repeats $(BENCH_REPEATS) --out $(BENCH_OUT)

bench-full:
	$(MAKE) bench BENCH_SCALE=full

# The parallel_speedup family at full scale: serial reference vs the
# batch engine at jobs 1/2/4 (the committed BENCH_PR4.json evidence).
bench-parallel:
	$(PYTHON) -m repro bench --scale full --repeats $(BENCH_REPEATS) \
		--jobs $(BENCH_JOBS) --out $(BENCH_PARALLEL_OUT)

# The sliding_sweep family at full scale: cold vs incremental sweeps
# for MST_a and MST_w (the committed BENCH_PR5.json evidence).
bench-sliding:
	$(PYTHON) -m repro bench --scale full --repeats $(BENCH_REPEATS) \
		--only sliding_msta_incremental --only sliding_mstw_incremental \
		--out $(BENCH_SLIDING_OUT)

# The sharded_sweep family at full scale: legacy whole-graph shipping
# vs per-shard columnar slices at jobs 2 (the committed BENCH_PR9.json
# evidence).  Shard count defaults to jobs-aligned planning.
bench-shard:
	$(PYTHON) -m repro bench --scale full --repeats $(BENCH_REPEATS) \
		--jobs 2 --only sharded_sweep_jobs2 --only sharded_sweep_jobs2_wholegraph \
		--only sharded_sweep_shards1 --out $(BENCH_SHARD_OUT)

# The dst_kernels family at full scale: the frozen scalar MST_w ladder
# (repro.perf.legacy scalar_*) vs the batched density kernels (the
# committed BENCH_PR10.json evidence).
bench-dst:
	$(PYTHON) -m repro bench --scale full --repeats $(BENCH_REPEATS) \
		--only dst_kernels_charikar_scalar --only dst_kernels_charikar \
		--only dst_kernels_improved_scalar --only dst_kernels_improved \
		--only dst_kernels_pruned_scalar --only dst_kernels_pruned \
		--out $(BENCH_DST_OUT)

# The CI regression gate: run at smoke scale and diff against the
# committed baseline (exit 1 on regression).
bench-check:
	$(PYTHON) -m repro bench --scale smoke --repeats $(BENCH_REPEATS) \
		--out $(BENCH_OUT) --compare $(BENCH_BASELINE) --tolerance 3.0

# The legacy pytest-benchmark suite (needs the [test] extra).
pybench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
		echo; \
	done

report:
	$(PYTHON) -m repro experiment all --quick --markdown report.md
	@echo "wrote report.md"

quickcheck:
	$(PYTHON) -m pytest tests/ -x -q -k "not property and not examples"

# What the GitHub Actions workflow runs: the tier-1 suite plus lint.
# ruff is optional locally (the workflow installs it); a missing ruff
# falls back to a byte-compile pass so `make ci` still catches syntax
# errors anywhere.  The repo's own invariant linter (repro.analysis)
# needs only the stdlib and always runs.
ci: test lint

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; running compileall instead"; \
		$(PYTHON) -m compileall -q src tests; \
	fi
	PYTHONPATH=src $(PYTHON) -m repro.analysis src tests
	PYTHONPATH=src $(PYTHON) -m repro.analysis --project \
		--baseline lint-baseline.json src

# The strict typing gate over the clean-file list in pyproject.toml.
# mypy is optional locally (the typecheck CI job installs it).
typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; skipping (CI runs the typecheck job)"; \
	fi

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
