# Convenience targets for the temporal-mst reproduction.

PYTHON ?= python

.PHONY: install test bench examples report quickcheck ci lint clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
		echo; \
	done

report:
	$(PYTHON) -m repro experiment all --quick --markdown report.md
	@echo "wrote report.md"

quickcheck:
	$(PYTHON) -m pytest tests/ -x -q -k "not property and not examples"

# What the GitHub Actions workflow runs: the tier-1 suite plus lint.
# ruff is optional locally (the workflow installs it); a missing ruff
# falls back to a byte-compile pass so `make ci` still catches syntax
# errors anywhere.
ci: test lint

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; running compileall instead"; \
		$(PYTHON) -m compileall -q src tests; \
	fi

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
