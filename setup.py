"""Legacy setup shim: this environment has no `wheel` package, so
editable installs go through `pip install -e . --no-use-pep517`."""

from setuptools import setup

setup()
