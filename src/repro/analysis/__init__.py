"""Codebase-aware static analysis for the temporal-MST reproduction.

PRs 1 and 2 introduced cross-cutting invariants that plain tooling
cannot see: cooperative budget checkpoints inside solver loops,
immutability of the cached adjacency/memo structures, determinism of
everything the benchmark harness times, epsilon-based float comparison
on weights and times, and validated construction of temporal edges.
This package enforces them with an AST-based linter whose rules know
the repository's module layout and APIs.

Entry points
------------
* ``python -m repro.analysis [paths...]`` -- the standalone CLI;
* ``python -m repro lint`` -- the same gate via the main CLI;
* :func:`analyze_paths` -- the programmatic API used by the tests.

See ``docs/static-analysis.md`` for the rule catalogue and the
suppression syntax (``# repro: ignore[rule-name]``).
"""

from repro.analysis.core import (
    AnalysisError,
    Finding,
    ParsedModule,
    Rule,
    analyze_paths,
    iter_python_files,
    parse_module,
)
from repro.analysis.registry import ALL_RULES, default_rules, get_rules
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "ALL_RULES",
    "AnalysisError",
    "Finding",
    "ParsedModule",
    "Rule",
    "analyze_paths",
    "default_rules",
    "get_rules",
    "iter_python_files",
    "parse_module",
    "render_json",
    "render_text",
]
