"""Finding reporters: editor-style text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import Dict, Sequence

from repro.analysis.core import AnalysisError, Finding

#: Schema marker so downstream consumers can detect format changes.
REPORT_VERSION = 1


def render_text(
    findings: Sequence[Finding], errors: Sequence[AnalysisError] = ()
) -> str:
    """``path:line:col CODE [rule] message`` lines plus a summary."""
    lines = [
        f"{finding.location()} {finding.code} [{finding.rule}] {finding.message}"
        for finding in findings
    ]
    for error in errors:
        lines.append(
            f"{error.path}: internal error in rule '{error.rule}': {error.message}"
        )
    total = len(findings)
    if total == 0 and not errors:
        lines.append("ok: no findings")
    else:
        noun = "finding" if total == 1 else "findings"
        lines.append(f"{total} {noun}" + (f", {len(errors)} internal error(s)" if errors else ""))
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], errors: Sequence[AnalysisError] = ()
) -> str:
    """A stable JSON document (sorted findings, schema-versioned)."""
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    payload = {
        "version": REPORT_VERSION,
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule,
                "code": finding.code,
                "message": finding.message,
            }
            for finding in findings
        ],
        "errors": [
            {"path": error.path, "rule": error.rule, "message": error.message}
            for error in errors
        ],
        "counts": {"total": len(findings), "by_rule": by_rule},
    }
    return json.dumps(payload, indent=2, sort_keys=True)
