"""The repository-specific lint rules, one module per rule.

Each module defines one :class:`repro.analysis.core.Rule` subclass;
``repro.analysis.registry`` assembles them into the default rule set.
"""

from repro.analysis.rules.api import ApiConsistencyRule
from repro.analysis.rules.budget import BudgetTickRule
from repro.analysis.rules.caches import CacheMutationRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.exceptions import SwallowedExceptionRule
from repro.analysis.rules.floats import FloatEqualityRule
from repro.analysis.rules.temporal import TemporalInvariantRule

__all__ = [
    "ApiConsistencyRule",
    "BudgetTickRule",
    "CacheMutationRule",
    "DeterminismRule",
    "FloatEqualityRule",
    "SwallowedExceptionRule",
    "TemporalInvariantRule",
]
