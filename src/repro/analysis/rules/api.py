"""Rule: ``__all__`` stays consistent with what a module defines.

The public-API tests import every name a package's ``__all__``
advertises; a stale entry (renamed function, dropped re-export) breaks
``from repro import *`` and the documentation that mirrors it.  This
rule statically checks every literal ``__all__`` against the names the
module actually binds (defs, classes, assignments, imports) and flags
missing entries and duplicates.  Modules with a ``*`` import are
skipped -- their namespace is not statically known.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, ParsedModule, Rule


def _bound_names(tree: ast.Module) -> Tuple[Set[str], bool]:
    """Top-level bound names, plus whether a ``*`` import was seen."""
    names: Set[str] = set()
    star_import = False
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_target_names(target))
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    star_import = True
                else:
                    names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional definitions (version guards, optional deps).
            for block in _blocks(node):
                sub_names, sub_star = _bound_names(
                    ast.Module(body=block, type_ignores=[])
                )
                names.update(sub_names)
                star_import = star_import or sub_star
    return names, star_import


def _blocks(node: ast.stmt) -> List[List[ast.stmt]]:
    blocks: List[List[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(node, attr, None)
        if block:
            blocks.append(block)
    for handler in getattr(node, "handlers", ()) or ():
        blocks.append(handler.body)
    return blocks


def _target_names(target: ast.expr) -> Set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: Set[str] = set()
        for element in target.elts:
            names.update(_target_names(element))
        return names
    return set()


def _find_all_assignment(tree: ast.Module) -> Optional[ast.Assign]:
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            return node
    return None


class ApiConsistencyRule(Rule):
    name = "api-consistency"
    code = "REP106"
    description = (
        "__all__ entries must name objects the module actually binds, "
        "with no duplicates"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        assignment = _find_all_assignment(module.tree)
        if assignment is None:
            return
        value = assignment.value
        if not isinstance(value, (ast.List, ast.Tuple)):
            return  # computed __all__: not statically checkable
        entries: List[Tuple[str, ast.expr]] = []
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                entries.append((element.value, element))
            else:
                yield self.finding(
                    module, element, "__all__ entries must be string literals"
                )
                return
        bound, star_import = _bound_names(module.tree)
        seen: Set[str] = set()
        for name, node in entries:
            if name in seen:
                yield self.finding(
                    module, node, f"duplicate __all__ entry {name!r}"
                )
            seen.add(name)
            if not star_import and name not in bound and name != "__all__":
                yield self.finding(
                    module,
                    node,
                    f"__all__ exports {name!r} but the module never binds it",
                )
