"""Rule: unbounded solver loops must stay budget-interruptible.

PR 1 made the MAX-SNP-hard solve paths cooperatively interruptible by
threading a :class:`repro.resilience.Budget` through every expensive
loop.  Nothing enforced that afterwards -- a new ``while`` loop in a
solver silently reopens the "one adversarial instance hangs the run"
hole.  This rule requires every ``while`` loop in the DST solver and
baseline modules to either call ``<budget>.checkpoint(...)`` somewhere
in its body or hand the loop's work to a callee that receives the
``budget`` (the pruned solver's ``_scan_vertices`` pattern).  ``for``
loops are bounded by their iterable and are not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.core import Finding, ParsedModule, Rule

#: Modules whose loops must checkpoint (exact names or package prefixes).
TARGET_MODULES: Tuple[str, ...] = (
    "repro.steiner.charikar",
    "repro.steiner.improved",
    "repro.steiner.pruned",
    "repro.baselines",
    "repro.incremental",
)


def _mentions_budget(call: ast.Call) -> bool:
    """Whether a call either checkpoints or forwards a budget."""
    if isinstance(call.func, ast.Attribute) and call.func.attr == "checkpoint":
        return True
    for arg in call.args:
        if isinstance(arg, ast.Name) and arg.id == "budget":
            return True
    for keyword in call.keywords:
        if keyword.arg == "budget":
            return True
        if isinstance(keyword.value, ast.Name) and keyword.value.id == "budget":
            return True
    return False


class BudgetTickRule(Rule):
    name = "budget-tick"
    code = "REP101"
    description = (
        "while loops in DST solvers/baselines must call budget.checkpoint() "
        "or delegate to a budget-taking callee"
    )

    def applies(self, module: ParsedModule) -> bool:
        name = module.module_name
        if name is None:
            return False
        return any(
            name == target or name.startswith(target + ".") or (
                target == "repro.baselines" and name.startswith(target)
            )
            for target in TARGET_MODULES
        )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.While):
                continue
            checkpointed = any(
                isinstance(inner, ast.Call) and _mentions_budget(inner)
                for statement in node.body
                for inner in ast.walk(statement)
            )
            if not checkpointed:
                yield self.finding(
                    module,
                    node,
                    "unbounded while loop without a budget checkpoint; call "
                    "budget.checkpoint() in the loop body (or pass the budget "
                    "to the callee doing the work)",
                )
