"""Rule: benchmarked code must be deterministic.

The perf harness (PR 2) certifies its scenarios bit-identical across
runs, and the experiment tables are only reproducible if solver output
never depends on wall-clock time, the process-global RNG, or set
iteration order (hash-seed dependent for strings).  This rule bans, in
library modules outside ``repro.perf.harness``:

* wall-clock reads (``time.time``, ``datetime.now`` and friends) --
  elapsed-time probes via ``time.perf_counter``/``time.monotonic`` are
  fine, they never feed back into results;
* calls on the module-global ``random`` RNG (``random.shuffle`` etc.);
  seeded ``random.Random(seed)`` instances are the supported idiom;
* direct iteration over freshly-built sets (``for x in set(...)``,
  set literals/comprehensions) -- wrap in ``sorted(...)``;
* unordered result consumption (``pool.imap_unordered``,
  ``concurrent.futures.as_completed``) outside the deterministic merge
  layer in :mod:`repro.parallel.engine` -- completion order varies run
  to run, so results must flow through ``ParallelExecutor.map`` (or
  ``unordered``, which tags values with submission indices) where a
  single audited call site restores submission order.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import call_target, iter_loop_iters
from repro.analysis.core import Finding, ParsedModule, Rule

#: Dotted call targets that read the wall clock or calendar.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.strftime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Functions of the process-global ``random`` module (unseeded state).
GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "triangular",
        "seed",
    }
)

#: Modules allowed to touch the wall clock (the timing harness itself).
ALLOWED_MODULES = frozenset({"repro.perf.harness"})

#: Method names whose call sites consume results in completion order.
UNORDERED_CALLS = frozenset({"imap_unordered", "as_completed"})

#: Modules allowed to consume unordered results (the deterministic
#: merge layer, which re-sorts by submission index before yielding).
UNORDERED_ALLOWED_MODULES = frozenset({"repro.parallel.engine"})


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


class DeterminismRule(Rule):
    name = "determinism"
    code = "REP103"
    description = (
        "no wall-clock reads, global-RNG calls, or set-order iteration "
        "in library modules (benchmarked code must be deterministic)"
    )

    def applies(self, module: ParsedModule) -> bool:
        name = module.module_name
        if name is None or not (name == "repro" or name.startswith("repro.")):
            return False
        return name not in ALLOWED_MODULES

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        unordered_allowed = module.module_name in UNORDERED_ALLOWED_MODULES
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                target = call_target(node)
                if target in WALL_CLOCK_CALLS:
                    yield self.finding(
                        module,
                        node,
                        f"wall-clock call {target}() in a library module; use "
                        "time.perf_counter()/time.monotonic() for elapsed "
                        "time, or pass timestamps in explicitly",
                    )
                elif (
                    target is not None
                    and target.startswith("random.")
                    and target[len("random."):] in GLOBAL_RANDOM_FUNCS
                ):
                    yield self.finding(
                        module,
                        node,
                        f"call to the process-global RNG ({target}); build a "
                        "seeded random.Random(seed) instance instead",
                    )
                elif (
                    not unordered_allowed
                    and target is not None
                    and target.rsplit(".", 1)[-1] in UNORDERED_CALLS
                ):
                    yield self.finding(
                        module,
                        node,
                        f"unordered result consumption ({target}) outside "
                        "repro.parallel.engine; completion order is "
                        "nondeterministic -- route results through "
                        "ParallelExecutor.map, whose merge layer restores "
                        "submission order",
                    )
        for iterable in iter_loop_iters(module.tree):
            if _is_set_expression(iterable):
                yield self.finding(
                    module,
                    iterable,
                    "iteration over a freshly-built set is hash-order "
                    "dependent; wrap the expression in sorted(...)",
                )
