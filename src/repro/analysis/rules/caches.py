"""Rule: the PR 2 cache structures are read-only outside their owners.

:class:`repro.temporal.graph.TemporalGraph` and
:class:`repro.steiner.instance.PreparedInstance` memoise their derived
layouts (sorted adjacencies, start arrays, closure cost rows, terminal
orders) and hand out the *cached* objects, not copies -- that aliasing
is what makes the hot paths fast.  Any caller that mutates a returned
structure corrupts every later read.  This rule flags writes (item
assignment, ``del``, in-place ``+=``, and mutating method calls) on
expressions derived from the cache accessors, tracking simple local
aliases like ``adj = graph.ascending_adjacency()`` /
``adj[v].append(...)`` within each function scope.

PR 5 extends the protected surface to the incremental sliding-window
caches: :class:`repro.temporal.index.TemporalEdgeIndex` window slices
and deltas, and the patched closure's cost rows, are shared read-only
views too -- mutating one outside :mod:`repro.incremental` corrupts
every later slide.

PR 7 extends it again to the columnar core
(:class:`repro.temporal.columnar.ColumnarEdgeStore`): the store itself
(``graph.columnar()``) and every sorted-view accessor
(``sorted_starts`` and friends) alias the arrays all batched kernels
read; writing into one silently corrupts every later window query,
delta, and transformation on that graph.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.core import Finding, ParsedModule, Rule

#: The memoising accessors whose results are shared, not copied.
CACHE_ACCESSORS = frozenset(
    {
        "sorted_adjacency",
        "ascending_adjacency",
        "ascending_starts",
        "chronological_edges",
        "arrival_sorted_edges",
        "out_edges",
        "in_edges",
        "cost_row",
        "sorted_terminals_from",
        # TemporalEdgeIndex / incremental-engine views (PR 5): window
        # slices, deltas, and the patched closure's hop matrix are all
        # handed out uncopied.
        "edges_in",
        "edges_in_graph_order",
        "iter_edges_in",
        "in_edges_up_to",
        "delta",
        "costs_from",
        # ColumnarEdgeStore (PR 7): the store handed out by
        # graph.columnar() and its sorted-view accessors are the cached
        # arrays themselves, never copies.
        "columnar",
        "columnar_or_none",
        "sorted_starts",
        "sorted_arrivals",
        "positions_by_start",
        "positions_by_arrival",
        "arrivals_by_start_order",
        "starts_by_arrival_order",
        "start_ranks",
    }
)

#: Methods that mutate a list/dict in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "clear",
        "sort",
        "reverse",
        "update",
        "setdefault",
        "popitem",
        # ndarray / array('d') in-place writers (the columnar views).
        "fill",
        "put",
        "partition",
        "fromlist",
        "frombytes",
    }
)

#: Accessor-preserving reads: ``adj.get(v)`` etc. stay cache-derived.
_VIEW_METHODS = frozenset({"get", "items", "values", "keys"})

#: The modules that own (and may legally fill) the caches.
OWNING_MODULES = frozenset(
    {
        "repro.temporal.graph",
        "repro.steiner.instance",
        "repro.temporal.index",
        # The incremental engine legally patches the structures it owns
        # (closure rows, maintained arrival/parent maps).
        "repro.incremental.msta",
        "repro.incremental.prepare",
        "repro.incremental.engine",
        # The columnar store builds (and legally fills) its own arrays.
        "repro.temporal.columnar",
    }
)


def _is_derived(expr: ast.AST, tainted: Set[str]) -> bool:
    """Whether ``expr`` aliases (part of) a cached structure."""
    if isinstance(expr, ast.Name):
        return expr.id in tainted
    if isinstance(expr, ast.Subscript):
        return _is_derived(expr.value, tainted)
    if isinstance(expr, ast.Attribute):
        return _is_derived(expr.value, tainted)
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        if expr.func.attr in CACHE_ACCESSORS:
            return True
        if expr.func.attr in _VIEW_METHODS:
            return _is_derived(expr.func.value, tainted)
    return False


class CacheMutationRule(Rule):
    name = "cache-mutation"
    code = "REP102"
    description = (
        "no writes to cached adjacency/edge/memo structures returned by "
        "TemporalGraph or PreparedInstance accessors outside their owners"
    )

    def applies(self, module: ParsedModule) -> bool:
        return module.module_name not in OWNING_MODULES

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        findings: List[Finding] = []
        self._process(module, module.tree.body, set(), findings)
        yield from findings

    # ------------------------------------------------------------------
    # Scope walk
    # ------------------------------------------------------------------
    def _process(
        self,
        module: ParsedModule,
        body: List[ast.stmt],
        tainted: Set[str],
        findings: List[Finding],
    ) -> None:
        for statement in body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                self._process(module, statement.body, set(), findings)
                continue

            # Mutating method calls anywhere in this statement's own
            # expressions (compound bodies are recursed into below).
            for expr in ast.iter_child_nodes(statement):
                if isinstance(expr, ast.expr):
                    self._check_calls(module, expr, tainted, findings)

            if isinstance(statement, ast.Assign):
                for target in statement.targets:
                    self._check_store(module, target, tainted, findings)
                derived = _is_derived(statement.value, tainted)
                for target in statement.targets:
                    self._update_taint(target, derived, tainted)
            elif isinstance(statement, ast.AnnAssign):
                self._check_store(module, statement.target, tainted, findings)
                if statement.value is not None and isinstance(
                    statement.target, ast.Name
                ):
                    self._update_taint(
                        statement.target,
                        _is_derived(statement.value, tainted),
                        tainted,
                    )
            elif isinstance(statement, ast.AugAssign):
                target = statement.target
                if isinstance(target, ast.Subscript) and _is_derived(
                    target.value, tainted
                ):
                    findings.append(self._mutation(module, target))
                elif isinstance(target, ast.Name) and target.id in tainted:
                    findings.append(self._mutation(module, target))
            elif isinstance(statement, ast.Delete):
                for target in statement.targets:
                    if isinstance(target, ast.Subscript) and _is_derived(
                        target.value, tainted
                    ):
                        findings.append(self._mutation(module, target))
                    elif isinstance(target, ast.Name):
                        tainted.discard(target.id)

            if isinstance(statement, (ast.For, ast.AsyncFor)):
                self._update_taint(
                    statement.target,
                    _is_derived(statement.iter, tainted),
                    tainted,
                )
                self._process(module, statement.body, tainted, findings)
                self._process(module, statement.orelse, tainted, findings)
            elif isinstance(statement, (ast.While, ast.If)):
                self._process(module, statement.body, tainted, findings)
                self._process(module, statement.orelse, tainted, findings)
            elif isinstance(statement, (ast.With, ast.AsyncWith)):
                self._process(module, statement.body, tainted, findings)
            elif isinstance(statement, ast.Try):
                self._process(module, statement.body, tainted, findings)
                for handler in statement.handlers:
                    self._process(module, handler.body, tainted, findings)
                self._process(module, statement.orelse, tainted, findings)
                self._process(module, statement.finalbody, tainted, findings)

    def _check_store(
        self,
        module: ParsedModule,
        target: ast.expr,
        tainted: Set[str],
        findings: List[Finding],
    ) -> None:
        elements = target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
        for element in elements:
            if isinstance(element, ast.Subscript) and _is_derived(
                element.value, tainted
            ):
                findings.append(self._mutation(module, element))

    def _check_calls(
        self,
        module: ParsedModule,
        expr: ast.expr,
        tainted: Set[str],
        findings: List[Finding],
    ) -> None:
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS
                and _is_derived(node.func.value, tainted)
            ):
                findings.append(self._mutation(module, node))

    def _update_taint(
        self, target: ast.expr, derived: bool, tainted: Set[str]
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._update_taint(element, derived, tainted)
        elif isinstance(target, ast.Name):
            if derived:
                tainted.add(target.id)
            else:
                tainted.discard(target.id)

    def _mutation(self, module: ParsedModule, node: ast.AST) -> Finding:
        return self.finding(
            module,
            node,
            "mutation of a cached structure returned by a TemporalGraph/"
            "PreparedInstance accessor; copy it first (list(...)/dict(...)) "
            "or do the write inside the owning module",
        )
