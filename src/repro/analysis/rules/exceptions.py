"""Rule: no bare ``except:`` or silently swallowed broad exceptions.

The robustness layer (PR 6) makes failure handling *structured*: every
recovery path either retries, converts to a typed cell
(``OverBudgetCell``/``DegradedCell``), records a stats counter, or
re-raises.  A bare ``except:`` (which also traps ``KeyboardInterrupt``
and ``SystemExit``) or an ``except Exception: pass`` silently discards
failures that machinery was built to account for -- data loss with no
evidence, the exact opposite of the "never silent data loss" chaos
contract.

This rule flags, in library modules:

* bare ``except:`` handlers, always;
* handlers catching ``Exception``/``BaseException`` whose body does
  nothing (only ``pass``/``...``) -- catching broadly is fine when the
  handler *acts* (logs, counts, converts, falls back); swallowing
  broadly is not.

Narrow swallows (``except OSError: pass`` on a best-effort cleanup)
are deliberately allowed: the author named the failure they are
discarding.  A genuinely intentional broad swallow can be whitelisted
with the standard suppression comment
(``# repro: ignore[swallowed-exception]``) on the handler line.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ParsedModule, Rule

#: Exception names whose silent swallow is never acceptable.
BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _handler_names(node: ast.ExceptHandler) -> Iterator[str]:
    """The dotted-name leaves of the handler's exception expression."""
    expressions = (
        node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
    )
    for expression in expressions:
        if isinstance(expression, ast.Name):
            yield expression.id
        elif isinstance(expression, ast.Attribute):
            yield expression.attr


def _body_is_silent(node: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing but suppress."""
    for statement in node.body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            # A docstring or a bare `...` -- still does nothing.
            continue
        return False
    return True


class SwallowedExceptionRule(Rule):
    name = "swallowed-exception"
    code = "REP107"
    description = (
        "no bare except: and no silently swallowed broad exceptions "
        "(except Exception: pass) in library modules -- recovery paths "
        "must retry, convert, count, or re-raise"
    )

    def applies(self, module: ParsedModule) -> bool:
        name = module.module_name
        return name is not None and (
            name == "repro" or name.startswith("repro.")
        )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare except: traps KeyboardInterrupt/SystemExit too; "
                    "name the exceptions this handler is built for",
                )
                continue
            if _body_is_silent(node) and any(
                name in BROAD_EXCEPTIONS for name in _handler_names(node)
            ):
                yield self.finding(
                    module,
                    node,
                    "broad exception silently swallowed; act on the failure "
                    "(retry, convert to a typed cell, count it in stats) or "
                    "catch the specific exceptions this site expects",
                )
