"""Rule: temporal edges are built through the validated factory.

:class:`repro.temporal.edge.TemporalEdge` is a plain ``NamedTuple`` --
constructing one directly performs no validation, so an ``arrival <
start`` edge produced by a generator or transform only explodes later
(or worse, silently corrupts arrival times).  Library code must build
edges through :func:`repro.temporal.edge.make_edge`, which enforces
``arrival >= start`` and ``weight >= 0`` at the construction site.
Only the owning modules (the edge module itself, the graph container
that re-validates every edge, and the IO parsers with their own
field-level validation) may construct ``TemporalEdge`` directly.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ParsedModule, Rule

#: Modules that validate what they build and may construct directly.
ALLOWED_MODULES = frozenset(
    {
        "repro.temporal.edge",
        "repro.temporal.graph",
        "repro.temporal.io",
    }
)


def _constructs_temporal_edge(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "TemporalEdge"
    if isinstance(func, ast.Attribute):
        if func.attr == "TemporalEdge":
            return True
        # TemporalEdge._make(...) / TemporalEdge._replace would bypass
        # validation just the same.
        if func.attr in {"_make", "_replace"} and isinstance(func.value, ast.Name):
            return func.value.id == "TemporalEdge"
    return False


class TemporalInvariantRule(Rule):
    name = "temporal-invariant"
    code = "REP105"
    description = (
        "library code constructs temporal edges via make_edge() (which "
        "enforces arrival >= start), not TemporalEdge(...) directly"
    )

    def applies(self, module: ParsedModule) -> bool:
        name = module.module_name
        if name is None or not (name == "repro" or name.startswith("repro.")):
            return False
        return name not in ALLOWED_MODULES

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and _constructs_temporal_edge(node):
                yield self.finding(
                    module,
                    node,
                    "direct TemporalEdge construction bypasses validation; "
                    "use repro.temporal.edge.make_edge(...)",
                )
