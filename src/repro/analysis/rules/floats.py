"""Rule: no exact equality on weights, densities, or times.

Weights, tree costs, densities (cost/terminal ratios), and arrival
times are floats accumulated through additions and divisions; ``==`` /
``!=`` on them is representation-dependent and silently diverges
between otherwise-equivalent solver variants.  The repo's epsilon
helpers (:mod:`repro.core.numeric`) exist for exactly this; the rule
flags equality comparisons in library modules where either operand is
an attribute or variable with a float-quantity name.  The NaN-check
idiom ``x != x`` is exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import iter_comparisons
from repro.analysis.core import Finding, ParsedModule, Rule

#: Attribute names that always hold float quantities in this codebase
#: (TemporalEdge/ClosureTree/result-object fields).
FLOAT_ATTRIBUTES = frozenset(
    {
        "weight",
        "arrival",
        "start",
        "duration",
        "density",
        "cost",
        "total_weight",
        "edge_cost",
        "realized_weight",
        "static_weight",
    }
)

#: Bare variable names treated as float quantities.
FLOAT_NAMES = frozenset(
    {
        "weight",
        "density",
        "best_density",
        "edge_cost",
        "incoming_cost",
        "total_weight",
    }
)


def _is_float_quantity(node: ast.expr) -> bool:
    if isinstance(node, ast.Attribute):
        return node.attr in FLOAT_ATTRIBUTES
    if isinstance(node, ast.Name):
        return node.id in FLOAT_NAMES
    return False


def _same_expression(left: ast.expr, right: ast.expr) -> bool:
    """Structural equality, used to exempt the ``x != x`` NaN check."""
    return ast.dump(left) == ast.dump(right)


class FloatEqualityRule(Rule):
    name = "float-equality"
    code = "REP104"
    description = (
        "no ==/!= on weights, densities, costs, or times; use the "
        "epsilon helpers in repro.core.numeric"
    )

    def applies(self, module: ParsedModule) -> bool:
        name = module.module_name
        return name is not None and (name == "repro" or name.startswith("repro."))

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for compare in iter_comparisons(module.tree):
            operands = [compare.left, *compare.comparators]
            for i, op in enumerate(compare.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if _same_expression(left, right):
                    continue  # NaN-check idiom
                if _is_float_quantity(left) or _is_float_quantity(right):
                    yield self.finding(
                        module,
                        left,
                        "exact float equality on a weight/density/time "
                        "quantity; use repro.core.numeric.close() or "
                        "is_zero() instead",
                    )
