"""Small AST helpers shared by the lint rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    Calls and subscripts in the chain break it (``f().x`` has no static
    dotted name), which is exactly the conservatism the rules want.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        prefix = dotted_name(node.value)
        if prefix is None:
            return None
        return f"{prefix}.{node.attr}"
    return None


def call_target(node: ast.Call) -> Optional[str]:
    """The dotted name a call is made on, or ``None``."""
    return dotted_name(node.func)


def walk_statements(body: List[ast.stmt]) -> Iterator[ast.stmt]:
    """Every statement in ``body``, recursively, in source order."""
    for statement in body:
        yield statement
        for child_body in _statement_bodies(statement):
            yield from walk_statements(child_body)


def _statement_bodies(statement: ast.stmt) -> Iterator[List[ast.stmt]]:
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(statement, attr, None)
        if block:
            yield block
    for handler in getattr(statement, "handlers", ()) or ():
        yield handler.body


def iter_comparisons(tree: ast.AST) -> Iterator[ast.Compare]:
    """All ``Compare`` nodes under ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Compare):
            yield node


def iter_loop_iters(tree: ast.AST) -> Iterator[ast.expr]:
    """Every expression something iterates over: ``for`` statements and
    every generator of every comprehension."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                yield generator.iter
