"""The ``repro lint`` / ``python -m repro.analysis`` entry point.

Exit codes
----------
* ``0`` -- every rule passed on every scanned file;
* ``1`` -- at least one finding (including files that fail to parse);
* ``2`` -- usage error (argparse's convention);
* ``3`` -- the linter itself failed (a rule crashed): the gate must
  fail loudly rather than pretend the tree is clean.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.core import analyze_paths
from repro.analysis.registry import ALL_RULES, get_rules
from repro.analysis.reporters import render_json, render_text

#: Exit statuses (see module docstring).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL_ERROR = 3

#: Path components skipped by default: the test suite's deliberately
#: violating rule fixtures live under ``tests/fixtures/``.
DEFAULT_EXCLUDES = ("fixtures",)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "repository-specific invariant linter for the temporal-MST "
            "stack (budget checkpoints, cache immutability, determinism, "
            "float epsilon discipline, validated edge construction, "
            "__all__ consistency)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to scan (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=None,
        metavar="PART",
        help=(
            "skip files with this path component "
            f"(repeatable; default: {', '.join(DEFAULT_EXCLUDES)})"
        ),
    )
    parser.add_argument(
        "--no-default-excludes",
        action="store_true",
        help="scan everything, including the test fixture tree",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_class in ALL_RULES:
            print(f"{rule_class.code} {rule_class.name}: {rule_class.description}")
        return EXIT_CLEAN

    try:
        rules = get_rules(args.rule or [])
    except KeyError as exc:
        parser.error(str(exc.args[0]))

    excludes: List[str] = [] if args.no_default_excludes else list(DEFAULT_EXCLUDES)
    if args.exclude:
        excludes.extend(args.exclude)

    findings, errors = analyze_paths(args.paths, rules, excludes=excludes)
    if args.format == "json":
        print(render_json(findings, errors))
    else:
        print(render_text(findings, errors))
    if errors:
        return EXIT_INTERNAL_ERROR
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
