"""The ``repro lint`` / ``python -m repro.analysis`` entry point.

Exit codes
----------
* ``0`` -- every rule passed on every scanned file;
* ``1`` -- at least one finding (including files that fail to parse);
* ``2`` -- usage error (argparse's convention);
* ``3`` -- the linter itself failed (a rule crashed): the gate must
  fail loudly rather than pretend the tree is clean.

``--project`` switches from the per-file rules (REP1xx) to the
whole-program interprocedural pass (REP2xx): one parse of the tree,
a project-wide call graph, and the budget-reachability /
pickle-safety / backend-purity / never-raise rules on top, with an
optional findings baseline and an on-disk summary cache.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.core import analyze_paths
from repro.analysis.registry import ALL_RULES, get_rules
from repro.analysis.reporters import render_json, render_text

#: Exit statuses (see module docstring).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL_ERROR = 3

#: Path components skipped by default: the test suite's deliberately
#: violating rule fixtures live under ``tests/fixtures/``, and byte
#: caches / hypothesis databases are never source.
DEFAULT_EXCLUDES = ("fixtures", "__pycache__", ".hypothesis")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "repository-specific invariant linter for the temporal-MST "
            "stack (budget checkpoints, cache immutability, determinism, "
            "float epsilon discipline, validated edge construction, "
            "__all__ consistency; --project adds the whole-program "
            "budget/pickle/backend/never-raise rules)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=(
            "files or directories to scan "
            "(default: src tests; src alone with --project)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=None,
        metavar="PART",
        help=(
            "skip files with this path component "
            f"(repeatable; default: {', '.join(DEFAULT_EXCLUDES)})"
        ),
    )
    parser.add_argument(
        "--no-default-excludes",
        action="store_true",
        help="scan everything, including the test fixture tree",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help="run the whole-program interprocedural rules (REP201-REP204)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="drop findings recorded in this baseline file (--project only)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help=(
            "write the current findings to FILE as the new baseline and "
            "exit clean (--project only)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "directory for the summary cache keyed on source hashes "
            "(--project only; default: no cache)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the summary cache (--project only)",
    )
    return parser


def _main_project(
    parser: argparse.ArgumentParser,
    args: argparse.Namespace,
    excludes: Sequence[str],
) -> int:
    import os

    from repro.analysis.project import (
        PROJECT_RULES,
        analyze_project,
        apply_baseline,
        get_project_rules,
        load_baseline,
        write_baseline,
    )

    if args.list_rules:
        for rule_class in PROJECT_RULES:
            print(f"{rule_class.code} {rule_class.name}: {rule_class.description}")
        return EXIT_CLEAN

    try:
        rules = get_project_rules(args.rule or [])
    except KeyError as exc:
        parser.error(str(exc.args[0]))

    cache_path: Optional[str] = None
    if args.cache_dir is not None and not args.no_cache:
        cache_path = os.path.join(args.cache_dir, "project-summaries.json")

    paths = args.paths if args.paths else ["src"]
    findings, errors, _stats = analyze_project(
        paths, rules, excludes=excludes, cache_path=cache_path
    )

    if args.write_baseline is not None:
        write_baseline(args.write_baseline, findings)
        findings = []
    elif args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            parser.error(str(exc))
        findings = apply_baseline(findings, baseline)

    if args.format == "json":
        print(render_json(findings, errors))
    else:
        print(render_text(findings, errors))
    if errors:
        return EXIT_INTERNAL_ERROR
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    excludes: List[str] = [] if args.no_default_excludes else list(DEFAULT_EXCLUDES)
    if args.exclude:
        excludes.extend(args.exclude)

    if args.project:
        return _main_project(parser, args, excludes)
    for flag, name in (
        (args.baseline, "--baseline"),
        (args.write_baseline, "--write-baseline"),
        (args.cache_dir, "--cache-dir"),
    ):
        if flag is not None:
            parser.error(f"{name} requires --project")

    if args.list_rules:
        for rule_class in ALL_RULES:
            print(f"{rule_class.code} {rule_class.name}: {rule_class.description}")
        return EXIT_CLEAN

    try:
        rules = get_rules(args.rule or [])
    except KeyError as exc:
        parser.error(str(exc.args[0]))

    paths = args.paths if args.paths else ["src", "tests"]
    findings, errors = analyze_paths(paths, rules, excludes=excludes)
    if args.format == "json":
        print(render_json(findings, errors))
    else:
        print(render_text(findings, errors))
    if errors:
        return EXIT_INTERNAL_ERROR
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
