"""The rule registry: every shipped rule, instantiable by name."""

from __future__ import annotations

from typing import Dict, List, Sequence, Type

from repro.analysis.core import Rule
from repro.analysis.rules import (
    ApiConsistencyRule,
    BudgetTickRule,
    CacheMutationRule,
    DeterminismRule,
    FloatEqualityRule,
    SwallowedExceptionRule,
    TemporalInvariantRule,
)

#: Every shipped rule class, in catalogue (code) order.
ALL_RULES: List[Type[Rule]] = [
    BudgetTickRule,
    CacheMutationRule,
    DeterminismRule,
    FloatEqualityRule,
    TemporalInvariantRule,
    ApiConsistencyRule,
    SwallowedExceptionRule,
]

_BY_NAME: Dict[str, Type[Rule]] = {rule.name: rule for rule in ALL_RULES}


def default_rules() -> List[Rule]:
    """One instance of every shipped rule."""
    return [rule_class() for rule_class in ALL_RULES]


def get_rules(names: Sequence[str]) -> List[Rule]:
    """Instances of the named rules (catalogue order), or all if empty.

    Raises
    ------
    KeyError
        For a name not in the catalogue (lists the valid names).
    """
    if not names:
        return default_rules()
    unknown = [name for name in names if name not in _BY_NAME]
    if unknown:
        raise KeyError(
            f"unknown rule(s) {', '.join(sorted(unknown))}; "
            f"valid names: {', '.join(sorted(_BY_NAME))}"
        )
    wanted = set(names)
    return [rule_class() for rule_class in ALL_RULES if rule_class.name in wanted]
