"""Linter infrastructure: findings, rules, parsing, suppressions.

The model is deliberately small: a :class:`Rule` consumes one
:class:`ParsedModule` (path + AST + per-line suppressions) and yields
:class:`Finding` objects; :func:`analyze_paths` drives every rule over
every Python file under the requested paths and filters out findings
the source suppressed with ``# repro: ignore[rule-name]`` comments.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

#: Comment syntax accepted on (or, for multi-line statements, within)
#: the offending line: ``# repro: ignore`` silences every rule,
#: ``# repro: ignore[rule-a, rule-b]`` only the named ones.
_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[\w\-, ]*)\])?"
)

#: Pseudo-rule emitted for files the ``ast`` module cannot parse.
PARSE_ERROR_RULE = "parse-error"
PARSE_ERROR_CODE = "REP000"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    code: str
    message: str

    def location(self) -> str:
        """``path:line:col`` as editors expect it (1-based column)."""
        return f"{self.path}:{self.line}:{self.col + 1}"


@dataclass(frozen=True)
class AnalysisError:
    """An internal linter failure (a rule crashed), not a finding."""

    path: str
    rule: str
    message: str


@dataclass
class ParsedModule:
    """A parsed source file plus the metadata rules key off.

    ``module_name`` is the dotted import path when the file belongs to
    the ``repro`` package (``repro.steiner.charikar``), else ``None`` --
    rules scoped to library modules skip test files through it.
    ``suppressions`` maps a 1-based line number to the set of rule
    names silenced there (``None`` meaning every rule).
    """

    path: str
    source: str
    tree: ast.Module
    module_name: Optional[str]
    suppressions: Dict[int, Optional[FrozenSet[str]]] = field(default_factory=dict)

    def is_suppressed(self, line: int, rule: str) -> bool:
        if line not in self.suppressions:
            return False
        rules = self.suppressions[line]
        return rules is None or rule in rules


class Rule:
    """Base class every lint rule derives from.

    Subclasses set ``name`` (the kebab-case identifier used in
    suppression comments and ``--rule`` selections), ``code`` (the
    stable ``REPnnn`` identifier), and ``description``, and implement
    :meth:`check`.
    """

    name: str = ""
    code: str = ""
    description: str = ""

    def applies(self, module: ParsedModule) -> bool:
        """Whether the rule runs on this module at all (default: yes)."""
        return True

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        """Yield findings for one parsed module."""
        raise NotImplementedError

    def finding(
        self, module: ParsedModule, node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.name,
            code=self.code,
            message=message,
        )


def module_name_for(path: str) -> Optional[str]:
    """The dotted ``repro.*`` module name of ``path``, or ``None``.

    Works for any checkout layout by keying on the last path component
    named ``repro`` (``src/repro/steiner/charikar.py`` and the test
    fixture mirrors ``tests/fixtures/analysis/violations/repro/...``
    both resolve to ``repro.steiner.charikar``).
    """
    parts = os.path.normpath(path).split(os.sep)
    if not parts or not parts[-1].endswith(".py"):
        return None
    anchors = [i for i, part in enumerate(parts) if part == "repro"]
    if not anchors:
        return None
    tail = parts[anchors[-1]:]
    tail[-1] = tail[-1][: -len(".py")]
    if tail[-1] == "__init__":
        tail = tail[:-1]
    return ".".join(tail)


def _collect_suppressions(source: str) -> Dict[int, Optional[FrozenSet[str]]]:
    """Per-line suppression sets from ``# repro: ignore[...]`` comments."""
    suppressions: Dict[int, Optional[FrozenSet[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            names = match.group("rules")
            if names is None:
                suppressions[token.start[0]] = None
            else:
                rules = frozenset(
                    name.strip() for name in names.split(",") if name.strip()
                )
                suppressions[token.start[0]] = rules or None
    except tokenize.TokenError:  # pragma: no cover - caught earlier by ast
        pass
    return suppressions


def parse_module(path: str, source: Optional[str] = None) -> ParsedModule:
    """Parse one file into the structure rules consume.

    Raises
    ------
    SyntaxError
        If the source does not parse; :func:`analyze_paths` converts
        this into a ``parse-error`` finding.
    """
    if source is None:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    tree = ast.parse(source, filename=path)
    return ParsedModule(
        path=path,
        source=source,
        tree=tree,
        module_name=module_name_for(path),
        suppressions=_collect_suppressions(source),
    )


def iter_python_files(
    paths: Sequence[str],
    excludes: Sequence[str] = (),
) -> Iterator[str]:
    """All ``.py`` files under ``paths``, sorted, minus excluded parts.

    ``excludes`` entries are path *components* (``"fixtures"`` skips any
    file with a ``fixtures`` directory anywhere in its path), keeping
    the deliberately-violating test fixtures out of the default gate.
    """
    seen: Set[str] = set()
    for root_path in paths:
        if os.path.isfile(root_path):
            candidates: Iterable[str] = [root_path]
        else:
            candidates = (
                os.path.join(directory, filename)
                for directory, _, filenames in sorted(os.walk(root_path))
                for filename in sorted(filenames)
            )
        for candidate in candidates:
            if not candidate.endswith(".py"):
                continue
            parts = os.path.normpath(candidate).split(os.sep)
            if any(part in excludes for part in parts):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def analyze_paths(
    paths: Sequence[str],
    rules: Sequence[Rule],
    excludes: Sequence[str] = ("fixtures",),
) -> Tuple[List[Finding], List[AnalysisError]]:
    """Run ``rules`` over every Python file under ``paths``.

    Returns the suppression-filtered findings (sorted by location) and
    any internal rule failures.  A file that fails to parse contributes
    one ``parse-error`` finding rather than an internal error: a broken
    file in the gated tree is a problem the gate must report.
    """
    findings: List[Finding] = []
    errors: List[AnalysisError] = []
    for path in iter_python_files(paths, excludes=excludes):
        try:
            module = parse_module(path)
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    col=0,
                    rule=PARSE_ERROR_RULE,
                    code=PARSE_ERROR_CODE,
                    message=f"file does not parse: {exc}",
                )
            )
            continue
        for rule in rules:
            if not rule.applies(module):
                continue
            try:
                for finding in rule.check(module):
                    if not module.is_suppressed(finding.line, finding.rule):
                        findings.append(finding)
            except Exception as exc:  # noqa: BLE001 - reported as internal
                errors.append(
                    AnalysisError(path=path, rule=rule.name, message=repr(exc))
                )
    findings.sort()
    return findings, errors
