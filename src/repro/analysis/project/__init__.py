"""Whole-program interprocedural analysis (``temporal-mst lint --project``).

Layers, bottom to top:

* :mod:`repro.analysis.project.symbols` -- per-module JSON-serializable
  summaries (the unit of caching);
* :mod:`repro.analysis.project.callgraph` -- project-wide symbol
  resolution and the conservative call graph (trampolines, registry
  dispatch, the ExperimentContext cell protocol);
* :mod:`repro.analysis.project.rules` -- REP201 budget-reachability,
  REP202 pickle-safety, REP203 backend-purity, REP204 never-raise;
* :mod:`repro.analysis.project.cache` -- source-hash summary cache with
  import-SCC invalidation;
* :mod:`repro.analysis.project.baseline` -- ratchet baseline support;
* :mod:`repro.analysis.project.driver` -- orchestration.
"""

from repro.analysis.project.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.project.cache import CacheStats, SummaryCache
from repro.analysis.project.callgraph import ProjectGraph, build_graph
from repro.analysis.project.driver import (
    DEFAULT_PROJECT_EXCLUDES,
    analyze_project,
)
from repro.analysis.project.rules import (
    PROJECT_RULES,
    ProjectRule,
    default_project_rules,
    get_project_rules,
)
from repro.analysis.project.symbols import ModuleSummary, summarize_module

__all__ = [
    "DEFAULT_PROJECT_EXCLUDES",
    "PROJECT_RULES",
    "CacheStats",
    "ModuleSummary",
    "ProjectGraph",
    "ProjectRule",
    "SummaryCache",
    "analyze_project",
    "apply_baseline",
    "build_graph",
    "default_project_rules",
    "get_project_rules",
    "load_baseline",
    "summarize_module",
    "write_baseline",
]
