"""Drives the whole-program pass: files -> summaries -> graph -> rules."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.core import (
    PARSE_ERROR_CODE,
    PARSE_ERROR_RULE,
    AnalysisError,
    Finding,
    iter_python_files,
    module_name_for,
)
from repro.analysis.project.cache import CacheStats, SummaryCache
from repro.analysis.project.callgraph import build_graph
from repro.analysis.project.rules import ProjectRule, default_project_rules

#: Directories never part of the project walk.
DEFAULT_PROJECT_EXCLUDES = ("fixtures", "__pycache__", ".hypothesis")


def analyze_project(
    paths: Sequence[str],
    rules: Optional[Sequence[ProjectRule]] = None,
    excludes: Sequence[str] = DEFAULT_PROJECT_EXCLUDES,
    cache_path: Optional[str] = None,
) -> Tuple[List[Finding], List[AnalysisError], CacheStats]:
    """Run the interprocedural rules over every module under ``paths``.

    Returns the suppression-filtered findings (sorted by location), any
    internal rule failures, and the cache statistics of the run.  Files
    that fail to parse contribute one ``parse-error`` finding each and
    are excluded from the graph; files outside any ``repro`` package
    (no resolvable module name) are skipped entirely.
    """
    if rules is None:
        rules = default_project_rules()
    files: List[Tuple[str, str]] = []
    seen_modules = set()
    for path in iter_python_files(paths, excludes=excludes):
        module = module_name_for(path)
        if module is None or module in seen_modules:
            continue
        seen_modules.add(module)
        files.append((path, module))
    cache = SummaryCache(cache_path)
    summaries, syntax_errors = cache.build(files)
    findings: List[Finding] = []
    errors: List[AnalysisError] = []
    for path, exc in syntax_errors:
        findings.append(
            Finding(
                path=path,
                line=getattr(exc, "lineno", 1) or 1,
                col=0,
                rule=PARSE_ERROR_RULE,
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {exc}",
            )
        )
    graph = build_graph(summaries)
    by_path = {summary.path: summary for summary in summaries.values()}
    for rule in rules:
        try:
            for finding in rule.check(graph):
                summary = by_path.get(finding.path)
                if summary is not None and summary.is_suppressed(
                    finding.line, finding.rule
                ):
                    continue
                findings.append(finding)
        except Exception as exc:  # noqa: BLE001 - reported as internal
            errors.append(
                AnalysisError(
                    path="<project>", rule=rule.name, message=repr(exc)
                )
            )
    findings.sort()
    return findings, errors, cache.stats
