"""Per-module syntactic summaries for the whole-program pass.

The interprocedural rules never touch an AST: every fact they need is
extracted here, once per module, into plain-data
:class:`ModuleSummary` objects that serialize losslessly to JSON (the
on-disk cache stores exactly these, so a warm run and a cold run feed
the rules byte-identical inputs).

A summary records, per function (methods and nested closures
included, keyed by qualname):

* parameters, annotations, and the *budget aliases* visible in the
  body -- parameters named ``budget``/``ctx``/``context``, parameters
  annotated with ``Budget``/``ExperimentContext``, and locals assigned
  from those names or from ``Budget(...)`` / ``Budget.per_task(...)``
  / ``ExperimentContext(...)`` constructions;
* every call site, with the dotted callee expression, the dotted root
  of each argument, lambda / locally-defined callables passed as
  arguments, the enclosing ``try`` handlers, and whether the site is
  dominated by a backend guard (``.backend == "numpy"``,
  ``_np is not None``, ``numpy_available()`` -- including the
  early-exit forms);
* ``for`` loops that destructure a named iterable into tuple targets
  (the ``for name, solver in algorithms:`` pattern the call-graph
  layer uses to resolve escaped solver callables);
* raise sites, ``<budget>.checkpoint()`` sites, ``_np`` dereferences,
  and private-attribute / ``earliest_arrival`` accesses on inferred
  :class:`ColumnarEdgeStore` receivers;
* the ``"never raises"`` docstring marker of the REP204 contract.

Module level, it records imports (for symbol resolution and the
import-graph SCCs the cache invalidates by), ``__all__``, literal
containers of function references (solver registries), class
inventories (dataclass fields, ``__reduce__`` presence, lossy
``__init__`` detection), and the per-line suppression table.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.astutil import dotted_name
from repro.analysis.core import parse_module

#: Bump when the summary shape changes: stale caches must not be read.
SUMMARY_VERSION = 1

#: Parameter names treated as budget-carrying regardless of annotation.
BUDGET_PARAM_NAMES = ("budget", "ctx", "context")

#: Annotation substrings that mark a parameter as budget-carrying.
BUDGET_ANNOTATIONS = ("Budget", "ExperimentContext")

#: Constructors whose results are budget aliases (and count as local
#: budget provisioning).
BUDGET_CONSTRUCTORS = ("Budget", "Budget.per_task", "ExperimentContext")

#: Docstring marker of the "exact answer + caveat, never raises"
#: contract checked by REP204.
NEVER_RAISES_MARKER = "never raises"


def _hash_source(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@dataclass
class ArgInfo:
    """One argument at a call site: its slot and what it syntactically is."""

    slot: str  # "0", "1", ... for positionals; the keyword name otherwise
    root: Optional[str] = None  # dotted name of the value, if it has one
    kind: str = "other"  # name | lambda | localfunc | localclass | subscript | literal | other
    starred: bool = False
    container: Optional[str] = None  # NAME for NAME[...] subscript arguments


@dataclass
class CallSite:
    """One call expression inside a function body."""

    target: Optional[str]  # dotted callee ("timed", "self._solve", ...)
    lineno: int
    col: int
    args: List[ArgInfo] = field(default_factory=list)
    subscript_of: Optional[str] = None  # NAME for NAME[...](...) / NAME.get(...)(...)
    guarded: bool = False
    handlers: List[str] = field(default_factory=list)


@dataclass
class RaiseSite:
    """A ``raise`` statement and the exception's dotted name."""

    exception: Optional[str]
    lineno: int
    handlers: List[str] = field(default_factory=list)


@dataclass
class CheckpointSite:
    """A ``<receiver>.checkpoint(...)`` call."""

    receiver: str
    lineno: int
    guarded: bool = False
    handlers: List[str] = field(default_factory=list)


@dataclass
class AttrUse:
    """A private-attribute or ``earliest_arrival`` access on a receiver."""

    receiver: str  # dotted receiver expression root ("store", "self.index")
    attr: str
    lineno: int
    col: int
    is_call: bool = False
    guarded: bool = False


@dataclass
class NumpyUse:
    """A dereference of the optional ``_np`` module binding."""

    lineno: int
    col: int
    guarded: bool = False


@dataclass
class ForBinding:
    """A tuple-destructuring loop target: ``for _, solver in algorithms:``."""

    iterable: str  # dotted root of the iterated expression
    position: Optional[int]  # tuple slot of this target, None for whole-item


@dataclass
class LocalValue:
    """What a local name was assigned from (the shapes rules care about)."""

    kind: str  # alias | constructed | subscript | partial | columnar
    target: Optional[str] = None  # aliased/constructed/partial-ed dotted name
    container: Optional[str] = None  # NAME for subscript/.get() loads


@dataclass
class FunctionSummary:
    """Everything the interprocedural rules need about one function."""

    qualname: str
    lineno: int
    params: List[str] = field(default_factory=list)
    annotations: Dict[str, str] = field(default_factory=dict)
    budget_aliases: List[str] = field(default_factory=list)
    provisions_budget: bool = False
    never_raises: bool = False
    calls: List[CallSite] = field(default_factory=list)
    raises: List[RaiseSite] = field(default_factory=list)
    checkpoints: List[CheckpointSite] = field(default_factory=list)
    attr_uses: List[AttrUse] = field(default_factory=list)
    numpy_uses: List[NumpyUse] = field(default_factory=list)
    for_bindings: Dict[str, ForBinding] = field(default_factory=dict)
    locals: Dict[str, LocalValue] = field(default_factory=dict)
    literals: Dict[str, "LiteralInfo"] = field(default_factory=dict)

    def is_budget_name(self, name: Optional[str]) -> bool:
        """Whether a dotted expression is rooted at a budget alias."""
        if not name:
            return False
        return name.split(".", 1)[0] in self.budget_aliases


@dataclass
class LiteralInfo:
    """A module-level literal container holding function references.

    ``values`` collects every bare dotted reference in the container
    (dict values, list/tuple items); ``tuple_values`` maps tuple slot
    positions to the references found there, for the destructuring
    loops the call graph resolves.
    """

    lineno: int
    values: List[str] = field(default_factory=list)
    tuple_values: Dict[str, List[str]] = field(default_factory=dict)


@dataclass
class ClassSummary:
    """One class definition, as the pickle and call-graph layers see it."""

    name: str
    lineno: int
    bases: List[str] = field(default_factory=list)
    is_dataclass: bool = False
    fields: Dict[str, str] = field(default_factory=dict)
    methods: Dict[str, FunctionSummary] = field(default_factory=dict)
    has_reduce: bool = False
    init_lossy: bool = False
    init_params: List[str] = field(default_factory=list)


@dataclass
class ModuleSummary:
    """The per-module unit of the whole-program analysis (and its cache)."""

    module: str
    path: str
    source_hash: str
    imports: Dict[str, str] = field(default_factory=dict)
    import_modules: List[str] = field(default_factory=list)
    exports: List[str] = field(default_factory=list)
    literals: Dict[str, LiteralInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    has_optional_numpy: bool = False
    suppressions: Dict[str, Optional[List[str]]] = field(default_factory=dict)

    def is_suppressed(self, line: int, rule: str) -> bool:
        key = str(line)
        if key not in self.suppressions:
            return False
        rules = self.suppressions[key]
        return rules is None or rule in rules

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


# ----------------------------------------------------------------------
# Deserialization (the cache's read path)
# ----------------------------------------------------------------------
def _function_from_dict(data: Dict[str, Any]) -> FunctionSummary:
    return FunctionSummary(
        qualname=data["qualname"],
        lineno=data["lineno"],
        params=list(data.get("params", [])),
        annotations=dict(data.get("annotations", {})),
        budget_aliases=list(data.get("budget_aliases", [])),
        provisions_budget=bool(data.get("provisions_budget", False)),
        never_raises=bool(data.get("never_raises", False)),
        calls=[
            CallSite(
                target=c.get("target"),
                lineno=c["lineno"],
                col=c.get("col", 0),
                args=[ArgInfo(**a) for a in c.get("args", [])],
                subscript_of=c.get("subscript_of"),
                guarded=bool(c.get("guarded", False)),
                handlers=list(c.get("handlers", [])),
            )
            for c in data.get("calls", [])
        ],
        raises=[RaiseSite(**r) for r in data.get("raises", [])],
        checkpoints=[CheckpointSite(**c) for c in data.get("checkpoints", [])],
        attr_uses=[AttrUse(**a) for a in data.get("attr_uses", [])],
        numpy_uses=[NumpyUse(**n) for n in data.get("numpy_uses", [])],
        for_bindings={
            name: ForBinding(**b) for name, b in data.get("for_bindings", {}).items()
        },
        locals={
            name: LocalValue(**v) for name, v in data.get("locals", {}).items()
        },
        literals={
            name: LiteralInfo(
                lineno=lit["lineno"],
                values=list(lit.get("values", [])),
                tuple_values={
                    pos: list(vals)
                    for pos, vals in lit.get("tuple_values", {}).items()
                },
            )
            for name, lit in data.get("literals", {}).items()
        },
    )


def module_from_dict(data: Dict[str, Any]) -> ModuleSummary:
    """Rebuild a :class:`ModuleSummary` from its JSON form."""
    return ModuleSummary(
        module=data["module"],
        path=data["path"],
        source_hash=data["source_hash"],
        imports=dict(data.get("imports", {})),
        import_modules=list(data.get("import_modules", [])),
        exports=list(data.get("exports", [])),
        literals={
            name: LiteralInfo(
                lineno=lit["lineno"],
                values=list(lit.get("values", [])),
                tuple_values={
                    pos: list(vals)
                    for pos, vals in lit.get("tuple_values", {}).items()
                },
            )
            for name, lit in data.get("literals", {}).items()
        },
        functions={
            name: _function_from_dict(fn)
            for name, fn in data.get("functions", {}).items()
        },
        classes={
            name: ClassSummary(
                name=cls["name"],
                lineno=cls["lineno"],
                bases=list(cls.get("bases", [])),
                is_dataclass=bool(cls.get("is_dataclass", False)),
                fields=dict(cls.get("fields", {})),
                methods={
                    m: _function_from_dict(fn)
                    for m, fn in cls.get("methods", {}).items()
                },
                has_reduce=bool(cls.get("has_reduce", False)),
                init_lossy=bool(cls.get("init_lossy", False)),
                init_params=list(cls.get("init_params", [])),
            )
            for name, cls in data.get("classes", {}).items()
        },
        has_optional_numpy=bool(data.get("has_optional_numpy", False)),
        suppressions={
            line: (list(rules) if rules is not None else None)
            for line, rules in data.get("suppressions", {}).items()
        },
    )


# ----------------------------------------------------------------------
# Guard tests (REP203's domination machinery)
# ----------------------------------------------------------------------
def _is_backend_compare(test: ast.expr, op_types: Tuple[type, ...]) -> bool:
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return False
    if not isinstance(test.ops[0], op_types):
        return False
    left, right = test.left, test.comparators[0]
    for side, other in ((left, right), (right, left)):
        if (
            isinstance(side, ast.Attribute)
            and side.attr == "backend"
            and isinstance(other, ast.Constant)
            and other.value == "numpy"
        ):
            return True
    return False


def _is_np_none_compare(test: ast.expr, op_types: Tuple[type, ...]) -> bool:
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return False
    if not isinstance(test.ops[0], op_types):
        return False
    left, right = test.left, test.comparators[0]
    for side, other in ((left, right), (right, left)):
        if (
            isinstance(side, ast.Name)
            and side.id in ("_np", "np")
            and isinstance(other, ast.Constant)
            and other.value is None
        ):
            return True
    return False


def _is_availability_call(test: ast.expr) -> bool:
    if not isinstance(test, ast.Call):
        return False
    name = dotted_name(test.func)
    return bool(name) and name.split(".")[-1] == "numpy_available"


def is_positive_guard(test: ast.expr) -> bool:
    """``backend == "numpy"`` / ``_np is not None`` / ``numpy_available()``."""
    if _is_backend_compare(test, (ast.Eq,)):
        return True
    if _is_np_none_compare(test, (ast.IsNot,)):
        return True
    if _is_availability_call(test):
        return True
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(is_positive_guard(value) for value in test.values)
    return False


def is_negative_guard(test: ast.expr) -> bool:
    """``backend != "numpy"`` / ``_np is None`` / ``not numpy_available()``."""
    if _is_backend_compare(test, (ast.NotEq,)):
        return True
    if _is_np_none_compare(test, (ast.Is,)):
        return True
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return is_positive_guard(test.operand)
    return False


def _terminates(block: List[ast.stmt]) -> bool:
    if not block:
        return False
    last = block[-1]
    return isinstance(last, (ast.Return, ast.Raise, ast.Continue, ast.Break))


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
class _FunctionExtractor:
    """Walks one function body (not descending into nested defs)."""

    def __init__(
        self,
        node: ast.AST,
        qualname: str,
        local_function_names: Tuple[str, ...],
        local_class_names: Tuple[str, ...],
    ) -> None:
        self.summary = FunctionSummary(
            qualname=qualname, lineno=getattr(node, "lineno", 1)
        )
        self._local_funcs = local_function_names
        self._local_classes = local_class_names

    # -- parameters ----------------------------------------------------
    def take_params(self, args: ast.arguments) -> None:
        summary = self.summary
        all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for arg in all_args:
            summary.params.append(arg.arg)
            if arg.annotation is not None:
                summary.annotations[arg.arg] = ast.dump(arg.annotation)
        if args.vararg is not None:
            summary.params.append("*" + args.vararg.arg)
        for name in summary.params:
            if name in BUDGET_PARAM_NAMES:
                summary.budget_aliases.append(name)
            elif any(
                marker in summary.annotations.get(name, "")
                for marker in BUDGET_ANNOTATIONS
            ):
                summary.budget_aliases.append(name)

    def take_docstring(self, node: ast.AST) -> None:
        body = getattr(node, "body", None)
        if not body:
            return
        first = body[0]
        if (
            isinstance(first, ast.Expr)
            and isinstance(first.value, ast.Constant)
            and isinstance(first.value.value, str)
            and NEVER_RAISES_MARKER in first.value.value.lower()
        ):
            self.summary.never_raises = True

    # -- body walk -----------------------------------------------------
    def walk(self, body: List[ast.stmt]) -> None:
        self._walk_block(body, guarded=False, handlers=())

    def _walk_block(
        self, block: List[ast.stmt], guarded: bool, handlers: Tuple[str, ...]
    ) -> None:
        promoted = guarded
        for statement in block:
            self._walk_statement(statement, promoted, handlers)
            if (
                isinstance(statement, ast.If)
                and is_negative_guard(statement.test)
                and _terminates(statement.body)
                and not statement.orelse
            ):
                # `if <not numpy>: return ...` -- the rest of the block
                # runs only on the numpy backend.
                promoted = True

    def _walk_statement(
        self, statement: ast.stmt, guarded: bool, handlers: Tuple[str, ...]
    ) -> None:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are summarized separately
        if isinstance(statement, ast.ClassDef):
            return
        if isinstance(statement, ast.If):
            body_guard = guarded or is_positive_guard(statement.test)
            # The guard expression itself dereferences `_np` (`_np is
            # not None`); that use is the guard, not a violation.
            test_guard = guarded or is_positive_guard(statement.test) or (
                is_negative_guard(statement.test)
            )
            self._scan_expressions(statement.test, test_guard, handlers)
            self._walk_block(statement.body, body_guard, handlers)
            self._walk_block(statement.orelse, guarded, handlers)
            return
        if isinstance(statement, ast.Try):
            caught: List[str] = []
            for handler in statement.handlers:
                caught.extend(_handler_names(handler))
            inner = handlers + tuple(caught)
            self._walk_block(statement.body, guarded, inner)
            for handler in statement.handlers:
                self._walk_block(handler.body, guarded, handlers)
            self._walk_block(statement.orelse, guarded, handlers)
            self._walk_block(statement.finalbody, guarded, handlers)
            return
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            self._record_for(statement)
            self._scan_expressions(statement.iter, guarded, handlers)
            self._walk_block(statement.body, guarded, handlers)
            self._walk_block(statement.orelse, guarded, handlers)
            return
        if isinstance(statement, ast.While):
            self._scan_expressions(statement.test, guarded, handlers)
            self._walk_block(statement.body, guarded, handlers)
            self._walk_block(statement.orelse, guarded, handlers)
            return
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                self._record_with_item(item)
                self._scan_expressions(item.context_expr, guarded, handlers)
            self._walk_block(statement.body, guarded, handlers)
            return
        if isinstance(statement, ast.Assign):
            self._record_assign(statement)
        if isinstance(statement, ast.AnnAssign) and statement.value is not None:
            if isinstance(statement.target, ast.Name):
                self._record_local(statement.target.id, statement.value)
        if isinstance(statement, ast.Raise):
            exc = statement.exc
            name = None
            if isinstance(exc, ast.Call):
                name = dotted_name(exc.func)
            elif exc is not None:
                name = dotted_name(exc)
            self.summary.raises.append(
                RaiseSite(
                    exception=name,
                    lineno=statement.lineno,
                    handlers=list(handlers),
                )
            )
        for child in ast.iter_child_nodes(statement):
            if isinstance(child, ast.expr):
                self._scan_expressions(child, guarded, handlers)
            elif isinstance(child, ast.stmt):
                self._walk_statement(child, guarded, handlers)

    # -- recorders -----------------------------------------------------
    def _record_for(self, statement: ast.stmt) -> None:
        target = getattr(statement, "target", None)
        iterable = dotted_name(getattr(statement, "iter", ast.Constant(value=None)))
        if iterable is None:
            return
        if isinstance(target, ast.Name):
            self.summary.for_bindings[target.id] = ForBinding(
                iterable=iterable, position=None
            )
        elif isinstance(target, ast.Tuple):
            for position, element in enumerate(target.elts):
                if isinstance(element, ast.Name):
                    self.summary.for_bindings[element.id] = ForBinding(
                        iterable=iterable, position=position
                    )

    def _record_with_item(self, item: ast.withitem) -> None:
        if not isinstance(item.optional_vars, ast.Name):
            return
        if isinstance(item.context_expr, ast.Call):
            target = dotted_name(item.context_expr.func)
            if target:
                self.summary.locals[item.optional_vars.id] = LocalValue(
                    kind="constructed", target=target
                )

    def _record_assign(self, statement: ast.Assign) -> None:
        if len(statement.targets) != 1:
            return
        target = statement.targets[0]
        if isinstance(target, ast.Name):
            self._record_local(target.id, statement.value)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            # ``self.<attr> = ...`` in __init__ types instance state for
            # the call graph's self-attribute resolution.
            self._record_local(f"self.{target.attr}", statement.value)

    def _record_local(self, name: str, value: ast.expr) -> None:
        summary = self.summary
        literal = _literal_info(value, getattr(value, "lineno", summary.lineno))
        if literal is not None:
            summary.literals[name] = literal
            return
        if isinstance(value, ast.Call):
            target = dotted_name(value.func)
            if target is not None:
                tail = target.split(".")[-1]
                if target in BUDGET_CONSTRUCTORS or tail == "per_task":
                    summary.budget_aliases.append(name)
                    summary.provisions_budget = True
                    summary.locals[name] = LocalValue(kind="constructed", target=target)
                    return
                if tail == "columnar":
                    summary.locals[name] = LocalValue(kind="columnar", target=target)
                    return
                if tail == "partial" and value.args:
                    inner = dotted_name(value.args[0])
                    if inner is not None:
                        summary.locals[name] = LocalValue(kind="partial", target=inner)
                        return
                if tail == "get" and isinstance(value.func, ast.Attribute):
                    container = dotted_name(value.func.value)
                    if container is not None:
                        summary.locals[name] = LocalValue(
                            kind="subscript", container=container
                        )
                        return
                summary.locals[name] = LocalValue(kind="constructed", target=target)
            return
        if isinstance(value, ast.Subscript):
            container = dotted_name(value.value)
            if container is not None:
                summary.locals[name] = LocalValue(kind="subscript", container=container)
            return
        if isinstance(value, ast.Name) or isinstance(value, ast.Attribute):
            target = dotted_name(value)
            if target is not None:
                if target.split(".", 1)[0] in summary.budget_aliases:
                    summary.budget_aliases.append(name)
                summary.locals[name] = LocalValue(kind="alias", target=target)
            return
        if isinstance(value, ast.IfExp):
            roots = [
                node.id for node in ast.walk(value) if isinstance(node, ast.Name)
            ]
            if any(root in summary.budget_aliases for root in roots) or (
                "NULL_BUDGET" in roots
            ):
                summary.budget_aliases.append(name)

    # -- expression scan -----------------------------------------------
    def _scan_expressions(
        self, node: ast.expr, guarded: bool, handlers: Tuple[str, ...]
    ) -> None:
        for expr in ast.walk(node):
            if isinstance(expr, (ast.Lambda,)):
                continue
            if isinstance(expr, ast.Call):
                self._record_call(expr, guarded, handlers)
            elif isinstance(expr, ast.Attribute) and isinstance(
                expr.ctx, (ast.Load, ast.Store)
            ):
                self._record_attr(expr, guarded)
            elif isinstance(expr, ast.Name) and expr.id == "_np":
                self.summary.numpy_uses.append(
                    NumpyUse(lineno=expr.lineno, col=expr.col_offset, guarded=guarded)
                )

    def _classify_arg(self, slot: str, value: ast.expr) -> ArgInfo:
        if isinstance(value, ast.Lambda):
            return ArgInfo(slot=slot, kind="lambda")
        if isinstance(value, ast.Starred):
            root = dotted_name(value.value)
            return ArgInfo(
                slot=slot,
                root=root,
                kind="name" if root else "other",
                starred=True,
            )
        root = dotted_name(value)
        if root is not None:
            if root in self._local_funcs:
                return ArgInfo(slot=slot, root=root, kind="localfunc")
            if root in self._local_classes:
                return ArgInfo(slot=slot, root=root, kind="localclass")
            return ArgInfo(slot=slot, root=root, kind="name")
        if isinstance(value, ast.Subscript):
            container = dotted_name(value.value)
            if container is not None:
                return ArgInfo(slot=slot, kind="subscript", container=container)
        if isinstance(value, ast.Constant):
            return ArgInfo(slot=slot, kind="literal")
        return ArgInfo(slot=slot, kind="other")

    def _record_call(
        self, call: ast.Call, guarded: bool, handlers: Tuple[str, ...]
    ) -> None:
        target = dotted_name(call.func)
        subscript_of = None
        if target is None and isinstance(call.func, ast.Subscript):
            subscript_of = dotted_name(call.func.value)
        args = [
            self._classify_arg(str(index), value)
            for index, value in enumerate(call.args)
        ]
        args.extend(
            self._classify_arg(keyword.arg, keyword.value)
            for keyword in call.keywords
            if keyword.arg is not None
        )
        site = CallSite(
            target=target,
            lineno=call.lineno,
            col=call.col_offset,
            args=args,
            subscript_of=subscript_of,
            guarded=guarded,
            handlers=list(handlers),
        )
        self.summary.calls.append(site)
        if target is not None and target.endswith(".checkpoint"):
            self.summary.checkpoints.append(
                CheckpointSite(
                    receiver=target.rsplit(".", 1)[0],
                    lineno=call.lineno,
                    guarded=guarded,
                    handlers=list(handlers),
                )
            )

    def _record_attr(self, attr: ast.Attribute, guarded: bool) -> None:
        if not (attr.attr.startswith("_") or attr.attr == "earliest_arrival"):
            return
        if attr.attr.startswith("__"):
            return
        receiver = dotted_name(attr.value)
        if receiver is None:
            return
        self.summary.attr_uses.append(
            AttrUse(
                receiver=receiver,
                attr=attr.attr,
                lineno=attr.lineno,
                col=attr.col_offset,
                guarded=guarded,
            )
        )


def _handler_names(handler: ast.ExceptHandler) -> List[str]:
    if handler.type is None:
        return ["BaseException"]
    if isinstance(handler.type, ast.Tuple):
        names = [dotted_name(element) for element in handler.type.elts]
        return [name for name in names if name is not None]
    name = dotted_name(handler.type)
    return [name] if name is not None else []


def _literal_info(value: ast.expr, lineno: int) -> Optional[LiteralInfo]:
    """A :class:`LiteralInfo` for dict/list/tuple literals holding names."""
    info = LiteralInfo(lineno=lineno)

    def record_item(item: ast.expr) -> None:
        name = dotted_name(item)
        if name is not None:
            info.values.append(name)
            return
        if isinstance(item, ast.Tuple):
            for position, element in enumerate(item.elts):
                element_name = dotted_name(element)
                if element_name is not None:
                    info.tuple_values.setdefault(str(position), []).append(
                        element_name
                    )

    if isinstance(value, ast.Dict):
        for item in value.values:
            record_item(item)
    elif isinstance(value, (ast.List, ast.Tuple, ast.Set)):
        for item in value.elts:
            record_item(item)
    else:
        return None
    if not info.values and not info.tuple_values:
        return None
    return info


def _has_optional_numpy(tree: ast.Module) -> bool:
    for node in tree.body:
        if not isinstance(node, ast.Try):
            continue
        imports_numpy = any(
            isinstance(stmt, ast.Import)
            and any(alias.name == "numpy" for alias in stmt.names)
            for stmt in node.body
        )
        if imports_numpy:
            return True
    return False


def _extract_function(
    node: ast.AST,
    qualname: str,
    sink: Dict[str, FunctionSummary],
) -> FunctionSummary:
    body = getattr(node, "body", [])
    local_funcs = tuple(
        child.name
        for child in body
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    local_classes = tuple(
        child.name for child in body if isinstance(child, ast.ClassDef)
    )
    extractor = _FunctionExtractor(node, qualname, local_funcs, local_classes)
    args = getattr(node, "args", None)
    if args is not None:
        extractor.take_params(args)
    extractor.take_docstring(node)
    extractor.walk(body)
    # Nested defs get their own summaries, qualified under this one.
    for child in body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested_name = f"{qualname}.<locals>.{child.name}"
            sink[nested_name] = _extract_function(child, nested_name, sink)
    return extractor.summary


def _lossy_init(init: ast.FunctionDef) -> bool:
    """Whether ``__init__`` keeps state its ``super().__init__`` drops.

    Heuristic matched to the exception-pickling hazard: the method both
    calls ``super().__init__`` with *fewer* arguments than it has
    non-self parameters and assigns ``self.<attr>`` for the leftovers.
    Such a type reconstructs from ``args`` alone across a pickle
    boundary and silently loses the extra attributes.
    """
    params = [a.arg for a in init.args.args[1:]] + [
        a.arg for a in init.args.kwonlyargs
    ]
    super_args: Optional[int] = None
    assigns_self = False
    for node in ast.walk(init):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name == "super.__init__":  # dotted_name can't see super()
                super_args = len(node.args)
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "__init__"
                and isinstance(node.func.value, ast.Call)
                and dotted_name(node.func.value.func) == "super"
            ):
                super_args = len(node.args)
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    assigns_self = True
    if super_args is None:
        return False
    return assigns_self and super_args < len(params)


def _extract_class(node: ast.ClassDef) -> ClassSummary:
    summary = ClassSummary(name=node.name, lineno=node.lineno)
    for decorator in node.decorator_list:
        name = dotted_name(decorator) or (
            dotted_name(decorator.func) if isinstance(decorator, ast.Call) else None
        )
        if name is not None and name.split(".")[-1] == "dataclass":
            summary.is_dataclass = True
    for base in node.bases:
        name = dotted_name(base)
        if name is not None:
            summary.bases.append(name)
    nested: Dict[str, FunctionSummary] = {}
    for child in node.body:
        if isinstance(child, ast.AnnAssign) and isinstance(child.target, ast.Name):
            summary.fields[child.target.id] = ast.dump(child.annotation)
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if child.name == "__reduce__":
                summary.has_reduce = True
            qualname = f"{node.name}.{child.name}"
            summary.methods[child.name] = _extract_function(child, qualname, nested)
            if child.name == "__init__" and isinstance(child, ast.FunctionDef):
                summary.init_params = [a.arg for a in child.args.args[1:]]
                summary.init_lossy = _lossy_init(child)
    for qualname, fn in nested.items():
        summary.methods[qualname.split(".", 1)[-1]] = fn
    return summary


def summarize_module(path: str, module_name: str) -> ModuleSummary:
    """Parse one file and extract its :class:`ModuleSummary`.

    Raises
    ------
    SyntaxError
        When the file does not parse; the driver converts this into a
        ``parse-error`` finding exactly like the per-file linter does.
    """
    parsed = parse_module(path)
    tree = parsed.tree
    summary = ModuleSummary(
        module=module_name,
        path=path,
        source_hash=_hash_source(parsed.source),
        has_optional_numpy=_has_optional_numpy(tree),
        suppressions={
            str(line): (sorted(rules) if rules is not None else None)
            for line, rules in parsed.suppressions.items()
        },
    )
    package = module_name.rsplit(".", 1)[0] if "." in module_name else module_name
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                summary.imports[local] = alias.name if alias.asname else (
                    alias.name.split(".", 1)[0]
                )
                if alias.name.startswith("repro"):
                    summary.import_modules.append(alias.name)
        elif isinstance(node, ast.ImportFrom):
            source_module = node.module or ""
            if node.level:
                base = module_name.rsplit(".", node.level)[0] if (
                    "." in module_name
                ) else package
                source_module = (
                    f"{base}.{source_module}" if source_module else base
                )
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                summary.imports[local] = f"{source_module}.{alias.name}"
            if source_module.startswith("repro"):
                summary.import_modules.append(source_module)
        elif isinstance(node, ast.Assign):
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                if name == "__all__" and isinstance(
                    node.value, (ast.List, ast.Tuple)
                ):
                    summary.exports = [
                        element.value
                        for element in node.value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    ]
                else:
                    literal = _literal_info(node.value, node.lineno)
                    if literal is not None:
                        summary.literals[name] = literal
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.functions[node.name] = _extract_function(
                node, node.name, summary.functions
            )
        elif isinstance(node, ast.ClassDef):
            summary.classes[node.name] = _extract_class(node)
    # Function-scoped imports matter for resolution too (the fallback
    # ladder and the engine import solvers lazily); fold them into the
    # module import table -- names are unique enough in practice.
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.col_offset > 0:
            source_module = node.module or ""
            if source_module.startswith("repro"):
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    summary.imports.setdefault(
                        local, f"{source_module}.{alias.name}"
                    )
                summary.import_modules.append(source_module)
    summary.import_modules = sorted(set(summary.import_modules))
    return summary
