"""Project-wide symbol resolution and conservative call graph.

Nodes are ``"module:qualname"`` strings (``repro.experiments.runner:timed``,
``repro.incremental.msta:IncrementalMSTa.advance``,
``repro.experiments.msta_tables:_runtime_rows.<locals>.runtime_cell``).
Edges carry the metadata the interprocedural rules key off: whether the
call site passes a budget alias, whether it is dominated by a backend
guard, and which exception handlers enclose it.

Beyond direct calls the builder resolves:

* imports (including package re-exports chased through ``__init__``
  import tables) and method calls on ``self``, on constructed locals
  (``with ParallelExecutor(...) as executor``), on annotated
  parameters, and on typed ``self.<attr>`` instance state;
* registry dispatch -- ``NAME[key](...)`` and ``runner = D.get(k);
  runner(...)`` expand to every function referenced in the literal
  container ``NAME``, wherever it is defined;
* **trampolines** -- functions that call a parameter (``timed``,
  ``timed_best_of``) or iterate a parameter of ``(label, fn)`` tuples
  and call the bound element.  Trampoline positions propagate through
  forwarding (a function that passes its own parameter into a known
  trampoline's callable slot is itself a trampoline), and each call
  into a trampoline synthesizes ``caller -> callable`` edges with the
  *call site's* budget/guard/handler metadata -- which is exactly what
  REP201 needs to see a budget dropped at ``timed_best_of(rounds,
  solver, ...)``;
* ``<budget-alias>.cell(key, fn)`` -- the ExperimentContext cell
  protocol; the synthesized edge to ``fn`` is budget-passing by
  contract;
* ``<budget-alias>.checkpoint()`` -- an edge into
  ``Budget.checkpoint`` when the class is in the analyzed set.

Everything here consumes only :class:`ModuleSummary` data, never an
AST, so a graph built from cached summaries is identical to one built
from a fresh parse.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.project.symbols import (
    ArgInfo,
    BUDGET_PARAM_NAMES,
    CallSite,
    ClassSummary,
    FunctionSummary,
    LiteralInfo,
    ModuleSummary,
)

#: Annotation ids that are typing machinery, not project classes.
_TYPING_NAMES = frozenset(
    {
        "Optional", "List", "Dict", "Tuple", "Set", "FrozenSet", "Union",
        "Sequence", "Iterable", "Iterator", "Callable", "Any", "Mapping",
        "MutableMapping", "Type", "str", "int", "float", "bool", "bytes",
        "None", "object", "TYPE_CHECKING",
    }
)

_ANNOTATION_ID_RE = re.compile(r"id='([A-Za-z_][A-Za-z0-9_]*)'")

#: Resolution kinds returned by :meth:`ProjectGraph.resolve_value`.
FUNCTION = "function"
CLASS = "class"
MODULE = "module"
LITERAL = "literal"

Resolution = Tuple[str, str]  # (kind, payload)


@dataclass(frozen=True)
class Edge:
    """One (possibly synthesized) call edge."""

    caller: str
    callee: str
    lineno: int
    col: int
    passes_budget: bool
    guarded: bool
    handlers: Tuple[str, ...]
    synthesized: bool = False


@dataclass
class FunctionEntry:
    """A function node plus its owning module/class context."""

    node: str
    module: ModuleSummary
    summary: FunctionSummary
    cls: Optional[ClassSummary] = None


@dataclass
class ProjectGraph:
    """The whole-program view the interprocedural rules consume."""

    summaries: Dict[str, ModuleSummary]
    functions: Dict[str, FunctionEntry] = field(default_factory=dict)
    classes: Dict[str, Tuple[ModuleSummary, ClassSummary]] = field(
        default_factory=dict
    )
    edges: List[Edge] = field(default_factory=list)
    out_edges: Dict[str, List[Edge]] = field(default_factory=dict)
    in_edges: Dict[str, List[Edge]] = field(default_factory=dict)
    #: node -> set of (param_index, tuple_slot-or-None) callable positions
    trampolines: Dict[str, Set[Tuple[int, Optional[int]]]] = field(
        default_factory=dict
    )

    # ------------------------------------------------------------------
    # Flattening
    # ------------------------------------------------------------------
    def _index(self) -> None:
        for mod in self.summaries.values():
            for fn in mod.functions.values():
                node = f"{mod.module}:{fn.qualname}"
                self.functions[node] = FunctionEntry(node, mod, fn)
            for cls in mod.classes.values():
                self.classes[f"{mod.module}:{cls.name}"] = (mod, cls)
                for fn in cls.methods.values():
                    node = f"{mod.module}:{fn.qualname}"
                    self.functions[node] = FunctionEntry(node, mod, fn, cls)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_global(self, dotted: str, depth: int = 0) -> Optional[Resolution]:
        """Resolve a fully-qualified dotted name across the project."""
        if depth > 12:
            return None
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.summaries:
                return self._resolve_in_module(
                    self.summaries[prefix], parts[cut:], depth
                )
        return None

    def _resolve_in_module(
        self, mod: ModuleSummary, rest: Sequence[str], depth: int
    ) -> Optional[Resolution]:
        if not rest:
            return (MODULE, mod.module)
        head = rest[0]
        if head in mod.functions and len(rest) == 1:
            return (FUNCTION, f"{mod.module}:{head}")
        if head in mod.classes:
            cls = mod.classes[head]
            if len(rest) == 1:
                return (CLASS, f"{mod.module}:{head}")
            if len(rest) == 2:
                return self._method_on(f"{mod.module}:{head}", rest[1])
            return None
        if head in mod.literals and len(rest) == 1:
            return (LITERAL, f"{mod.module}:{head}")
        if head in mod.imports:
            target = ".".join([mod.imports[head]] + list(rest[1:]))
            return self.resolve_global(target, depth + 1)
        return None

    def _method_on(self, class_node: str, method: str) -> Optional[Resolution]:
        seen: Set[str] = set()
        queue = [class_node]
        while queue:
            current = queue.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            mod, cls = self.classes[current]
            if method in cls.methods:
                return (FUNCTION, f"{mod.module}:{cls.methods[method].qualname}")
            for base in cls.bases:
                resolved = self.resolve_value(mod, None, None, base)
                for kind, payload in resolved:
                    if kind == CLASS:
                        queue.append(payload)
        return None

    def _class_named(self, name: str) -> Optional[str]:
        """A project class by bare name (deterministic: sorted modules)."""
        for module in sorted(self.summaries):
            if name in self.summaries[module].classes:
                return f"{module}:{name}"
        return None

    def annotation_classes(
        self, mod: ModuleSummary, annotation: str
    ) -> List[str]:
        """Project class nodes named inside an annotation dump string."""
        nodes = []
        for ident in _ANNOTATION_ID_RE.findall(annotation):
            if ident in _TYPING_NAMES:
                continue
            resolved = self.resolve_value(mod, None, None, ident)
            for kind, payload in resolved:
                if kind == CLASS and payload not in nodes:
                    nodes.append(payload)
        return nodes

    def resolve_value(
        self,
        mod: ModuleSummary,
        fn: Optional[FunctionSummary],
        cls: Optional[ClassSummary],
        dotted: str,
        depth: int = 0,
    ) -> List[Resolution]:
        """Resolve a dotted value expression in a function's scope.

        Returns a (possibly empty) candidate list; registry-dict locals
        expand to every function the container references.
        """
        if depth > 12 or not dotted:
            return []
        parts = dotted.split(".")
        head = parts[0]
        rest = parts[1:]
        if head == "self" and cls is not None:
            return self._resolve_self(mod, cls, rest, depth)
        if fn is not None:
            nested = f"{fn.qualname}.<locals>.{head}"
            if f"{mod.module}:{nested}" in self.functions and not rest:
                return [(FUNCTION, f"{mod.module}:{nested}")]
            if head in fn.locals:
                resolved = self._resolve_local(mod, fn, cls, head, rest, depth)
                if resolved:
                    return resolved
            if head in fn.literals and not rest:
                return [(LITERAL, f"{mod.module}:<{fn.qualname}>.{head}")]
            if head in fn.annotations and rest:
                for class_node in self.annotation_classes(
                    mod, fn.annotations[head]
                ):
                    if len(rest) == 1:
                        method = self._method_on(class_node, rest[0])
                        if method is not None:
                            return [method]
        single = self._resolve_in_module(mod, parts, depth)
        return [single] if single is not None else []

    def _resolve_self(
        self,
        mod: ModuleSummary,
        cls: ClassSummary,
        rest: Sequence[str],
        depth: int,
    ) -> List[Resolution]:
        if not rest:
            return []
        if len(rest) == 1:
            method = self._method_on(f"{mod.module}:{cls.name}", rest[0])
            return [method] if method is not None else []
        # ``self.<attr>.<method>`` through typed instance state.
        class_node = self.self_attr_class(mod, cls, rest[0])
        if class_node is not None and len(rest) == 2:
            method = self._method_on(class_node, rest[1])
            return [method] if method is not None else []
        return []

    def self_attr_class(
        self, mod: ModuleSummary, cls: ClassSummary, attr: str
    ) -> Optional[str]:
        """The class of ``self.<attr>``, from ``__init__`` or annotations."""
        init = cls.methods.get("__init__")
        if init is not None:
            value = init.locals.get(f"self.{attr}")
            if value is not None and value.target:
                if value.kind == "columnar":
                    return self._class_named("ColumnarEdgeStore")
                resolved = self.resolve_value(mod, init, cls, value.target)
                for kind, payload in resolved:
                    if kind == CLASS:
                        return payload
                # ``self._x = Budget.per_task(...)``: the head class.
                head = value.target.split(".")[0]
                for kind, payload in self.resolve_value(mod, None, None, head):
                    if kind == CLASS:
                        return payload
        if attr in cls.fields:
            nodes = self.annotation_classes(mod, cls.fields[attr])
            if nodes:
                return nodes[0]
        return None

    def _resolve_local(
        self,
        mod: ModuleSummary,
        fn: FunctionSummary,
        cls: Optional[ClassSummary],
        head: str,
        rest: Sequence[str],
        depth: int,
    ) -> List[Resolution]:
        value = fn.locals[head]
        if value.kind == "alias" and value.target:
            return self.resolve_value(
                mod, fn, cls, ".".join([value.target] + list(rest)), depth + 1
            )
        if value.kind == "partial" and value.target and not rest:
            return self.resolve_value(mod, fn, cls, value.target, depth + 1)
        if value.kind == "subscript" and value.container and not rest:
            return self.literal_resolutions(mod, fn, cls, value.container, None)
        if value.kind == "columnar":
            store = self._class_named("ColumnarEdgeStore")
            if store is None:
                return []
            if not rest:
                return [(CLASS, store)]
            if len(rest) == 1:
                method = self._method_on(store, rest[0])
                return [method] if method is not None else []
            return []
        if value.kind == "constructed" and value.target:
            resolved = self.resolve_value(mod, fn, cls, value.target, depth + 1)
            instance_class = None
            for kind, payload in resolved:
                if kind == CLASS:
                    instance_class = payload
                    break
            if instance_class is None and "." in value.target:
                # ``Budget.per_task(...)`` -- classmethod constructors.
                for kind, payload in self.resolve_value(
                    mod, fn, cls, value.target.split(".")[0], depth + 1
                ):
                    if kind == CLASS:
                        instance_class = payload
                        break
            if instance_class is not None:
                if not rest:
                    return [(CLASS, instance_class)]
                if len(rest) == 1:
                    method = self._method_on(instance_class, rest[0])
                    return [method] if method is not None else []
        return []

    # ------------------------------------------------------------------
    # Literal containers
    # ------------------------------------------------------------------
    def _find_literal(
        self,
        mod: ModuleSummary,
        fn: Optional[FunctionSummary],
        container: str,
    ) -> Optional[Tuple[ModuleSummary, Optional[FunctionSummary], LiteralInfo]]:
        if fn is not None and container in fn.literals:
            return (mod, fn, fn.literals[container])
        if container in mod.literals:
            return (mod, None, mod.literals[container])
        if container in mod.imports:
            resolved = self.resolve_global(mod.imports[container])
            if resolved is not None and resolved[0] == LITERAL:
                owner_name, literal_name = resolved[1].split(":", 1)
                owner = self.summaries[owner_name]
                return (owner, None, owner.literals[literal_name])
        return None

    def literal_resolutions(
        self,
        mod: ModuleSummary,
        fn: Optional[FunctionSummary],
        cls: Optional[ClassSummary],
        container: str,
        tuple_slot: Optional[int],
    ) -> List[Resolution]:
        """Everything a literal container's values resolve to.

        ``tuple_slot`` selects one position of tuple-shaped items (the
        ``for _name, solver in ALGORITHMS`` pattern); ``None`` takes the
        flat value list, which for dicts of ``(fn, extra)`` tuples also
        includes every tuple element (``SOLVERS[name]`` destructured
        later is beyond static reach, so be conservative and take all).
        """
        found = self._find_literal(mod, fn, container)
        if found is None:
            return []
        owner_mod, owner_fn, literal = found
        if tuple_slot is not None:
            names = list(literal.tuple_values.get(str(tuple_slot), []))
        else:
            names = list(literal.values)
            for values in literal.tuple_values.values():
                names.extend(values)
        out: List[Resolution] = []
        for name in names:
            for resolution in self.resolve_value(owner_mod, owner_fn, None, name):
                if resolution not in out:
                    out.append(resolution)
        return out

    def literal_functions(
        self,
        mod: ModuleSummary,
        fn: Optional[FunctionSummary],
        container: str,
        tuple_slot: Optional[int],
    ) -> List[str]:
        return [
            payload
            for kind, payload in self.literal_resolutions(
                mod, fn, None, container, tuple_slot
            )
            if kind == FUNCTION
        ]

    # ------------------------------------------------------------------
    # Budget metadata
    # ------------------------------------------------------------------
    @staticmethod
    def site_passes_budget(fn: FunctionSummary, site: CallSite) -> bool:
        """Whether a call site hands a budget to its callee."""
        for arg in site.args:
            if arg.root is not None and fn.is_budget_name(arg.root):
                return True
            if arg.slot in BUDGET_PARAM_NAMES and arg.kind == "other":
                # ``budget=Budget.per_task(...)`` style inline provisioning.
                return True
        return False

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def _add_edge(self, edge: Edge) -> None:
        self.edges.append(edge)
        self.out_edges.setdefault(edge.caller, []).append(edge)
        self.in_edges.setdefault(edge.callee, []).append(edge)

    def _direct_targets(
        self, entry: FunctionEntry, site: CallSite
    ) -> List[str]:
        """Function nodes a call site resolves to without trampolining."""
        mod, fn, cls = entry.module, entry.summary, entry.cls
        targets: List[str] = []
        if site.subscript_of is not None:
            targets.extend(
                self.literal_functions(mod, fn, site.subscript_of, None)
            )
            return targets
        if site.target is None:
            return targets
        head = site.target.split(".")[0]
        if head in fn.for_bindings and site.target == head:
            binding = fn.for_bindings[head]
            if binding.iterable not in fn.params:
                targets.extend(
                    self.literal_functions(
                        mod, fn, binding.iterable, binding.position
                    )
                )
            return targets
        if site.target in fn.params:
            return targets  # trampoline seed, no static target
        for kind, payload in self.resolve_value(mod, fn, cls, site.target):
            if kind == FUNCTION and payload not in targets:
                targets.append(payload)
        return targets

    def _param_index(self, fn: FunctionSummary, name: str) -> Optional[int]:
        try:
            return fn.params.index(name)
        except ValueError:
            return None

    def _arg_for_param(
        self, callee: FunctionSummary, site: CallSite, index: int
    ) -> Optional[ArgInfo]:
        """The site argument feeding the callee's ``index``-th parameter.

        For bound-method calls through an attribute receiver the
        positional slots shift by one (``self``); trampolines in this
        codebase are module-level functions, so plain positional
        mapping plus keyword names is sufficient.
        """
        slot = str(index)
        name = callee.params[index] if index < len(callee.params) else None
        for arg in site.args:
            if arg.slot == slot or (name is not None and arg.slot == name):
                return arg
        return None

    def _seed_trampolines(self) -> None:
        for entry in self.functions.values():
            fn = entry.summary
            for site in fn.calls:
                if site.target is None or "." in site.target:
                    continue
                name = site.target
                index = self._param_index(fn, name)
                if index is not None:
                    self.trampolines.setdefault(entry.node, set()).add(
                        (index, None)
                    )
                    continue
                binding = fn.for_bindings.get(name)
                if binding is not None and binding.iterable in fn.params:
                    param_index = self._param_index(fn, binding.iterable)
                    if param_index is not None:
                        self.trampolines.setdefault(entry.node, set()).add(
                            (param_index, binding.position)
                        )

    def _propagate_trampolines(
        self, resolved: Dict[Tuple[str, int], List[str]]
    ) -> None:
        changed = True
        while changed:
            changed = False
            for entry in self.functions.values():
                fn = entry.summary
                for site_index, site in enumerate(fn.calls):
                    for callee_node in resolved.get((entry.node, site_index), []):
                        callee = self.functions.get(callee_node)
                        if callee is None:
                            continue
                        for index, slot in self.trampolines.get(
                            callee_node, ()
                        ):
                            arg = self._arg_for_param(
                                callee.summary, site, index
                            )
                            if arg is None or arg.root is None:
                                continue
                            position: Optional[Tuple[int, Optional[int]]] = None
                            param_index = self._param_index(fn, arg.root)
                            if param_index is not None:
                                position = (param_index, slot)
                            else:
                                binding = fn.for_bindings.get(arg.root)
                                if (
                                    binding is not None
                                    and slot is None
                                    and binding.iterable in fn.params
                                ):
                                    iter_index = self._param_index(
                                        fn, binding.iterable
                                    )
                                    if iter_index is not None:
                                        position = (
                                            iter_index,
                                            binding.position,
                                        )
                            if position is not None and position not in (
                                self.trampolines.get(entry.node, set())
                            ):
                                self.trampolines.setdefault(
                                    entry.node, set()
                                ).add(position)
                                changed = True

    def _callable_candidates(
        self,
        entry: FunctionEntry,
        arg: ArgInfo,
        tuple_slot: Optional[int],
    ) -> List[str]:
        """Function nodes a callable-position argument can stand for."""
        mod, fn, cls = entry.module, entry.summary, entry.cls
        if arg.kind == "lambda":
            return []
        if arg.kind == "subscript" and arg.container is not None:
            return self.literal_functions(mod, fn, arg.container, tuple_slot)
        if arg.root is None:
            return []
        root = arg.root
        binding = fn.for_bindings.get(root)
        if binding is not None:
            if binding.iterable in fn.params:
                return []  # covered by trampoline propagation
            return self.literal_functions(
                mod, fn, binding.iterable, binding.position
            )
        if tuple_slot is not None:
            # The argument is a container of tuples; take the slot.
            return self.literal_functions(mod, fn, root, tuple_slot)
        if root in fn.params:
            return []
        return [
            payload
            for kind, payload in self.resolve_value(mod, fn, cls, root)
            if kind == FUNCTION
        ]

    def build(self) -> None:
        """Index, resolve, propagate trampolines, and materialize edges."""
        self._index()
        resolved: Dict[Tuple[str, int], List[str]] = {}
        for entry in self.functions.values():
            for site_index, site in enumerate(entry.summary.calls):
                resolved[(entry.node, site_index)] = self._direct_targets(
                    entry, site
                )
        self._seed_trampolines()
        self._propagate_trampolines(resolved)
        budget_checkpoint = None
        budget_class = self._class_named("Budget")
        if budget_class is not None:
            method = self._method_on(budget_class, "checkpoint")
            if method is not None:
                budget_checkpoint = method[1]
        for entry in self.functions.values():
            fn = entry.summary
            for site_index, site in enumerate(fn.calls):
                passes = self.site_passes_budget(fn, site)
                handlers = tuple(site.handlers)
                for target in resolved[(entry.node, site_index)]:
                    self._add_edge(
                        Edge(
                            caller=entry.node,
                            callee=target,
                            lineno=site.lineno,
                            col=site.col,
                            passes_budget=passes,
                            guarded=site.guarded,
                            handlers=handlers,
                        )
                    )
                    for index, slot in self.trampolines.get(target, ()):
                        callee = self.functions.get(target)
                        if callee is None:
                            continue
                        arg = self._arg_for_param(callee.summary, site, index)
                        if arg is None:
                            continue
                        for candidate in self._callable_candidates(
                            entry, arg, slot
                        ):
                            self._add_edge(
                                Edge(
                                    caller=entry.node,
                                    callee=candidate,
                                    lineno=site.lineno,
                                    col=site.col,
                                    passes_budget=passes,
                                    guarded=site.guarded,
                                    handlers=handlers,
                                    synthesized=True,
                                )
                            )
                # The ExperimentContext cell protocol: ``ctx.cell(key,
                # fn)`` runs ``fn(budget)`` under the context's budget.
                if (
                    site.target is not None
                    and site.target.endswith(".cell")
                    and fn.is_budget_name(site.target.rsplit(".", 1)[0])
                ):
                    arg = None
                    for candidate_arg in site.args:
                        if candidate_arg.slot == "1":
                            arg = candidate_arg
                    if arg is not None:
                        for candidate in self._callable_candidates(
                            entry, arg, None
                        ):
                            self._add_edge(
                                Edge(
                                    caller=entry.node,
                                    callee=candidate,
                                    lineno=site.lineno,
                                    col=site.col,
                                    passes_budget=True,
                                    guarded=site.guarded,
                                    handlers=handlers,
                                    synthesized=True,
                                )
                            )
            if budget_checkpoint is not None:
                for checkpoint in fn.checkpoints:
                    if fn.is_budget_name(checkpoint.receiver):
                        self._add_edge(
                            Edge(
                                caller=entry.node,
                                callee=budget_checkpoint,
                                lineno=checkpoint.lineno,
                                col=0,
                                passes_budget=True,
                                guarded=checkpoint.guarded,
                                handlers=tuple(checkpoint.handlers),
                                synthesized=True,
                            )
                        )

    # ------------------------------------------------------------------
    # Entry points and reachability
    # ------------------------------------------------------------------
    def entry_nodes(self) -> List[str]:
        """CLI/experiment/worker entry points, sorted for determinism."""
        entries = []
        for node, entry in self.functions.items():
            if entry.cls is not None:
                continue
            name = entry.summary.qualname
            if "." in name:
                continue
            module = entry.module.module
            if module == "repro.cli" and (
                name == "main" or name.startswith("_cmd")
            ):
                entries.append(node)
            elif module.startswith("repro.experiments") and (
                name == "run" or name.startswith("run_")
            ):
                entries.append(node)
            elif module == "repro.parallel.tasks" and name == "run_cell_task":
                entries.append(node)
            elif module == "repro.parallel.batch" and name in (
                "run_batch",
                "run_sweep_cell",
                "run_sweep_serial",
            ):
                entries.append(node)
        return sorted(entries)

    def reachable_from(self, roots: Sequence[str]) -> Set[str]:
        seen: Set[str] = set(roots)
        queue = list(roots)
        while queue:
            current = queue.pop()
            for edge in self.out_edges.get(current, ()):
                if edge.callee not in seen:
                    seen.add(edge.callee)
                    queue.append(edge.callee)
        return seen


def build_graph(summaries: Dict[str, ModuleSummary]) -> ProjectGraph:
    """Construct and build the project graph from module summaries."""
    graph = ProjectGraph(summaries=dict(summaries))
    graph.build()
    return graph
