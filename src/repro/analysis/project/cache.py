"""On-disk summary cache keyed on source hashes, SCC-aware invalidation.

The cache stores the JSON form of every :class:`ModuleSummary` next to
the sha256 of the source it was extracted from.  On a warm run,
modules whose hash is unchanged are deserialized instead of re-parsed;
modules whose hash changed are re-summarized **together with every
member of their import-graph strongly-connected component** (mutually
importing modules resolve names through each other, so a change inside
a cycle conservatively refreshes the whole cycle).

Summaries are pure data and the rules consume nothing else, so a graph
built from cached summaries is byte-identical to one built cold -- the
cache can only save time, never change a report.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.project.symbols import (
    SUMMARY_VERSION,
    ModuleSummary,
    module_from_dict,
    summarize_module,
)

#: Bump when the cache file layout (not the summary shape) changes.
CACHE_VERSION = 1


def _hash_file(path: str) -> Optional[str]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except (OSError, UnicodeDecodeError):
        return None
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _import_edges(
    import_modules: Iterable[str], analyzed: Set[str]
) -> List[str]:
    """Map recorded imports onto analyzed module names (longest prefix)."""
    edges = []
    for imported in import_modules:
        parts = imported.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in analyzed:
                if prefix not in edges:
                    edges.append(prefix)
                break
    return edges


def _sccs(graph: Dict[str, List[str]]) -> List[List[str]]:
    """Tarjan's strongly-connected components, iteratively."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    components: List[List[str]] = []

    for root in sorted(graph):
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            children = graph.get(node, [])
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in index:
                    work.append((node, position + 1))
                    work.append((child, 0))
                    recurse = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


@dataclass
class CacheStats:
    """How the cache behaved on one run (tests pin invalidation on this)."""

    parsed: int = 0
    reused: int = 0
    invalidated: List[str] = field(default_factory=list)


class SummaryCache:
    """Loads, applies, and rewrites the on-disk summary cache.

    ``path=None`` disables persistence entirely: every module parses
    fresh and nothing is written (the ``--no-cache`` behaviour).
    """

    def __init__(self, path: Optional[str]) -> None:
        self.path = path
        self.stats = CacheStats()
        self._entries: Dict[str, Dict[str, Any]] = {}
        if path is not None and os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    data = json.load(handle)
            except (OSError, ValueError):
                data = {}
            if (
                isinstance(data, dict)
                and data.get("version") == CACHE_VERSION
                and data.get("summary_version") == SUMMARY_VERSION
                and isinstance(data.get("modules"), dict)
            ):
                self._entries = data["modules"]

    # ------------------------------------------------------------------
    def _invalidated(
        self, files: Sequence[Tuple[str, str]], hashes: Dict[str, Optional[str]]
    ) -> Set[str]:
        analyzed = {module for _path, module in files}
        changed: Set[str] = set()
        for path, module in files:
            entry = self._entries.get(module)
            if (
                entry is None
                or entry.get("hash") != hashes[module]
                or entry.get("path") != path
            ):
                changed.add(module)
        if not changed:
            return changed
        # Import edges come from the *previous* summaries; a changed
        # module with no cache entry has no edges, which is fine -- it
        # is already in the changed set itself.
        graph: Dict[str, List[str]] = {}
        for module in analyzed:
            entry = self._entries.get(module)
            imports: Iterable[str] = ()
            if entry is not None and isinstance(entry.get("summary"), dict):
                imports = entry["summary"].get("import_modules", ())
            graph[module] = _import_edges(imports, analyzed)
        invalidated = set(changed)
        for component in _sccs(graph):
            if len(component) > 1 and any(m in changed for m in component):
                invalidated.update(component)
        return invalidated

    # ------------------------------------------------------------------
    def build(
        self, files: Sequence[Tuple[str, str]]
    ) -> Tuple[Dict[str, ModuleSummary], List[Tuple[str, SyntaxError]]]:
        """Summaries for ``(path, module_name)`` pairs, cache-assisted.

        Returns the summary map plus per-file syntax errors (those
        modules are omitted from the map and from the rewritten cache).
        """
        hashes = {module: _hash_file(path) for path, module in files}
        if self.path is None:
            invalidated = {module for _path, module in files}
        else:
            invalidated = self._invalidated(files, hashes)
        summaries: Dict[str, ModuleSummary] = {}
        errors: List[Tuple[str, SyntaxError]] = []
        for path, module in sorted(files, key=lambda item: item[1]):
            if module not in invalidated:
                entry = self._entries[module]
                summaries[module] = module_from_dict(entry["summary"])
                self.stats.reused += 1
                continue
            try:
                summaries[module] = summarize_module(path, module)
            except SyntaxError as exc:
                errors.append((path, exc))
                continue
            except (OSError, UnicodeDecodeError) as exc:
                wrapped = SyntaxError(str(exc))
                wrapped.lineno = 1
                errors.append((path, wrapped))
                continue
            self.stats.parsed += 1
            self.stats.invalidated.append(module)
        self.stats.invalidated.sort()
        if self.path is not None:
            self._write(summaries)
        return summaries, errors

    # ------------------------------------------------------------------
    def _write(self, summaries: Dict[str, ModuleSummary]) -> None:
        if self.path is None:
            return
        payload = {
            "version": CACHE_VERSION,
            "summary_version": SUMMARY_VERSION,
            "modules": {
                module: {
                    "path": summary.path,
                    "hash": summary.source_hash,
                    "summary": summary.to_dict(),
                }
                for module, summary in summaries.items()
            },
        }
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp_path = self.path + ".tmp"
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_path, self.path)
        except OSError:
            # A read-only cache directory must not fail the analysis.
            try:
                if os.path.exists(tmp_path):
                    os.remove(tmp_path)
            except OSError:
                pass
