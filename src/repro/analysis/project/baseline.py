"""Findings baseline for ratchet-style adoption of the project rules.

A baseline file is a JSON list of finding keys.  Keys deliberately
omit the line number: pre-existing findings stay suppressed across
unrelated edits that shift lines, while any *new* finding (new
message, new file, new rule) still fails the build.  The committed
baseline for this repository is empty -- every finding the pass
surfaced was fixed, not baselined -- but the mechanism is what lets a
downstream fork adopt the rules incrementally.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Tuple

from repro.analysis.core import Finding

BASELINE_VERSION = 1

BaselineKey = Tuple[str, str, str, str]  # (path, rule, code, message)


def finding_key(finding: Finding) -> BaselineKey:
    return (finding.path, finding.rule, finding.code, finding.message)


def load_baseline(path: str) -> List[BaselineKey]:
    """Read a baseline file; raises ValueError on a malformed one."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path}: not a version-{BASELINE_VERSION} baseline file")
    entries = data.get("findings", [])
    if not isinstance(entries, list):
        raise ValueError(f"{path}: 'findings' must be a list")
    keys: List[BaselineKey] = []
    for entry in entries:
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: baseline entries must be objects")
        keys.append(
            (
                str(entry.get("path", "")),
                str(entry.get("rule", "")),
                str(entry.get("code", "")),
                str(entry.get("message", "")),
            )
        )
    return keys


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Write the current findings as the new baseline."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "path": finding.path,
                "rule": finding.rule,
                "code": finding.code,
                "message": finding.message,
            }
            for finding in sorted(
                findings, key=lambda f: (f.path, f.rule, f.message)
            )
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def apply_baseline(
    findings: Sequence[Finding], baseline: Sequence[BaselineKey]
) -> List[Finding]:
    """Drop findings whose key appears in the baseline.

    Matching is by multiset: two identical pre-existing findings need
    two baseline entries, so a duplicate introduced later still trips.
    """
    budget: Dict[BaselineKey, int] = {}
    for key in baseline:
        budget[key] = budget.get(key, 0) + 1
    kept: List[Finding] = []
    for finding in findings:
        key = finding_key(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            continue
        kept.append(finding)
    return kept
