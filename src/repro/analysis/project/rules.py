"""The interprocedural rules (REP201-REP204) over the project graph.

Every rule consumes a fully-built :class:`ProjectGraph` (module
summaries + resolved call edges) and yields :class:`Finding` objects
anchored at real source locations.  Rules never read source or ASTs,
so results are identical whether summaries came from a fresh parse or
the on-disk cache.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Set, Tuple, Type

from repro.analysis.core import Finding
from repro.analysis.project.callgraph import CLASS, Edge, FunctionEntry, ProjectGraph
from repro.analysis.project.symbols import ArgInfo, CallSite
from repro.analysis.rules.budget import TARGET_MODULES

#: The module that owns the dual-backend store; its private array
#: internals stay off-limits everywhere else.
COLUMNAR_OWNER = "repro.temporal.columnar"

#: Modules that own the dual-backend ``_np`` discipline: the columnar
#: store and the batched DST solver kernels.  Inside them, numpy-only
#: helpers dereference ``_np`` behind a module-level backend dispatch
#: instead of per-function guards; everywhere else every ``_np`` use
#: must be dominated by a guard.
BACKEND_OWNERS = frozenset({COLUMNAR_OWNER, "repro.steiner.kernels"})

#: Handler names that protect a budgeted call for the REP204 contract.
_COVERING_HANDLERS = frozenset(
    {"BudgetExceededError", "ReproError", "Exception", "BaseException"}
)


def _handlers_cover(handlers: Sequence[str]) -> bool:
    return any(h.split(".")[-1] in _COVERING_HANDLERS for h in handlers)


def _in_target_modules(module: str) -> bool:
    return any(
        module == target or module.startswith(target + ".")
        for target in TARGET_MODULES
    )


def _has_budget_param(entry: FunctionEntry) -> bool:
    fn = entry.summary
    return any(param in fn.budget_aliases for param in fn.params)


def _budget_capable(entry: FunctionEntry) -> bool:
    return _has_budget_param(entry) or entry.summary.provisions_budget


class ProjectRule:
    """Base class of the whole-program rules."""

    name: str = ""
    code: str = ""
    description: str = ""

    def check(self, graph: ProjectGraph) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, entry: FunctionEntry, lineno: int, col: int, message: str
    ) -> Finding:
        return Finding(
            path=entry.module.path,
            line=lineno,
            col=col,
            rule=self.name,
            code=self.code,
            message=message,
        )


class BudgetReachabilityRule(ProjectRule):
    """REP201: entry-reachable paths into solver loops must thread a Budget.

    A *sink* is a solver-grade function (one of REP101's target modules)
    that accepts a budget and -- directly or through further
    budget-forwarding calls -- checkpoints it.  Every entry-reachable
    call edge into a sink must pass a budget.  A budget-less edge is a
    finding when the caller (or some ancestor on the call path) had a
    budget to give: budgets that are *dropped* are bugs, chains that
    never carried one (micro-benchmarks, fixtures) are policy.
    Never-raise engines (the PR 5/6 degradation contract) legitimately
    fall back to unbudgeted cold solves, so a drop whose budget-capable
    ancestors are all marked ``never raises`` is exempt.
    """

    name = "budget-reachability"
    code = "REP201"
    description = (
        "entry-reachable call chains into solver-grade loops must thread "
        "a Budget; flags edges where an available budget is dropped"
    )

    def _sinks(self, graph: ProjectGraph) -> Set[str]:
        candidates = {
            node: entry
            for node, entry in graph.functions.items()
            if _in_target_modules(entry.module.module)
            and _has_budget_param(entry)
        }
        sinks: Set[str] = set()
        for node, entry in candidates.items():
            fn = entry.summary
            if any(fn.is_budget_name(cp.receiver) for cp in fn.checkpoints):
                sinks.add(node)
        changed = True
        while changed:
            changed = False
            for node, entry in candidates.items():
                if node in sinks:
                    continue
                for edge in graph.out_edges.get(node, ()):
                    if edge.callee in sinks and edge.passes_budget:
                        sinks.add(node)
                        changed = True
                        break
        return sinks

    def _capable_ancestors(
        self, graph: ProjectGraph, start: str
    ) -> List[FunctionEntry]:
        seen: Set[str] = {start}
        queue = [start]
        capable: List[FunctionEntry] = []
        while queue:
            current = queue.pop()
            for edge in graph.in_edges.get(current, ()):
                caller = edge.caller
                if caller in seen:
                    continue
                seen.add(caller)
                entry = graph.functions.get(caller)
                if entry is None:
                    continue
                if _budget_capable(entry):
                    capable.append(entry)
                else:
                    queue.append(caller)
        return capable

    def check(self, graph: ProjectGraph) -> Iterator[Finding]:
        sinks = self._sinks(graph)
        reachable = graph.reachable_from(graph.entry_nodes())
        dropped: Dict[Tuple[str, int], Tuple[FunctionEntry, Edge, Set[str]]] = {}
        for edge in graph.edges:
            if edge.callee not in sinks or edge.passes_budget:
                continue
            if edge.caller not in reachable:
                continue
            entry = graph.functions.get(edge.caller)
            if entry is None:
                continue
            key = (edge.caller, edge.lineno)
            if key in dropped:
                dropped[key][2].add(edge.callee)
            else:
                dropped[key] = (entry, edge, {edge.callee})
        for (caller, lineno) in sorted(dropped):
            entry, edge, callees = dropped[(caller, lineno)]
            fn = entry.summary
            if _budget_capable(entry):
                if fn.never_raises:
                    continue
                origin = f"a budget is in scope in {caller}"
            else:
                ancestors = self._capable_ancestors(graph, caller)
                if not ancestors:
                    continue  # nothing to drop: the whole chain is unbudgeted
                if all(a.summary.never_raises for a in ancestors):
                    continue  # deliberate never-raise cold fallback
                names = sorted(a.node for a in ancestors)
                origin = f"the budget enters at {', '.join(names)}"
            sink_names = ", ".join(sorted(callees))
            yield self.finding(
                entry,
                lineno,
                edge.col,
                f"budget dropped on a solver-grade path: this call reaches "
                f"{sink_names} without a budget, but {origin}",
            )


class PickleSafetyRule(ProjectRule):
    """REP202: everything shipped across the process boundary must pickle.

    Surfaces: ``ParallelExecutor(...)`` initializers/initargs, the
    callables handed to ``.map``/``.unordered``, and the FaultPlan
    shipping path.  Flags lambdas and locally-defined callables at the
    surfaces, project exception types raised on the worker path whose
    ``__init__`` keeps state its ``super().__init__`` call drops (they
    reconstruct from ``args`` alone and silently lose it) unless they
    define ``__reduce__``, and weakref/IO-typed fields in the shipped
    type closure.
    """

    name = "pickle-safety"
    code = "REP202"
    description = (
        "objects shipped through repro.parallel.engine or the FaultPlan "
        "path must survive pickling faithfully"
    )

    _EXECUTOR = "ParallelExecutor"
    _UNPICKLABLE_KINDS = {
        "lambda": "a lambda",
        "localfunc": "a locally-defined function",
        "localclass": "a locally-defined class",
    }

    def _is_executor_class(self, graph: ProjectGraph, payload: str) -> bool:
        return payload.split(":", 1)[1] == self._EXECUTOR

    def _surface_args(
        self, graph: ProjectGraph, entry: FunctionEntry
    ) -> Iterator[Tuple[CallSite, ArgInfo, str]]:
        """Yield ``(site, arg, surface_label)`` for every shipping surface."""
        mod, fn, cls = entry.module, entry.summary, entry.cls
        for site in fn.calls:
            if site.target is None:
                continue
            resolutions = graph.resolve_value(mod, fn, cls, site.target)
            if any(
                kind == CLASS and self._is_executor_class(graph, payload)
                for kind, payload in resolutions
            ):
                for arg in site.args:
                    if arg.slot in ("1", "initializer"):
                        yield site, arg, "ParallelExecutor initializer"
                    elif arg.slot in ("2", "initargs"):
                        yield site, arg, "ParallelExecutor initargs"
                continue
            if "." not in site.target:
                continue
            receiver, method = site.target.rsplit(".", 1)
            if method not in ("map", "unordered"):
                continue
            receiver_types = graph.resolve_value(mod, fn, cls, receiver)
            if any(
                kind == CLASS and self._is_executor_class(graph, payload)
                for kind, payload in receiver_types
            ):
                for arg in site.args:
                    if arg.slot in ("0", "fn"):
                        yield site, arg, f"ParallelExecutor.{method} task"

    def _shipped_callables(self, graph: ProjectGraph) -> Set[str]:
        shipped: Set[str] = set()
        for entry in graph.functions.values():
            for _site, arg, _label in self._surface_args(graph, entry):
                for node in graph._callable_candidates(entry, arg, None):
                    shipped.add(node)
        return shipped

    def _class_closure(
        self, graph: ProjectGraph, seeds: Sequence[str]
    ) -> List[str]:
        seen: List[str] = []
        queue = list(seeds)
        while queue:
            node = queue.pop(0)
            if node in seen or node not in graph.classes:
                continue
            seen.append(node)
            mod, cls = graph.classes[node]
            for annotation in cls.fields.values():
                for child in graph.annotation_classes(mod, annotation):
                    if child not in seen:
                        queue.append(child)
        return seen

    def check(self, graph: ProjectGraph) -> Iterator[Finding]:
        shipped = self._shipped_callables(graph)
        # 1. Unpicklable callables at the surfaces themselves.
        for entry in sorted(
            graph.functions.values(), key=lambda item: item.node
        ):
            for site, arg, label in self._surface_args(graph, entry):
                kind = arg.kind
                if kind in self._UNPICKLABLE_KINDS:
                    yield self.finding(
                        entry,
                        site.lineno,
                        site.col,
                        f"{self._UNPICKLABLE_KINDS[kind]} cannot cross the "
                        f"process boundary as the {label}; use a module-level "
                        f"function",
                    )
        # 2. Exceptions raised on the worker path must pickle faithfully.
        worker_nodes = graph.reachable_from(sorted(shipped)) | shipped
        flagged_classes: Set[str] = set()
        for node in sorted(worker_nodes):
            entry = graph.functions.get(node)
            if entry is None:
                continue
            mod, fn, cls = entry.module, entry.summary, entry.cls
            for raise_site in fn.raises:
                if raise_site.exception is None:
                    continue
                for kind, payload in graph.resolve_value(
                    mod, fn, cls, raise_site.exception
                ):
                    if kind != CLASS or payload in flagged_classes:
                        continue
                    owner_mod, owner_cls = graph.classes[payload]
                    if owner_cls.init_lossy and not owner_cls.has_reduce:
                        flagged_classes.add(payload)
                        yield Finding(
                            path=owner_mod.path,
                            line=owner_cls.lineno,
                            col=0,
                            rule=self.name,
                            code=self.code,
                            message=(
                                f"{owner_cls.name} is raised on the worker "
                                f"path but its __init__ keeps state that "
                                f"super().__init__ drops; across pickling it "
                                f"reconstructs from args alone -- define "
                                f"__reduce__"
                            ),
                        )
        # 3. Weakref/IO-typed fields in the shipped type closure.
        seeds: List[str] = []
        for node in sorted(shipped):
            entry = graph.functions.get(node)
            if entry is None:
                continue
            for annotation in entry.summary.annotations.values():
                for class_node in graph.annotation_classes(
                    entry.module, annotation
                ):
                    if class_node not in seeds:
                        seeds.append(class_node)
        for name in ("FaultSpec", "FaultPlan"):
            class_node = graph._class_named(name)
            if class_node is not None and class_node not in seeds:
                seeds.append(class_node)
        for class_node in self._class_closure(graph, seeds):
            owner_mod, owner_cls = graph.classes[class_node]
            for field_name, annotation in sorted(owner_cls.fields.items()):
                if any(
                    marker in annotation
                    for marker in (
                        "id='WeakKeyDictionary'",
                        "id='WeakValueDictionary'",
                        "id='WeakSet'",
                        "id='ref'",
                        "attr='ref'",
                        "id='IO'",
                        "id='TextIO'",
                        "id='BinaryIO'",
                    )
                ):
                    yield Finding(
                        path=owner_mod.path,
                        line=owner_cls.lineno,
                        col=0,
                        rule=self.name,
                        code=self.code,
                        message=(
                            f"{owner_cls.name}.{field_name} is weakref- or "
                            f"handle-typed but {owner_cls.name} is in the "
                            f"shipped type closure; it cannot cross the "
                            f"process boundary"
                        ),
                    )


class BackendPurityRule(ProjectRule):
    """REP203: numpy-only code outside the columnar owner must be gated.

    In optional-numpy modules (the ``try: import numpy`` pattern) every
    ``_np`` dereference must be dominated by a backend guard, either
    locally (``if _np is None: return``, ``if store.backend ==
    "numpy":``) or interprocedurally (every call edge into the function
    is guarded, or comes from a function that is itself only reachable
    in guarded contexts).  The :data:`BACKEND_OWNERS` modules -- the
    columnar store and the batched DST kernels, which *implement* the
    dual-backend dispatch -- are exempt from the ``_np`` guard
    requirement.  Outside ``repro.temporal.columnar`` no code may touch
    ``ColumnarEdgeStore``'s private arrays, and the numpy-only
    ``earliest_arrival`` kernel may only be called under a backend
    guard.
    """

    name = "backend-purity"
    code = "REP203"
    description = (
        "numpy-only APIs and ColumnarEdgeStore internals outside "
        "repro.temporal.columnar must be behind backend guards"
    )

    def _safe_contexts(self, graph: ProjectGraph) -> Set[str]:
        safe: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in graph.functions:
                if node in safe:
                    continue
                incoming = graph.in_edges.get(node, [])
                if incoming and all(
                    edge.guarded or edge.caller in safe for edge in incoming
                ):
                    safe.add(node)
                    changed = True
        return safe

    def _receiver_is_store(
        self, graph: ProjectGraph, entry: FunctionEntry, receiver: str
    ) -> bool:
        parts = receiver.split(".")
        mod, fn, cls = entry.module, entry.summary, entry.cls
        if parts[0] == "self":
            if cls is None or len(parts) < 2:
                return False
            class_node = graph.self_attr_class(mod, cls, parts[1])
            return class_node is not None and (
                class_node.split(":", 1)[1] == "ColumnarEdgeStore"
            )
        head = parts[0]
        value = fn.locals.get(head)
        if value is not None and value.kind == "columnar":
            return True
        if head in fn.annotations:
            return any(
                node.split(":", 1)[1] == "ColumnarEdgeStore"
                for node in graph.annotation_classes(mod, fn.annotations[head])
            )
        return False

    def check(self, graph: ProjectGraph) -> Iterator[Finding]:
        safe = self._safe_contexts(graph)
        seen: Set[Tuple[str, int, int]] = set()
        for node in sorted(graph.functions):
            entry = graph.functions[node]
            module = entry.module.module
            fn = entry.summary
            in_scope = (
                entry.module.has_optional_numpy
                and module not in BACKEND_OWNERS
            )
            if in_scope and node not in safe:
                for use in fn.numpy_uses:
                    if use.guarded:
                        continue
                    key = (entry.module.path, use.lineno, use.col)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self.finding(
                        entry,
                        use.lineno,
                        use.col,
                        "unguarded numpy use outside the columnar owner: "
                        "gate it behind a backend check so the pure-stdlib "
                        "fallback cannot diverge",
                    )
            if module == COLUMNAR_OWNER:
                continue
            for use in fn.attr_uses:
                if not self._receiver_is_store(graph, entry, use.receiver):
                    continue
                key = (entry.module.path, use.lineno, use.col)
                if key in seen:
                    continue
                if use.attr.startswith("_"):
                    seen.add(key)
                    yield self.finding(
                        entry,
                        use.lineno,
                        use.col,
                        f"access to ColumnarEdgeStore private internals "
                        f"({use.attr}) outside the owning module; use the "
                        f"public store interface",
                    )
                elif (
                    use.attr == "earliest_arrival"
                    and not use.guarded
                    and node not in safe
                ):
                    seen.add(key)
                    yield self.finding(
                        entry,
                        use.lineno,
                        use.col,
                        "numpy-only kernel earliest_arrival called without a "
                        "backend guard; the pure backend has no such kernel",
                    )


class NeverRaiseRule(ProjectRule):
    """REP204: declared never-raise contracts must dominate raising callees.

    A function whose docstring carries the "never raises" marker may
    only hand its budget to a callee that can raise when every such
    call edge is inside a handler covering the raise.  Raise capability
    propagates through budget-passing edges from unprotected
    ``budget.checkpoint()`` sites and explicit ``BudgetExceededError``
    raises; callees that contain the raise internally (the
    ``_repair``-style try/except) and callees that are themselves
    marked never-raise do not propagate.
    """

    name = "never-raise"
    code = "REP204"
    description = (
        "functions declaring the 'never raises' contract must dominate "
        "every budgeted raising callee with a handler"
    )

    def _raise_capable(self, graph: ProjectGraph) -> Set[str]:
        capable: Set[str] = set()
        for node, entry in graph.functions.items():
            fn = entry.summary
            if fn.never_raises:
                continue
            if any(
                fn.is_budget_name(cp.receiver)
                and not _handlers_cover(cp.handlers)
                for cp in fn.checkpoints
            ):
                capable.add(node)
                continue
            if any(
                site.exception is not None
                and site.exception.split(".")[-1] == "BudgetExceededError"
                and not _handlers_cover(site.handlers)
                for site in fn.raises
            ):
                capable.add(node)
        changed = True
        while changed:
            changed = False
            for node, entry in graph.functions.items():
                if node in capable or entry.summary.never_raises:
                    continue
                for edge in graph.out_edges.get(node, ()):
                    if (
                        edge.callee in capable
                        and edge.passes_budget
                        and not _handlers_cover(edge.handlers)
                    ):
                        capable.add(node)
                        changed = True
                        break
        return capable

    def check(self, graph: ProjectGraph) -> Iterator[Finding]:
        capable = self._raise_capable(graph)
        for node in sorted(graph.functions):
            entry = graph.functions[node]
            fn = entry.summary
            if not fn.never_raises:
                continue
            for checkpoint in fn.checkpoints:
                if fn.is_budget_name(checkpoint.receiver) and not (
                    _handlers_cover(checkpoint.handlers)
                ):
                    yield self.finding(
                        entry,
                        checkpoint.lineno,
                        0,
                        f"{node} declares 'never raises' but checkpoints its "
                        f"budget outside any BudgetExceededError handler",
                    )
            reported: Set[int] = set()
            for edge in graph.out_edges.get(node, ()):
                if (
                    edge.callee in capable
                    and edge.passes_budget
                    and not _handlers_cover(edge.handlers)
                    and edge.lineno not in reported
                ):
                    reported.add(edge.lineno)
                    yield self.finding(
                        entry,
                        edge.lineno,
                        edge.col,
                        f"{node} declares 'never raises' but hands its budget "
                        f"to {edge.callee}, which can raise "
                        f"BudgetExceededError, outside any covering handler",
                    )


#: Catalogue order (code order), mirroring the per-file registry shape.
PROJECT_RULES: List[Type[ProjectRule]] = [
    BudgetReachabilityRule,
    PickleSafetyRule,
    BackendPurityRule,
    NeverRaiseRule,
]

_BY_NAME: Dict[str, Type[ProjectRule]] = {rule.name: rule for rule in PROJECT_RULES}


def default_project_rules() -> List[ProjectRule]:
    """One instance of every whole-program rule."""
    return [rule_class() for rule_class in PROJECT_RULES]


def get_project_rules(names: Sequence[str]) -> List[ProjectRule]:
    """Instances of the named project rules, or all when empty.

    Raises
    ------
    KeyError
        For a name not in the catalogue (lists the valid names).
    """
    if not names:
        return default_project_rules()
    unknown = [name for name in names if name not in _BY_NAME]
    if unknown:
        raise KeyError(
            f"unknown project rule(s) {', '.join(sorted(unknown))}; "
            f"valid names: {', '.join(sorted(_BY_NAME))}"
        )
    wanted = set(names)
    return [
        rule_class() for rule_class in PROJECT_RULES if rule_class.name in wanted
    ]
