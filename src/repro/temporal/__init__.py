"""Temporal-graph substrate: edges, graphs, windows, paths, statistics, I/O."""

from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.index import TemporalEdgeIndex
from repro.temporal.snapshots import Snapshot, activity_profile, iter_snapshots
from repro.temporal.window import TimeWindow, extract_window, middle_tenth_window
from repro.temporal.stats import GraphStatistics, compute_statistics
from repro.temporal.metrics import (
    broadcast_profile,
    information_latency,
    reachability_ratio,
    temporal_closeness,
)
from repro.temporal.paths import (
    earliest_arrival_times,
    fastest_path_durations,
    latest_departure_times,
    reachable_set,
    shortest_path_distances,
)

__all__ = [
    "GraphStatistics",
    "Snapshot",
    "TemporalEdge",
    "TemporalEdgeIndex",
    "TemporalGraph",
    "TimeWindow",
    "activity_profile",
    "broadcast_profile",
    "compute_statistics",
    "earliest_arrival_times",
    "extract_window",
    "fastest_path_durations",
    "information_latency",
    "iter_snapshots",
    "latest_departure_times",
    "middle_tenth_window",
    "reachability_ratio",
    "reachable_set",
    "shortest_path_distances",
    "temporal_closeness",
]
