"""Struct-of-arrays edge storage: the columnar temporal-graph core.

Every hot kernel before this module walked ``TemporalEdge`` objects one
at a time -- an attribute access plus a Python-level comparison per
edge.  :class:`ColumnarEdgeStore` keeps the same edges as five parallel
columns (``sources``/``targets`` as interned integer ids, ``starts``/
``arrivals``/``weights`` as floats) together with two permutations of
the insertion positions -- one sorted by ``(start, arrival, position)``,
one by ``(arrival, start, position)`` -- and the rank arrays mapping
between the orders.  Window extraction, sliding-window deltas, the
earliest-arrival sweep, and the Section 4.2 transformation then run as
batched passes over these arrays.

Backends
--------
With numpy importable the columns are ``float64``/``int64`` ndarrays
and queries use ``searchsorted``/boolean masks.  Without numpy -- or
with ``REPRO_FORCE_PURE=1`` in the environment -- the columns fall back
to stdlib ``array('d')``/``array('q')`` buffers queried with
:mod:`bisect`, so the package keeps working (slower, byte-identical
output; the equivalence is property-tested).  Tests can pin a backend
for new stores with :func:`force_backend`, which takes precedence over
the environment.

Stores are derived, immutable state: a :class:`TemporalGraph` builds
one lazily (``graph.columnar()``) and rebuilds it when the active
backend changes.  Every build gets a fresh ``generation`` number from a
process-wide counter; consumers that cache structures derived from a
store (:func:`repro.temporal.index.edge_index_for`) key their cache on
it so a rebuild can never serve stale derived state.

The sorted views handed out by the accessor methods
(:meth:`ColumnarEdgeStore.sorted_starts` and friends) are the *cached*
arrays, not copies -- mutating one corrupts every later query.  The
REP102 ``cache-mutation`` lint rule holds callers to that, exactly as
it does for the ``TemporalGraph`` adjacency accessors.
"""

from __future__ import annotations

import itertools
import os
import threading
from array import array
from bisect import bisect_left, bisect_right
from contextlib import contextmanager
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.temporal.edge import TemporalEdge, Vertex, make_edge

#: Environment switch: a truthy value forces the pure-Python backend
#: even when numpy is importable (the CI fallback matrix leg).
FORCE_PURE_ENV = "REPRO_FORCE_PURE"

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

_BACKEND_LOCK = threading.Lock()
_BACKEND_OVERRIDE: Optional[str] = None

#: Process-wide monotone store generations; never reused, so a cache
#: keyed on a generation can only ever miss after a rebuild.
_GENERATIONS = itertools.count(1)

#: Arrival-chunk size of the vectorised earliest-arrival sweep: large
#: enough to amortise per-chunk numpy overhead, small enough that the
#: within-chunk fixpoint re-scan stays cheap.
EA_CHUNK = 4096


def numpy_available() -> bool:
    """Whether the numpy backend can be selected at all."""
    return _np is not None


def active_backend() -> str:
    """The backend new stores are built with: ``"numpy"`` or ``"pure"``.

    Precedence: :func:`force_backend` override, then the
    ``REPRO_FORCE_PURE`` environment variable, then numpy availability.
    """
    override = _BACKEND_OVERRIDE
    if override is not None:
        return override
    if os.environ.get(FORCE_PURE_ENV, "").strip() not in ("", "0"):
        return "pure"
    return "numpy" if _np is not None else "pure"


@contextmanager
def force_backend(backend: str) -> Iterator[None]:
    """Pin the backend for stores built inside the ``with`` block.

    ``backend`` is ``"numpy"`` or ``"pure"``; requesting numpy when it
    is not importable raises.  Overrides the environment variable --
    the identity property suite uses this to build both cores in one
    process regardless of which CI matrix leg is running.  Graphs whose
    store was built under a different backend rebuild on next access
    (a new generation), which is exactly the invalidation path the
    shared edge-index cache is tested against.
    """
    global _BACKEND_OVERRIDE
    if backend not in ("numpy", "pure"):
        raise ValueError(f"unknown columnar backend {backend!r}")
    if backend == "numpy" and _np is None:
        raise RuntimeError("numpy backend requested but numpy is not importable")
    with _BACKEND_LOCK:
        previous = _BACKEND_OVERRIDE
        _BACKEND_OVERRIDE = backend
    try:
        yield
    finally:
        with _BACKEND_LOCK:
            _BACKEND_OVERRIDE = previous


class ColumnarEdgeStore:
    """Immutable struct-of-arrays view of one edge tuple.

    Parameters
    ----------
    edges:
        The graph's edge tuple in insertion order.  The store keeps a
        reference (for materialising ``TemporalEdge`` objects back out)
        but never copies or mutates it.
    vertices:
        Optional extra vertices (isolated ones) interned after the edge
        endpoints.

    Vertex labels are interned to dense ids in first-occurrence order
    (edge sources/targets in insertion order, then the extras), so two
    stores built from the same graph -- whatever their backend -- agree
    on every id, which keeps cross-backend outputs identical.
    """

    __slots__ = (
        "backend",
        "generation",
        "edges",
        "vertex_labels",
        "vertex_ids",
        "starts_are_float",
        "arrivals_are_float",
        "weights_are_float",
        "sources",
        "targets",
        "starts",
        "arrivals",
        "weights",
        "_start_order",
        "_arrival_order",
        "_starts_sorted",
        "_arrivals_sorted",
        "_arrival_by_start",
        "_start_by_arrival",
        "_start_rank",
    )

    def __init__(
        self,
        edges: Sequence[TemporalEdge],
        vertices: Optional[Iterable[Vertex]] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.backend = backend if backend is not None else active_backend()
        if self.backend not in ("numpy", "pure"):
            raise ValueError(f"unknown columnar backend {self.backend!r}")
        if self.backend == "numpy" and _np is None:
            raise RuntimeError("numpy backend requested but numpy is not importable")
        self.generation = next(_GENERATIONS)
        self.edges: Tuple[TemporalEdge, ...] = tuple(edges)

        ids: Dict[Vertex, int] = {}
        src_ids: List[int] = []
        dst_ids: List[int] = []
        starts: List[float] = []
        arrivals: List[float] = []
        weights: List[float] = []
        for e in self.edges:
            u = ids.get(e.source)
            if u is None:
                u = len(ids)
                ids[e.source] = u
            v = ids.get(e.target)
            if v is None:
                v = len(ids)
                ids[e.target] = v
            src_ids.append(u)
            dst_ids.append(v)
            starts.append(e.start)
            arrivals.append(e.arrival)
            weights.append(e.weight)
        if vertices is not None:
            for label in vertices:
                if label not in ids:
                    ids[label] = len(ids)
        self.vertex_ids: Dict[Vertex, int] = ids
        self.vertex_labels: List[Vertex] = list(ids)
        # Whether the float64 columns are *exact* stand-ins for the edge
        # objects' Python values (same value, same type).  Consumers
        # that must reproduce object-identical outputs (the Section 4.2
        # transformation) may read values straight off the columns when
        # the flag is set, and fall back to the edge objects when a
        # graph carries int (or other numeric) timestamps or weights.
        self.starts_are_float = all(type(s) is float for s in starts)
        self.arrivals_are_float = all(type(a) is float for a in arrivals)
        self.weights_are_float = all(type(w) is float for w in weights)

        if self.backend == "numpy":
            self._build_numpy(src_ids, dst_ids, starts, arrivals, weights)
        else:
            self._build_pure(src_ids, dst_ids, starts, arrivals, weights)

    # ------------------------------------------------------------------
    # Construction per backend
    # ------------------------------------------------------------------
    def _build_numpy(self, src, dst, starts, arrivals, weights) -> None:
        np = _np
        self.sources = np.asarray(src, dtype=np.int64)
        self.targets = np.asarray(dst, dtype=np.int64)
        self.starts = np.asarray(starts, dtype=np.float64)
        self.arrivals = np.asarray(arrivals, dtype=np.float64)
        self.weights = np.asarray(weights, dtype=np.float64)
        # lexsort is stable, so full (start, arrival) ties keep the
        # insertion position as the final key -- the exact order the
        # object core's stable sorts produce.
        self._start_order = np.lexsort((self.arrivals, self.starts))
        self._arrival_order = np.lexsort((self.starts, self.arrivals))
        self._starts_sorted = self.starts[self._start_order]
        self._arrivals_sorted = self.arrivals[self._arrival_order]
        self._arrival_by_start = self.arrivals[self._start_order]
        self._start_by_arrival = self.starts[self._arrival_order]
        rank = np.empty(len(self.edges), dtype=np.int64)
        rank[self._start_order] = np.arange(len(self.edges), dtype=np.int64)
        self._start_rank = rank

    def _build_pure(self, src, dst, starts, arrivals, weights) -> None:
        self.sources = array("q", src)
        self.targets = array("q", dst)
        self.starts = array("d", starts)
        self.arrivals = array("d", arrivals)
        self.weights = array("d", weights)
        m = len(self.edges)
        start_order = sorted(range(m), key=lambda p: (starts[p], arrivals[p], p))
        arrival_order = sorted(range(m), key=lambda p: (arrivals[p], starts[p], p))
        self._start_order = array("q", start_order)
        self._arrival_order = array("q", arrival_order)
        self._starts_sorted = array("d", (starts[p] for p in start_order))
        self._arrivals_sorted = array("d", (arrivals[p] for p in arrival_order))
        self._arrival_by_start = array("d", (arrivals[p] for p in start_order))
        self._start_by_arrival = array("d", (starts[p] for p in arrival_order))
        rank = array("q", bytes(8 * m)) if m else array("q")
        for r, p in enumerate(start_order):
            rank[p] = r
        self._start_rank = rank

    # ------------------------------------------------------------------
    # Shared-view accessors (REP102-protected: never mutate the result)
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def num_vertices(self) -> int:
        return len(self.vertex_labels)

    def sorted_starts(self):
        """Start times in ``(start, arrival, position)`` order (shared)."""
        return self._starts_sorted

    def sorted_arrivals(self):
        """Arrival times in ``(arrival, start, position)`` order (shared)."""
        return self._arrivals_sorted

    def positions_by_start(self):
        """Insertion positions in ``(start, arrival, position)`` order."""
        return self._start_order

    def positions_by_arrival(self):
        """Insertion positions in ``(arrival, start, position)`` order."""
        return self._arrival_order

    def arrivals_by_start_order(self):
        """Arrival column permuted into start order (shared view)."""
        return self._arrival_by_start

    def starts_by_arrival_order(self):
        """Start column permuted into arrival order (shared view)."""
        return self._start_by_arrival

    def start_ranks(self):
        """Per-position rank within the start order (shared view)."""
        return self._start_rank

    # ------------------------------------------------------------------
    # Batched queries
    # ------------------------------------------------------------------
    def start_bounds(self, t_alpha: float, t_omega: float) -> Tuple[int, int]:
        """``[lo, hi)`` into the start order with ``t_alpha <= start <= t_omega``."""
        if self.backend == "numpy":
            lo = int(_np.searchsorted(self._starts_sorted, t_alpha, side="left"))
            hi = int(_np.searchsorted(self._starts_sorted, t_omega, side="right"))
        else:
            lo = bisect_left(self._starts_sorted, t_alpha)
            hi = bisect_right(self._starts_sorted, t_omega)
        return lo, hi

    def window_positions(self, t_alpha: float, t_omega: float):
        """Insertion positions of in-window edges, chronological order.

        Chronological means ``(start, arrival, position)`` -- the order
        :meth:`TemporalGraph.chronological_edges` and the sorted edge
        index use.  ``O(log M + candidates)``, vectorised under numpy.
        """
        lo, hi = self.start_bounds(t_alpha, t_omega)
        if self.backend == "numpy":
            cand = self._start_order[lo:hi]
            return cand[self._arrival_by_start[lo:hi] <= t_omega]
        arrivals = self._arrival_by_start
        order = self._start_order
        return [order[i] for i in range(lo, hi) if arrivals[i] <= t_omega]

    def window_positions_graph_order(self, t_alpha: float, t_omega: float):
        """Same membership as :meth:`window_positions`, insertion order."""
        picked = self.window_positions(t_alpha, t_omega)
        if self.backend == "numpy":
            return _np.sort(picked)
        return sorted(picked)

    def count_in(self, t_alpha: float, t_omega: float) -> int:
        """Number of in-window edges, nothing materialised."""
        lo, hi = self.start_bounds(t_alpha, t_omega)
        if self.backend == "numpy":
            return int((self._arrival_by_start[lo:hi] <= t_omega).sum())
        arrivals = self._arrival_by_start
        return sum(1 for i in range(lo, hi) if arrivals[i] <= t_omega)

    def delta_positions(
        self,
        old_window: Tuple[float, float],
        new_window: Tuple[float, float],
    ) -> Tuple[Any, Any]:
        """``(added, removed)`` positions between two windows.

        The columnar form of ``TemporalEdgeIndex.delta``: each side is
        the union of a start-boundary slice of the start order and an
        arrival-boundary slice of the arrival order (disjoint by
        construction), re-sorted into chronological order via the rank
        array.  ``O(log M + |Delta|)``.
        """
        return (
            self._one_sided_positions(old_window, new_window),
            self._one_sided_positions(new_window, old_window),
        )

    def _one_sided_positions(
        self, frm: Tuple[float, float], to: Tuple[float, float]
    ):
        a1, o1 = frm
        a2, o2 = to
        if self.backend == "numpy":
            np = _np
            parts = []
            if a2 < a1:
                lo = int(np.searchsorted(self._starts_sorted, a2, side="left"))
                hi = min(
                    int(np.searchsorted(self._starts_sorted, a1, side="left")),
                    int(np.searchsorted(self._starts_sorted, o2, side="right")),
                )
                if hi > lo:
                    cand = self._start_order[lo:hi]
                    parts.append(cand[self._arrival_by_start[lo:hi] <= o2])
            if o2 > o1:
                left = max(a1, a2)
                lo = int(np.searchsorted(self._arrivals_sorted, o1, side="right"))
                hi = int(np.searchsorted(self._arrivals_sorted, o2, side="right"))
                if hi > lo:
                    cand = self._arrival_order[lo:hi]
                    parts.append(cand[self._start_by_arrival[lo:hi] >= left])
            if not parts:
                return np.empty(0, dtype=np.int64)
            picked = np.concatenate(parts)
            return picked[np.argsort(self._start_rank[picked], kind="stable")]
        picked: List[int] = []
        if a2 < a1:
            lo = bisect_left(self._starts_sorted, a2)
            hi = min(
                bisect_left(self._starts_sorted, a1),
                bisect_right(self._starts_sorted, o2),
            )
            arrivals = self._arrival_by_start
            order = self._start_order
            picked.extend(order[i] for i in range(lo, hi) if arrivals[i] <= o2)
        if o2 > o1:
            left = max(a1, a2)
            lo = bisect_right(self._arrivals_sorted, o1)
            hi = bisect_right(self._arrivals_sorted, o2)
            starts = self._start_by_arrival
            order = self._arrival_order
            picked.extend(order[i] for i in range(lo, hi) if starts[i] >= left)
        rank = self._start_rank
        picked.sort(key=lambda p: rank[p])
        return picked

    def earliest_arrival(
        self, source: Vertex, t_alpha: float, t_omega: float
    ) -> List[Tuple[Vertex, float]]:
        """Earliest-arrival labels from ``source`` (numpy backend only).

        Returns ``[(vertex, arrival), ...]`` for every vertex reachable
        through a time-respecting path inside ``[t_alpha, t_omega]``,
        ordered by ``(arrival, intern id)`` with float arrival times --
        the canonical form the pure backend's heap sweep is normalised
        to, so cross-backend outputs match byte for byte.

        The sweep walks the arrival-sorted columns in chunks, never
        splitting an arrival tie group.  Within a chunk it iterates a
        relaxation fixpoint: an edge is usable when it departs no
        earlier than its source's current label, and usable edges
        scatter-min their arrival into their target's label.  Later
        chunks only produce labels strictly above the chunk's arrival
        ceiling (tie groups are whole), so they can never enable an
        edge of an earlier chunk -- one forward pass suffices, even
        with zero-duration edges.
        """
        np = _np
        src = self.vertex_ids.get(source)
        if src is None:
            return []
        hi = int(np.searchsorted(self._arrivals_sorted, t_omega, side="right"))
        order = self._arrival_order[:hi]
        arr = self._arrivals_sorted[:hi]
        st = self._start_by_arrival[:hi]
        srcs = self.sources[order]
        tgts = self.targets[order]
        lab = np.full(self.num_vertices, np.inf)
        lab[src] = t_alpha
        lo = 0
        while lo < hi:
            cut = min(lo + EA_CHUNK, hi)
            if cut < hi:
                cut = int(np.searchsorted(arr, arr[cut - 1], side="right"))
            s, a = st[lo:cut], arr[lo:cut]
            u, v = srcs[lo:cut], tgts[lo:cut]
            while True:
                # Strict ``a < lab[v]`` means an edge fires at most once:
                # after the scatter-min its target label is <= a.
                usable = (s >= lab[u]) & (a < lab[v])
                if not usable.any():
                    break
                np.minimum.at(lab, v[usable], a[usable])
            lo = cut
        reached_mask = lab < np.inf
        reached_mask[src] = True  # degenerate t_alpha = inf still reports source
        reached = np.flatnonzero(reached_mask)
        reached = reached[np.lexsort((reached, lab[reached]))]
        labels = self.vertex_labels
        return [
            (labels[i], t)
            for i, t in zip(reached.tolist(), lab[reached].tolist())
        ]

    def edges_at(self, positions) -> List[TemporalEdge]:
        """Materialise ``TemporalEdge`` objects for insertion positions."""
        edges = self.edges
        if self.backend == "numpy":
            positions = positions.tolist()
        return [edges[p] for p in positions]

    # ------------------------------------------------------------------
    # Backend-independent column export (pickling, shard payloads)
    # ------------------------------------------------------------------
    def _value_column(self, values: List[Any], exact: bool):
        """A shippable value column that round-trips value *and* type.

        ``array('d')`` when the store-wide flag proves every value is a
        Python float; ``array('q')`` when every value is a Python int
        fitting int64 (reading an ``array('q')`` yields exact ints
        back, so int-timestamp datasets ship as 8 bytes per value too).
        Anything else (Fractions, big ints, mixtures) falls back to a
        tuple of the original objects -- the downstream byte-identity
        guarantees lean on this exactness.
        """
        if exact:
            return array("d", values)
        if all(
            type(v) is int and -(2**63) <= v < 2**63 for v in values
        ):
            return array("q", values)
        return tuple(values)

    def export_columns(self) -> Dict[str, Any]:
        """The store's defining state as backend-independent columns.

        Returns a dict of ``labels`` (interned vertex labels, intern-id
        order, including isolated extras) plus the five edge columns:
        ``sources``/``targets`` as ``array('q')`` of intern ids and
        ``starts``/``arrivals``/``weights`` as ``array('d')`` -- or
        tuples of the original Python values when the matching
        ``*_are_float`` flag is unset.  Only stdlib containers, so the
        payload unpickles in processes without numpy and rebuilds the
        identical edge tuple under either backend
        (:func:`edges_from_columns`).
        """
        edges = self.edges
        if self.backend == "numpy":
            sources = array("q", self.sources.tolist())
            targets = array("q", self.targets.tolist())
        else:
            sources = array("q", self.sources)
            targets = array("q", self.targets)
        return {
            "labels": tuple(self.vertex_labels),
            "sources": sources,
            "targets": targets,
            "starts": self._value_column(
                [e.start for e in edges], self.starts_are_float
            ),
            "arrivals": self._value_column(
                [e.arrival for e in edges], self.arrivals_are_float
            ),
            "weights": self._value_column(
                [e.weight for e in edges], self.weights_are_float
            ),
        }

    def time_slice_columns(self, t_alpha: float, t_omega: float) -> Dict[str, Any]:
        """Columns for the edges inside ``[t_alpha, t_omega]`` only.

        The shard-payload primitive: membership and order match
        :meth:`window_positions_graph_order` (start >= t_alpha and
        arrival <= t_omega, insertion order), vertex labels are
        re-interned locally in first-occurrence order, and the value
        columns carry the slice's original Python values (exact arrays
        when the store-wide flags allow).  The result holds no
        ``TemporalEdge`` objects and no labels outside the slice, so a
        worker unpickling it never sees out-of-range edges.
        """
        picked = self.window_positions_graph_order(t_alpha, t_omega)
        if self.backend == "numpy":
            picked = picked.tolist()
        edges = self.edges
        ids: Dict[Vertex, int] = {}
        labels: List[Vertex] = []
        sources = array("q")
        targets = array("q")
        starts: List[Any] = []
        arrivals: List[Any] = []
        weights: List[Any] = []
        for p in picked:
            e = edges[p]
            u = ids.get(e.source)
            if u is None:
                u = len(labels)
                ids[e.source] = u
                labels.append(e.source)
            v = ids.get(e.target)
            if v is None:
                v = len(labels)
                ids[e.target] = v
                labels.append(e.target)
            sources.append(u)
            targets.append(v)
            starts.append(e.start)
            arrivals.append(e.arrival)
            weights.append(e.weight)
        return {
            "labels": tuple(labels),
            "sources": sources,
            "targets": targets,
            "starts": self._value_column(starts, self.starts_are_float),
            "arrivals": self._value_column(arrivals, self.arrivals_are_float),
            "weights": self._value_column(weights, self.weights_are_float),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColumnarEdgeStore(M={self.num_edges}, n={self.num_vertices}, "
            f"backend={self.backend}, generation={self.generation})"
        )


def edges_from_columns(columns: Dict[str, Any]) -> List[TemporalEdge]:
    """Rebuild the edge list a column export describes, in order.

    Inverse of :meth:`ColumnarEdgeStore.export_columns` /
    :meth:`ColumnarEdgeStore.time_slice_columns`: intern ids are mapped
    back through ``labels`` and every edge goes through
    :func:`make_edge`, so a corrupted payload fails validation instead
    of entering a graph.
    """
    labels = columns["labels"]
    return [
        make_edge(labels[u], labels[v], start, arrival, weight)
        for u, v, start, arrival, weight in zip(
            columns["sources"],
            columns["targets"],
            columns["starts"],
            columns["arrivals"],
            columns["weights"],
        )
    ]
