"""Dataset statistics in the shape of the paper's Table 1.

For a temporal graph ``G = (V, E)`` with static projection
``G_S = (V, E_S)`` the table reports:

* ``n = |V|`` and ``M = |E|`` (temporal edges, counting parallels),
* ``m = |E_S|`` (distinct ordered vertex pairs),
* ``deg`` -- the maximum temporal degree (in + out temporal edges),
* ``deg_s`` -- the maximum static degree (in + out static edges),
* ``pi`` -- the maximum number of parallel temporal edges between any
  ordered pair ``(u, v)``,
* ``Gamma_G`` -- the number of distinct time instances in the graph.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.temporal.edge import Vertex
from repro.temporal.graph import TemporalGraph


@dataclass(frozen=True)
class GraphStatistics:
    """The Table 1 row for one dataset."""

    num_vertices: int
    num_temporal_edges: int
    num_static_edges: int
    max_temporal_degree: int
    max_static_degree: int
    max_multiplicity: int
    distinct_time_instances: int

    def as_row(self, name: str = "") -> str:
        """A formatted table row matching the paper's column order."""
        cells = [
            name,
            str(self.num_vertices),
            str(self.num_temporal_edges),
            str(self.num_static_edges),
            str(self.max_temporal_degree),
            str(self.max_static_degree),
            str(self.max_multiplicity),
            str(self.distinct_time_instances),
        ]
        return " | ".join(f"{c:>10}" for c in cells)

    @staticmethod
    def header() -> str:
        cells = ["dataset", "|V|", "|E|", "|E_s|", "deg", "deg_s", "pi", "|Gamma_G|"]
        return " | ".join(f"{c:>10}" for c in cells)


def compute_statistics(graph: TemporalGraph) -> GraphStatistics:
    """Compute the Table 1 statistics of ``graph`` in a single pass."""
    pair_multiplicity: Counter = Counter()
    temporal_degree: Counter = Counter()
    for edge in graph.edges:
        pair_multiplicity[edge.static_key()] += 1
        temporal_degree[edge.source] += 1
        temporal_degree[edge.target] += 1

    static_degree: Counter = Counter()
    for (u, v) in pair_multiplicity:
        static_degree[u] += 1
        static_degree[v] += 1

    return GraphStatistics(
        num_vertices=graph.num_vertices,
        num_temporal_edges=graph.num_edges,
        num_static_edges=len(pair_multiplicity),
        max_temporal_degree=max(temporal_degree.values(), default=0),
        max_static_degree=max(static_degree.values(), default=0),
        max_multiplicity=max(pair_multiplicity.values(), default=0),
        distinct_time_instances=graph.distinct_time_instances(),
    )


def multiplicity_map(graph: TemporalGraph) -> Dict[Tuple[Vertex, Vertex], int]:
    """Parallel-edge count per ordered static pair (the ``pi`` profile)."""
    counts: Counter = Counter()
    for edge in graph.edges:
        counts[edge.static_key()] += 1
    return dict(counts)
