"""Time-window selection utilities.

Section 5.1 of the paper evaluates on the subgraph ``G'`` induced by the
*middle one tenth* of a dataset's total time range, and picks as root the
first vertex able to reach at least one tenth of ``G'``'s vertices.  The
helpers here reproduce that protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.errors import UnreachableRootError
from repro.temporal.edge import Vertex
from repro.temporal.graph import TemporalGraph


@dataclass(frozen=True)
class TimeWindow:
    """A closed time interval ``[t_alpha, t_omega]``.

    ``TimeWindow.unbounded()`` gives the paper's default ``[0, inf]``.
    """

    t_alpha: float
    t_omega: float

    def __post_init__(self) -> None:
        if self.t_alpha > self.t_omega:
            raise ValueError(
                f"empty window: t_alpha={self.t_alpha} > t_omega={self.t_omega}"
            )

    @staticmethod
    def unbounded() -> "TimeWindow":
        """The window ``[0, inf]`` used throughout Section 4."""
        return TimeWindow(0.0, math.inf)

    @property
    def length(self) -> float:
        return self.t_omega - self.t_alpha

    def contains(self, t: float) -> bool:
        return self.t_alpha <= t <= self.t_omega

    def as_tuple(self) -> Tuple[float, float]:
        return (self.t_alpha, self.t_omega)


def middle_tenth_window(graph: TemporalGraph, fraction: float = 0.1) -> TimeWindow:
    """The window covering the middle ``fraction`` of the graph's time range.

    With the default ``fraction=0.1`` this is exactly the paper's
    ``(t_omega - t_alpha) ~= 0.1 (t_Omega - t_A)`` centred selection.
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must lie in (0, 1], got {fraction}")
    t_a, t_omega_total = graph.time_span()
    total = t_omega_total - t_a
    margin = (1.0 - fraction) / 2.0 * total
    return TimeWindow(t_a + margin, t_omega_total - margin)


def extract_window(graph: TemporalGraph, window: TimeWindow) -> TemporalGraph:
    """The subgraph ``G[t_alpha, t_omega]`` of edges within the window."""
    return graph.restricted(window.t_alpha, window.t_omega)


def select_root(
    graph: TemporalGraph,
    window: Optional[TimeWindow] = None,
    min_reach_fraction: float = 0.1,
) -> Vertex:
    """The paper's root-selection rule.

    Scans vertices (in sorted order, so the choice is deterministic) and
    returns the first one that reaches at least ``min_reach_fraction`` of
    the graph's vertices through time-respecting paths within ``window``.

    Raises
    ------
    UnreachableRootError
        If no vertex reaches the required fraction.
    """
    from repro.temporal.paths import reachable_set

    if window is None:
        window = TimeWindow.unbounded()
    threshold = min_reach_fraction * graph.num_vertices
    for vertex in sorted(graph.vertices, key=repr):
        reached = reachable_set(graph, vertex, window)
        # reachable_set includes the root itself; the paper counts the
        # vertices the root can reach.
        if len(reached) - 1 >= threshold:
            return vertex
    raise UnreachableRootError(
        f"no vertex reaches {min_reach_fraction:.0%} of the "
        f"{graph.num_vertices} vertices within {window}"
    )
