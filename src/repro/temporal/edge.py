"""Temporal edges.

A temporal edge follows the paper's Section 2.1 definition
``e = (u, v, t_u, t̂_v, w)``: a directed link from ``u`` to ``v`` that
starts (departs) at time ``t_u``, arrives at time ``t̂_v >= t_u``, and
carries a non-negative weight (cost) ``w``.
"""

from __future__ import annotations

from typing import Hashable, NamedTuple

Vertex = Hashable


class TemporalEdge(NamedTuple):
    """A directed, timestamped, weighted edge of a temporal graph.

    Attributes mirror the paper's accessors: ``source`` is ``s(e)``,
    ``target`` is ``a(e)``, ``start`` is ``t_s(e)``, ``arrival`` is
    ``t_a(e)``, and ``weight`` is ``w(e)``.
    """

    source: Vertex
    target: Vertex
    start: float
    arrival: float
    weight: float = 1.0

    @property
    def duration(self) -> float:
        """Edge duration ``d(e) = t_a(e) - t_s(e)`` (non-negative)."""
        return self.arrival - self.start

    def is_valid(self) -> bool:
        """Whether the edge satisfies ``t_a >= t_s`` and ``w >= 0``."""
        return self.arrival >= self.start and self.weight >= 0

    def within(self, t_alpha: float, t_omega: float) -> bool:
        """Whether the edge lies entirely inside the window ``[t_alpha, t_omega]``."""
        return self.start >= t_alpha and self.arrival <= t_omega

    def reversed(self) -> "TemporalEdge":
        """The edge with endpoints swapped (times and weight unchanged).

        Used by the hardness reduction, which bidirects undirected
        static edges.
        """
        return TemporalEdge(self.target, self.source, self.start, self.arrival, self.weight)

    def static_key(self) -> tuple:
        """The ``(source, target)`` pair identifying the static projection."""
        return (self.source, self.target)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.source}->{self.target} "
            f"<{self.start:g},{self.arrival:g}> [{self.weight:g}]"
        )
