"""Temporal edges.

A temporal edge follows the paper's Section 2.1 definition
``e = (u, v, t_u, t̂_v, w)``: a directed link from ``u`` to ``v`` that
starts (departs) at time ``t_u``, arrives at time ``t̂_v >= t_u``, and
carries a non-negative weight (cost) ``w``.
"""

from __future__ import annotations

from typing import Hashable, NamedTuple, Tuple

from repro.core.errors import GraphFormatError

Vertex = Hashable


class TemporalEdge(NamedTuple):
    """A directed, timestamped, weighted edge of a temporal graph.

    Attributes mirror the paper's accessors: ``source`` is ``s(e)``,
    ``target`` is ``a(e)``, ``start`` is ``t_s(e)``, ``arrival`` is
    ``t_a(e)``, and ``weight`` is ``w(e)``.
    """

    source: Vertex
    target: Vertex
    start: float
    arrival: float
    weight: float = 1.0

    @property
    def duration(self) -> float:
        """Edge duration ``d(e) = t_a(e) - t_s(e)`` (non-negative)."""
        return self.arrival - self.start

    def is_valid(self) -> bool:
        """Whether the edge satisfies ``t_a >= t_s`` and ``w >= 0``."""
        return self.arrival >= self.start and self.weight >= 0

    def within(self, t_alpha: float, t_omega: float) -> bool:
        """Whether the edge lies entirely inside the window ``[t_alpha, t_omega]``."""
        return self.start >= t_alpha and self.arrival <= t_omega

    def reversed(self) -> "TemporalEdge":
        """The edge with endpoints swapped (times and weight unchanged).

        Used by the hardness reduction, which bidirects undirected
        static edges.
        """
        return TemporalEdge(self.target, self.source, self.start, self.arrival, self.weight)

    def static_key(self) -> Tuple[Vertex, Vertex]:
        """The ``(source, target)`` pair identifying the static projection."""
        return (self.source, self.target)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.source}->{self.target} "
            f"<{self.start:g},{self.arrival:g}> [{self.weight:g}]"
        )


def make_edge(
    source: Vertex,
    target: Vertex,
    start: float,
    arrival: float,
    weight: float = 1.0,
) -> TemporalEdge:
    """The validated constructor: build an edge or raise.

    :class:`TemporalEdge` itself is a plain ``NamedTuple`` and performs
    no checks, so code computing times (generators, transforms, the
    hardness reduction) must build edges through this factory, which
    enforces the Section 2.1 invariants at the construction site:
    ``arrival >= start``, ``weight >= 0``, and no NaN fields.  The
    ``temporal-invariant`` lint rule holds library code to it.

    Raises
    ------
    GraphFormatError
        If the edge would violate an invariant.
    """
    if start != start or arrival != arrival or weight != weight:  # NaN check
        raise GraphFormatError(
            f"temporal edge {source!r}->{target!r} has a NaN field "
            f"(start={start!r}, arrival={arrival!r}, weight={weight!r})"
        )
    if arrival < start:
        raise GraphFormatError(
            f"temporal edge {source!r}->{target!r} arrives before it starts: "
            f"arrival={arrival!r} < start={start!r}"
        )
    if weight < 0:
        raise GraphFormatError(
            f"temporal edge {source!r}->{target!r} has negative weight "
            f"{weight!r}"
        )
    return TemporalEdge(source, target, start, arrival, weight)
