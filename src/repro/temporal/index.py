"""An index for repeated time-window queries over a temporal graph.

``TemporalGraph.restricted`` scans all ``M`` edges per call; workloads
that slide a window across a long history (``repro.core.sliding``, the
epidemic example, interactive exploration) re-extract hundreds of
windows.  :class:`TemporalEdgeIndex` answers each window query in
``O(log M + output)`` from the graph's columnar store
(:mod:`repro.temporal.columnar`): binary search over the start-sorted
column plus an arrival mask, vectorised under numpy and bisect-driven
under the pure-Python fallback.

For *sliding* workloads the index additionally answers the symmetric
difference between two windows (:meth:`TemporalEdgeIndex.delta`) in
``O(log M + |Δ|)``: a slide of a long window by a small step touches
only the edges near the two moving boundaries, never the shared bulk.
That delta is the entry point of the :mod:`repro.incremental` engine.
"""

from __future__ import annotations

import weakref
from bisect import bisect_left, bisect_right
from typing import Dict, Iterator, List, Optional, Tuple

from repro.temporal.edge import TemporalEdge, Vertex
from repro.temporal.graph import TemporalGraph
from repro.temporal.window import TimeWindow


class TemporalEdgeIndex:
    """Sorted-edge index supporting fast window extraction.

    Parameters
    ----------
    graph:
        The temporal graph to index.  The index is a thin object layer
        over the graph's shared :class:`ColumnarEdgeStore`: the bulk
        queries delegate to the store's batched passes, while the
        per-vertex adjacency views (the incremental repair loop's scan
        structures) stay object-level and are built lazily.
    """

    __slots__ = (
        "_store",
        "_edges",
        "_starts",
        "_positions",
        "_vertices",
        "_arrival_order",
        "_arrivals_sorted",
        "_out_by_source",
        "_in_by_target",
    )

    def __init__(self, graph: TemporalGraph) -> None:
        store = graph.columnar()
        self._store = store
        # The start-order view matches graph.chronological_edges()
        # exactly (stable (start, arrival, position) sort), and
        # _positions recovers the original graph.edges position of each
        # indexed edge (needed to reproduce insertion-order outputs).
        self._edges: List[TemporalEdge] = store.edges_at(store.positions_by_start())
        self._positions: List[int] = [int(p) for p in store.positions_by_start()]
        self._starts = store.sorted_starts()
        self._vertices = graph.vertices
        # Arrival-sorted view: ranks into _edges ordered by (arrival,
        # start, graph position); drives the per-target in-edge lists.
        ranks = store.start_ranks()
        self._arrival_order: List[int] = [
            int(ranks[p]) for p in store.positions_by_arrival()
        ]
        self._arrivals_sorted = store.sorted_arrivals()
        # Lazy per-vertex adjacency used by the incremental repair loop.
        self._out_by_source: Optional[Dict[Vertex, Tuple[List[float], List[TemporalEdge]]]] = None
        self._in_by_target: Optional[Dict[Vertex, Tuple[List[float], List[TemporalEdge]]]] = None

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def generation(self) -> int:
        """Generation of the columnar store this index was built from."""
        return int(self._store.generation)

    def edges_in(self, window: TimeWindow) -> List[TemporalEdge]:
        """All edges with ``start >= t_alpha`` and ``arrival <= t_omega``.

        Chronological order; one batched pass over the store.
        """
        return self._store.edges_at(
            self._store.window_positions(window.t_alpha, window.t_omega)
        )

    def iter_edges_in(self, window: TimeWindow) -> Iterator[TemporalEdge]:
        """Yield the window's edges in chronological order."""
        return iter(self.edges_in(window))

    def edges_in_graph_order(self, window: TimeWindow) -> Tuple[TemporalEdge, ...]:
        """The window's edges in *graph insertion* order.

        Identical to ``tuple(e for e in graph.edges if e.within(...))``
        -- the full-scan extraction every transformation / reuse path
        performs -- but in ``O(log M + k log k)`` for ``k`` output edges
        instead of ``O(M)``.
        """
        return tuple(
            self._store.edges_at(
                self._store.window_positions_graph_order(
                    window.t_alpha, window.t_omega
                )
            )
        )

    def count_in(self, window: TimeWindow) -> int:
        """Number of edges inside the window (no list materialised)."""
        return self._store.count_in(window.t_alpha, window.t_omega)

    def subgraph(self, window: TimeWindow, keep_vertices: bool = False) -> TemporalGraph:
        """The windowed :class:`TemporalGraph` (``G[t_alpha, t_omega]``).

        ``keep_vertices=True`` preserves the full original vertex set
        (isolated vertices included), matching
        ``TemporalGraph(edges, vertices=...)`` semantics; the default
        mirrors ``TemporalGraph.restricted``, whose vertex set is
        induced by the surviving edges.
        """
        edges = self.edges_in(window)
        if keep_vertices:
            return TemporalGraph(edges, vertices=self._vertices)
        return TemporalGraph(edges)

    def first_start_after(self, t: float) -> Optional[float]:
        """The earliest edge start time ``>= t`` (None past the end).

        Lets sliding sweeps skip empty stretches of the timeline.
        """
        i = bisect_left(self._starts, t)
        if i == len(self._starts):
            return None
        return float(self._starts[i])

    # ------------------------------------------------------------------
    # Sliding-window deltas
    # ------------------------------------------------------------------
    def delta(
        self, old_window: TimeWindow, new_window: TimeWindow
    ) -> Tuple[List[TemporalEdge], List[TemporalEdge]]:
        """``(added, removed)`` between two windows, ``O(log M + |Δ|)``.

        ``added`` are the edges inside ``new_window`` but not
        ``old_window``; ``removed`` the reverse.  Window membership is
        ``start >= t_alpha and arrival <= t_omega``, so an edge changes
        sides only through one of the two moving boundaries:

        * the **start boundary**: edges with ``t_alpha`` of one window
          ``<= start <`` the other's, found in the start-sorted column;
        * the **arrival boundary**: edges with ``t_omega`` of one window
          ``< arrival <=`` the other's, found in the arrival-sorted
          column.

        The two slices are disjoint and complete (an edge admitted by
        the start boundary is counted there only), and each is a
        contiguous sorted-column range, so the cost is proportional to
        the slide, not the window.  Both lists come back ordered by
        ``(start, arrival, graph position)`` -- chronological order.
        """
        added, removed = self._store.delta_positions(
            old_window.as_tuple(), new_window.as_tuple()
        )
        return self._store.edges_at(added), self._store.edges_at(removed)

    # ------------------------------------------------------------------
    # Per-vertex views (the incremental repair loop's scan structures)
    # ------------------------------------------------------------------
    def _source_adjacency(self) -> Dict[Vertex, Tuple[List[float], List[TemporalEdge]]]:
        if self._out_by_source is None:
            grouped: Dict[Vertex, List[TemporalEdge]] = {}
            # _edges is already (start, arrival, position)-sorted, so the
            # per-source sublists inherit ascending-start order.
            for e in self._edges:
                grouped.setdefault(e.source, []).append(e)
            self._out_by_source = {
                v: ([e.start for e in edges], edges) for v, edges in grouped.items()
            }
        return self._out_by_source

    def _target_adjacency(self) -> Dict[Vertex, Tuple[List[float], List[TemporalEdge]]]:
        if self._in_by_target is None:
            grouped: Dict[Vertex, List[TemporalEdge]] = {}
            # Walk the arrival-sorted view so the per-target sublists
            # are ordered by (arrival, start, graph position) -- the
            # exact tie-break order of Algorithm 1's parent choice.
            for j in self._arrival_order:
                e = self._edges[j]
                grouped.setdefault(e.target, []).append(e)
            self._in_by_target = {
                v: ([e.arrival for e in edges], edges) for v, edges in grouped.items()
            }
        return self._in_by_target

    def out_edges_enabled(
        self, vertex: Vertex, t: float, t_omega: float
    ) -> Iterator[TemporalEdge]:
        """Out-edges of ``vertex`` with ``start >= t`` and ``arrival <= t_omega``.

        Bisects the per-source ascending-start array and stops at the
        first start past ``t_omega`` -- the repair loop's out-scan.
        """
        entry = self._source_adjacency().get(vertex)
        if entry is None:
            return
        starts, edges = entry
        i = bisect_left(starts, t)
        while i < len(starts) and starts[i] <= t_omega:
            e = edges[i]
            if e.arrival <= t_omega:
                yield e
            i += 1

    def in_edges_at_arrival(
        self, vertex: Vertex, arrival: float
    ) -> Iterator[TemporalEdge]:
        """In-edges of ``vertex`` arriving exactly at ``arrival``.

        Yielded in ``(start, graph position)`` order -- the run feeding
        the canonical parent-edge choice after an incremental repair.
        """
        entry = self._target_adjacency().get(vertex)
        if entry is None:
            return
        arrivals, edges = entry
        i = bisect_left(arrivals, arrival)
        while i < len(arrivals) and arrivals[i] == arrival:
            yield edges[i]
            i += 1

    def in_edges_up_to(
        self, vertex: Vertex, t_omega: float
    ) -> Iterator[TemporalEdge]:
        """In-edges of ``vertex`` with ``arrival <= t_omega`` (arrival order)."""
        entry = self._target_adjacency().get(vertex)
        if entry is None:
            return
        arrivals, edges = entry
        hi = bisect_right(arrivals, t_omega)
        for i in range(hi):
            yield edges[i]

    def has_incident_in(self, window: TimeWindow, vertex: Vertex) -> bool:
        """Whether ``vertex`` has any incident edge inside ``window``.

        Equivalent to ``vertex in index.subgraph(window).vertices``
        without materialising the subgraph.
        """
        entry = self._source_adjacency().get(vertex)
        if entry is not None:
            starts, edges = entry
            i = bisect_left(starts, window.t_alpha)
            while i < len(starts) and starts[i] <= window.t_omega:
                if edges[i].arrival <= window.t_omega:
                    return True
                i += 1
        entry = self._target_adjacency().get(vertex)
        if entry is not None:
            arrivals, edges = entry
            hi = bisect_right(arrivals, window.t_omega)
            for i in range(hi):
                if edges[i].start >= window.t_alpha:
                    return True
        return False

    def __len__(self) -> int:
        return len(self._edges)


#: graph -> (store generation, shared index); weak keys, and the index
#: itself holds no reference back to the graph, so entries die with
#: their graph.
_SHARED_INDICES: "weakref.WeakKeyDictionary[TemporalGraph, Tuple[int, TemporalEdgeIndex]]" = (
    weakref.WeakKeyDictionary()
)


def edge_index_for(
    graph: TemporalGraph, create: bool = True
) -> Optional[TemporalEdgeIndex]:
    """The process-wide shared :class:`TemporalEdgeIndex` of ``graph``.

    Sliding sweeps, the window-reuse index, and the transformation
    cache's delta-derivation path all consult the same index so the
    ``O(M log M)`` build is paid once per graph.  With ``create=False``
    the call only reports an existing index (``None`` otherwise) --
    used by paths that should stay ``O(M)`` when nothing sliding-shaped
    has touched the graph yet.

    The cache entry is keyed by the graph's columnar-store generation:
    a store rebuild (e.g. a ``force_backend`` switch) invalidates the
    cached index, so a stale index over dropped arrays can never be
    served.  A ``create=False`` probe whose cached entry is stale
    reports ``None`` without rebuilding anything.
    """
    entry = _SHARED_INDICES.get(graph)
    if entry is not None:
        generation, index = entry
        store = graph.columnar_or_none()
        if store is not None and store.generation == generation:
            return index
        # Stale: the backing store was rebuilt (or dropped) since the
        # index was cached.  Fall through to a rebuild or a miss.
        del _SHARED_INDICES[graph]
    if not create:
        return None
    index = TemporalEdgeIndex(graph)
    _SHARED_INDICES[graph] = (index.generation, index)
    return index
