"""An index for repeated time-window queries over a temporal graph.

``TemporalGraph.restricted`` scans all ``M`` edges per call; workloads
that slide a window across a long history (``repro.core.sliding``, the
epidemic example, interactive exploration) re-extract hundreds of
windows.  :class:`TemporalEdgeIndex` sorts the edges once by start time
and answers each window query in ``O(log M + output)`` using binary
search on the start times plus an arrival filter that exploits a
precomputed prefix maximum of durations.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, List, Optional

from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph
from repro.temporal.window import TimeWindow


class TemporalEdgeIndex:
    """Sorted-edge index supporting fast window extraction.

    Parameters
    ----------
    graph:
        The temporal graph to index.  The index holds its own sorted
        copy of the edge tuple; the graph itself is not retained.
    """

    __slots__ = ("_edges", "_starts", "_max_duration_prefix", "_vertices")

    def __init__(self, graph: TemporalGraph) -> None:
        self._edges: List[TemporalEdge] = sorted(
            graph.edges, key=lambda e: (e.start, e.arrival)
        )
        self._starts = [e.start for e in self._edges]
        # prefix maximum of durations: if no edge in edges[lo:] can have
        # duration beyond this, the arrival filter can stop early.
        self._max_duration_prefix: List[float] = []
        longest = 0.0
        for e in self._edges:
            longest = max(longest, e.duration)
            self._max_duration_prefix.append(longest)
        self._vertices = graph.vertices

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def edges_in(self, window: TimeWindow) -> List[TemporalEdge]:
        """All edges with ``start >= t_alpha`` and ``arrival <= t_omega``."""
        return list(self.iter_edges_in(window))

    def iter_edges_in(self, window: TimeWindow) -> Iterator[TemporalEdge]:
        """Lazily yield the window's edges in chronological order."""
        lo = bisect_left(self._starts, window.t_alpha)
        # No edge starting after t_omega can also arrive by t_omega
        # (durations are non-negative), so the scan ends there.
        hi = bisect_right(self._starts, window.t_omega)
        for i in range(lo, hi):
            if self._edges[i].arrival <= window.t_omega:
                yield self._edges[i]

    def count_in(self, window: TimeWindow) -> int:
        """Number of edges inside the window (no list materialised)."""
        return sum(1 for _ in self.iter_edges_in(window))

    def subgraph(self, window: TimeWindow, keep_vertices: bool = False) -> TemporalGraph:
        """The windowed :class:`TemporalGraph` (``G[t_alpha, t_omega]``).

        ``keep_vertices=True`` preserves the full original vertex set
        (isolated vertices included), matching
        ``TemporalGraph(edges, vertices=...)`` semantics; the default
        mirrors ``TemporalGraph.restricted``, whose vertex set is
        induced by the surviving edges.
        """
        edges = self.edges_in(window)
        if keep_vertices:
            return TemporalGraph(edges, vertices=self._vertices)
        return TemporalGraph(edges)

    def first_start_after(self, t: float) -> Optional[float]:
        """The earliest edge start time ``>= t`` (None past the end).

        Lets sliding sweeps skip empty stretches of the timeline.
        """
        i = bisect_left(self._starts, t)
        if i == len(self._starts):
            return None
        return self._starts[i]

    def __len__(self) -> int:
        return len(self._edges)
