"""An index for repeated time-window queries over a temporal graph.

``TemporalGraph.restricted`` scans all ``M`` edges per call; workloads
that slide a window across a long history (``repro.core.sliding``, the
epidemic example, interactive exploration) re-extract hundreds of
windows.  :class:`TemporalEdgeIndex` sorts the edges once by start time
and answers each window query in ``O(log M + output)`` using binary
search on the start times plus an arrival filter that exploits a
precomputed prefix maximum of durations.

For *sliding* workloads the index additionally answers the symmetric
difference between two windows (:meth:`TemporalEdgeIndex.delta`) in
``O(log M + |Δ|)``: a slide of a long window by a small step touches
only the edges near the two moving boundaries, never the shared bulk.
That delta is the entry point of the :mod:`repro.incremental` engine.
"""

from __future__ import annotations

import weakref
from bisect import bisect_left, bisect_right
from typing import Dict, Iterator, List, Optional, Tuple

from repro.temporal.edge import TemporalEdge, Vertex
from repro.temporal.graph import TemporalGraph
from repro.temporal.window import TimeWindow


class TemporalEdgeIndex:
    """Sorted-edge index supporting fast window extraction.

    Parameters
    ----------
    graph:
        The temporal graph to index.  The index holds its own sorted
        copy of the edge tuple; the graph itself is not retained.
    """

    __slots__ = (
        "_edges",
        "_starts",
        "_positions",
        "_max_duration_prefix",
        "_vertices",
        "_arrival_order",
        "_arrivals_sorted",
        "_out_by_source",
        "_in_by_target",
    )

    def __init__(self, graph: TemporalGraph) -> None:
        # Stable sort keeps graph insertion order among (start, arrival)
        # ties, so _edges matches graph.chronological_edges() exactly and
        # _positions recovers the original graph.edges position of each
        # indexed edge (needed to reproduce insertion-order outputs).
        order = sorted(enumerate(graph.edges), key=lambda p: (p[1].start, p[1].arrival))
        self._edges: List[TemporalEdge] = [e for _, e in order]
        self._positions: List[int] = [i for i, _ in order]
        self._starts = [e.start for e in self._edges]
        # prefix maximum of durations: if no edge in edges[lo:] can have
        # duration beyond this, the arrival filter can stop early.
        self._max_duration_prefix: List[float] = []
        longest = 0.0
        for e in self._edges:
            longest = max(longest, e.duration)
            self._max_duration_prefix.append(longest)
        self._vertices = graph.vertices
        # Arrival-sorted view: indices into _edges ordered by
        # (arrival, start, graph position); drives the right-boundary
        # side of delta() and the per-target in-edge lists.
        self._arrival_order: List[int] = sorted(
            range(len(self._edges)),
            key=lambda j: (self._edges[j].arrival, self._edges[j].start, self._positions[j]),
        )
        self._arrivals_sorted = [self._edges[j].arrival for j in self._arrival_order]
        # Lazy per-vertex adjacency used by the incremental repair loop.
        self._out_by_source: Optional[Dict[Vertex, Tuple[List[float], List[TemporalEdge]]]] = None
        self._in_by_target: Optional[Dict[Vertex, Tuple[List[float], List[TemporalEdge]]]] = None

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def edges_in(self, window: TimeWindow) -> List[TemporalEdge]:
        """All edges with ``start >= t_alpha`` and ``arrival <= t_omega``."""
        return list(self.iter_edges_in(window))

    def iter_edges_in(self, window: TimeWindow) -> Iterator[TemporalEdge]:
        """Lazily yield the window's edges in chronological order."""
        lo = bisect_left(self._starts, window.t_alpha)
        # No edge starting after t_omega can also arrive by t_omega
        # (durations are non-negative), so the scan ends there.
        hi = bisect_right(self._starts, window.t_omega)
        for i in range(lo, hi):
            if self._edges[i].arrival <= window.t_omega:
                yield self._edges[i]

    def edges_in_graph_order(self, window: TimeWindow) -> Tuple[TemporalEdge, ...]:
        """The window's edges in *graph insertion* order.

        Identical to ``tuple(e for e in graph.edges if e.within(...))``
        -- the full-scan extraction every transformation / reuse path
        performs -- but in ``O(log M + k log k)`` for ``k`` output edges
        instead of ``O(M)``.
        """
        lo = bisect_left(self._starts, window.t_alpha)
        hi = bisect_right(self._starts, window.t_omega)
        picked = [
            (self._positions[i], self._edges[i])
            for i in range(lo, hi)
            if self._edges[i].arrival <= window.t_omega
        ]
        picked.sort(key=lambda p: p[0])
        return tuple(e for _, e in picked)

    def count_in(self, window: TimeWindow) -> int:
        """Number of edges inside the window (no list materialised)."""
        return sum(1 for _ in self.iter_edges_in(window))

    def subgraph(self, window: TimeWindow, keep_vertices: bool = False) -> TemporalGraph:
        """The windowed :class:`TemporalGraph` (``G[t_alpha, t_omega]``).

        ``keep_vertices=True`` preserves the full original vertex set
        (isolated vertices included), matching
        ``TemporalGraph(edges, vertices=...)`` semantics; the default
        mirrors ``TemporalGraph.restricted``, whose vertex set is
        induced by the surviving edges.
        """
        edges = self.edges_in(window)
        if keep_vertices:
            return TemporalGraph(edges, vertices=self._vertices)
        return TemporalGraph(edges)

    def first_start_after(self, t: float) -> Optional[float]:
        """The earliest edge start time ``>= t`` (None past the end).

        Lets sliding sweeps skip empty stretches of the timeline.
        """
        i = bisect_left(self._starts, t)
        if i == len(self._starts):
            return None
        return self._starts[i]

    # ------------------------------------------------------------------
    # Sliding-window deltas
    # ------------------------------------------------------------------
    def delta(
        self, old_window: TimeWindow, new_window: TimeWindow
    ) -> Tuple[List[TemporalEdge], List[TemporalEdge]]:
        """``(added, removed)`` between two windows, ``O(log M + |Δ|)``.

        ``added`` are the edges inside ``new_window`` but not
        ``old_window``; ``removed`` the reverse.  Window membership is
        ``start >= t_alpha and arrival <= t_omega``, so an edge changes
        sides only through one of the two moving boundaries:

        * the **start boundary**: edges with ``t_alpha`` of one window
          ``<= start <`` the other's, found by bisecting the
          start-sorted array;
        * the **arrival boundary**: edges with ``t_omega`` of one window
          ``< arrival <=`` the other's, found by bisecting the
          arrival-sorted view.

        The two slices are disjoint and complete (an edge admitted by
        the start boundary is counted there only), and each is a
        contiguous sorted-array range, so the cost is proportional to
        the slide, not the window.  Both lists come back ordered by
        ``(start, arrival, graph position)`` -- chronological order.
        """
        return (
            self._one_sided(old_window, new_window),
            self._one_sided(new_window, old_window),
        )

    def _one_sided(self, frm: TimeWindow, to: TimeWindow) -> List[TemporalEdge]:
        """Edges inside ``to`` but outside ``frm``."""
        a1, o1 = frm.t_alpha, frm.t_omega
        a2, o2 = to.t_alpha, to.t_omega
        picked: List[int] = []
        # Start boundary: a2 <= start < a1 admits the edge into `to`
        # (and start < a1 excludes it from `frm`); arrival <= o2 keeps
        # it inside `to` on the right.
        if a2 < a1:
            lo = bisect_left(self._starts, a2)
            # Edges starting after o2 cannot arrive by o2; capping the
            # slice keeps the scan proportional to the boundary region.
            hi = min(bisect_left(self._starts, a1), bisect_right(self._starts, o2))
            for i in range(lo, hi):
                if self._edges[i].arrival <= o2:
                    picked.append(i)
        # Arrival boundary: o1 < arrival <= o2 admits the edge into
        # `to`; start >= max(a1, a2) keeps the two regions disjoint
        # (edges with start < a1 were counted by the start boundary).
        if o2 > o1:
            left = max(a1, a2)
            lo = bisect_right(self._arrivals_sorted, o1)
            hi = bisect_right(self._arrivals_sorted, o2)
            for k in range(lo, hi):
                j = self._arrival_order[k]
                if self._edges[j].start >= left:
                    picked.append(j)
        picked.sort(
            key=lambda j: (self._edges[j].start, self._edges[j].arrival, self._positions[j])
        )
        return [self._edges[j] for j in picked]

    # ------------------------------------------------------------------
    # Per-vertex views (the incremental repair loop's scan structures)
    # ------------------------------------------------------------------
    def _source_adjacency(self) -> Dict[Vertex, Tuple[List[float], List[TemporalEdge]]]:
        if self._out_by_source is None:
            grouped: Dict[Vertex, List[TemporalEdge]] = {}
            # _edges is already (start, arrival, position)-sorted, so the
            # per-source sublists inherit ascending-start order.
            for e in self._edges:
                grouped.setdefault(e.source, []).append(e)
            self._out_by_source = {
                v: ([e.start for e in edges], edges) for v, edges in grouped.items()
            }
        return self._out_by_source

    def _target_adjacency(self) -> Dict[Vertex, Tuple[List[float], List[TemporalEdge]]]:
        if self._in_by_target is None:
            grouped: Dict[Vertex, List[TemporalEdge]] = {}
            # Walk the arrival-sorted view so the per-target sublists
            # are ordered by (arrival, start, graph position) -- the
            # exact tie-break order of Algorithm 1's parent choice.
            for j in self._arrival_order:
                e = self._edges[j]
                grouped.setdefault(e.target, []).append(e)
            self._in_by_target = {
                v: ([e.arrival for e in edges], edges) for v, edges in grouped.items()
            }
        return self._in_by_target

    def out_edges_enabled(
        self, vertex: Vertex, t: float, t_omega: float
    ) -> Iterator[TemporalEdge]:
        """Out-edges of ``vertex`` with ``start >= t`` and ``arrival <= t_omega``.

        Bisects the per-source ascending-start array and stops at the
        first start past ``t_omega`` -- the repair loop's out-scan.
        """
        entry = self._source_adjacency().get(vertex)
        if entry is None:
            return
        starts, edges = entry
        i = bisect_left(starts, t)
        while i < len(starts) and starts[i] <= t_omega:
            e = edges[i]
            if e.arrival <= t_omega:
                yield e
            i += 1

    def in_edges_at_arrival(
        self, vertex: Vertex, arrival: float
    ) -> Iterator[TemporalEdge]:
        """In-edges of ``vertex`` arriving exactly at ``arrival``.

        Yielded in ``(start, graph position)`` order -- the run feeding
        the canonical parent-edge choice after an incremental repair.
        """
        entry = self._target_adjacency().get(vertex)
        if entry is None:
            return
        arrivals, edges = entry
        i = bisect_left(arrivals, arrival)
        while i < len(arrivals) and arrivals[i] == arrival:
            yield edges[i]
            i += 1

    def in_edges_up_to(
        self, vertex: Vertex, t_omega: float
    ) -> Iterator[TemporalEdge]:
        """In-edges of ``vertex`` with ``arrival <= t_omega`` (arrival order)."""
        entry = self._target_adjacency().get(vertex)
        if entry is None:
            return
        arrivals, edges = entry
        hi = bisect_right(arrivals, t_omega)
        for i in range(hi):
            yield edges[i]

    def has_incident_in(self, window: TimeWindow, vertex: Vertex) -> bool:
        """Whether ``vertex`` has any incident edge inside ``window``.

        Equivalent to ``vertex in index.subgraph(window).vertices``
        without materialising the subgraph.
        """
        entry = self._source_adjacency().get(vertex)
        if entry is not None:
            starts, edges = entry
            i = bisect_left(starts, window.t_alpha)
            while i < len(starts) and starts[i] <= window.t_omega:
                if edges[i].arrival <= window.t_omega:
                    return True
                i += 1
        entry = self._target_adjacency().get(vertex)
        if entry is not None:
            arrivals, edges = entry
            hi = bisect_right(arrivals, window.t_omega)
            for i in range(hi):
                if edges[i].start >= window.t_alpha:
                    return True
        return False

    def __len__(self) -> int:
        return len(self._edges)


#: graph -> shared index; weak keys, and the index itself holds no
#: reference back to the graph, so entries die with their graph.
_SHARED_INDICES: "weakref.WeakKeyDictionary[TemporalGraph, TemporalEdgeIndex]" = (
    weakref.WeakKeyDictionary()
)


def edge_index_for(
    graph: TemporalGraph, create: bool = True
) -> Optional[TemporalEdgeIndex]:
    """The process-wide shared :class:`TemporalEdgeIndex` of ``graph``.

    Sliding sweeps, the window-reuse index, and the transformation
    cache's delta-derivation path all consult the same index so the
    ``O(M log M)`` build is paid once per graph.  With ``create=False``
    the call only reports an existing index (``None`` otherwise) --
    used by paths that should stay ``O(M)`` when nothing sliding-shaped
    has touched the graph yet.
    """
    index = _SHARED_INDICES.get(graph)
    if index is None and create:
        index = TemporalEdgeIndex(graph)
        _SHARED_INDICES[graph] = index
    return index
