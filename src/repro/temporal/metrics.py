"""Temporal centrality and latency metrics built on foremost paths.

The paper's related work (Kossinets et al. [21]) studies *information
latency* -- how out-of-date each vertex's view of another can be.  The
metrics here package the library's earliest-arrival machinery into the
standard temporal analogues used in that literature:

* :func:`information_latency` -- per-target delay ``Ã(v) − t_alpha``
  from a source;
* :func:`temporal_closeness` -- closeness centrality under foremost
  delays;
* :func:`reachability_ratio` -- fraction of the network a vertex can
  inform;
* :func:`broadcast_profile` -- the cumulative "how many informed by
  time t" curve of a spanning tree, i.e. the dissemination S-curve.

All metrics accept the same ``window`` convention as the MST solvers.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

from repro.temporal.edge import Vertex
from repro.temporal.graph import TemporalGraph
from repro.temporal.paths import earliest_arrival_times
from repro.temporal.window import TimeWindow

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.spanning_tree import TemporalSpanningTree


def information_latency(
    graph: TemporalGraph,
    source: Vertex,
    window: Optional[TimeWindow] = None,
) -> Dict[Vertex, float]:
    """Delay until each reachable vertex first hears from ``source``.

    ``latency(v) = Ã(v) − t_alpha``; the source itself has latency 0.
    Unreachable vertices are absent.
    """
    if window is None:
        window = TimeWindow.unbounded()
    arrivals = earliest_arrival_times(graph, source, window)
    return {v: t - window.t_alpha for v, t in arrivals.items()}


def temporal_closeness(
    graph: TemporalGraph,
    source: Vertex,
    window: Optional[TimeWindow] = None,
) -> float:
    """Harmonic closeness under foremost-path delays.

    ``(1 / (n − 1)) * sum over reachable v != source of 1 / latency(v)``.
    Zero-latency targets (instantaneous contact chains) are clamped to
    the smallest positive latency observed (or 1 when every latency is
    zero) so the harmonic sum stays finite.
    """
    latencies = information_latency(graph, source, window)
    others = [t for v, t in latencies.items() if v != source]
    if not others or graph.num_vertices < 2:
        return 0.0
    positive = [t for t in others if t > 0]
    clamp = min(positive) if positive else 1.0
    total = sum(1.0 / max(t, clamp) for t in others)
    return total / (graph.num_vertices - 1)


def reachability_ratio(
    graph: TemporalGraph,
    source: Vertex,
    window: Optional[TimeWindow] = None,
) -> float:
    """``|V_r| / (n − 1)``: the share of other vertices the source reaches."""
    if graph.num_vertices < 2:
        return 0.0
    latencies = information_latency(graph, source, window)
    reached = len([v for v in latencies if v != source])
    return reached / (graph.num_vertices - 1)


def most_influential_roots(
    graph: TemporalGraph,
    window: Optional[TimeWindow] = None,
    top: int = 5,
) -> List[Tuple[Vertex, int]]:
    """Vertices ranked by how many others they reach (ties by label).

    A brute-force sweep -- one earliest-arrival pass per vertex -- that
    serves both as a library feature (root selection for dissemination
    campaigns) and as the workload of the root-choice examples.
    """
    scores = []
    for vertex in graph.vertices:
        latencies = information_latency(graph, vertex, window)
        scores.append((vertex, len(latencies) - 1))
    scores.sort(key=lambda item: (-item[1], repr(item[0])))
    return scores[:top]


def broadcast_profile(tree: "TemporalSpanningTree") -> List[Tuple[float, int]]:
    """The dissemination S-curve of a spanning tree.

    Returns ``(time, informed_count)`` breakpoints: how many vertices
    (root included) have been informed by each arrival time in the
    tree, sorted by time.  The last count equals ``|V_r|``.
    """
    arrivals = sorted(tree.arrival_times.values())
    profile: List[Tuple[float, int]] = []
    for i, t in enumerate(arrivals, start=1):
        if profile and profile[-1][0] == t:
            profile[-1] = (t, i)
        else:
            profile.append((t, i))
    return profile


def broadcast_makespan(tree: "TemporalSpanningTree") -> float:
    """Alias for the tree's maximum arrival time (broadcast completion)."""
    return tree.max_arrival_time


def average_latency(tree: "TemporalSpanningTree") -> float:
    """Mean delay of the non-root vertices in a spanning tree."""
    delays = [
        t - tree.window.t_alpha
        for v, t in tree.arrival_times.items()
        if v != tree.root
    ]
    if not delays:
        return math.nan
    return sum(delays) / len(delays)
