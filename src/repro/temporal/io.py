"""Reading and writing temporal edge lists.

Two formats are supported:

* **KONECT-style** whitespace rows ``u v [weight] [timestamp]`` with a
  single timestamp per contact (the format of the paper's downloaded
  datasets).  Durations are applied on load (0 or 1 in the paper's
  experiments).
* the library's **native** 5-column format
  ``u v start arrival weight`` preserving full temporal edges.

Lines starting with ``%`` or ``#`` are comments.

Both readers validate rows strictly: non-numeric, nan, or infinite
weights/timestamps, negative weights, and edges arriving before they
start all raise :class:`GraphFormatError` naming the offending line.
"""

from __future__ import annotations

import io
import os
from typing import Callable, Iterable, Iterator, List, TextIO, Union

from repro import faults
from repro.core.errors import GraphFormatError
from repro.resilience.retry import DEFAULT_RETRY_POLICY
from repro.temporal.edge import TemporalEdge
from repro.temporal.graph import TemporalGraph

PathOrFile = Union[str, os.PathLike, TextIO]


def _open_for_read(source: PathOrFile):
    if isinstance(source, (str, os.PathLike)):
        return open(source, "r", encoding="utf-8"), True
    return source, False


class _ReadGuard:
    """Line-stream wrapper around the ``temporal.io.read`` injection site.

    Each line passes through :func:`repro.faults.fire`; a scheduled
    ``corrupt-read`` garbles that line's digits (so strict row
    validation catches it as a :class:`GraphFormatError`) and sets
    :attr:`corrupted`, which tells the retry loop the failure was
    injected -- genuinely malformed files fail on the first attempt
    without re-parsing.
    """

    def __init__(self, handle: Iterable[str]) -> None:
        self._handle = handle
        self.corrupted = False

    def __iter__(self) -> Iterator[str]:
        for line in self._handle:
            if faults.fire("temporal.io.read") == faults.CORRUPT_READ:
                self.corrupted = True
                line = line.translate(str.maketrans("0123456789", "xxxxxxxxxx"))
            yield line


def _read_with_recovery(
    source: PathOrFile, parse: Callable[[Iterable[str]], TemporalGraph]
) -> TemporalGraph:
    """Run ``parse`` over ``source``'s lines, re-reading on recoverable
    failures.

    OS-level errors and *injected* corruption are retried on the
    deterministic backoff schedule -- but only for path-like sources,
    which can be reopened; an already-consumed stream cannot be rewound,
    so stream sources get exactly one attempt.  Genuine format errors
    (no corruption injected on that attempt) always propagate
    immediately.
    """
    reopenable = isinstance(source, (str, os.PathLike))
    policy = DEFAULT_RETRY_POLICY
    attempts = policy.attempts if reopenable else 1
    for attempt in range(attempts):
        last = attempt == attempts - 1
        try:
            handle, should_close = _open_for_read(source)
        except OSError:
            if last:
                raise
            policy.sleep_before_retry(attempt)
            continue
        guard = _ReadGuard(handle)
        try:
            return parse(guard)
        except GraphFormatError:
            if last or not guard.corrupted:
                raise
            policy.sleep_before_retry(attempt)
        except OSError:
            if last:
                raise
            policy.sleep_before_retry(attempt)
        finally:
            if should_close:
                handle.close()
    raise AssertionError("unreachable")  # pragma: no cover


def _open_for_write(target: PathOrFile):
    if isinstance(target, (str, os.PathLike)):
        return open(target, "w", encoding="utf-8"), True
    return target, False


def _parse_vertex(token: str):
    """Vertices are kept as ints when possible, else as strings."""
    try:
        return int(token)
    except ValueError:
        return token


def _parse_float(token: str, lineno: int, column: str) -> float:
    """One finite numeric column, or GraphFormatError naming the line."""
    try:
        value = float(token)
    except ValueError:
        raise GraphFormatError(
            f"line {lineno}: {column} is not a number: {token!r}"
        ) from None
    if value != value or value in (float("inf"), float("-inf")):
        raise GraphFormatError(
            f"line {lineno}: {column} must be finite, got {token!r}"
        )
    return value


def _check_row(lineno: int, start: float, arrival: float, weight: float) -> None:
    """Semantic sanity for one edge row."""
    if arrival < start:
        raise GraphFormatError(
            f"line {lineno}: arrival {arrival:g} precedes start {start:g}"
        )
    if weight < 0:
        raise GraphFormatError(f"line {lineno}: negative weight {weight:g}")


def read_konect(
    source: PathOrFile,
    duration: float = 0.0,
    default_weight: float = 1.0,
) -> TemporalGraph:
    """Load a KONECT-style contact list.

    Each data row is ``u v``, ``u v w``, or ``u v w t``; when the
    timestamp column is missing the row index is used as the timestamp
    (KONECT files without time columns are ordered chronologically).
    Every contact becomes a temporal edge departing at ``t`` and
    arriving at ``t + duration``.
    """

    def parse(lines: Iterable[str]) -> TemporalGraph:
        edges: List[TemporalEdge] = []
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line or line.startswith(("%", "#")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"line {lineno}: expected at least 'u v', got {line!r}"
                )
            u = _parse_vertex(parts[0])
            v = _parse_vertex(parts[1])
            if len(parts) >= 3:
                weight = _parse_float(parts[2], lineno, "weight")
            else:
                weight = default_weight
            if len(parts) >= 4:
                timestamp = _parse_float(parts[3], lineno, "timestamp")
            else:
                timestamp = float(len(edges))
            _check_row(lineno, timestamp, timestamp + duration, weight)
            edges.append(TemporalEdge(u, v, timestamp, timestamp + duration, weight))
        return TemporalGraph(edges)

    return _read_with_recovery(source, parse)


def read_native(source: PathOrFile) -> TemporalGraph:
    """Load the native 5-column ``u v start arrival weight`` format."""

    def parse(lines: Iterable[str]) -> TemporalGraph:
        edges: List[TemporalEdge] = []
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line or line.startswith(("%", "#")):
                continue
            parts = line.split()
            if len(parts) != 5:
                raise GraphFormatError(
                    f"line {lineno}: expected 5 columns "
                    f"'u v start arrival weight', got {len(parts)}"
                )
            start = _parse_float(parts[2], lineno, "start")
            arrival = _parse_float(parts[3], lineno, "arrival")
            weight = _parse_float(parts[4], lineno, "weight")
            _check_row(lineno, start, arrival, weight)
            edges.append(
                TemporalEdge(
                    _parse_vertex(parts[0]),
                    _parse_vertex(parts[1]),
                    start,
                    arrival,
                    weight,
                )
            )
        return TemporalGraph(edges)

    return _read_with_recovery(source, parse)


def write_native(graph: TemporalGraph, target: PathOrFile) -> None:
    """Write a graph in the native 5-column format (chronological order)."""
    handle, should_close = _open_for_write(target)
    try:
        handle.write("# u v start arrival weight\n")
        for edge in graph.chronological_edges():
            handle.write(
                f"{edge.source} {edge.target} {edge.start:g} "
                f"{edge.arrival:g} {edge.weight:g}\n"
            )
    finally:
        if should_close:
            handle.close()


def from_string(text: str, fmt: str = "native", **kwargs) -> TemporalGraph:
    """Parse a graph from an in-memory string (mostly for tests/docs)."""
    buffer = io.StringIO(text)
    if fmt == "native":
        return read_native(buffer)
    if fmt == "konect":
        return read_konect(buffer, **kwargs)
    raise GraphFormatError(f"unknown format {fmt!r}; expected 'native' or 'konect'")
