"""Time-slice snapshot views of a temporal graph.

A standard temporal-network analysis device (see the Holme-Saramäki
survey the paper builds on): partition the timeline into fixed-width
buckets and view each bucket as a static graph.  Useful for eyeballing
activity cycles, for coarse-grained comparisons with static algorithms,
and as input to snapshot-based baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.core.errors import ReproError
from repro.static.digraph import StaticDigraph
from repro.temporal.graph import TemporalGraph
from repro.temporal.index import TemporalEdgeIndex
from repro.temporal.window import TimeWindow


@dataclass(frozen=True)
class Snapshot:
    """One time slice: its window and the edges active inside it."""

    window: TimeWindow
    graph: TemporalGraph

    @property
    def num_contacts(self) -> int:
        return self.graph.num_edges

    def static_view(self) -> StaticDigraph:
        """The slice as a static digraph (cheapest weight per pair)."""
        digraph = StaticDigraph()
        for (u, v), w in self.graph.static_edges().items():
            digraph.add_edge(u, v, w)
        return digraph


def iter_snapshots(
    graph: TemporalGraph,
    bucket_length: float,
) -> Iterator[Snapshot]:
    """Partition the graph's time span into consecutive buckets.

    Buckets are half-open conceptually but implemented as closed
    windows ending just before the next bucket's start edge-wise: an
    edge belongs to the bucket containing its start time, provided it
    also *arrives* within that bucket (other edges span buckets and are
    dropped from all slices -- snapshotting is inherently lossy, which
    is exactly why the temporal algorithms exist).

    Raises
    ------
    ReproError
        For a non-positive bucket length or an empty graph.
    """
    if bucket_length <= 0:
        raise ReproError("bucket_length must be positive")
    if graph.num_edges == 0:
        raise ReproError("cannot snapshot an empty temporal graph")
    t_start, t_end = graph.time_span()
    index = TemporalEdgeIndex(graph)
    t = t_start
    while t <= t_end:
        window = TimeWindow(t, min(t + bucket_length, t_end))
        yield Snapshot(window, index.subgraph(window, keep_vertices=True))
        if t + bucket_length >= t_end:
            return
        t += bucket_length


def snapshot_list(graph: TemporalGraph, bucket_length: float) -> List[Snapshot]:
    """Materialised :func:`iter_snapshots`."""
    return list(iter_snapshots(graph, bucket_length))


def activity_profile(
    graph: TemporalGraph,
    bucket_length: float,
) -> List[Tuple[float, int]]:
    """``(bucket start, contact count)`` series -- the activity curve."""
    return [
        (snap.window.t_alpha, snap.num_contacts)
        for snap in iter_snapshots(graph, bucket_length)
    ]


def coverage_lost_by_snapshotting(
    graph: TemporalGraph,
    bucket_length: float,
) -> Dict[str, int]:
    """How many temporal edges no snapshot can represent.

    Edges spanning a bucket boundary disappear from every slice; the
    returned counts quantify the information loss of the snapshot
    abstraction versus the temporal one.
    """
    kept = 0
    for snap in iter_snapshots(graph, bucket_length):
        kept += snap.num_contacts
    return {"total_edges": graph.num_edges, "kept": kept, "lost": graph.num_edges - kept}
