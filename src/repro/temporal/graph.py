"""The :class:`TemporalGraph` container and the paper's two input formats.

The paper's algorithms consume temporal graphs in two layouts:

* a **chronological edge list** -- all temporal edges sorted by
  non-decreasing start time (Algorithm 1's raw-stream input), and
* a **sorted adjacency edge list** -- per-vertex out-edge arrays sorted
  by *non-increasing* start time (Algorithm 2's input).

Both are produced lazily and cached; a graph is immutable once built.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.errors import GraphFormatError
from repro.core.numeric import is_zero
from repro.temporal.edge import TemporalEdge, Vertex

#: Tag marking the columnar ``__getstate__`` layout.  The legacy layout
#: is a 2-tuple whose first element is the edge *tuple*, so a string
#: tag in slot 0 is unambiguous and old pickles keep loading.
_COLUMNAR_STATE_TAG = "repro-columnar-v1"


class TemporalGraph:
    """An immutable directed temporal multigraph ``G = (V, E)``.

    Parameters
    ----------
    edges:
        The temporal edges.  Duplicates (parallel edges with different
        timestamps) are expected and preserved; the paper's ``pi``
        statistic measures exactly that multiplicity.
    vertices:
        Optional extra vertices that carry no incident edge.  Endpoints
        of ``edges`` are always included.

    Raises
    ------
    GraphFormatError
        If any edge arrives before it starts or has negative weight.
    """

    __slots__ = (
        "_edges",
        "_vertices",
        "_chronological",
        "_arrival_sorted",
        "_adjacency_desc",
        "_adjacency_asc",
        "_starts_asc",
        "_in_edges",
        "_out_edges",
        "_prepare_memo",
        "_columnar",
        "__weakref__",
    )

    def __init__(
        self,
        edges: Iterable[TemporalEdge],
        vertices: Optional[Iterable[Vertex]] = None,
    ) -> None:
        edge_list: List[TemporalEdge] = []
        vertex_set: Set[Vertex] = set(vertices) if vertices is not None else set()
        for edge in edges:
            if not isinstance(edge, TemporalEdge):
                edge = TemporalEdge(*edge)
            if not edge.is_valid():
                raise GraphFormatError(
                    f"invalid temporal edge {edge!r}: requires arrival >= start "
                    "and weight >= 0"
                )
            edge_list.append(edge)
            vertex_set.add(edge.source)
            vertex_set.add(edge.target)
        self._edges: Tuple[TemporalEdge, ...] = tuple(edge_list)
        self._vertices: FrozenSet[Vertex] = frozenset(vertex_set)
        self._chronological: Optional[Tuple[TemporalEdge, ...]] = None
        self._arrival_sorted: Optional[Tuple[TemporalEdge, ...]] = None
        self._adjacency_desc: Optional[Dict[Vertex, List[TemporalEdge]]] = None
        self._adjacency_asc: Optional[Dict[Vertex, List[TemporalEdge]]] = None
        self._starts_asc: Optional[Dict[Vertex, List[float]]] = None
        self._in_edges: Optional[Dict[Vertex, List[TemporalEdge]]] = None
        self._out_edges: Optional[Dict[Vertex, List[TemporalEdge]]] = None
        self._prepare_memo: Optional[OrderedDict[Any, Any]] = None
        self._columnar: Optional[Any] = None

    # ------------------------------------------------------------------
    # Derived-state lifetime
    # ------------------------------------------------------------------
    def columnar(self) -> Any:
        """The graph's :class:`repro.temporal.columnar.ColumnarEdgeStore`.

        Built lazily on first use and cached; rebuilt (with a fresh
        ``generation``) when the active columnar backend has changed
        since the cached store was built, so a ``force_backend`` /
        ``REPRO_FORCE_PURE`` switch can never serve arrays from the
        wrong backend.  Consumers caching state derived from the store
        must key it on ``store.generation``.
        """
        from repro.temporal.columnar import ColumnarEdgeStore, active_backend

        store = self._columnar
        if store is None or store.backend != active_backend():
            store = ColumnarEdgeStore(self._edges, self._vertices)
            self._columnar = store
        return store

    def columnar_or_none(self) -> Any:
        """The cached store if one was already built (no build triggered)."""
        return self._columnar

    def prepare_memo(self) -> OrderedDict[Any, Any]:
        """The per-graph memo slot used by ``prepare_mstw_instance``.

        The memo lives *on* the graph rather than in a module-level
        weak-keyed map because memoised results (transformed graphs,
        prepared DST instances) reference the graph they describe: a
        value->key reference inside a ``WeakKeyDictionary`` pins the
        entry forever, while a graph->memo->graph cycle is ordinary
        garbage the collector reclaims once the graph is dropped.
        :mod:`repro.core.mstw` owns the contents and the locking.
        """
        if self._prepare_memo is None:
            self._prepare_memo = OrderedDict()
        return self._prepare_memo

    def __getstate__(self) -> Tuple[Any, Any]:
        # Pickle only the defining state.  The lazy layout caches and
        # the prepare memo are per-process derived state; shipping them
        # (e.g. in a worker initializer payload) would multiply the
        # payload by the size of the closure matrices.
        #
        # When the columnar store is already built (any graph that has
        # been through a batch/sweep driver), ship its backend-neutral
        # column export instead of the per-edge object tuple: a handful
        # of stdlib arrays pickles several times smaller and faster than
        # M ``TemporalEdge`` NamedTuples, and unpickles identically in a
        # worker without numpy.  The guard on ``store.edges`` keeps a
        # stale store (impossible today -- graphs are immutable -- but
        # cheap to check) from shadowing the real edges.
        store = self._columnar
        if store is not None and store.edges is self._edges:
            return (_COLUMNAR_STATE_TAG, store.export_columns())
        return (self._edges, self._vertices)

    def __setstate__(self, state: Tuple[Any, Any]) -> None:
        if state[0] == _COLUMNAR_STATE_TAG:
            from repro.temporal.columnar import edges_from_columns

            columns = state[1]
            # ``labels`` includes isolated vertices (the store interns
            # ``graph.vertices`` after the edge endpoints), so the
            # vertex set round-trips exactly.
            self._edges = tuple(edges_from_columns(columns))
            self._vertices = frozenset(columns["labels"])
        else:
            self._edges, self._vertices = state
        self._chronological = None
        self._arrival_sorted = None
        self._adjacency_desc = None
        self._adjacency_asc = None
        self._starts_asc = None
        self._in_edges = None
        self._out_edges = None
        self._prepare_memo = None
        self._columnar = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def edges(self) -> Tuple[TemporalEdge, ...]:
        """All temporal edges in insertion order."""
        return self._edges

    @property
    def vertices(self) -> FrozenSet[Vertex]:
        """The vertex set ``V`` (including isolated vertices)."""
        return self._vertices

    @property
    def num_vertices(self) -> int:
        """``n = |V|``."""
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        """``M = |E|`` counting parallel temporal edges."""
        return len(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[TemporalEdge]:
        return iter(self._edges)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._vertices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TemporalGraph(n={self.num_vertices}, M={self.num_edges})"
        )

    # ------------------------------------------------------------------
    # Input formats
    # ------------------------------------------------------------------
    def chronological_edges(self) -> Tuple[TemporalEdge, ...]:
        """Edges sorted by non-decreasing start time (Algorithm 1 input)."""
        if self._chronological is None:
            self._chronological = tuple(
                sorted(self._edges, key=lambda e: (e.start, e.arrival))
            )
        return self._chronological

    def arrival_sorted_edges(self) -> Tuple[TemporalEdge, ...]:
        """Edges sorted by non-decreasing arrival time.

        Section 3 notes Algorithm 1 is also correct under this ordering
        (for non-zero durations); exposed so tests can exercise that
        claim.
        """
        if self._arrival_sorted is None:
            self._arrival_sorted = tuple(
                sorted(self._edges, key=lambda e: (e.arrival, e.start))
            )
        return self._arrival_sorted

    def sorted_adjacency(self) -> Dict[Vertex, List[TemporalEdge]]:
        """Out-edges per vertex sorted by non-increasing start time.

        This is the paper's "sorted adjacency edge list" format consumed
        by Algorithm 2.  Every vertex of ``V`` is present as a key (with
        an empty list when it has no out-edge).
        """
        if self._adjacency_desc is None:
            adjacency: Dict[Vertex, List[TemporalEdge]] = {
                v: [] for v in self._vertices
            }
            for edge in self._edges:
                adjacency[edge.source].append(edge)
            for out_list in adjacency.values():
                out_list.sort(key=lambda e: -e.start)
            self._adjacency_desc = adjacency
        return self._adjacency_desc

    def ascending_adjacency(self) -> Dict[Vertex, List[TemporalEdge]]:
        """Out-edges per vertex sorted by ascending start time.

        The layout every label-setting temporal-path sweep consumes
        (:mod:`repro.temporal.paths`); cached so repeated single-source
        queries -- root selection probes one sweep per candidate vertex
        -- stop rebuilding and re-sorting the adjacency per call.
        """
        if self._adjacency_asc is None:
            adjacency: Dict[Vertex, List[TemporalEdge]] = {
                v: [] for v in self._vertices
            }
            for edge in self._edges:
                adjacency[edge.source].append(edge)
            for out_list in adjacency.values():
                out_list.sort(key=lambda e: e.start)
            self._adjacency_asc = adjacency
        return self._adjacency_asc

    def ascending_starts(self) -> Dict[Vertex, List[float]]:
        """Per-vertex start times aligned with :meth:`ascending_adjacency`.

        Sweeps bisect this to find the first usable out-edge; cached for
        the same reason as the adjacency itself.
        """
        if self._starts_asc is None:
            self._starts_asc = {
                v: [e.start for e in edges]
                for v, edges in self.ascending_adjacency().items()
            }
        return self._starts_asc

    def out_edges(self, vertex: Vertex) -> List[TemporalEdge]:
        """``N_o(u)``: the out temporal edges incident to ``vertex``."""
        if self._out_edges is None:
            grouped: Dict[Vertex, List[TemporalEdge]] = {v: [] for v in self._vertices}
            for edge in self._edges:
                grouped[edge.source].append(edge)
            self._out_edges = grouped
        return self._out_edges.get(vertex, [])

    def in_edges(self, vertex: Vertex) -> List[TemporalEdge]:
        """``N_i(v)``: the in temporal edges incident to ``vertex``."""
        if self._in_edges is None:
            grouped: Dict[Vertex, List[TemporalEdge]] = {v: [] for v in self._vertices}
            for edge in self._edges:
                grouped[edge.target].append(edge)
            self._in_edges = grouped
        return self._in_edges.get(vertex, [])

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def static_edges(self) -> Dict[Tuple[Vertex, Vertex], float]:
        """The static projection ``G_S``: distinct ``(u, v)`` pairs.

        The returned mapping carries, for each static edge, the minimum
        weight over its parallel temporal edges (a natural choice when a
        single static weight is needed; the paper only uses ``|E_S|``).
        """
        static: Dict[Tuple[Vertex, Vertex], float] = {}
        for edge in self._edges:
            key = edge.static_key()
            if key not in static or edge.weight < static[key]:
                static[key] = edge.weight
        return static

    def restricted(self, t_alpha: float, t_omega: float) -> "TemporalGraph":
        """The subgraph ``G[t_alpha, t_omega]`` of edges within the window.

        Only edges with ``start >= t_alpha`` and ``arrival <= t_omega``
        survive; vertices are recomputed from the surviving edges (the
        paper's G' extraction in Section 5.1).

        When the graph's columnar store is already built, the scan is
        answered from it in ``O(log M + output)`` (same edges, same
        insertion order); a one-shot call on a cold graph stays a plain
        ``O(M)`` pass rather than paying the store build.
        """
        store = self._columnar
        if store is not None:
            picked = store.window_positions_graph_order(t_alpha, t_omega)
            return TemporalGraph(store.edges_at(picked))
        return TemporalGraph(
            edge for edge in self._edges if edge.within(t_alpha, t_omega)
        )

    def with_durations(self, duration: float) -> "TemporalGraph":
        """A copy with every edge duration forced to ``duration``.

        The paper's Table 2 experiment sets all durations to 1 (as in
        Wu et al. [27]); Table 3 sets them to 0.  Arrival times become
        ``start + duration``.
        """
        if duration < 0:
            raise GraphFormatError("duration must be non-negative")
        return TemporalGraph(
            TemporalEdge(e.source, e.target, e.start, e.start + duration, e.weight)
            for e in self._edges
        )

    def with_weights(self, weights: Dict[Tuple[Vertex, Vertex], float]) -> "TemporalGraph":
        """A copy whose edge weights come from a static ``(u, v) -> w`` map.

        Used by the weight-cascade assignment of Section 5.1, where the
        weight depends only on the static endpoints.
        """
        missing = {
            e.static_key() for e in self._edges if e.static_key() not in weights
        }
        if missing:
            raise GraphFormatError(
                f"weight map missing {len(missing)} static edges, e.g. "
                f"{next(iter(missing))!r}"
            )
        return TemporalGraph(
            TemporalEdge(e.source, e.target, e.start, e.arrival, weights[e.static_key()])
            for e in self._edges
        )

    # ------------------------------------------------------------------
    # Time span helpers
    # ------------------------------------------------------------------
    def time_span(self) -> Tuple[float, float]:
        """``[t_A, t_Omega]``: the smallest window containing every edge.

        Raises
        ------
        GraphFormatError
            If the graph has no edges.
        """
        if not self._edges:
            raise GraphFormatError("time_span of an empty temporal graph")
        t_a = min(e.start for e in self._edges)
        t_omega = max(e.arrival for e in self._edges)
        return t_a, t_omega

    def has_zero_duration_edge(self) -> bool:
        """Whether any edge has ``t_s(e) == t_a(e)`` (up to epsilon)."""
        return any(is_zero(e.duration) for e in self._edges)

    def distinct_time_instances(self) -> int:
        """``|Gamma_G|``: the number of distinct timestamps in the graph."""
        instants: Set[float] = set()
        for edge in self._edges:
            instants.add(edge.start)
            instants.add(edge.arrival)
        return len(instants)


def from_quintuples(
    rows: Sequence[Tuple[Any, ...]],
    vertices: Optional[Iterable[Vertex]] = None,
) -> TemporalGraph:
    """Build a :class:`TemporalGraph` from raw ``(u, v, t_u, t̂_v[, w])`` rows."""
    edges: List[TemporalEdge] = []
    for row in rows:
        if len(row) == 4:
            edges.append(TemporalEdge(row[0], row[1], row[2], row[3], 1.0))
        elif len(row) == 5:
            edges.append(TemporalEdge(*row))
        else:
            raise GraphFormatError(
                f"expected 4- or 5-tuples, got row of length {len(row)}: {row!r}"
            )
    return TemporalGraph(edges, vertices=vertices)
