"""Random temporal graph generators.

These generators provide controlled workloads for tests, property-based
testing, and the synthetic stand-ins for the paper's datasets (see
:mod:`repro.datasets.synthetic` for the named dataset shapes).

All generators take an explicit ``seed`` (or a ``random.Random``) so
every experiment in the benchmark harness is reproducible.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Union

from repro.temporal.edge import TemporalEdge, make_edge
from repro.temporal.graph import TemporalGraph

RandomLike = Union[int, random.Random, None]


def _rng(seed: RandomLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def uniform_temporal_graph(
    num_vertices: int,
    num_edges: int,
    time_range: float = 1000.0,
    max_duration: float = 10.0,
    zero_duration: bool = False,
    max_weight: float = 10.0,
    seed: RandomLike = None,
) -> TemporalGraph:
    """A temporal Erdos-Renyi-style multigraph.

    ``num_edges`` temporal edges are drawn with uniformly random distinct
    endpoints, integer start times in ``[0, time_range]``, durations in
    ``[1, max_duration]`` (or exactly 0 when ``zero_duration``), and
    integer weights in ``[1, max_weight]``.
    """
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    rng = _rng(seed)
    edges: List[TemporalEdge] = []
    for _ in range(num_edges):
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices - 1)
        if v >= u:
            v += 1
        start = float(rng.randint(0, int(time_range)))
        duration = 0.0 if zero_duration else float(rng.randint(1, int(max_duration)))
        weight = float(rng.randint(1, int(max_weight)))
        edges.append(make_edge(u, v, start, start + duration, weight))
    return TemporalGraph(edges, vertices=range(num_vertices))


def preferential_temporal_graph(
    num_vertices: int,
    num_edges: int,
    time_range: float = 1000.0,
    multiplicity: int = 1,
    zero_duration: bool = False,
    hub_bias: float = 0.75,
    seed: RandomLike = None,
) -> TemporalGraph:
    """A skewed-degree temporal multigraph resembling social networks.

    A fraction ``hub_bias`` of edge endpoints is drawn from a small hub
    set (as in scale-free communication networks).  Static pairs are
    sampled *without replacement*, and each pair receives a random
    number of parallel temporal edges up to ``multiplicity`` with
    increasing timestamps -- so ``multiplicity`` directly controls the
    paper's ``pi`` statistic (e.g. 742 for Facebook, 1074 for Enron).
    """
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    rng = _rng(seed)
    num_hubs = max(2, num_vertices // 20)

    def pick(biased: bool) -> int:
        if biased:
            return rng.randrange(num_hubs)
        return rng.randrange(num_vertices)

    used = set()
    edges: List[TemporalEdge] = []
    while len(edges) < num_edges:
        pair = None
        for attempt in range(20):
            # Fall back to unbiased picks once the hub pairs are used up.
            biased = rng.random() < hub_bias and attempt < 10
            u = pick(biased)
            v = pick(biased and rng.random() < 0.5)
            if u != v and (u, v) not in used:
                pair = (u, v)
                break
        if pair is None:
            # Distinct pairs are (nearly) exhausted -- dense request on a
            # small vertex set.  Reuse an existing pair with extra copies
            # so the requested edge count is still met.
            u = rng.randrange(num_vertices)
            v = rng.randrange(num_vertices - 1)
            if v >= u:
                v += 1
            pair = (u, v)
        used.add(pair)
        u, v = pair
        copies = min(rng.randint(1, multiplicity), num_edges - len(edges))
        base = rng.randint(0, max(1, int(time_range) - copies - 2))
        for j in range(copies):
            start = float(base + j)
            duration = 0.0 if zero_duration else 1.0
            edges.append(make_edge(u, v, start, start + duration, 1.0))
    return TemporalGraph(edges, vertices=range(num_vertices))


def reachable_temporal_graph(
    num_vertices: int,
    extra_edges: int,
    root: int = 0,
    time_range: float = 1000.0,
    zero_duration: bool = False,
    max_weight: float = 10.0,
    seed: RandomLike = None,
) -> TemporalGraph:
    """A temporal graph in which every vertex is reachable from ``root``.

    First builds a random time-respecting backbone tree (each vertex is
    attached to an already-reached vertex with a departure no earlier
    than the parent's arrival), then adds ``extra_edges`` random edges.
    This is the workload used when an experiment requires ``V_r = V``
    (the Section 4 assumption).
    """
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    rng = _rng(seed)
    edges: List[TemporalEdge] = []
    order = [v for v in range(num_vertices) if v != root]
    rng.shuffle(order)
    arrival = {root: 0.0}
    reached = [root]
    slack = max(1.0, time_range / (2 * num_vertices))
    for v in order:
        parent = rng.choice(reached)
        start = arrival[parent] + rng.random() * slack
        duration = 0.0 if zero_duration else rng.random() * slack + 0.01
        weight = float(rng.randint(1, int(max_weight)))
        edges.append(make_edge(parent, v, start, start + duration, weight))
        arrival[v] = start + duration
        reached.append(v)
    for _ in range(extra_edges):
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices - 1)
        if v >= u:
            v += 1
        start = rng.random() * time_range
        duration = 0.0 if zero_duration else rng.random() * slack + 0.01
        weight = float(rng.randint(1, int(max_weight)))
        edges.append(make_edge(u, v, start, start + duration, weight))
    return TemporalGraph(edges, vertices=range(num_vertices))


def layered_temporal_graph(
    layers: Sequence[int],
    edges_per_layer: int,
    layer_gap: float = 10.0,
    zero_duration: bool = False,
    max_weight: float = 10.0,
    seed: RandomLike = None,
) -> TemporalGraph:
    """A layered DAG-like temporal graph (flight/transport topology).

    ``layers[i]`` vertices form layer ``i``; edges connect consecutive
    layers with departure times inside the layer's time slot, so every
    layer-0 vertex is a natural root.  Useful for transport-schedule
    style examples and for exercising deep (high level-number) trees.
    """
    rng = _rng(seed)
    offsets = []
    total = 0
    for size in layers:
        offsets.append(total)
        total += size
    edges: List[TemporalEdge] = []
    for i in range(len(layers) - 1):
        for _ in range(edges_per_layer):
            u = offsets[i] + rng.randrange(layers[i])
            v = offsets[i + 1] + rng.randrange(layers[i + 1])
            start = i * layer_gap + rng.random() * (layer_gap * 0.5)
            duration = 0.0 if zero_duration else rng.random() * (layer_gap * 0.4)
            weight = float(rng.randint(1, int(max_weight)))
            edges.append(make_edge(u, v, start, start + duration, weight))
    return TemporalGraph(edges, vertices=range(total))
