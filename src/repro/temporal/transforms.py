"""Timestamp and weight transforms on temporal graphs.

Dataset preparation steps the paper mentions in passing -- quantising
DBLP timestamps to years, normalising the Phone epoch, unit-duration
contacts -- as reusable, composable pure functions.  Each returns a new
:class:`TemporalGraph`; the input is never mutated.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.core.errors import GraphFormatError
from repro.temporal.edge import TemporalEdge, make_edge
from repro.temporal.graph import TemporalGraph


def shift_time(graph: TemporalGraph, offset: float) -> TemporalGraph:
    """Add ``offset`` to every start and arrival time."""
    return TemporalGraph(
        (
            make_edge(e.source, e.target, e.start + offset, e.arrival + offset, e.weight)
            for e in graph.edges
        ),
        vertices=graph.vertices,
    )


def normalize_epoch(graph: TemporalGraph) -> TemporalGraph:
    """Shift times so the earliest start becomes 0.

    Useful for Unix-time datasets whose raw timestamps are huge; the
    algorithms are translation-invariant, so results are unchanged.
    """
    if graph.num_edges == 0:
        return graph
    t_start, _ = graph.time_span()
    return shift_time(graph, -t_start)


def scale_time(graph: TemporalGraph, factor: float) -> TemporalGraph:
    """Multiply every timestamp by ``factor > 0`` (unit conversion)."""
    if factor <= 0:
        raise GraphFormatError(f"time scale factor must be positive, got {factor}")
    return TemporalGraph(
        (
            make_edge(e.source, e.target, e.start * factor, e.arrival * factor, e.weight)
            for e in graph.edges
        ),
        vertices=graph.vertices,
    )


def quantize_timestamps(graph: TemporalGraph, granularity: float) -> TemporalGraph:
    """Snap every timestamp down to a multiple of ``granularity``.

    The DBLP-style coarsening: publication times become years, making
    same-period contacts simultaneous.  The quantised arrival is
    clamped to stay >= the quantised start, so edges remain valid
    (an edge contained within one bucket becomes zero-duration --
    exactly the regime Algorithm 2 exists for).
    """
    if granularity <= 0:
        raise GraphFormatError(f"granularity must be positive, got {granularity}")

    def snap(t: float) -> float:
        return math.floor(t / granularity) * granularity

    edges = []
    for e in graph.edges:
        start = snap(e.start)
        arrival = max(start, snap(e.arrival))
        edges.append(make_edge(e.source, e.target, start, arrival, e.weight))
    return TemporalGraph(edges, vertices=graph.vertices)


def map_weights(
    graph: TemporalGraph,
    fn: Callable[[TemporalEdge], float],
) -> TemporalGraph:
    """Recompute every weight as ``fn(edge)`` (must be non-negative)."""
    edges = []
    for e in graph.edges:
        w = fn(e)
        if w < 0:
            raise GraphFormatError(f"mapped weight {w} for {e} is negative")
        edges.append(make_edge(e.source, e.target, e.start, e.arrival, w))
    return TemporalGraph(edges, vertices=graph.vertices)


def relabel_vertices(
    graph: TemporalGraph,
    fn: Callable,
) -> TemporalGraph:
    """Apply a vertex-renaming function to every endpoint.

    Raises
    ------
    GraphFormatError
        If ``fn`` maps two distinct vertices to the same label
        (silent merging would change the graph's semantics).
    """
    mapping = {v: fn(v) for v in graph.vertices}
    if len(set(mapping.values())) != len(mapping):
        raise GraphFormatError("vertex relabelling is not injective")
    return TemporalGraph(
        (
            make_edge(mapping[e.source], mapping[e.target], e.start, e.arrival, e.weight)
            for e in graph.edges
        ),
        vertices=mapping.values(),
    )
