"""Temporal path algorithms (the substrate from Xuan et al. / Wu et al.).

The paper builds on single-source temporal path computations: *foremost*
(earliest-arrival) paths define ``MST_a`` and the reachable set ``V_r``;
*shortest* (minimum-weight) paths appear inside the transformed graph's
metric closure.  This module provides reference implementations that are
correct for arbitrary (including zero) edge durations.  They serve both
as a library feature and as independent oracles against which the
paper's optimised Algorithms 1 and 2 are tested.

All functions are label-setting (Dijkstra-style) over arrival times,
which is valid because arrival times along a time-respecting path are
non-decreasing.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Set, Tuple

from repro.temporal.edge import TemporalEdge, Vertex
from repro.temporal.graph import TemporalGraph
from repro.temporal.window import TimeWindow


def _ascending_adjacency(graph: TemporalGraph) -> Dict[Vertex, List[TemporalEdge]]:
    """Out-edges per vertex sorted by ascending start time (graph-cached)."""
    return graph.ascending_adjacency()


def earliest_arrival_times(
    graph: TemporalGraph,
    source: Vertex,
    window: Optional[TimeWindow] = None,
) -> Dict[Vertex, float]:
    """Earliest arrival time ``Ã(v)`` from ``source`` to every reachable ``v``.

    The source itself is reported with arrival ``t_alpha``.  Vertices not
    reachable through a time-respecting path within the window are
    absent from the result.

    Arrival times are reported as floats, and the result dict is built
    in canonical ``(arrival, columnar intern id)`` order, whichever
    backend computed it.  Under the numpy backend the sweep is the
    columnar store's chunked scatter-min relaxation
    (:meth:`ColumnarEdgeStore.earliest_arrival`); the pure backend runs
    the heap-based label-setting sweep below, normalised to the same
    form.  Both are correct for zero-duration edges, unlike the
    one-pass Algorithm 1, and the equivalence is property-tested.
    """
    if window is None:
        window = TimeWindow.unbounded()
    if source not in graph.vertices:
        return {}
    store = graph.columnar()
    if store.backend == "numpy":
        return dict(store.earliest_arrival(source, window.t_alpha, window.t_omega))
    raw = _earliest_arrival_heap(graph, source, window)
    ids = store.vertex_ids
    return {
        v: float(t)
        for v, t in sorted(raw.items(), key=lambda kv: (kv[1], ids[kv[0]]))
    }


def _earliest_arrival_heap(
    graph: TemporalGraph,
    source: Vertex,
    window: TimeWindow,
) -> Dict[Vertex, float]:
    """The reference heap sweep (pure backend path, and the test oracle).

    A vertex popped with the minimum tentative arrival is final,
    because every subsequent relaxation can only yield arrivals that
    are at least as late.
    """
    adjacency = _ascending_adjacency(graph)
    starts = graph.ascending_starts()
    arrival: Dict[Vertex, float] = {source: window.t_alpha}
    settled: Set[Vertex] = set()
    heap: List[Tuple[float, int, Vertex]] = [(window.t_alpha, 0, source)]
    counter = 1
    while heap:
        t, _, u = heapq.heappop(heap)
        if u in settled or t > arrival.get(u, math.inf):
            continue
        settled.add(u)
        # Relax every out-edge departing at or after our arrival at u.
        idx = bisect_left(starts[u], t)
        for edge in adjacency[u][idx:]:
            if edge.arrival > window.t_omega:
                continue
            if edge.arrival < arrival.get(edge.target, math.inf):
                arrival[edge.target] = edge.arrival
                heapq.heappush(heap, (edge.arrival, counter, edge.target))
                counter += 1
    return arrival


def earliest_arrival_path(
    graph: TemporalGraph,
    source: Vertex,
    target: Vertex,
    window: Optional[TimeWindow] = None,
) -> Optional[List[TemporalEdge]]:
    """A foremost (earliest-arrival) path ``source -> target``.

    Returns the list of temporal edges of one optimal path, ``[]`` when
    ``target == source``, and ``None`` when the target is unreachable
    within the window.  The path's arrival time equals
    ``earliest_arrival_times(...)[target]``.
    """
    if window is None:
        window = TimeWindow.unbounded()
    if source not in graph.vertices or target not in graph.vertices:
        return None
    if source == target:
        return []
    adjacency = _ascending_adjacency(graph)
    starts = graph.ascending_starts()
    arrival: Dict[Vertex, float] = {source: window.t_alpha}
    parent: Dict[Vertex, TemporalEdge] = {}
    settled: Set[Vertex] = set()
    heap: List[Tuple[float, int, Vertex]] = [(window.t_alpha, 0, source)]
    counter = 1
    while heap:
        t, _, u = heapq.heappop(heap)
        if u in settled or t > arrival.get(u, math.inf):
            continue
        if u == target:
            break
        settled.add(u)
        idx = bisect_left(starts[u], t)
        for edge in adjacency[u][idx:]:
            if edge.arrival > window.t_omega:
                continue
            if edge.arrival < arrival.get(edge.target, math.inf):
                arrival[edge.target] = edge.arrival
                parent[edge.target] = edge
                heapq.heappush(heap, (edge.arrival, counter, edge.target))
                counter += 1
    if target not in parent:
        return None
    path: List[TemporalEdge] = []
    current = target
    while current != source:
        edge = parent[current]
        path.append(edge)
        current = edge.source
    path.reverse()
    return path


def reachable_set(
    graph: TemporalGraph,
    source: Vertex,
    window: Optional[TimeWindow] = None,
) -> Set[Vertex]:
    """All vertices reachable from ``source`` within the window (incl. source)."""
    return set(earliest_arrival_times(graph, source, window))


def latest_departure_times(
    graph: TemporalGraph,
    target: Vertex,
    window: Optional[TimeWindow] = None,
) -> Dict[Vertex, float]:
    """Latest time one can leave each vertex and still reach ``target``.

    The symmetric counterpart of earliest arrival: traverses in-edges
    backwards with a max-heap.  ``target`` itself is reported with
    departure ``t_omega``.
    """
    if window is None:
        window = TimeWindow.unbounded()
    if target not in graph.vertices:
        return {}
    in_adjacency: Dict[Vertex, List[TemporalEdge]] = {v: [] for v in graph.vertices}
    for edge in graph.edges:
        in_adjacency[edge.target].append(edge)
    for edges in in_adjacency.values():
        edges.sort(key=lambda e: e.arrival)
    arrivals: Dict[Vertex, List[float]] = {
        v: [e.arrival for e in edges] for v, edges in in_adjacency.items()
    }
    departure: Dict[Vertex, float] = {target: window.t_omega}
    settled: Set[Vertex] = set()
    heap: List[Tuple[float, int, Vertex]] = [(-window.t_omega, 0, target)]
    counter = 1
    while heap:
        neg_t, _, v = heapq.heappop(heap)
        t = -neg_t
        if v in settled or t < departure.get(v, -math.inf):
            continue
        settled.add(v)
        # Relax every in-edge arriving no later than our departure from v.
        hi = bisect_right(arrivals[v], t)
        for edge in in_adjacency[v][:hi]:
            if edge.start < window.t_alpha:
                continue
            if edge.start > departure.get(edge.source, -math.inf):
                departure[edge.source] = edge.start
                heapq.heappush(heap, (-edge.start, counter, edge.source))
                counter += 1
    return departure


def fastest_path_durations(
    graph: TemporalGraph,
    source: Vertex,
    window: Optional[TimeWindow] = None,
) -> Dict[Vertex, float]:
    """Minimum elapsed time (arrival - departure) from ``source`` to each vertex.

    Implemented by the standard reduction: for every distinct departure
    time ``t`` of an out-edge of ``source``, run an earliest-arrival
    sweep restricted to departures at or after ``t`` and keep the best
    span per target.  The source is reported with duration 0.
    """
    if window is None:
        window = TimeWindow.unbounded()
    departures = sorted(
        {
            e.start
            for e in graph.out_edges(source)
            if e.start >= window.t_alpha and e.arrival <= window.t_omega
        }
    )
    best: Dict[Vertex, float] = {source: 0.0}
    for t in departures:
        sub_window = TimeWindow(t, window.t_omega)
        arrivals = earliest_arrival_times(graph, source, sub_window)
        for vertex, arr in arrivals.items():
            if vertex == source:
                continue
            span = arr - t
            if span < best.get(vertex, math.inf):
                best[vertex] = span
    return best


def shortest_path_distances(
    graph: TemporalGraph,
    source: Vertex,
    window: Optional[TimeWindow] = None,
) -> Dict[Vertex, float]:
    """Minimum total edge weight of a time-respecting path to each vertex.

    Runs Dijkstra over ``(vertex, arrival-time)`` states -- equivalent to
    shortest paths in the paper's transformed graph but computed on the
    fly.  Intended for moderate graphs (tests, oracles); the production
    path for minimum-weight structures is the Section 4 pipeline.
    """
    if window is None:
        window = TimeWindow.unbounded()
    if source not in graph.vertices:
        return {}
    adjacency = _ascending_adjacency(graph)
    starts = graph.ascending_starts()
    # State = (vertex, arrival time at vertex).  dist maps states to the
    # cheapest cost of reaching that state.
    dist: Dict[Tuple[Vertex, float], float] = {(source, window.t_alpha): 0.0}
    best: Dict[Vertex, float] = {source: 0.0}
    heap: List[Tuple[float, int, Vertex, float]] = [(0.0, 0, source, window.t_alpha)]
    counter = 1
    while heap:
        cost, _, u, t = heapq.heappop(heap)
        if cost > dist.get((u, t), math.inf):
            continue
        idx = bisect_left(starts[u], t)
        for edge in adjacency[u][idx:]:
            if edge.arrival > window.t_omega:
                continue
            state = (edge.target, edge.arrival)
            new_cost = cost + edge.weight
            if new_cost < dist.get(state, math.inf):
                dist[state] = new_cost
                if new_cost < best.get(edge.target, math.inf):
                    best[edge.target] = new_cost
                heapq.heappush(heap, (new_cost, counter, edge.target, edge.arrival))
                counter += 1
    return best
