"""Deterministic, seedable fault injection for the robustness layer.

Declare *what breaks* with a :class:`FaultPlan` (picklable data: site,
kind, occurrence), activate it with :func:`injected` (or ship it to
pool workers via the engine's initializer), and the hardened modules'
:func:`fire` calls detonate the schedule -- worker crashes, task
errors, stalls, torn checkpoint writes, corrupt dataset reads.  With
no plan installed every ``fire`` is a single ``None`` check, so the
instrumentation costs nothing in production.

See ``docs/robustness.md`` ("Fault injection & recovery") for the
site table and the recovery mechanism each fault exercises.
"""

from repro.faults.plan import (
    ALL_KINDS,
    CORRUPT_READ,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    SITES,
    TASK_ERROR,
    TASK_STALL,
    TORN_WRITE,
    WORKER_CRASH,
)
from repro.faults.runtime import (
    active_plan,
    enter_worker,
    fire,
    fired_log,
    in_worker,
    injected,
    install,
    mark_worker,
    reset_counters,
    uninstall,
)

__all__ = [
    "ALL_KINDS",
    "CORRUPT_READ",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "SITES",
    "TASK_ERROR",
    "TASK_STALL",
    "TORN_WRITE",
    "WORKER_CRASH",
    "active_plan",
    "enter_worker",
    "fire",
    "fired_log",
    "in_worker",
    "injected",
    "install",
    "mark_worker",
    "reset_counters",
    "uninstall",
]
