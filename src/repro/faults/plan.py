"""Fault plans: what to break, where, and on which occurrence.

A :class:`FaultPlan` is plain, picklable data -- a tuple of
:class:`FaultSpec` entries, each naming an **injection site** (a string
constant declared by the hardened module, see :data:`SITES`), a
**fault kind**, and the 1-based **occurrence** of that site at which
the fault fires.  Plans cross process boundaries by value: the pool
engine ships the active plan to every worker through its initializer,
so a schedule built in the driver deterministically breaks workers too.

Occurrence counting is *per process*: each process that reaches a site
counts its own calls, so "crash the worker on its first task" is
expressible without knowing which worker receives which chunk.  Every
entry fires **at most once per process** -- consumed entries never
re-fire, which (together with the engine dropping crash entries after
a pool rebuild) bounds the total fault count of any run.

Kinds
-----
``worker-crash``
    ``os._exit`` inside a pool worker (never fires inline -- crashing
    the driver is not a recoverable fault).  Recovery: pool rebuild.
``task-error``
    Raise :class:`InjectedFault` at the site.  Recovery: per-task retry.
``task-stall``
    Sleep ``seconds`` inside a pool worker (never inline).  Recovery:
    per-task deadline + inline recompute.
``torn-write``
    The site receives ``"torn-write"`` back from ``fire()`` and
    truncates the bytes it is about to persist.  Recovery: checksum
    verification + quarantine on the next load.
``corrupt-read``
    The site receives ``"corrupt-read"`` back and garbles one line of
    the stream it is parsing.  Recovery: strict validation + re-read.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.core.errors import TransientError

__all__ = [
    "ALL_KINDS",
    "CORRUPT_READ",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "SITES",
    "TASK_ERROR",
    "TASK_STALL",
    "TORN_WRITE",
    "WORKER_CRASH",
]

WORKER_CRASH = "worker-crash"
TASK_ERROR = "task-error"
TASK_STALL = "task-stall"
TORN_WRITE = "torn-write"
CORRUPT_READ = "corrupt-read"

#: Every fault kind, in documentation order.
ALL_KINDS: Tuple[str, ...] = (
    WORKER_CRASH,
    TASK_ERROR,
    TASK_STALL,
    TORN_WRITE,
    CORRUPT_READ,
)

#: The declared injection sites and the kinds each one honours.  The
#: hardened modules call ``repro.faults.fire(site)`` with exactly these
#: names; :meth:`FaultPlan.validated` rejects plans targeting unknown
#: sites so a typo cannot silently produce a fault-free "chaos" run.
SITES: Dict[str, Tuple[str, ...]] = {
    "parallel.task": (WORKER_CRASH, TASK_ERROR, TASK_STALL),
    "experiments.cell": (WORKER_CRASH, TASK_ERROR, TASK_STALL),
    "incremental.patch": (TASK_ERROR,),
    "checkpoint.write": (TORN_WRITE,),
    "temporal.io.read": (CORRUPT_READ,),
}


class InjectedFault(TransientError):
    """The exception an injected ``task-error`` raises at its site.

    Subclasses :class:`repro.core.errors.TransientError`, so every
    retry helper in the repository treats it as retryable -- which is
    the point: an injected fault must be *survived*, not reported.
    """

    def __init__(self, site: str, occurrence: int = 1) -> None:
        super().__init__(
            f"injected fault at site {site!r} (occurrence {occurrence})"
        )
        self.site = site
        self.occurrence = occurrence

    def __reduce__(
        self,
    ) -> Tuple[Type["InjectedFault"], Tuple[str, int]]:
        # Reconstruct from (site, occurrence), not from args -- injected
        # faults cross the worker/driver pickle boundary intact.
        return (type(self), (self.site, self.occurrence))


@dataclass(frozen=True, order=True)
class FaultSpec:
    """One scheduled fault: fire ``kind`` at ``site``'s N-th occurrence.

    ``seconds`` is the stall duration for ``task-stall`` entries
    (ignored by every other kind).  Frozen and orderable so plans have
    a canonical entry order independent of construction order.
    """

    site: str
    kind: str
    occurrence: int = 1
    seconds: float = 0.25

    def __post_init__(self) -> None:
        if self.occurrence < 1:
            raise ValueError(f"occurrence must be >= 1, got {self.occurrence}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable schedule of faults.

    Build one explicitly from specs, or with :meth:`seeded` for the
    randomized-but-reproducible chaos matrices.  The empty plan
    (:meth:`none`) is valid and fires nothing.
    """

    entries: Tuple[FaultSpec, ...] = field(default=())
    seed: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan (fires nothing; useful as a fault-free control)."""
        return cls(entries=())

    @classmethod
    def of(cls, *entries: FaultSpec) -> "FaultPlan":
        """A plan with exactly these entries (canonically sorted)."""
        return cls(entries=tuple(sorted(entries))).validated()

    @classmethod
    def seeded(
        cls,
        seed: int,
        sites: Optional[Sequence[str]] = None,
        faults: int = 2,
        max_occurrence: int = 3,
        stall_seconds: float = 0.05,
    ) -> "FaultPlan":
        """A reproducible random plan over ``sites`` (default: all).

        The same seed always yields the same plan: entries are drawn
        from a ``random.Random(seed)`` instance and canonically sorted.
        Kinds are drawn from what each chosen site honours, so seeded
        plans are always :meth:`validated`.
        """
        rng = random.Random(seed)
        chosen_sites = tuple(sites) if sites is not None else tuple(sorted(SITES))
        entries: List[FaultSpec] = []
        for _ in range(faults):
            site = rng.choice(chosen_sites)
            kind = rng.choice(SITES[site])
            entries.append(
                FaultSpec(
                    site=site,
                    kind=kind,
                    occurrence=rng.randint(1, max_occurrence),
                    seconds=stall_seconds,
                )
            )
        return cls(entries=tuple(sorted(entries)), seed=seed).validated()

    # ------------------------------------------------------------------
    # Validation and derivation
    # ------------------------------------------------------------------
    def validated(self) -> "FaultPlan":
        """Self, after checking every entry targets a declared site/kind.

        Raises
        ------
        ValueError
            For an unknown site or a kind the site does not honour.
        """
        for spec in self.entries:
            honoured = SITES.get(spec.site)
            if honoured is None:
                raise ValueError(
                    f"unknown injection site {spec.site!r}; "
                    f"declared sites: {', '.join(sorted(SITES))}"
                )
            if spec.kind not in honoured:
                raise ValueError(
                    f"site {spec.site!r} does not honour kind {spec.kind!r} "
                    f"(honours: {', '.join(honoured)})"
                )
        return self

    def drop_kind(self, kind: str) -> "FaultPlan":
        """A plan without any entry of ``kind``.

        The pool engine uses this after a crash-triggered rebuild:
        replacement workers receive the surviving plan with the
        ``worker-crash`` entries removed, so a crash schedule can never
        wedge the rebuild loop.
        """
        return replace(
            self,
            entries=tuple(s for s in self.entries if s.kind != kind),
        )

    def for_site(self, site: str) -> Tuple[FaultSpec, ...]:
        """The entries targeting one site, in canonical order."""
        return tuple(s for s in self.entries if s.site == site)

    def __bool__(self) -> bool:
        return bool(self.entries)
