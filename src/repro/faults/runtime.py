"""Process-local fault-injection runtime.

The hardened modules declare their injection points by calling
:func:`fire` with a site name from :data:`repro.faults.plan.SITES`.
With no plan installed (the production configuration) ``fire`` is a
few-nanosecond no-op: one global ``None`` check.  Under an installed
plan it consults the per-process occurrence counters and applies the
scheduled fault.

State is deliberately module-global and process-local:

* :func:`install` / :func:`uninstall` / the :func:`injected` context
  manager manage the driver process's plan (tests use ``injected``).
* The pool engine ships the plan to workers through its initializer,
  which calls :func:`enter_worker` -- installing the plan *and* marking
  the process as a worker.  ``worker-crash`` and ``task-stall`` only
  ever fire in marked workers: crashing or stalling the driver is not
  a recoverable fault, so the runtime refuses to inject it there.

Every fired fault is appended to a process-local log readable through
:func:`fired_log` so tests can assert a schedule actually detonated
(a chaos run whose faults never fire proves nothing).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.faults.plan import (
    CORRUPT_READ,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    TASK_ERROR,
    TASK_STALL,
    TORN_WRITE,
    WORKER_CRASH,
)

__all__ = [
    "active_plan",
    "enter_worker",
    "fire",
    "fired_log",
    "in_worker",
    "injected",
    "install",
    "mark_worker",
    "reset_counters",
    "uninstall",
]

#: Exit status used by injected worker crashes; distinctive enough to
#: recognise in pool diagnostics, meaningless otherwise.
_CRASH_EXIT_STATUS = 86

_PLAN: Optional[FaultPlan] = None
_IN_WORKER = False
#: site -> number of times this process has reached it.
_SITE_COUNTS: Dict[str, int] = {}
#: Entries already consumed by this process (fire at most once each).
_CONSUMED: set = set()
#: (site, kind, occurrence) tuples of faults that actually fired here.
_FIRED: List[Tuple[str, str, int]] = []


def install(plan: FaultPlan) -> None:
    """Activate ``plan`` in this process, resetting occurrence state."""
    global _PLAN
    _PLAN = plan.validated()
    reset_counters()


def uninstall() -> None:
    """Deactivate fault injection in this process."""
    global _PLAN
    _PLAN = None
    reset_counters()


def reset_counters() -> None:
    """Forget occurrence counts, consumed entries, and the fired log."""
    _SITE_COUNTS.clear()
    _CONSUMED.clear()
    del _FIRED[:]


def active_plan() -> Optional[FaultPlan]:
    """The plan installed in this process, or ``None``."""
    return _PLAN


def mark_worker() -> None:
    """Declare this process a pool worker (enables crash/stall kinds)."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker() -> bool:
    """Whether this process has been marked as a pool worker."""
    return _IN_WORKER


def enter_worker(plan: Optional[FaultPlan]) -> None:
    """Worker-initializer hook: mark the process and install ``plan``."""
    mark_worker()
    if plan is not None:
        install(plan)


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of the block (tests' front door)."""
    previous = _PLAN
    install(plan)
    try:
        yield plan
    finally:
        if previous is None:
            uninstall()
        else:
            install(previous)


def fired_log() -> Tuple[Tuple[str, str, int], ...]:
    """``(site, kind, occurrence)`` of every fault fired in this process."""
    return tuple(_FIRED)


def _due_spec(site: str) -> Optional[FaultSpec]:
    """The not-yet-consumed entry matching this visit to ``site``."""
    assert _PLAN is not None
    count = _SITE_COUNTS.get(site, 0) + 1
    _SITE_COUNTS[site] = count
    for spec in _PLAN.for_site(site):
        if spec.occurrence == count and spec not in _CONSUMED:
            return spec
    return None


def fire(site: str) -> Optional[str]:
    """Apply any fault scheduled for this visit to ``site``.

    Returns ``None`` when nothing fires.  ``task-error`` raises
    :class:`InjectedFault`; ``worker-crash`` terminates the process
    (workers only); ``task-stall`` sleeps (workers only);
    ``torn-write`` / ``corrupt-read`` return the kind string and the
    *call site* applies the corruption -- the runtime cannot know which
    bytes are in flight.
    """
    if _PLAN is None:
        return None
    spec = _due_spec(site)
    if spec is None:
        return None
    if spec.kind in (WORKER_CRASH, TASK_STALL) and not _IN_WORKER:
        # Crashing or stalling the driver is not a recoverable fault;
        # leave the entry unconsumed for a worker to pick up.
        return None
    _CONSUMED.add(spec)
    _FIRED.append((spec.site, spec.kind, spec.occurrence))
    if spec.kind == TASK_ERROR:
        raise InjectedFault(site, spec.occurrence)
    if spec.kind == WORKER_CRASH:
        os._exit(_CRASH_EXIT_STATUS)
    if spec.kind == TASK_STALL:
        time.sleep(spec.seconds)
        return None
    if spec.kind in (TORN_WRITE, CORRUPT_READ):
        return spec.kind
    raise AssertionError(f"unhandled fault kind {spec.kind!r}")  # pragma: no cover
