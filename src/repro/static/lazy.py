"""A lazily-materialised metric closure.

The eager closure costs one Dijkstra per vertex *up front* and ``n²``
memory -- the dominant ``Tprep`` term of Table 4.  But not every
workload touches every row: at level ``i = 1`` the DST algorithms only
read the root's row, and targeted (few-terminal) Steiner queries touch
a small vertex neighbourhood.  :class:`LazyMetricClosure` implements
the same read interface while running each source's Dijkstra on first
access and caching the result, so the preprocessing cost is paid only
for rows actually used.

Trade-off: per-entry ``cost(u, v)`` access triggers the full row for
``u`` (a Dijkstra), so workloads that scan all vertices (levels >= 2)
gain nothing -- use :func:`repro.static.closure.build_metric_closure`
or the DAG fast path there.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro.static.digraph import StaticDigraph
from repro.static.shortest_paths import dijkstra, reconstruct_path


class LazyMetricClosure:
    """Row-on-demand closure with the MetricClosure read interface."""

    __slots__ = ("graph", "_rows", "_preds")

    def __init__(self, graph: StaticDigraph) -> None:
        self.graph = graph
        self._rows: Dict[int, np.ndarray] = {}
        self._preds: Dict[int, List[int]] = {}

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def rows_materialised(self) -> int:
        """How many source rows have been computed so far."""
        return len(self._rows)

    def _row(self, source: int) -> np.ndarray:
        row = self._rows.get(source)
        if row is None:
            dist, pred = dijkstra(self.graph, source)
            row = np.asarray(dist, dtype=np.float64)
            self._rows[source] = row
            self._preds[source] = pred
        return row

    def cost(self, source: int, target: int) -> float:
        return float(self._row(source)[target])

    def costs_from(self, source: int) -> np.ndarray:
        return self._row(source)

    def is_reachable(self, source: int, target: int) -> bool:
        return math.isfinite(self._row(source)[target])

    def path(self, source: int, target: int) -> List[int]:
        self._row(source)
        return reconstruct_path(self._preds[source], source, target)

    def path_edges(self, source: int, target: int) -> List[Tuple[int, int, float]]:
        vertices = self.path(source, target)
        edges = []
        for u, v in zip(vertices, vertices[1:]):
            best = math.inf
            for w_target, w in self.graph.out_neighbors(u):
                if w_target == v and w < best:
                    best = w
            edges.append((u, v, best))
        return edges

    @property
    def dist(self) -> np.ndarray:
        """The full matrix (materialises every remaining row).

        Provided for interface compatibility (the exact solvers need
        the dense matrix); using it forfeits the laziness.
        """
        n = self.num_vertices
        matrix = np.full((n, n), np.inf, dtype=np.float64)
        for source in range(n):
            matrix[source, :] = self._row(source)
        return matrix


def prepare_instance_lazy(instance, require_reachable: bool = True):
    """``prepare_instance`` variant backed by a lazy closure.

    Useful for level-1 solves and few-terminal Steiner queries on large
    transformed graphs; see the module docstring for the trade-off.
    """
    from repro.core.errors import UnreachableRootError
    from repro.steiner.instance import PreparedInstance

    closure = LazyMetricClosure(instance.graph)
    root = instance.graph.index_of(instance.root)
    terminals = tuple(instance.graph.index_of(t) for t in instance.terminals)
    if require_reachable:
        row = closure.costs_from(root)
        unreachable = [
            instance.terminals[j]
            for j, t in enumerate(terminals)
            if not math.isfinite(row[t])
        ]
        if unreachable:
            raise UnreachableRootError(
                f"{len(unreachable)} terminals unreachable from root "
                f"{instance.root!r}, e.g. {unreachable[0]!r}"
            )
    return PreparedInstance(instance, closure, root, terminals)
