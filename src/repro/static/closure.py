"""Metric (transitive) closure of a static digraph.

The DST algorithms of Section 4.3-4.5 run on the transitive closure
``G_t`` of the transformed graph: a complete digraph whose edge
``(u, v)`` carries the shortest-path weight from ``u`` to ``v`` in the
original graph.  The closure also retains predecessor information so
postprocessing Step 1(a) can expand closure edges back into real paths.

The closure is the dominant preprocessing cost (Table 4): one Dijkstra
per vertex, stored as dense ``float64`` / ``int32`` matrices.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.static.digraph import StaticDigraph
from repro.static.shortest_paths import dijkstra, reconstruct_path


class MetricClosure:
    """All-pairs shortest distances with path reconstruction.

    Attributes
    ----------
    graph:
        The underlying digraph (indices are shared with the closure).
    dist:
        ``(n, n)`` matrix; ``dist[u, v]`` is the shortest-path weight
        (``inf`` when ``v`` is unreachable from ``u``).
    """

    __slots__ = ("graph", "dist", "_pred", "_edge_weights", "_path_memo")

    #: Bound on memoised reconstructed paths (LRU); repeated expansions
    #: query the same (root, terminal) pairs, so a small window suffices.
    PATH_MEMO_SIZE = 4096

    def __init__(self, graph: StaticDigraph, dist: np.ndarray, pred: np.ndarray) -> None:
        self.graph = graph
        self.dist = dist
        self._pred = pred
        self._edge_weights: dict = {}
        self._path_memo: "OrderedDict[Tuple[int, int], List[tuple]]" = OrderedDict()

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    def cost(self, source: int, target: int) -> float:
        """Closure edge weight = shortest-path distance ``source -> target``."""
        return float(self.dist[source, target])

    def costs_from(self, source: int) -> np.ndarray:
        """The full distance row of ``source`` (a view, do not mutate)."""
        return self.dist[source]

    def is_reachable(self, source: int, target: int) -> bool:
        return math.isfinite(self.dist[source, target])

    def path(self, source: int, target: int) -> List[int]:
        """The shortest path ``source -> target`` as vertex indices.

        Empty when unreachable; ``[source]`` when ``source == target``.
        """
        return reconstruct_path(self._pred[source], source, target)

    def path_edges(self, source: int, target: int) -> List[tuple]:
        """The shortest path as ``(u, v, w)`` edge triples in the base graph.

        Memoised (bounded LRU): tree expansion and the shortest-paths
        fallback rung re-reconstruct the same root-to-terminal paths
        across repeated solves.  Callers must not mutate the result.
        """
        key = (source, target)
        memo = self._path_memo
        cached = memo.get(key)
        if cached is not None:
            memo.move_to_end(key)
            return cached
        vertices = self.path(source, target)
        edges = [
            (u, v, self._edge_weight(u, v)) for u, v in zip(vertices, vertices[1:])
        ]
        memo[key] = edges
        if len(memo) > self.PATH_MEMO_SIZE:
            memo.popitem(last=False)
        return edges

    def _edge_weight(self, u: int, v: int) -> float:
        """Cheapest direct edge weight ``u -> v`` in the base graph (memoised)."""
        cached = self._edge_weights.get((u, v))
        if cached is not None:
            return cached
        best = math.inf
        for w_target, w in self.graph.out_neighbors(u):
            if w_target == v and w < best:
                best = w
        self._edge_weights[(u, v)] = best
        return best


def build_metric_closure(
    graph: StaticDigraph,
    sources: Optional[Sequence[int]] = None,
) -> MetricClosure:
    """Compute the metric closure by one Dijkstra per source.

    Parameters
    ----------
    graph:
        The digraph to close.
    sources:
        Optional subset of source indices; rows for other sources are
        left at ``inf``.  The DST algorithms need all rows, so the
        default closes from every vertex.
    """
    n = graph.num_vertices
    dist = np.full((n, n), np.inf, dtype=np.float64)
    pred = np.full((n, n), -1, dtype=np.int32)
    source_list = range(n) if sources is None else sources
    for s in source_list:
        d, p = dijkstra(graph, s)
        dist[s, :] = d
        pred[s, :] = p
    return MetricClosure(graph, dist, pred)
