"""Static weighted digraph substrate: shortest paths, closures, MSTs."""

from repro.static.digraph import StaticDigraph
from repro.static.shortest_paths import dijkstra
from repro.static.closure import MetricClosure, build_metric_closure
from repro.static.dag import (
    DagMetricClosure,
    build_metric_closure_auto,
    build_metric_closure_dag,
    topological_order,
)
from repro.static.lazy import LazyMetricClosure, prepare_instance_lazy
from repro.static.mst import kruskal_mst, prim_mst
from repro.static.arborescence import minimum_spanning_arborescence

__all__ = [
    "DagMetricClosure",
    "LazyMetricClosure",
    "MetricClosure",
    "StaticDigraph",
    "build_metric_closure",
    "build_metric_closure_auto",
    "build_metric_closure_dag",
    "dijkstra",
    "kruskal_mst",
    "minimum_spanning_arborescence",
    "prepare_instance_lazy",
    "prim_mst",
    "topological_order",
]
