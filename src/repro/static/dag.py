"""DAG utilities and a fast metric closure for acyclic digraphs.

When every temporal edge has a strictly positive duration, the
Section 4.2 transformed graph 𝔾 is acyclic (solid edges strictly
advance time and virtual edges advance the copy chain), so its closure
can be computed by dynamic programming over a reverse topological
order -- one vectorised row update per edge instead of one Dijkstra per
vertex.  ``build_metric_closure_auto`` picks this fast path whenever
the graph is a DAG and silently falls back to Dijkstra otherwise.
"""

from __future__ import annotations

import math
from collections import OrderedDict, deque
from typing import List, Optional

import numpy as np

from repro.static.closure import build_metric_closure
from repro.static.digraph import StaticDigraph


def topological_order(graph: StaticDigraph) -> Optional[List[int]]:
    """Kahn's algorithm; ``None`` when the graph contains a cycle."""
    n = graph.num_vertices
    indegree = [0] * n
    for _, v, _ in graph.iter_edges():
        indegree[v] += 1
    queue = deque(v for v in range(n) if indegree[v] == 0)
    order: List[int] = []
    while queue:
        u = queue.popleft()
        order.append(u)
        for v, _ in graph.out_neighbors(u):
            indegree[v] -= 1
            if indegree[v] == 0:
                queue.append(v)
    if len(order) != n:
        return None
    return order


class DagMetricClosure:
    """All-pairs shortest distances of a DAG with next-hop reconstruction.

    Exposes the same read interface as
    :class:`repro.static.closure.MetricClosure` (``dist``, ``cost``,
    ``costs_from``, ``is_reachable``, ``path``, ``path_edges``,
    ``num_vertices``); paths are rebuilt by following the stored
    next-hop matrix instead of per-source predecessors.
    """

    __slots__ = ("graph", "dist", "_next_hop", "_edge_weights", "_path_memo")

    #: Bound on memoised reconstructed paths; see MetricClosure.
    PATH_MEMO_SIZE = 4096

    def __init__(self, graph: StaticDigraph, dist: np.ndarray, next_hop: np.ndarray):
        self.graph = graph
        self.dist = dist
        self._next_hop = next_hop
        self._edge_weights: dict = {}
        self._path_memo: "OrderedDict[tuple, List[tuple]]" = OrderedDict()

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def next_hop(self) -> np.ndarray:
        """The next-hop matrix (read-only by convention).

        Exposed for the incremental closure patcher, which copies the
        rows of unaffected sources verbatim when a window slides.
        """
        return self._next_hop

    def cost(self, source: int, target: int) -> float:
        return float(self.dist[source, target])

    def costs_from(self, source: int) -> np.ndarray:
        return self.dist[source]

    def is_reachable(self, source: int, target: int) -> bool:
        return math.isfinite(self.dist[source, target])

    def path(self, source: int, target: int) -> List[int]:
        """Shortest path as vertex indices (empty when unreachable)."""
        if source == target:
            return [source]
        if not math.isfinite(self.dist[source, target]):
            return []
        path = [source]
        current = source
        while current != target:
            current = int(self._next_hop[current, target])
            path.append(current)
        return path

    def path_edges(self, source: int, target: int) -> List[tuple]:
        """Shortest path as ``(u, v, w)`` base-graph edge triples.

        Memoised (bounded LRU) like ``MetricClosure.path_edges``;
        callers must not mutate the result.
        """
        key = (source, target)
        memo = self._path_memo
        cached = memo.get(key)
        if cached is not None:
            memo.move_to_end(key)
            return cached
        vertices = self.path(source, target)
        edges = []
        weights = self._edge_weights
        for u, v in zip(vertices, vertices[1:]):
            best = weights.get((u, v))
            if best is None:
                best = math.inf
                for w_target, w in self.graph.out_neighbors(u):
                    if w_target == v and w < best:
                        best = w
                weights[(u, v)] = best
            edges.append((u, v, best))
        memo[key] = edges
        if len(memo) > self.PATH_MEMO_SIZE:
            memo.popitem(last=False)
        return edges


def relax_closure_row(
    graph: StaticDigraph, dist: np.ndarray, next_hop: np.ndarray, u: int
) -> None:
    """Recompute row ``u`` of a DAG closure from its successors' rows.

    The single source of the closure recurrence: ``dist[u] = min over
    out-edges (u, v, w) of w + dist[v]`` with ``dist[u][u] = 0``, ties
    kept on the earliest out-neighbor.  Both the full build below and
    the incremental patcher (:mod:`repro.incremental.prepare`) call
    exactly this, so a patched row is bitwise identical to a rebuilt
    one -- same float operations in the same order.

    Requires every successor row of ``u`` to be final already (reverse
    topological processing).
    """
    row = dist[u]
    row[:] = np.inf
    next_hop[u, :] = -1
    row[u] = 0.0
    for v, w in graph.out_neighbors(u):
        candidate = dist[v] + w
        better = candidate < row
        if better.any():
            row[better] = candidate[better]
            next_hop[u, better] = v


def build_metric_closure_dag(
    graph: StaticDigraph,
    order: Optional[List[int]] = None,
) -> DagMetricClosure:
    """Closure of a DAG by reverse-topological dynamic programming.

    ``dist[u] = min over out-edges (u, v, w) of w + dist[v]`` with
    ``dist[u][u] = 0``; each edge contributes one vectorised row
    update, ``O(n·m)`` total versus Dijkstra's ``O(n·m·log n)``.

    Raises
    ------
    ValueError
        If the graph is not acyclic.
    """
    if order is None:
        order = topological_order(graph)
    if order is None:
        raise ValueError("graph contains a cycle; use build_metric_closure")
    n = graph.num_vertices
    dist = np.full((n, n), np.inf, dtype=np.float64)
    next_hop = np.full((n, n), -1, dtype=np.int32)
    for u in reversed(order):
        relax_closure_row(graph, dist, next_hop, u)
    return DagMetricClosure(graph, dist, next_hop)


def build_metric_closure_auto(graph: StaticDigraph):
    """DAG fast path when possible, Dijkstra closure otherwise."""
    order = topological_order(graph)
    if order is not None:
        return build_metric_closure_dag(graph, order)
    return build_metric_closure(graph)
