"""A static weighted directed multigraph with integer-indexed vertices.

The transformed graph of Section 4.2, the metric closure of Section 4.3,
and every classical baseline operate on this structure.  Vertices may be
arbitrary hashable labels (the transformation produces tuples such as
``('virtual', v, i)``); internally they are mapped to dense indices so
shortest-path kernels can use flat arrays.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.core.errors import GraphFormatError

Label = Hashable


class StaticDigraph:
    """A directed multigraph with non-negative edge weights.

    Parallel edges are allowed (only the cheapest matters for shortest
    paths, but the structure preserves all of them so baselines can see
    the raw multigraph).
    """

    __slots__ = ("_labels", "_index", "_adjacency", "_in_adjacency", "_num_edges")

    def __init__(self, vertices: Optional[Iterable[Label]] = None) -> None:
        self._labels: List[Label] = []
        self._index: Dict[Label, int] = {}
        self._adjacency: List[List[Tuple[int, float]]] = []
        self._in_adjacency: List[List[Tuple[int, float]]] = []
        self._num_edges = 0
        if vertices is not None:
            for v in vertices:
                self.add_vertex(v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, label: Label) -> int:
        """Add (or look up) a vertex; returns its dense index."""
        existing = self._index.get(label)
        if existing is not None:
            return existing
        idx = len(self._labels)
        self._labels.append(label)
        self._index[label] = idx
        self._adjacency.append([])
        self._in_adjacency.append([])
        return idx

    def add_edge(self, source: Label, target: Label, weight: float) -> None:
        """Add a directed edge; endpoints are created on demand."""
        if weight < 0:
            raise GraphFormatError(
                f"negative weight {weight} on edge {source!r}->{target!r}"
            )
        u = self.add_vertex(source)
        v = self.add_vertex(target)
        self._adjacency[u].append((v, weight))
        self._in_adjacency[v].append((u, weight))
        self._num_edges += 1

    @classmethod
    def from_parts(
        cls,
        labels: List[Label],
        adjacency: List[List[Tuple[int, float]]],
        in_adjacency: List[List[Tuple[int, float]]],
        num_edges: int,
    ) -> "StaticDigraph":
        """Assemble a digraph from prebuilt internal parts.

        The bulk construction path of the columnar Section 4.2
        transformation: the caller lays out the full vertex-label list
        and the per-index out/in adjacency lists in one pass and hands
        them over (the digraph takes ownership -- do not mutate them
        afterwards).  Only cheap shape consistency is checked here; the
        caller is trusted on contents (mirrored out/in entries,
        ``num_edges`` totals, non-negative weights).  Ordinary
        construction should keep using :meth:`add_vertex` /
        :meth:`add_edge`.
        """
        graph = cls.__new__(cls)
        graph._labels = labels
        graph._index = {label: i for i, label in enumerate(labels)}
        graph._adjacency = adjacency
        graph._in_adjacency = in_adjacency
        graph._num_edges = num_edges
        if (
            len(graph._index) != len(labels)
            or len(adjacency) != len(labels)
            or len(in_adjacency) != len(labels)
        ):
            raise GraphFormatError(
                "inconsistent digraph parts: duplicate labels or "
                "mismatched adjacency lengths"
            )
        return graph

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def labels(self) -> List[Label]:
        """Vertex labels in index order."""
        return list(self._labels)

    def index_of(self, label: Label) -> int:
        """Dense index of ``label`` (raises ``KeyError`` if absent)."""
        return self._index[label]

    def label_of(self, index: int) -> Label:
        return self._labels[index]

    def has_vertex(self, label: Label) -> bool:
        return label in self._index

    def out_neighbors(self, index: int) -> List[Tuple[int, float]]:
        """Outgoing ``(target_index, weight)`` pairs of vertex ``index``."""
        return self._adjacency[index]

    def in_neighbors(self, index: int) -> List[Tuple[int, float]]:
        """Incoming ``(source_index, weight)`` pairs of vertex ``index``."""
        return self._in_adjacency[index]

    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """All edges as ``(source_index, target_index, weight)``."""
        for u, neighbors in enumerate(self._adjacency):
            for v, w in neighbors:
                yield (u, v, w)

    def iter_labeled_edges(self) -> Iterator[Tuple[Label, Label, float]]:
        """All edges with original labels."""
        for u, v, w in self.iter_edges():
            yield (self._labels[u], self._labels[v], w)

    def __contains__(self, label: Label) -> bool:
        return label in self._index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StaticDigraph(n={self.num_vertices}, m={self.num_edges})"

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reversed(self) -> "StaticDigraph":
        """The graph with every edge direction flipped."""
        rev = StaticDigraph(self._labels)
        for u, v, w in self.iter_edges():
            rev.add_edge(self._labels[v], self._labels[u], w)
        return rev

    def simplified(self) -> "StaticDigraph":
        """Parallel edges collapsed to the single cheapest edge."""
        best: Dict[Tuple[int, int], float] = {}
        for u, v, w in self.iter_edges():
            key = (u, v)
            if key not in best or w < best[key]:
                best[key] = w
        simple = StaticDigraph(self._labels)
        for (u, v), w in best.items():
            simple.add_edge(self._labels[u], self._labels[v], w)
        return simple
