"""Classical undirected MST algorithms (Kruskal, Prim).

The paper's related-work section contrasts temporal MSTs with the
classical greedy algorithms; they also power the hardness reduction
tests (spanning trees of undirected static graphs) and the clustering
example.  Input is an undirected graph given as ``(u, v, w)`` triples.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

from repro.core.errors import GraphFormatError

Label = Hashable
Edge = Tuple[Label, Label, float]


class DisjointSet:
    """Union-find with path compression and union by rank."""

    __slots__ = ("_parent", "_rank")

    def __init__(self) -> None:
        self._parent: Dict[Label, Label] = {}
        self._rank: Dict[Label, int] = {}

    def add(self, item: Label) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def find(self, item: Label) -> Label:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Label, b: Label) -> bool:
        """Merge the sets of ``a`` and ``b``; False if already merged."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return True


def kruskal_mst(edges: Iterable[Edge]) -> List[Edge]:
    """Kruskal's algorithm: a minimum spanning forest of the input.

    Returns the chosen edges; the forest spans every vertex mentioned by
    an edge (one tree per connected component).
    """
    dsu = DisjointSet()
    sorted_edges = sorted(edges, key=lambda e: e[2])
    for u, v, _ in sorted_edges:
        dsu.add(u)
        dsu.add(v)
    chosen: List[Edge] = []
    for u, v, w in sorted_edges:
        if dsu.union(u, v):
            chosen.append((u, v, w))
    return chosen


def prim_mst(edges: Sequence[Edge], start: Label) -> List[Edge]:
    """Prim's algorithm from ``start``; spans ``start``'s component.

    Raises
    ------
    GraphFormatError
        If ``start`` is not an endpoint of any edge.
    """
    adjacency: Dict[Label, List[Tuple[float, Label, Label]]] = {}
    for u, v, w in edges:
        adjacency.setdefault(u, []).append((w, u, v))
        adjacency.setdefault(v, []).append((w, v, u))
    if start not in adjacency:
        raise GraphFormatError(f"start vertex {start!r} has no incident edge")
    visited: Set[Label] = {start}
    heap = list(adjacency[start])
    heapq.heapify(heap)
    chosen: List[Edge] = []
    while heap:
        w, u, v = heapq.heappop(heap)
        if v in visited:
            continue
        visited.add(v)
        chosen.append((u, v, w))
        for item in adjacency[v]:
            if item[2] not in visited:
                heapq.heappush(heap, item)
    return chosen


def tree_weight(edges: Iterable[Edge]) -> float:
    """Total weight of a set of ``(u, v, w)`` edges."""
    return sum(w for _, _, w in edges)
