"""Chu-Liu/Edmonds minimum spanning arborescence (directed MST).

The classical directed counterpart of the temporal ``MST_w`` problem:
given a static weighted digraph and a prescribed root reaching every
vertex, find the spanning arborescence of minimum total weight.  Serves
as the static baseline referenced in Sections 1 and 6, and as the exact
comparator showing how ignoring time information changes the answer.

Implementation: the standard recursive cycle-contraction algorithm,
``O(|E| |V|)``.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

from repro.core.errors import GraphFormatError, UnreachableRootError

Label = Hashable
Edge = Tuple[Label, Label, float]


def minimum_spanning_arborescence(edges: Sequence[Edge], root: Label) -> List[Edge]:
    """Minimum-weight spanning arborescence rooted at ``root``.

    Parameters
    ----------
    edges:
        Directed ``(u, v, w)`` triples; parallel edges allowed.
    root:
        The prescribed root, as in Edmonds' original application.

    Returns
    -------
    The chosen edges (one incoming edge per non-root vertex), referring
    to the *original* input edges.

    Raises
    ------
    UnreachableRootError
        If some vertex is not reachable from ``root``.
    """
    vertices = {root}
    for u, v, _ in edges:
        vertices.add(u)
        vertices.add(v)
    index = {v: i for i, v in enumerate(sorted(vertices, key=repr))}
    root_idx = index[root]
    indexed = [
        (index[u], index[v], float(w), eid) for eid, (u, v, w) in enumerate(edges)
    ]
    chosen_ids = _edmonds(len(vertices), root_idx, indexed)
    return [edges[eid] for eid in chosen_ids]


def arborescence_weight(edges: Iterable[Edge]) -> float:
    """Total weight of an edge collection."""
    return sum(w for _, _, w in edges)


def _edmonds(
    n: int,
    root: int,
    edges: List[Tuple[int, int, float, int]],
) -> List[int]:
    """Recursive Chu-Liu/Edmonds on integer vertices.

    ``edges`` entries are ``(u, v, w, original_id)``; returns the list of
    original edge ids forming the arborescence.
    """
    # Cheapest incoming edge per vertex (ignoring self-loops and the root).
    best_in: List[Tuple[float, int, int]] = [(math.inf, -1, -1)] * n  # (w, u, eid)
    for u, v, w, eid in edges:
        if v == root or u == v:
            continue
        if w < best_in[v][0]:
            best_in[v] = (w, u, eid)
    for v in range(n):
        if v != root and best_in[v][2] == -1:
            raise UnreachableRootError(
                f"vertex index {v} has no incoming edge; root cannot span the graph"
            )

    # Detect a cycle formed by the chosen cheapest in-edges.
    component = [-1] * n
    state = [0] * n  # 0 unvisited, 1 on stack, 2 done
    cycle_id = -1
    num_components = 0
    for start in range(n):
        if state[start] != 0:
            continue
        path = []
        v = start
        while state[v] == 0 and v != root:
            state[v] = 1
            path.append(v)
            v = best_in[v][1]
        if v != root and state[v] == 1:
            # Found a new cycle; everything from v onwards in path is on it.
            cycle_id = num_components
            num_components += 1
            pos = path.index(v)
            for node in path[pos:]:
                component[node] = cycle_id
                state[node] = 2
            path = path[:pos]
        for node in path:
            state[node] = 2
        if cycle_id != -1:
            break

    if cycle_id == -1:
        # No cycle: the cheapest in-edges already form an arborescence.
        return [best_in[v][2] for v in range(n) if v != root]

    # Contract the cycle into a single super-vertex and recurse.
    on_cycle = [component[v] == cycle_id for v in range(n)]
    new_index = [-1] * n
    next_id = 0
    for v in range(n):
        if not on_cycle[v]:
            new_index[v] = next_id
            next_id += 1
    super_idx = next_id
    total = next_id + 1

    cycle_cost: Dict[int, Tuple[float, int]] = {}
    contracted: List[Tuple[int, int, float, int]] = []
    # For each edge entering the cycle remember which original edge it
    # displaces so we can credit the reduced weight.
    entering_original: Dict[int, int] = {}
    for u, v, w, eid in edges:
        cu = super_idx if on_cycle[u] else new_index[u]
        cv = super_idx if on_cycle[v] else new_index[v]
        if cu == cv:
            continue
        if cv == super_idx:
            reduced = w - best_in[v][0]
            contracted.append((cu, super_idx, reduced, eid))
            entering_original[eid] = best_in[v][2]
        else:
            contracted.append((cu, cv, w, eid))

    new_root = super_idx if on_cycle[root] else new_index[root]
    if new_root == super_idx:  # pragma: no cover - root never joins a cycle
        raise GraphFormatError("root contracted into a cycle")
    sub_ids = _edmonds(total, new_root, contracted)

    # Expand: keep all cycle edges except the one displaced by the edge
    # that enters the super-vertex in the contracted solution.
    chosen = set(sub_ids)
    displaced = -1
    for eid in sub_ids:
        if eid in entering_original:
            displaced = entering_original[eid]
            break
    for v in range(n):
        if on_cycle[v]:
            cycle_edge = best_in[v][2]
            if cycle_edge != displaced:
                chosen.add(cycle_edge)
    return sorted(chosen)
