"""Single-source shortest paths (Dijkstra) on :class:`StaticDigraph`.

Used by the metric-closure construction of Section 4.3 and by the
postprocessing step that expands closure edges back into graph paths.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Sequence, Tuple

from repro.static.digraph import StaticDigraph


def dijkstra(
    graph: StaticDigraph,
    source: int,
    targets: Optional[Sequence[int]] = None,
) -> Tuple[List[float], List[int]]:
    """Shortest distances and predecessors from ``source``.

    Parameters
    ----------
    graph:
        The digraph (non-negative weights enforced at construction).
    source:
        Dense vertex index of the source.
    targets:
        Optional set of indices; when given, the search stops early once
        all of them are settled.

    Returns
    -------
    (dist, pred):
        ``dist[v]`` is the shortest distance (``inf`` when unreachable);
        ``pred[v]`` is the predecessor index on a shortest path (``-1``
        for the source and unreachable vertices).
    """
    n = graph.num_vertices
    dist = [math.inf] * n
    pred = [-1] * n
    dist[source] = 0.0
    remaining = set(targets) if targets is not None else None
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, w in graph.out_neighbors(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, pred


def reconstruct_path(pred: Sequence[int], source: int, target: int) -> List[int]:
    """The vertex index sequence of the tree path ``source -> target``.

    Returns an empty list when ``target`` is unreachable.
    """
    if source == target:
        return [source]
    if pred[target] == -1:
        return []
    path = [target]
    v = target
    while v != source:
        v = pred[v]
        if v == -1:
            return []
        path.append(v)
    path.reverse()
    return path
