"""Programmatic experiment harness.

Each module regenerates one table or figure of the paper's Section 5 as
a :class:`repro.experiments.runner.TableResult` -- rows of plain Python
values plus a rendered text form.  The pytest-benchmark suite under
``benchmarks/`` is the statistically careful harness; this package is
the *scriptable* one: quick single-shot timings for notebooks, the CLI
(``temporal-mst experiment table5``), and downstream pipelines.

Usage::

    from repro.experiments import run_experiment, EXPERIMENTS
    result = run_experiment("table5", quick=True)
    print(result.render())
    rows = result.rows          # machine-readable
"""

from repro.experiments.checkpoint import ExperimentContext
from repro.experiments.runner import DegradedCell, OverBudgetCell, TableResult
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = [
    "EXPERIMENTS",
    "DegradedCell",
    "ExperimentContext",
    "OverBudgetCell",
    "TableResult",
    "run_experiment",
]
