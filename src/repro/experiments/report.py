"""Markdown report generation from the experiment harness.

``build_report()`` runs the selected experiments and assembles an
EXPERIMENTS.md-style document (paper claim + regenerated table per
section).  Exposed on the CLI as
``temporal-mst experiment all --markdown report.md``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.experiments.checkpoint import ExperimentContext
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.runner import TableResult

#: One-line paper claims shown above each regenerated table.
PAPER_CLAIMS = {
    "table1": "Seven temporal networks spanning three structural regimes.",
    "table2": (
        "Alg1 outperforms the Bhadra baseline by a large margin in all "
        "cases; Alg2 sits in between."
    ),
    "table3": (
        "With zero durations only Bhadra vs Alg2 compete (Alg1 is "
        "incorrect); Alg2 wins almost everywhere and reachable sets grow."
    ),
    "table4": (
        "Transformed graphs are linear in |E| (Lemma 2); preprocessing is "
        "dominated by the transitive closure."
    ),
    "table5": (
        "Alg4 improves Charikar's runtime by orders of magnitude; Alg6's "
        "pruning adds another order; all produce identical trees."
    ),
    "table6": "Solution weights drop from i=1 to i=2 and stabilise by i=3.",
    "table7": (
        "On instances with known optima, Alg6-3 beats Charik-3 by orders "
        "of magnitude; deeper levels grow steeply."
    ),
    "table8": (
        "Relative errors sit far below the theoretical bound and shrink "
        "with the level."
    ),
    "fig8a": "Runtime is flat in |E|/|V| at fixed |V| (closure input).",
    "fig8b": "Runtime grows polynomially in |V| (the O(|V|^i k^i) law).",
    "sweep": (
        "As the time window slides forward, we can predict the minimum "
        "cost for the future (Section 2.3); each slide is answered "
        "incrementally from the previous window where certifiable."
    ),
}


def table_to_markdown(result: TableResult) -> str:
    """One TableResult as a GitHub-flavoured markdown table."""
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    lines = [
        "| " + " | ".join(str(h) for h in result.header) + " |",
        "|" + "---|" * len(result.header),
    ]
    for row in result.rows:
        lines.append("| " + " | ".join(fmt(c) for c in row) + " |")
    return "\n".join(lines)


def build_report(
    names: Optional[Iterable[str]] = None,
    quick: bool = True,
    context: Optional[ExperimentContext] = None,
) -> str:
    """Run experiments and return the assembled markdown document.

    ``context`` (optional) adds per-cell budgets, checkpoints, and
    resume -- see :class:`repro.experiments.checkpoint.ExperimentContext`.
    """
    selected: List[str] = sorted(EXPERIMENTS) if names is None else list(names)
    sections = [
        "# Regenerated evaluation",
        "",
        "Produced by `repro.experiments` "
        + ("(quick mode: reduced workloads)." if quick else "(full workloads)."),
        "",
    ]
    for name in selected:
        result = run_experiment(name, quick=quick, context=context)
        sections.append(f"## {result.title}")
        sections.append("")
        claim = PAPER_CLAIMS.get(name)
        if claim:
            sections.append(f"*Paper claim:* {claim}")
            sections.append("")
        sections.append(table_to_markdown(result))
        sections.append("")
        for note in result.notes:
            sections.append(f"> {note}")
            sections.append("")
    return "\n".join(sections).rstrip() + "\n"
