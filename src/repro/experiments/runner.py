"""Result containers and timing helpers for the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


@dataclass(frozen=True)
class OverBudgetCell:
    """A table cell whose computation exhausted its budget.

    Replaces the bare ``"-"`` convention with structure: how long the
    attempt ran before tripping, and (when a fallback chain was in
    play) the last rung that was attempted.  Renders as
    ``-[>1.25s]`` or ``-[pruned-2 1.25s]``.

    Round-trips losslessly through the checkpoint encoding
    (``encode_cell``/``decode_cell``), which is also how parallel
    workers report it across the process boundary -- a cell that went
    over budget in a worker is indistinguishable from one that did so
    serially.
    """

    elapsed: float
    rung: Optional[str] = None

    def __str__(self) -> str:
        if self.rung:
            return f"-[{self.rung} {self.elapsed:.2f}s]"
        return f"-[>{self.elapsed:.2f}s]"


@dataclass(frozen=True)
class DegradedCell:
    """A cell answered by a fallback rung, not the requested solver.

    ``value`` is the (approximate) answer; ``rung`` names the ladder
    rung that produced it (see :func:`repro.resilience.run_with_fallback`).
    Renders as ``12.34~shortest-paths``.  Like :class:`OverBudgetCell`,
    round-trips losslessly through the checkpoint encoding and therefore
    across parallel-worker process boundaries.
    """

    value: Any
    rung: str

    def __str__(self) -> str:
        return f"{_fmt(self.value)}~{self.rung}"


@dataclass
class TableResult:
    """One regenerated table or figure.

    Attributes
    ----------
    name:
        The experiment key (``"table5"``, ``"fig8a"``, ...).
    title:
        Human-readable caption (includes workload parameters).
    header:
        Column names.
    rows:
        Lists of cells -- numbers, strings, or the structured
        :class:`OverBudgetCell` / :class:`DegradedCell` markers.  A bare
        ``"-"`` still marks a cell that was skipped by configuration
        (mirroring the paper's '-').
    notes:
        Free-form caveats (e.g. which shape claims were checked).
    """

    name: str
    title: str
    header: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        self.rows.append(list(cells))

    def column(self, name: str) -> List[Any]:
        """All cells of one named column."""
        index = self.header.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """Monospace rendering in the benchmark harness's table style."""
        cells = [self.header] + [[_fmt(c) for c in row] for row in self.rows]
        widths = [max(len(r[i]) for r in cells) for i in range(len(self.header))]
        lines = [f"== {self.title} =="]
        lines.append(
            " | ".join(h.rjust(w) for h, w in zip(cells[0], widths))
        )
        lines.append("-" * len(lines[-1]))
        for row in cells[1:]:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def timed(fn: Callable, *args, **kwargs) -> Tuple[float, Any]:
    """``(elapsed_seconds, result)`` of a single call."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


def timed_best_of(rounds: int, fn: Callable, *args, **kwargs) -> Tuple[float, Any]:
    """Best-of-``rounds`` wall time (used outside quick mode)."""
    best = float("inf")
    result = None
    for _ in range(max(1, rounds)):
        elapsed, result = timed(fn, *args, **kwargs)
        best = min(best, elapsed)
    return best, result
