"""Experiments: Tables 2 and 3 -- MST_a runtime comparisons."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.baselines.bhadra import bhadra_msta
from repro.core.msta import msta_chronological, msta_stack
from repro.experiments.runner import TableResult, timed_best_of
from repro.experiments.workloads import msta_graph, msta_protocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.checkpoint import ExperimentContext

DATASETS = ["slashdot", "epinions", "facebook", "enron", "hepph", "dblp"]


def _runtime_rows(
    duration: float,
    algorithms: List[Tuple[str, object]],
    fraction: Optional[float],
    scale: float,
    rounds: int,
) -> List[List[object]]:
    rows = []
    for name in DATASETS:
        graph = msta_graph(name, duration=duration, scale=scale)
        root, window, active = msta_protocol(graph, fraction)
        active.chronological_edges()
        active.sorted_adjacency()
        cells: List[object] = [name]
        reach = None
        for _, solver in algorithms:
            elapsed, tree = timed_best_of(rounds, solver, active, root, window)
            reach = len(tree.vertices) - 1
            cells.append(elapsed * 1e3)
        cells.insert(1, reach)
        rows.append(cells)
    return rows


def run_table2(
    quick: bool = False, context: Optional["ExperimentContext"] = None
) -> TableResult:
    """Table 2: MST_a with non-zero durations (Bhadra vs Alg2 vs Alg1)."""
    scale = 0.4 if quick else 1.0
    rounds = 1 if quick else 3
    algorithms = [
        ("Bhadra", bhadra_msta),
        ("Alg2", msta_stack),
        ("Alg1", msta_chronological),
    ]
    result = TableResult(
        name="table2",
        title="Table 2: MST_a runtime (ms), non-zero durations, window [0, inf]",
        header=["dataset", "|V_r|", "Bhadra", "Alg2", "Alg1"],
    )
    result.rows = _runtime_rows(1.0, algorithms, None, scale, rounds)
    result.notes.append(
        "paper shape: the linear algorithms beat the Prim-Dijkstra baseline "
        "on every dataset"
    )
    return result


def run_table3(
    quick: bool = False, context: Optional["ExperimentContext"] = None
) -> TableResult:
    """Table 3: MST_a with zero durations (Bhadra vs Alg2 only)."""
    scale = 0.4 if quick else 1.0
    rounds = 1 if quick else 3
    algorithms = [("Bhadra", bhadra_msta), ("Alg2", msta_stack)]
    result = TableResult(
        name="table3",
        title="Table 3: MST_a runtime (ms), zero durations, window [0, inf]",
        header=["dataset", "|V_r|", "Bhadra", "Alg2"],
    )
    result.rows = _runtime_rows(0.0, algorithms, None, scale, rounds)
    result.notes.append(
        "Algorithm 1 is excluded: it is incorrect for zero durations "
        "(the paper's Example 4)"
    )
    return result
