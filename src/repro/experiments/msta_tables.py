"""Experiments: Tables 2 and 3 -- MST_a runtime comparisons.

Like the MST_w tables, every timing cell runs through the
:class:`ExperimentContext` cell protocol: the cell budget is threaded
down into the solvers (``timed_best_of`` forwards it, and all three
MST_a implementations checkpoint cooperatively), so a pathological
dataset degrades to a structured over-budget cell instead of hanging
the table, and completed cells are checkpointed and resumable.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.baselines.bhadra import bhadra_msta
from repro.core.msta import msta_chronological, msta_stack
from repro.experiments.checkpoint import ExperimentContext
from repro.experiments.runner import OverBudgetCell, TableResult, timed_best_of
from repro.experiments.workloads import msta_graph, msta_protocol
from repro.resilience.budget import Budget

DATASETS = ["slashdot", "epinions", "facebook", "enron", "hepph", "dblp"]


def _runtime_rows(
    table: str,
    duration: float,
    algorithms: List[Tuple[str, Callable]],
    fraction: Optional[float],
    scale: float,
    rounds: int,
    ctx: ExperimentContext,
) -> List[List[object]]:
    rows = []
    for name in DATASETS:
        graph = msta_graph(name, duration=duration, scale=scale)
        root, window, active = msta_protocol(graph, fraction)
        active.chronological_edges()
        active.sorted_adjacency()
        cells: List[object] = [name]
        reach = None
        for algo_name, solver in algorithms:

            def runtime_cell(
                budget: Optional[Budget], solver: Callable = solver
            ) -> List:
                elapsed, tree = timed_best_of(
                    rounds, solver, active, root, window, budget=budget
                )
                return [elapsed * 1e3, len(tree.vertices) - 1]

            value = ctx.cell(f"{table}:{name}:{algo_name}", runtime_cell)
            if isinstance(value, OverBudgetCell):
                cells.append(value)
            else:
                elapsed_ms, cell_reach = value
                reach = cell_reach
                cells.append(elapsed_ms)
        cells.insert(1, reach)
        rows.append(cells)
    return rows


def run_table2(
    quick: bool = False, context: Optional[ExperimentContext] = None
) -> TableResult:
    """Table 2: MST_a with non-zero durations (Bhadra vs Alg2 vs Alg1)."""
    ctx = context if context is not None else ExperimentContext()
    scale = 0.4 if quick else 1.0
    rounds = 1 if quick else 3
    algorithms: List[Tuple[str, Callable]] = [
        ("Bhadra", bhadra_msta),
        ("Alg2", msta_stack),
        ("Alg1", msta_chronological),
    ]
    result = TableResult(
        name="table2",
        title="Table 2: MST_a runtime (ms), non-zero durations, window [0, inf]",
        header=["dataset", "|V_r|", "Bhadra", "Alg2", "Alg1"],
    )
    result.rows = _runtime_rows("table2", 1.0, algorithms, None, scale, rounds, ctx)
    result.notes.append(
        "paper shape: the linear algorithms beat the Prim-Dijkstra baseline "
        "on every dataset"
    )
    return result


def run_table3(
    quick: bool = False, context: Optional[ExperimentContext] = None
) -> TableResult:
    """Table 3: MST_a with zero durations (Bhadra vs Alg2 only)."""
    ctx = context if context is not None else ExperimentContext()
    scale = 0.4 if quick else 1.0
    rounds = 1 if quick else 3
    algorithms: List[Tuple[str, Callable]] = [
        ("Bhadra", bhadra_msta),
        ("Alg2", msta_stack),
    ]
    result = TableResult(
        name="table3",
        title="Table 3: MST_a runtime (ms), zero durations, window [0, inf]",
        header=["dataset", "|V_r|", "Bhadra", "Alg2"],
    )
    result.rows = _runtime_rows("table3", 0.0, algorithms, None, scale, rounds, ctx)
    result.notes.append(
        "Algorithm 1 is excluded: it is incorrect for zero durations "
        "(the paper's Example 4)"
    )
    return result
