"""Experiments: Tables 7 and 8 -- certified-optimum instances.

Like the MST_w tables, every solver cell goes through the
:class:`ExperimentContext` protocol: budgeted, checkpointed after each
completed cell, and resumable.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.checkpoint import ExperimentContext
from repro.experiments.runner import (
    DegradedCell,
    OverBudgetCell,
    TableResult,
    timed,
)
from repro.resilience.budget import Budget
from repro.resilience.fallback import run_with_fallback
from repro.steiner.charikar import charikar_dst
from repro.steiner.exact import exact_dst_cost
from repro.steiner.instance import PreparedInstance, prepare_instance
from repro.steiner.pruned import pruned_dst
from repro.steiner.steinlib import generate_b_series

FULL_INSTANCES = ["b01", "b03", "b05", "b07", "b09", "b11", "b13", "b15", "b17"]
QUICK_INSTANCES = ["b01", "b05", "b09"]

_SOLVER_FNS = {"Charik": charikar_dst, "Alg6": pruned_dst}


def _prepare(names) -> Dict[str, PreparedInstance]:
    problems = generate_b_series(names)
    return {
        name: prepare_instance(problem.to_dst_instance())
        for name, problem in problems.items()
    }


def _opt_cell(ctx: ExperimentContext, name: str, prepared: Dict[str, PreparedInstance]):
    """The certified optimum for one instance (over-budget aware)."""

    def fn(budget: Optional[Budget], name=name):
        return exact_dst_cost(prepared[name], budget=budget)

    return ctx.cell(f"opt:{name}", fn)


def _runtime_cell(
    ctx: ExperimentContext,
    solver_name: str,
    name: str,
    level: int,
    prepared: Dict[str, PreparedInstance],
):
    """One solver runtime (over-budget aware)."""
    solver = _SOLVER_FNS[solver_name]

    def fn(budget: Optional[Budget], name=name, level=level):
        elapsed, _ = timed(solver, prepared[name], level, budget=budget)
        return elapsed

    return ctx.cell(f"runtime:{solver_name}:{name}:{level}", fn)


def run_table7(
    quick: bool = False, context: Optional[ExperimentContext] = None
) -> TableResult:
    """Table 7: runtime of Charik-3 vs Alg6-3/4 on b-series instances."""
    ctx = context if context is not None else ExperimentContext()
    names = QUICK_INSTANCES if quick else FULL_INSTANCES
    deep = set() if quick else {"b01", "b03", "b05", "b07", "b09", "b11"}
    prepared = _prepare(names)
    problems = generate_b_series(names)
    result = TableResult(
        name="table7",
        title="Table 7: runtime (s) on b-series instances with certified optima",
        header=["G", "|V|", "|E|", "|X|", "Opt", "Charik-3", "Alg6-3", "Alg6-4"],
    )
    for name in names:
        problem = problems[name]
        opt = _opt_cell(ctx, name, prepared)
        t_charik = _runtime_cell(ctx, "Charik", name, 3, prepared)
        t_alg6 = _runtime_cell(ctx, "Alg6", name, 3, prepared)
        if name in deep:
            t_alg6_4 = _runtime_cell(ctx, "Alg6", name, 4, prepared)
        else:
            t_alg6_4 = "-"
        result.add_row(
            name,
            problem.num_vertices,
            len(problem.edges),
            len(problem.terminals),
            opt if isinstance(opt, OverBudgetCell) else int(opt),
            t_charik,
            t_alg6,
            t_alg6_4,
        )
    result.notes.append(
        "optima certified by the exact directed Dreyfus-Wagner solver "
        "(the paper uses ZIB's published values)"
    )
    return result


def run_table8(
    quick: bool = False, context: Optional[ExperimentContext] = None
) -> TableResult:
    """Table 8: relative error of Alg6 per level.

    Approximation cells solve through the fallback chain; an
    over-budget Alg6-``i`` degrades and the cell names the rung that
    answered.  When even the certified optimum is over budget the error
    cell carries that over-budget marker.
    """
    ctx = context if context is not None else ExperimentContext()
    names = QUICK_INSTANCES if quick else FULL_INSTANCES
    levels = (1, 2) if quick else (1, 2, 3)
    prepared = _prepare(names)
    optima = {name: _opt_cell(ctx, name, prepared) for name in names}
    result = TableResult(
        name="table8",
        title="Table 8: relative error (Approx-Opt)/Opt of Alg6 per level",
        header=["level"] + names,
    )
    for level in levels:
        row = [f"i={level}"]
        for name in names:
            opt = optima[name]
            if isinstance(opt, OverBudgetCell):
                row.append(opt)
                continue

            def error_cell(
                budget: Optional[Budget], name=name, level=level, opt=opt
            ):
                outcome = run_with_fallback(
                    prepared[name], budget=budget, level=level
                )
                error = round((outcome.cost - opt) / opt, 2)
                if outcome.degraded:
                    return DegradedCell(error, outcome.rung)
                return error

            row.append(ctx.cell(f"error:{name}:{level}", error_cell))
        result.rows.append(row)
    result.notes.append(
        "errors sit far below the i^2 (i-1) k^(1/i) bound and shrink with i"
    )
    return result
