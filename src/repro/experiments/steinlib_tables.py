"""Experiments: Tables 7 and 8 -- certified-optimum instances."""

from __future__ import annotations

from typing import Dict

from repro.experiments.runner import TableResult, timed
from repro.steiner.charikar import charikar_dst
from repro.steiner.exact import exact_dst_cost
from repro.steiner.instance import PreparedInstance, prepare_instance
from repro.steiner.pruned import pruned_dst
from repro.steiner.steinlib import generate_b_series

FULL_INSTANCES = ["b01", "b03", "b05", "b07", "b09", "b11", "b13", "b15", "b17"]
QUICK_INSTANCES = ["b01", "b05", "b09"]


def _prepare(names) -> Dict[str, PreparedInstance]:
    problems = generate_b_series(names)
    return {
        name: prepare_instance(problem.to_dst_instance())
        for name, problem in problems.items()
    }


def run_table7(quick: bool = False) -> TableResult:
    """Table 7: runtime of Charik-3 vs Alg6-3/4 on b-series instances."""
    names = QUICK_INSTANCES if quick else FULL_INSTANCES
    deep = set() if quick else {"b01", "b03", "b05", "b07", "b09", "b11"}
    prepared = _prepare(names)
    problems = generate_b_series(names)
    result = TableResult(
        name="table7",
        title="Table 7: runtime (s) on b-series instances with certified optima",
        header=["G", "|V|", "|E|", "|X|", "Opt", "Charik-3", "Alg6-3", "Alg6-4"],
    )
    for name in names:
        inst = prepared[name]
        problem = problems[name]
        opt = exact_dst_cost(inst)
        t_charik, _ = timed(charikar_dst, inst, 3)
        t_alg6, _ = timed(pruned_dst, inst, 3)
        if name in deep:
            t_alg6_4, _ = timed(pruned_dst, inst, 4)
        else:
            t_alg6_4 = None
        result.add_row(
            name,
            problem.num_vertices,
            len(problem.edges),
            len(problem.terminals),
            int(opt),
            t_charik,
            t_alg6,
            t_alg6_4 if t_alg6_4 is not None else "-",
        )
    result.notes.append(
        "optima certified by the exact directed Dreyfus-Wagner solver "
        "(the paper uses ZIB's published values)"
    )
    return result


def run_table8(quick: bool = False) -> TableResult:
    """Table 8: relative error of Alg6 per level."""
    names = QUICK_INSTANCES if quick else FULL_INSTANCES
    levels = (1, 2) if quick else (1, 2, 3)
    prepared = _prepare(names)
    optima = {name: exact_dst_cost(inst) for name, inst in prepared.items()}
    result = TableResult(
        name="table8",
        title="Table 8: relative error (Approx-Opt)/Opt of Alg6 per level",
        header=["level"] + names,
    )
    for level in levels:
        row = [f"i={level}"]
        for name in names:
            approx = pruned_dst(prepared[name], level).cost
            row.append(round((approx - optima[name]) / optima[name], 2))
        result.rows.append(row)
    result.notes.append(
        "errors sit far below the i^2 (i-1) k^(1/i) bound and shrink with i"
    )
    return result
