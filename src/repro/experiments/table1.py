"""Experiment: Table 1 -- dataset statistics."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.datasets.registry import DATASETS, load_dataset
from repro.experiments.runner import TableResult
from repro.temporal.stats import compute_statistics

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.checkpoint import ExperimentContext


def run(
    quick: bool = False, context: Optional["ExperimentContext"] = None
) -> TableResult:
    """Regenerate Table 1 for every synthetic dataset stand-in.

    Statistics are cheap; ``context`` is accepted for a uniform harness
    signature but not used for budgets or checkpoints.
    """
    scale = 0.2 if quick else 0.5
    result = TableResult(
        name="table1",
        title=f"Table 1: dataset statistics (synthetic stand-ins, scale={scale})",
        header=["dataset", "|V|", "|E|", "|E_s|", "deg", "deg_s", "pi", "|Gamma|"],
    )
    for name in sorted(DATASETS):
        stats = compute_statistics(load_dataset(name, scale=scale))
        result.add_row(
            name,
            stats.num_vertices,
            stats.num_temporal_edges,
            stats.num_static_edges,
            stats.max_temporal_degree,
            stats.max_static_degree,
            stats.max_multiplicity,
            stats.distinct_time_instances,
        )
    result.notes.append(
        "regimes preserved vs the paper: epinions pi=1, facebook/enron heavy "
        "multiplicity, phone extreme M/n, dblp coarse timestamps"
    )
    return result
