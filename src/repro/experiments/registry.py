"""Name -> experiment dispatch."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.experiments.checkpoint import ExperimentContext
from repro.experiments.fig8 import run_fig8a, run_fig8b
from repro.experiments.msta_tables import run_table2, run_table3
from repro.experiments.mstw_tables import run_table4, run_table5, run_table6
from repro.experiments.runner import TableResult
from repro.experiments.sliding_tables import run_sweep
from repro.experiments.steinlib_tables import run_table7, run_table8
from repro.experiments.table1 import run as run_table1

EXPERIMENTS: Dict[str, Callable[..., TableResult]] = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "table7": run_table7,
    "table8": run_table8,
    "fig8a": run_fig8a,
    "fig8b": run_fig8b,
    "sweep": run_sweep,
}


def run_experiment(
    name: str,
    quick: bool = False,
    context: Optional[ExperimentContext] = None,
) -> TableResult:
    """Run one named experiment (see :data:`EXPERIMENTS` for the keys).

    Parameters
    ----------
    name:
        Experiment key (case-insensitive).
    quick:
        Smaller workloads and fewer levels.
    context:
        Optional :class:`ExperimentContext` adding per-cell budgets,
        JSON checkpoints after every completed cell, and resume-from-
        checkpoint.  The checkpoint of a run that finishes is deleted;
        an interrupted run leaves it behind for ``resume``.

    Raises
    ------
    KeyError
        For an unknown experiment name.
    ExperimentInterruptedError
        When the context's ``interrupt_after`` cell limit is reached
        (the checkpoint is already saved).
    """
    key = name.lower()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        )
    fn = EXPERIMENTS[key]
    if context is None:
        return fn(quick=quick)
    context.begin(key, quick)
    if context.jobs > 1:
        # Fan the cell grid out across worker processes first; the
        # serial assembly loop below then reads every cell from the
        # context cache, so the rendered table is identical to a
        # jobs=1 run.  Experiments without a task enumeration simply
        # run serially.
        from repro.parallel.tasks import experiment_tasks

        tasks = experiment_tasks(key, quick)
        if tasks is not None:
            context.prefetch(tasks)
    result = fn(quick=quick, context=context)
    context.complete(key)
    return result
