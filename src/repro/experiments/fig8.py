"""Experiment: Figure 8 -- runtime scaling sweeps.

Like the table modules, the sweep cells run through the
:class:`ExperimentContext` cell protocol (budgeted, checkpointed,
resumable), and their values come from module-level functions so the
parallel prefetch path (:mod:`repro.parallel.tasks`) computes the exact
same cells inside worker processes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.experiments.checkpoint import ExperimentContext
from repro.experiments.runner import TableResult, timed
from repro.resilience.budget import Budget
from repro.steiner.improved import improved_dst
from repro.steiner.instance import prepare_instance
from repro.steiner.pruned import pruned_dst
from repro.steiner.steinlib import generate_b_instance

FIG8B_SOLVERS = {"Alg4": improved_dst, "Alg6": pruned_dst}


def fig8a_params(quick: bool) -> Tuple[int, int, int, List[int]]:
    """``(n, k, level, densities)`` of the 8(a) sweep (quick-aware)."""
    n, k = (40, 6) if quick else (60, 8)
    level = 2 if quick else 3
    return n, k, level, [2, 4, 6, 8]


def fig8b_params(quick: bool) -> Tuple[int, List[int]]:
    """``(level, sizes)`` of the 8(b) sweep (quick-aware).

    The quick sweep spans a 4x size range so the growth shape remains
    visible above timing noise even at millisecond runtimes.
    """
    sizes = [15, 30, 60] if quick else [30, 45, 60, 75]
    level = 2 if quick else 3
    return level, sizes


def fig8a_cell_value(
    ratio: int, n: int, k: int, level: int, budget: Optional[Budget] = None
) -> float:
    """Alg6 wall time at one density ratio (seeded, reproducible)."""
    problem = generate_b_instance(n, n * ratio, k, seed=500 + ratio)
    prepared = prepare_instance(problem.to_dst_instance())
    elapsed, _ = timed(pruned_dst, prepared, level, budget=budget)
    return elapsed


def fig8b_cell_value(
    solver_name: str, n: int, level: int, budget: Optional[Budget] = None
) -> float:
    """One solver's wall time at one instance size (seeded)."""
    k = max(3, int(round(n * 0.13)))
    problem = generate_b_instance(n, 3 * n, k, seed=700 + n)
    prepared = prepare_instance(problem.to_dst_instance())
    elapsed, _ = timed(FIG8B_SOLVERS[solver_name], prepared, level, budget=budget)
    return elapsed


def run_fig8a(
    quick: bool = False, context: Optional[ExperimentContext] = None
) -> TableResult:
    """Figure 8(a): Alg6 runtime vs density at fixed |V| (flat)."""
    ctx = context if context is not None else ExperimentContext()
    n, k, level, densities = fig8a_params(quick)
    result = TableResult(
        name="fig8a",
        title=f"Figure 8(a): Alg6-{level} runtime (s) vs |E|/|V| at |V|={n}, k={k}",
        header=["|E|/|V|"] + [str(r) for r in densities],
    )
    row = ["time"]
    for ratio in densities:

        def density_cell(
            budget: Optional[Budget], ratio=ratio, n=n, k=k, level=level
        ) -> float:
            return fig8a_cell_value(ratio, n, k, level, budget)

        row.append(ctx.cell(f"density:{ratio}", density_cell))
    result.rows.append(row)
    result.notes.append(
        "flat by design: the solver's input is the transitive closure, so the "
        "base graph's average degree only affects preprocessing"
    )
    return result


def run_fig8b(
    quick: bool = False, context: Optional[ExperimentContext] = None
) -> TableResult:
    """Figure 8(b): Alg4/Alg6 runtime vs |V| at fixed ratios (growing)."""
    ctx = context if context is not None else ExperimentContext()
    level, sizes = fig8b_params(quick)
    result = TableResult(
        name="fig8b",
        title=(
            f"Figure 8(b): runtime (s) vs |V| at |E|/|V|=3, k/|V|~0.13, i={level}"
        ),
        header=["alg"] + [str(n) for n in sizes],
    )
    for solver_name in FIG8B_SOLVERS:
        row = [solver_name]
        for n in sizes:

            def size_cell(
                budget: Optional[Budget],
                solver_name=solver_name,
                n=n,
                level=level,
            ) -> float:
                return fig8b_cell_value(solver_name, n, level, budget)

            row.append(ctx.cell(f"{solver_name}:{n}", size_cell))
        result.rows.append(row)
    result.notes.append("polynomial growth reflecting the O(|V|^i k^i) bound")
    return result
