"""Experiment: Figure 8 -- runtime scaling sweeps."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.experiments.runner import TableResult, timed
from repro.steiner.improved import improved_dst
from repro.steiner.instance import prepare_instance
from repro.steiner.pruned import pruned_dst
from repro.steiner.steinlib import generate_b_instance

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.checkpoint import ExperimentContext


def run_fig8a(
    quick: bool = False, context: Optional["ExperimentContext"] = None
) -> TableResult:
    """Figure 8(a): Alg6 runtime vs density at fixed |V| (flat)."""
    n, k = (40, 6) if quick else (60, 8)
    level = 2 if quick else 3
    densities = [2, 4, 6, 8]
    result = TableResult(
        name="fig8a",
        title=f"Figure 8(a): Alg6-{level} runtime (s) vs |E|/|V| at |V|={n}, k={k}",
        header=["|E|/|V|"] + [str(r) for r in densities],
    )
    row = ["time"]
    for ratio in densities:
        problem = generate_b_instance(n, n * ratio, k, seed=500 + ratio)
        prepared = prepare_instance(problem.to_dst_instance())
        elapsed, _ = timed(pruned_dst, prepared, level)
        row.append(elapsed)
    result.rows.append(row)
    result.notes.append(
        "flat by design: the solver's input is the transitive closure, so the "
        "base graph's average degree only affects preprocessing"
    )
    return result


def run_fig8b(
    quick: bool = False, context: Optional["ExperimentContext"] = None
) -> TableResult:
    """Figure 8(b): Alg4/Alg6 runtime vs |V| at fixed ratios (growing)."""
    # the quick sweep spans a 4x size range so the growth shape remains
    # visible above timing noise even at millisecond runtimes
    sizes = [15, 30, 60] if quick else [30, 45, 60, 75]
    level = 2 if quick else 3
    result = TableResult(
        name="fig8b",
        title=(
            f"Figure 8(b): runtime (s) vs |V| at |E|/|V|=3, k/|V|~0.13, i={level}"
        ),
        header=["alg"] + [str(n) for n in sizes],
    )
    for solver_name, solver in (("Alg4", improved_dst), ("Alg6", pruned_dst)):
        row = [solver_name]
        for n in sizes:
            k = max(3, int(round(n * 0.13)))
            problem = generate_b_instance(n, 3 * n, k, seed=700 + n)
            prepared = prepare_instance(problem.to_dst_instance())
            elapsed, _ = timed(solver, prepared, level)
            row.append(elapsed)
        result.rows.append(row)
    result.notes.append("polynomial growth reflecting the O(|V|^i k^i) bound")
    return result
