"""Experiments: Tables 4, 5, and 6 -- the MST_w pipeline.

All expensive cells run through the :class:`ExperimentContext` cell
protocol, so these tables are budgeted (a hung DST solve degrades to a
structured over-budget cell), checkpointed after every completed cell,
and resumable after a kill.

Cell *values* are computed by module-level functions keyed on plain
config names and levels (``prep_cell_value`` and friends): the serial
table loops call them through closures, and the parallel prefetch path
(:mod:`repro.parallel.tasks`) calls the same functions inside worker
processes, so both paths produce identical cells by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.postprocess import closure_tree_to_temporal
from repro.experiments.checkpoint import ExperimentContext
from repro.experiments.runner import DegradedCell, TableResult, timed
from repro.experiments.workloads import (
    MSTW_WORKLOADS,
    QUICK_MSTW_WORKLOADS,
    WorkloadConfig,
    mstw_workload,
)
from repro.resilience.budget import Budget
from repro.resilience.fallback import run_with_fallback
from repro.steiner.charikar import charikar_dst
from repro.steiner.improved import improved_dst
from repro.steiner.pruned import pruned_dst

SOLVERS = {
    "Charik": (charikar_dst, "charikar_max_level"),
    "Alg4": (improved_dst, "improved_max_level"),
    "Alg6": (pruned_dst, "pruned_max_level"),
}


def _configs(quick: bool):
    return QUICK_MSTW_WORKLOADS if quick else MSTW_WORKLOADS


def config_named(name: str, quick: bool) -> WorkloadConfig:
    """The workload config of one dataset name (quick-aware).

    The parallel task layer ships only the name + quick flag across the
    process boundary and resolves the config in the worker, so both
    sides always agree on scales and level caps.
    """
    for config in _configs(quick):
        if config.name == name:
            return config
    raise KeyError(f"unknown workload config {name!r}")


# ----------------------------------------------------------------------
# Cell values (shared verbatim by the serial loops and parallel workers)
# ----------------------------------------------------------------------
def prep_cell_value(
    config: WorkloadConfig, budget: Optional[Budget] = None
) -> List:
    """Table 4 row body: sizes + Tprep for one dataset (unbudgeted)."""
    workload = mstw_workload(config)
    return [
        workload.graph.num_vertices,
        workload.graph.num_edges,
        workload.prepared.num_terminals,
        workload.transformed.num_vertices,
        workload.transformed.num_edges,
        workload.preprocessing_seconds,
    ]


def runtime_cell_value(
    solver_name: str,
    config: WorkloadConfig,
    level: int,
    budget: Optional[Budget] = None,
) -> float:
    """Table 5 cell: one solver's wall time at one level."""
    solver, _ = SOLVERS[solver_name]
    workload = mstw_workload(config)
    elapsed, _tree = timed(solver, workload.prepared, level, budget=budget)
    return elapsed


def weight_cell_value(
    config: WorkloadConfig, level: int, budget: Optional[Budget] = None
):
    """Table 6 cell: MST_w weight through the fallback chain."""
    workload = mstw_workload(config)
    outcome = run_with_fallback(workload.prepared, budget=budget, level=level)
    tree = closure_tree_to_temporal(
        workload.transformed, workload.prepared, outcome.tree
    )
    weight = round(tree.total_weight, 2)
    if outcome.degraded:
        return DegradedCell(weight, outcome.rung)
    return weight


def run_table4(
    quick: bool = False, context: Optional[ExperimentContext] = None
) -> TableResult:
    """Table 4: window extraction / transformation sizes / Tprep.

    Preprocessing is not cooperatively interruptible (the closure build
    is one vectorised pass), so these cells are checkpointed but run
    unbudgeted.
    """
    ctx = context if context is not None else ExperimentContext()
    result = TableResult(
        name="table4",
        title="Table 4: extracted G', transformed graph sizes, preprocessing (s)",
        header=[
            "dataset",
            "|V(G')|",
            "|E(G')|",
            "|V_r|",
            "|V(GG)|",
            "|E(GG)|",
            "Tprep",
        ],
    )
    for config in sorted(_configs(quick), key=lambda c: c.name):

        def prep_cell(budget: Optional[Budget], config=config) -> List:
            return prep_cell_value(config, budget)

        result.add_row(config.name, *ctx.cell(f"prep:{config.name}", prep_cell))
    result.notes.append("Tprep is dominated by the transitive closure (Lemma 2 sizes)")
    return result


def run_table5(
    quick: bool = False, context: Optional[ExperimentContext] = None
) -> TableResult:
    """Table 5: DST runtime, Charik vs Alg4 vs Alg6 at i = 1..3."""
    ctx = context if context is not None else ExperimentContext()
    configs = sorted(_configs(quick), key=lambda c: c.name)
    levels = (1, 2) if quick else (1, 2, 3)
    result = TableResult(
        name="table5",
        title="Table 5: DST runtime (s) on transformed datasets ('-' = over budget)",
        header=["alg-i"] + [c.name for c in configs],
    )
    timings: Dict[Tuple[str, str, int], float] = {}
    for solver_name, (solver, cap_attr) in SOLVERS.items():
        for level in levels:
            row = [f"{solver_name}-{level}"]
            for config in configs:
                if level > getattr(config, cap_attr):
                    row.append("-")
                    continue

                def runtime_cell(
                    budget: Optional[Budget],
                    solver_name=solver_name,
                    config=config,
                    level=level,
                ) -> float:
                    return runtime_cell_value(solver_name, config, level, budget)

                value = ctx.cell(
                    f"runtime:{solver_name}:{config.name}:{level}", runtime_cell
                )
                if isinstance(value, float):
                    timings[(solver_name, config.name, level)] = value
                row.append(value)
            result.rows.append(row)
    speedups = []
    for config in configs:
        charik = timings.get(("Charik", config.name, 2))
        alg6 = timings.get(("Alg6", config.name, 2))
        if charik and alg6:
            speedups.append(charik / alg6)
    if speedups:
        result.notes.append(
            f"Alg6 speedup over Charik at i=2: "
            f"{min(speedups):.1f}x - {max(speedups):.1f}x"
        )
    return result


def run_table6(
    quick: bool = False, context: Optional[ExperimentContext] = None
) -> TableResult:
    """Table 6: weights of the MST_w solutions per iteration count.

    Weight cells solve through the fallback chain: an over-budget
    Alg6-``i`` run degrades to a cheaper rung and the cell records the
    rung that answered instead of dropping the entry.
    """
    ctx = context if context is not None else ExperimentContext()
    configs = sorted(_configs(quick), key=lambda c: c.name)
    levels = (1, 2) if quick else (1, 2, 3)
    result = TableResult(
        name="table6",
        title="Table 6: weight of the MST_w solution per iteration count",
        header=["level"] + [c.name for c in configs],
    )
    for level in levels:
        row = [f"i={level}"]
        for config in configs:
            if level > config.pruned_max_level:
                row.append("-")
                continue

            def weight_cell(
                budget: Optional[Budget], config=config, level=level
            ):
                return weight_cell_value(config, level, budget)

            row.append(ctx.cell(f"weight:{config.name}:{level}", weight_cell))
        result.rows.append(row)
    result.notes.append(
        "paper shape: weights drop from i=1 to i=2 and stabilise by i=3"
    )
    return result
