"""Experiment: the Section 2.3 sliding-window forecast sweep.

"As the time window slides forward, we can predict the minimum cost
for the future": this table slides a fixed-length window across the
Phone contact network and reports, per window, how far the root
reaches (``MST_a``) and at what minimum cost (``MST_w``).  Both sweeps
run through the incremental engine (:mod:`repro.incremental`), so each
slide repairs the previous window's answer where certifiable; the
engine's repair/cold split is reported in the notes.

Like the table modules, the sweep cells run through the
:class:`ExperimentContext` cell protocol (budgeted, checkpointed,
resumable), and their values come from module-level functions.  Each
cell value is a JSON-encodable dict (one row per window plus the
engine statistics), so a full sweep checkpoints and resumes as a unit.

Empty windows follow the :class:`repro.core.sliding.WindowMeasurement`
contract end to end: ``makespan`` is ``None`` (never NaN) and renders
as the paper's ``'-'``; ``cost`` and ``coverage`` are exact zeros.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.sliding import iter_windows
from repro.datasets.registry import load_dataset
from repro.experiments.checkpoint import ExperimentContext
from repro.experiments.runner import TableResult
from repro.incremental import SlidingEngine
from repro.resilience.budget import Budget

#: Call-detail records as the contact network (real durations, so the
#: slide-repair paths apply; zero-duration datasets force cold solves).
DATASET = "phone"

#: Level of the ``MST_w`` approximation (Alg6-2: the paper's sweet spot
#: between quality and runtime, and deep enough to warm-start).
MSTW_LEVEL = 2

#: At most this many windows are printed; the sweep itself always
#: covers every window and the notes report the full count.
MAX_DISPLAY_ROWS = 12


def sweep_params(quick: bool) -> Tuple[float, float, float]:
    """``(scale, window_fraction, step_fraction)`` of the sweep.

    The step is a small fraction of the window so consecutive windows
    overlap heavily -- the sliding regime the incremental engine is
    built for (coarse jumps would dirty most of the tree and fall back
    to cold solves).
    """
    return (0.1, 0.5, 0.0125) if quick else (0.15, 0.5, 0.01)


def sweep_cell_value(
    kind: str, quick: bool, budget: Optional[Budget] = None
) -> Dict[str, Any]:
    """One full sweep of ``kind`` (``"msta"`` or ``"mstw"``).

    Returns a JSON-encodable ``{"rows": [...], "stats": {...}}`` where
    each row carries the window boundaries and the measurement's
    coverage / cost / makespan / caveat (empty-window contract applied:
    ``makespan`` is ``None``, ``cost`` and ``coverage`` are zero).
    """
    scale, window_fraction, step_fraction = sweep_params(quick)
    graph = load_dataset(DATASET, scale=scale)
    t_start, t_end = graph.time_span()
    span = t_end - t_start
    window_length = span * window_fraction
    step = span * step_fraction
    root = max(graph.vertices, key=lambda v: len(graph.out_edges(v)))
    engine = SlidingEngine(graph, root, level=MSTW_LEVEL)
    rows: List[Dict[str, Any]] = []
    for window in iter_windows(graph, window_length, step):
        if kind == "msta":
            measurement = engine.measure_msta(window, budget=budget)
        else:
            measurement = engine.measure_mstw(window, budget=budget)
        rows.append(
            {
                "t_alpha": window.t_alpha,
                "t_omega": window.t_omega,
                "coverage": measurement.coverage,
                "cost": measurement.cost,
                "makespan": measurement.makespan,
                "caveat": measurement.caveat,
            }
        )
    stats = dict(engine.msta.stats)
    stats.update(engine.stats)
    return {"rows": rows, "stats": stats}


def run_sweep(
    quick: bool = False, context: Optional[ExperimentContext] = None
) -> TableResult:
    """The sliding-window forecast table (one row per sampled window)."""
    ctx = context if context is not None else ExperimentContext()
    scale, window_fraction, step_fraction = sweep_params(quick)

    def msta_cell(budget: Optional[Budget], quick=quick) -> Dict[str, Any]:
        return sweep_cell_value("msta", quick, budget)

    def mstw_cell(budget: Optional[Budget], quick=quick) -> Dict[str, Any]:
        return sweep_cell_value("mstw", quick, budget)

    msta = ctx.cell("sweep:msta", msta_cell)
    mstw = ctx.cell("sweep:mstw", mstw_cell)

    result = TableResult(
        name="sweep",
        title=(
            f"Sliding-window sweep: MST_a reach and MST_w cost on "
            f"{DATASET} (scale {scale}, window {window_fraction:.0%} of "
            f"span, step {step_fraction:.1%})"
        ),
        header=["t_alpha", "t_omega", "reached", "makespan", "mstw cost"],
    )
    msta_rows: List[Dict[str, Any]] = msta["rows"]
    mstw_rows: List[Dict[str, Any]] = mstw["rows"]
    stride = max(1, -(-len(msta_rows) // MAX_DISPLAY_ROWS))
    caveats = set()
    for i, (reach_row, cost_row) in enumerate(zip(msta_rows, mstw_rows)):
        for row in (reach_row, cost_row):
            if row["caveat"]:
                caveats.add(row["caveat"])
        if i % stride:
            continue
        makespan = reach_row["makespan"]
        result.add_row(
            reach_row["t_alpha"],
            reach_row["t_omega"],
            reach_row["coverage"],
            "-" if makespan is None else makespan,
            cost_row["cost"],
        )
    msta_stats, mstw_stats = msta["stats"], mstw["stats"]
    result.notes.append(
        f"showing 1 of every {stride} of the {len(msta_rows)} windows; "
        "empty windows "
        "report coverage 0, cost 0.0, and makespan '-' (None in the API, "
        "never NaN)"
    )
    result.notes.append(
        f"MST_a sweep: {msta_stats['incremental_slides']} slides answered "
        f"by dirty-cone repair, {msta_stats['cold_solves']} cold"
    )
    result.notes.append(
        f"MST_w sweep: {mstw_stats['patched_prepares']} patched "
        f"preparations, {mstw_stats['cold_prepares']} cold, "
        f"{mstw_stats['warm_solves']} warm-started solves"
    )
    if caveats:
        result.notes.append("caveats: " + "; ".join(sorted(caveats)))
    return result
