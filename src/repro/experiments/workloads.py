"""Shared workload configurations for the experiment harnesses.

Both the pytest-benchmark suite (``benchmarks/``) and the programmatic
:mod:`repro.experiments` package draw their dataset shapes from here so
the two harnesses measure the same thing.

``quick`` variants shrink every workload further for CI-speed runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.mstw import prepare_mstw_instance
from repro.core.transformation import TransformedGraph
from repro.datasets.registry import load_dataset
from repro.steiner.instance import PreparedInstance
from repro.temporal.graph import TemporalGraph
from repro.temporal.window import (
    TimeWindow,
    extract_window,
    middle_tenth_window,
    select_root,
)


@dataclass(frozen=True)
class WorkloadConfig:
    """One dataset's MST_w benchmark workload.

    ``scale`` shrinks the synthetic stand-in to pure-Python size;
    ``fraction`` is the window share of the total time range (the paper
    uses 0.1 on million-edge graphs -- smaller graphs need a wider
    slice); the ``*_max_level`` fields cap the DST iteration count per
    algorithm, mirroring the paper's '-' over-budget entries.
    """

    name: str
    scale: float
    fraction: float
    charikar_max_level: int = 2
    improved_max_level: int = 3
    pruned_max_level: int = 3


#: Table 4/5/6 workloads (calibrated so |V(G)| is in the low hundreds).
MSTW_WORKLOADS: Tuple[WorkloadConfig, ...] = (
    WorkloadConfig("slashdot", 0.25, 0.5),
    WorkloadConfig("epinions", 0.08, 0.3),
    WorkloadConfig("facebook", 0.15, 0.5, improved_max_level=2),
    WorkloadConfig("enron", 0.12, 0.25, improved_max_level=2),
    WorkloadConfig("hepph", 0.20, 0.3, improved_max_level=2, pruned_max_level=2),
    WorkloadConfig("dblp", 0.05, 0.3),
    WorkloadConfig("phone", 0.20, 0.06),
)

#: Smaller variants for quick (CI) experiment runs.
QUICK_MSTW_WORKLOADS: Tuple[WorkloadConfig, ...] = tuple(
    WorkloadConfig(
        c.name,
        c.scale * 0.6,
        c.fraction,
        min(c.charikar_max_level, 2),
        min(c.improved_max_level, 2),
        min(c.pruned_max_level, 2),
    )
    for c in MSTW_WORKLOADS
)

#: Table 1/2/3 use larger (cheap, MST_a-only) instances of each dataset.
MSTA_SCALE = 1.0


@dataclass
class MSTwWorkload:
    """A fully prepared MST_w pipeline for one dataset."""

    config: WorkloadConfig
    graph: TemporalGraph
    window: TimeWindow
    root: object
    transformed: TransformedGraph
    prepared: PreparedInstance
    preprocessing_seconds: float


#: Per-process build cache.  Parallel experiment workers each warm
#: their own copy from the (deterministic) dataset registry -- workloads
#: are never pickled or shared across processes, so the cache needs no
#: cross-process coherence.
_WORKLOAD_CACHE: Dict[Tuple[str, float], MSTwWorkload] = {}


def nested_sweep_windows(
    graph: TemporalGraph, fractions: Tuple[float, ...]
) -> Tuple[TimeWindow, ...]:
    """Centered windows for the given fractions, widest first.

    ``middle_tenth_window`` centers every window on the graph's time
    range, so decreasing fractions produce strictly *nested* windows --
    the sweep shape under which the batch engine's containment reuse
    fires for every window after the first.
    """
    ordered = sorted(fractions, reverse=True)
    if ordered != list(fractions):
        raise ValueError(
            f"sweep fractions must be in decreasing order, got {fractions}"
        )
    return tuple(
        middle_tenth_window(graph, fraction=fraction) for fraction in ordered
    )


def mstw_workload(config: WorkloadConfig) -> MSTwWorkload:
    """Build (or fetch from cache) the prepared pipeline for a config."""
    key = (config.name, config.scale)
    cached = _WORKLOAD_CACHE.get(key)
    if cached is not None:
        return cached
    base = load_dataset(config.name, scale=config.scale, weighted=True)
    window = middle_tenth_window(base, fraction=config.fraction)
    sub = extract_window(base, window)
    root = select_root(sub, window, min_reach_fraction=0.02)
    start = time.perf_counter()
    transformed, prepared = prepare_mstw_instance(sub, root, window)
    elapsed = time.perf_counter() - start
    workload = MSTwWorkload(
        config=config,
        graph=sub,
        window=window,
        root=root,
        transformed=transformed,
        prepared=prepared,
        preprocessing_seconds=elapsed,
    )
    _WORKLOAD_CACHE[key] = workload
    return workload


def msta_graph(name: str, duration: Optional[float], scale: float = MSTA_SCALE) -> TemporalGraph:
    """A dataset instance for MST_a experiments with forced durations.

    ``duration=1`` reproduces Table 2's protocol, ``duration=0``
    Table 3's; ``None`` keeps the generator's native durations.
    """
    graph = load_dataset(name, scale=scale)
    if duration is not None:
        graph = graph.with_durations(duration)
    return graph


def msta_protocol(
    graph: TemporalGraph, fraction: Optional[float]
) -> Tuple[object, Optional[TimeWindow], TemporalGraph]:
    """Root/window selection for the MST_a experiments.

    ``fraction=None`` is the paper's full-range ``[0, inf]`` setting;
    otherwise the windowed ``G'`` protocol is applied.
    """
    if fraction is None:
        root = select_root(graph, min_reach_fraction=0.1)
        return root, None, graph
    window = middle_tenth_window(graph, fraction=fraction)
    sub = extract_window(graph, window)
    root = select_root(sub, window, min_reach_fraction=0.02)
    return root, window, sub
