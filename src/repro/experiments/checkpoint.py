"""Checkpointed, budgeted, resumable experiment execution.

An :class:`ExperimentContext` threads three robustness features through
the table modules:

* **per-cell budgets** -- every expensive cell runs under a fresh
  :class:`repro.resilience.Budget` deadline; a cell that trips becomes a
  structured :class:`repro.experiments.runner.OverBudgetCell` instead of
  hanging the whole table;
* **JSON checkpoints** -- each completed cell is appended to
  ``<checkpoint_dir>/<experiment>.json`` (written atomically), so a
  killed run loses at most the cell in flight;
* **resume** -- with ``resume=True`` previously checkpointed cells are
  returned from the file instead of being recomputed, and a completed
  run deletes its checkpoint.

Cells are identified by stable string keys chosen by the table modules
(solver/dataset/level triples), so a resumed run reproduces the exact
rows an uninterrupted run would have produced -- byte-identical for
deterministic cells (weights, errors), and carrying the recorded
timings for timing cells.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.core.errors import BudgetExceededError, ExperimentInterruptedError
from repro.experiments.runner import DegradedCell, OverBudgetCell
from repro.resilience.budget import Budget

#: Schema tag for the checkpoint files (bump on incompatible changes).
CHECKPOINT_VERSION = 1


def encode_cell(value: Any) -> Any:
    """A JSON-encodable form of one cell value."""
    if isinstance(value, OverBudgetCell):
        return {"__cell__": "over_budget", "elapsed": value.elapsed, "rung": value.rung}
    if isinstance(value, DegradedCell):
        return {
            "__cell__": "degraded",
            "value": encode_cell(value.value),
            "rung": value.rung,
        }
    return value


def decode_cell(obj: Any) -> Any:
    """Inverse of :func:`encode_cell`."""
    if isinstance(obj, dict) and "__cell__" in obj:
        if obj["__cell__"] == "over_budget":
            return OverBudgetCell(elapsed=obj["elapsed"], rung=obj.get("rung"))
        if obj["__cell__"] == "degraded":
            return DegradedCell(value=decode_cell(obj["value"]), rung=obj["rung"])
        raise ValueError(f"unknown cell tag {obj['__cell__']!r}")
    return obj


@dataclass
class ExperimentContext:
    """Execution policy + checkpoint state for one experiment run.

    Parameters
    ----------
    cell_budget_seconds:
        Wall-clock deadline applied to every cell individually; ``None``
        disables budget enforcement.
    checkpoint_dir:
        Directory for per-experiment JSON checkpoints; ``None`` disables
        checkpointing entirely.
    resume:
        Reuse cells from an existing checkpoint file (when its ``quick``
        flag matches) instead of recomputing them.
    interrupt_after:
        Stop the run with :class:`ExperimentInterruptedError` after this
        many *freshly computed* cells (the checkpoint is already on
        disk).  Useful for incremental runs and exercised by the
        resume tests.
    jobs:
        Worker-process count for :meth:`prefetch`.  ``1`` (default)
        keeps everything serial; the checkpoint format is identical
        either way, so a run may be interrupted at one ``jobs`` value
        and resumed at another.
    """

    cell_budget_seconds: Optional[float] = None
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    interrupt_after: Optional[int] = None
    jobs: int = 1

    fresh_cells: int = field(default=0, init=False)
    _experiment: Optional[str] = field(default=None, init=False, repr=False)
    _quick: bool = field(default=False, init=False, repr=False)
    _cells: Dict[str, Any] = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")

    # ------------------------------------------------------------------
    # Lifecycle (driven by the registry)
    # ------------------------------------------------------------------
    def begin(self, experiment: str, quick: bool) -> None:
        """Start (or resume) one experiment's cell cache."""
        self._experiment = experiment
        self._quick = quick
        self._cells = {}
        path = self._path()
        if not (self.resume and path and os.path.exists(path)):
            return
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if (
            payload.get("version") == CHECKPOINT_VERSION
            and payload.get("experiment") == experiment
            and payload.get("quick") == quick
        ):
            self._cells = {
                key: decode_cell(value)
                for key, value in payload.get("cells", {}).items()
            }

    def complete(self, experiment: str) -> None:
        """Drop the checkpoint of a successfully finished experiment."""
        path = self._path(experiment)
        if path and os.path.exists(path):
            os.remove(path)

    # ------------------------------------------------------------------
    # The cell protocol (used by the table modules)
    # ------------------------------------------------------------------
    def has(self, key: str) -> bool:
        """Whether ``key`` is already answered by the loaded checkpoint."""
        return key in self._cells

    def cell(self, key: str, fn: Callable[[Optional[Budget]], Any]) -> Any:
        """Run (or recall) one budgeted, checkpointed cell.

        ``fn`` receives the cell's :class:`Budget` (or ``None`` when
        budgets are disabled) and returns a JSON-encodable cell value.
        A ``BudgetExceededError`` escaping ``fn`` becomes an
        :class:`OverBudgetCell`.

        Raises
        ------
        ExperimentInterruptedError
            After ``interrupt_after`` fresh cells (checkpoint saved).
        """
        if key in self._cells:
            return self._cells[key]
        budget = (
            Budget(deadline_seconds=self.cell_budget_seconds).start()
            if self.cell_budget_seconds is not None
            else None
        )
        try:
            value = fn(budget)
        except BudgetExceededError as exc:
            value = OverBudgetCell(elapsed=exc.elapsed_seconds)
        self._cells[key] = value
        self.fresh_cells += 1
        self._save()
        if (
            self.interrupt_after is not None
            and self.fresh_cells >= self.interrupt_after
        ):
            raise ExperimentInterruptedError(
                f"stopped after {self.fresh_cells} cells "
                f"(checkpoint saved; rerun with resume to continue)"
            )
        return value

    # ------------------------------------------------------------------
    # Parallel prefetch (used by the registry when jobs > 1)
    # ------------------------------------------------------------------
    def prefetch(self, tasks: Any) -> None:
        """Fill pending cells out-of-order across worker processes.

        ``tasks`` is the ``(cell_key, task)`` list produced by
        :func:`repro.parallel.tasks.experiment_tasks`.  Cells already
        answered by a loaded checkpoint are skipped; the rest are fanned
        out and stored as workers complete them -- in *completion*
        order, which is fine because the cell cache is a keyed dict and
        the checkpoint serializes with sorted keys, so the resulting
        file (and the table the serial assembly loop later renders from
        the cache) is identical to a serial run's for deterministic
        cells.  Each completed cell round-trips through the same
        ``encode_cell``/``decode_cell`` encoding the checkpoint uses, so
        ``OverBudgetCell``/``DegradedCell`` markers survive the process
        boundary losslessly.

        Honors ``interrupt_after`` like :meth:`cell` does: the run stops
        (checkpoint saved) after that many fresh cells, and can be
        resumed later -- at any ``jobs`` value.
        """
        if self.jobs <= 1:
            return
        pending = [(key, task) for key, task in tasks if key not in self._cells]
        if not pending:
            return
        from functools import partial

        from repro.parallel.engine import ParallelExecutor
        from repro.parallel.tasks import run_cell_task

        fn = partial(run_cell_task, budget_seconds=self.cell_budget_seconds)
        interrupted = False
        with ParallelExecutor(self.jobs) as executor:
            for _index, (key, encoded) in executor.unordered(fn, pending):
                self._cells[key] = decode_cell(encoded)
                self.fresh_cells += 1
                self._save()
                if (
                    self.interrupt_after is not None
                    and self.fresh_cells >= self.interrupt_after
                ):
                    interrupted = True
                    break
        if interrupted:
            raise ExperimentInterruptedError(
                f"stopped after {self.fresh_cells} cells "
                f"(checkpoint saved; rerun with resume to continue)"
            )

    # ------------------------------------------------------------------
    # Checkpoint I/O
    # ------------------------------------------------------------------
    def _path(self, experiment: Optional[str] = None) -> Optional[str]:
        name = experiment or self._experiment
        if self.checkpoint_dir is None or name is None:
            return None
        return os.path.join(self.checkpoint_dir, f"{name}.json")

    def _save(self) -> None:
        path = self._path()
        if path is None:
            return
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        payload = {
            "version": CHECKPOINT_VERSION,
            "experiment": self._experiment,
            "quick": self._quick,
            "cells": {key: encode_cell(v) for key, v in self._cells.items()},
        }
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        os.replace(tmp, path)
