"""Checkpointed, budgeted, resumable experiment execution.

An :class:`ExperimentContext` threads four robustness features through
the table modules:

* **per-cell budgets** -- every expensive cell runs under a fresh
  :class:`repro.resilience.Budget` deadline; a cell that trips becomes a
  structured :class:`repro.experiments.runner.OverBudgetCell` instead of
  hanging the whole table;
* **per-cell retries** -- a cell that raises a transient error (an
  injected fault, an OS hiccup) is retried on the deterministic
  backoff schedule of :data:`repro.resilience.retry.DEFAULT_RETRY_POLICY`
  with a *fresh* budget per attempt;
* **verified JSON checkpoints** -- each completed cell is appended to
  ``<checkpoint_dir>/<experiment>.json`` atomically (tmp file +
  ``os.replace``) with a per-cell checksum and a file-level checksum
  footer; on resume, cells failing verification are quarantined and
  recomputed, and a file too damaged to parse is renamed to
  ``<name>.json.quarantined`` so the run starts clean without
  destroying the evidence;
* **resume** -- with ``resume=True`` previously checkpointed cells are
  returned from the file instead of being recomputed, and a completed
  run deletes its checkpoint.  A checkpoint whose schema version this
  build does not understand raises
  :class:`repro.core.errors.CheckpointFormatError` naming the file --
  stale formats are a user decision, not something to guess around.

Cells are identified by stable string keys chosen by the table modules
(solver/dataset/level triples), so a resumed run reproduces the exact
rows an uninterrupted run would have produced -- byte-identical for
deterministic cells (weights, errors), and carrying the recorded
timings for timing cells.

Checkpoint format (version 2)::

    {
      "version": 2,
      "experiment": "table8",
      "quick": true,
      "cells": {"<key>": {"value": <encoded>, "check": "<sha256/16>"}},
      "checksum": "<sha256/16 of the canonical cells object>"
    }

Fault-recovery counters accumulate in :attr:`ExperimentContext.fault_stats`
and are surfaced by the CLI as a report note; they never enter table
rows, so tables stay byte-identical with and without faults.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro import faults
from repro.core.errors import (
    BudgetExceededError,
    CheckpointFormatError,
    ExperimentInterruptedError,
)
from repro.experiments.runner import DegradedCell, OverBudgetCell
from repro.resilience.budget import Budget
from repro.resilience.retry import DEFAULT_RETRY_POLICY, TRANSIENT_ERRORS

#: Schema tag for the checkpoint files (bump on incompatible changes).
#: Version 2 added per-cell checksums and the file-level checksum footer.
CHECKPOINT_VERSION = 2


def encode_cell(value: Any) -> Any:
    """A JSON-encodable form of one cell value."""
    if isinstance(value, OverBudgetCell):
        return {"__cell__": "over_budget", "elapsed": value.elapsed, "rung": value.rung}
    if isinstance(value, DegradedCell):
        return {
            "__cell__": "degraded",
            "value": encode_cell(value.value),
            "rung": value.rung,
        }
    return value


def decode_cell(obj: Any) -> Any:
    """Inverse of :func:`encode_cell`."""
    if isinstance(obj, dict) and "__cell__" in obj:
        if obj["__cell__"] == "over_budget":
            return OverBudgetCell(elapsed=obj["elapsed"], rung=obj.get("rung"))
        if obj["__cell__"] == "degraded":
            return DegradedCell(value=decode_cell(obj["value"]), rung=obj["rung"])
        raise ValueError(f"unknown cell tag {obj['__cell__']!r}")
    return obj


def cell_checksum(encoded: Any) -> str:
    """Short content hash of one encoded cell (canonical JSON, sha256/16).

    Canonical serialization (sorted keys, minimal separators) makes the
    checksum a pure function of the cell *value*, independent of the
    pretty-printing the checkpoint file itself uses.
    """
    canonical = json.dumps(encoded, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _fresh_fault_stats() -> Dict[str, int]:
    return {
        "cell_retries": 0,
        "torn_writes": 0,
        "quarantined_files": 0,
        "quarantined_cells": 0,
        "checksum_mismatches": 0,
        "pool_retries": 0,
        "pool_rebuilds": 0,
        "pool_inline_fallbacks": 0,
        "pool_timeouts": 0,
    }


@dataclass
class ExperimentContext:
    """Execution policy + checkpoint state for one experiment run.

    Parameters
    ----------
    cell_budget_seconds:
        Wall-clock deadline applied to every cell individually; ``None``
        disables budget enforcement.
    checkpoint_dir:
        Directory for per-experiment JSON checkpoints; ``None`` disables
        checkpointing entirely.
    resume:
        Reuse cells from an existing checkpoint file (when its ``quick``
        flag matches) instead of recomputing them.
    interrupt_after:
        Stop the run with :class:`ExperimentInterruptedError` after this
        many *freshly computed* cells (the checkpoint is already on
        disk).  Useful for incremental runs and exercised by the
        resume tests.
    jobs:
        Worker-process count for :meth:`prefetch`.  ``1`` (default)
        keeps everything serial; the checkpoint format is identical
        either way, so a run may be interrupted at one ``jobs`` value
        and resumed at another.

    :attr:`fault_stats` counts every recovery action taken on behalf of
    this run (retries, torn writes detected, quarantined cells/files,
    pool rebuilds); all zeros on a fault-free run.
    """

    cell_budget_seconds: Optional[float] = None
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    interrupt_after: Optional[int] = None
    jobs: int = 1

    fresh_cells: int = field(default=0, init=False)
    fault_stats: Dict[str, int] = field(
        default_factory=_fresh_fault_stats, init=False
    )
    _experiment: Optional[str] = field(default=None, init=False, repr=False)
    _quick: bool = field(default=False, init=False, repr=False)
    _cells: Dict[str, Any] = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")

    # ------------------------------------------------------------------
    # Lifecycle (driven by the registry)
    # ------------------------------------------------------------------
    def begin(self, experiment: str, quick: bool) -> None:
        """Start (or resume) one experiment's cell cache.

        Raises
        ------
        CheckpointFormatError
            When the checkpoint parses cleanly but carries a schema
            version this build does not understand.  Unreadable or
            corrupt files never raise: they are quarantined (renamed to
            ``<file>.quarantined``) and the cells recomputed.
        """
        self._experiment = experiment
        self._quick = quick
        self._cells = {}
        path = self._path()
        if not (self.resume and path and os.path.exists(path)):
            return
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            # Torn or garbled past the point of parsing: set the file
            # aside (evidence preserved) and recompute from scratch.
            self._quarantine_file(path)
            return
        if not isinstance(payload, dict):
            self._quarantine_file(path)
            return
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointFormatError(
                f"checkpoint {path!r} has schema version {version!r}, but this "
                f"build reads version {CHECKPOINT_VERSION}; delete the file or "
                f"rerun without resume to recompute it"
            )
        if (
            payload.get("experiment") != experiment
            or payload.get("quick") != quick
        ):
            return
        cells = payload.get("cells")
        if not isinstance(cells, dict):
            self._quarantine_file(path)
            return
        if payload.get("checksum") != cell_checksum(cells):
            self.fault_stats["checksum_mismatches"] += 1
        # Per-cell salvage: keep every cell whose own checksum verifies
        # and which decodes cleanly; quarantine (drop + recompute) the
        # rest.  A fully intact file loses nothing here.
        for key, entry in cells.items():
            if (
                isinstance(entry, dict)
                and "value" in entry
                and entry.get("check") == cell_checksum(entry["value"])
            ):
                try:
                    self._cells[key] = decode_cell(entry["value"])
                    continue
                except (KeyError, TypeError, ValueError):
                    pass
            self.fault_stats["quarantined_cells"] += 1

    def complete(self, experiment: str) -> None:
        """Drop the checkpoint of a successfully finished experiment."""
        path = self._path(experiment)
        if path and os.path.exists(path):
            os.remove(path)

    # ------------------------------------------------------------------
    # The cell protocol (used by the table modules)
    # ------------------------------------------------------------------
    def has(self, key: str) -> bool:
        """Whether ``key`` is already answered by the loaded checkpoint."""
        return key in self._cells

    def cell(self, key: str, fn: Callable[[Optional[Budget]], Any]) -> Any:
        """Run (or recall) one budgeted, checkpointed, retried cell.

        ``fn`` receives the cell's :class:`Budget` (or ``None`` when
        budgets are disabled) and returns a JSON-encodable cell value.
        A ``BudgetExceededError`` escaping ``fn`` becomes an
        :class:`OverBudgetCell`.  A transient error is retried with a
        fresh budget per attempt (deterministic backoff); only the
        final attempt's failure propagates.

        Raises
        ------
        ExperimentInterruptedError
            After ``interrupt_after`` fresh cells (checkpoint saved).
        """
        if key in self._cells:
            return self._cells[key]
        policy = DEFAULT_RETRY_POLICY
        for attempt in range(policy.attempts):
            budget = (
                Budget(deadline_seconds=self.cell_budget_seconds).start()
                if self.cell_budget_seconds is not None
                else None
            )
            try:
                faults.fire("experiments.cell")
                value = fn(budget)
                break
            except BudgetExceededError as exc:
                value = OverBudgetCell(elapsed=exc.elapsed_seconds)
                break
            except TRANSIENT_ERRORS:
                if attempt == policy.attempts - 1:
                    raise
                self.fault_stats["cell_retries"] += 1
                policy.sleep_before_retry(attempt)
        self._cells[key] = value
        self.fresh_cells += 1
        self._save()
        if (
            self.interrupt_after is not None
            and self.fresh_cells >= self.interrupt_after
        ):
            raise ExperimentInterruptedError(
                f"stopped after {self.fresh_cells} cells "
                f"(checkpoint saved; rerun with resume to continue)"
            )
        return value

    # ------------------------------------------------------------------
    # Parallel prefetch (used by the registry when jobs > 1)
    # ------------------------------------------------------------------
    def prefetch(self, tasks: Any) -> None:
        """Fill pending cells out-of-order across worker processes.

        ``tasks`` is the ``(cell_key, task)`` list produced by
        :func:`repro.parallel.tasks.experiment_tasks`.  Cells already
        answered by a loaded checkpoint are skipped; the rest are fanned
        out and stored as workers complete them -- in *completion*
        order, which is fine because the cell cache is a keyed dict and
        the checkpoint serializes with sorted keys, so the resulting
        file (and the table the serial assembly loop later renders from
        the cache) is identical to a serial run's for deterministic
        cells.  Each completed cell round-trips through the same
        ``encode_cell``/``decode_cell`` encoding the checkpoint uses, so
        ``OverBudgetCell``/``DegradedCell`` markers survive the process
        boundary losslessly.

        The executor's recovery machinery (task retries, pool rebuilds
        after worker crashes, inline fallback) runs underneath; its
        counters fold into :attr:`fault_stats` under ``pool_*`` keys.

        Honors ``interrupt_after`` like :meth:`cell` does: the run stops
        (checkpoint saved) after that many fresh cells, and can be
        resumed later -- at any ``jobs`` value.
        """
        if self.jobs <= 1:
            return
        pending = [(key, task) for key, task in tasks if key not in self._cells]
        if not pending:
            return
        from functools import partial

        from repro.parallel.engine import ParallelExecutor
        from repro.parallel.tasks import run_cell_task

        fn = partial(run_cell_task, budget_seconds=self.cell_budget_seconds)
        interrupted = False
        with ParallelExecutor(self.jobs) as executor:
            for _index, (key, encoded) in executor.unordered(fn, pending):
                self._cells[key] = decode_cell(encoded)
                self.fresh_cells += 1
                self._save()
                if (
                    self.interrupt_after is not None
                    and self.fresh_cells >= self.interrupt_after
                ):
                    interrupted = True
                    break
            for stat_key, count in executor.stats.as_dict().items():
                self.fault_stats[f"pool_{stat_key}"] += count
        if interrupted:
            raise ExperimentInterruptedError(
                f"stopped after {self.fresh_cells} cells "
                f"(checkpoint saved; rerun with resume to continue)"
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def fault_summary(self) -> Optional[str]:
        """One-line recovery report, or ``None`` on a fault-free run.

        Deliberately *not* part of any table: tables must render
        byte-identically with and without faults, so recovery actions
        are reported out-of-band (the CLI prints this to stderr).
        """
        nonzero = {k: v for k, v in self.fault_stats.items() if v}
        if not nonzero:
            return None
        parts = ", ".join(f"{k}={v}" for k, v in sorted(nonzero.items()))
        return f"fault recovery: {parts}"

    # ------------------------------------------------------------------
    # Checkpoint I/O
    # ------------------------------------------------------------------
    def _path(self, experiment: Optional[str] = None) -> Optional[str]:
        name = experiment or self._experiment
        if self.checkpoint_dir is None or name is None:
            return None
        return os.path.join(self.checkpoint_dir, f"{name}.json")

    def _quarantine_file(self, path: str) -> None:
        """Set a damaged checkpoint aside instead of deleting it."""
        try:
            os.replace(path, f"{path}.quarantined")
        except OSError:  # pragma: no cover - quarantine is best-effort
            pass
        self.fault_stats["quarantined_files"] += 1

    def _save(self) -> None:
        path = self._path()
        if path is None:
            return
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        cells: Dict[str, Any] = {}
        for key, value in self._cells.items():
            encoded = encode_cell(value)
            cells[key] = {"value": encoded, "check": cell_checksum(encoded)}
        payload = {
            "version": CHECKPOINT_VERSION,
            "experiment": self._experiment,
            "quick": self._quick,
            "cells": cells,
            "checksum": cell_checksum(cells),
        }
        text = json.dumps(payload, indent=1, sort_keys=True)
        if faults.fire("checkpoint.write") == faults.TORN_WRITE:
            # Simulate a write cut off mid-stream.  It still goes
            # through the atomic rename -- the point is that the
            # *checksums*, not the rename, catch in-flight corruption.
            text = text[: len(text) // 2]
            self.fault_stats["torn_writes"] += 1
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
