"""Median-of-N timing harness emitting schema-versioned JSON.

Each scenario's ``setup`` runs once (untimed); the ``run`` body is then
timed ``repeats`` times with :func:`time.perf_counter` and the median
is reported, followed by one *untimed* :mod:`tracemalloc` pass for the
peak-allocation figure (tracing would distort the timings).  Scenarios
declaring a ``baseline`` get a ``speedup`` field --
``baseline_median / median`` -- computed after the whole suite has run.

The output document is versioned (:data:`SCHEMA_VERSION`); the
comparator (:mod:`repro.perf.compare`) refuses to diff documents whose
schema versions it does not know to be comparable, so CI fails loudly
instead of comparing apples to oranges when the schema evolves.

Schema history:

* v1 -- the PR-2 shape: scale/repeats/platform + scenario rows.
* v2 -- adds a top-level ``jobs`` field, ``cpu_count`` and
  ``start_method`` to ``platform``, and an optional ``reuse_hits``
  per-scenario field (the batch engine's reuse-index hit count).  All
  v1 fields are unchanged, so the comparator accepts v1 baselines.
* v3 -- adds an optional per-scenario ``shard_stats`` field (the
  time-sharded engine's per-shard diagnostics: time range, window /
  cell / edge counts, payload bytes, worker elapsed seconds), so shard
  imbalance is diagnosable from the committed document.  Additive, so
  the comparator accepts v1 and v2 baselines.
"""

from __future__ import annotations

import json
import platform
import statistics
import sys
import time
import tracemalloc
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.parallel.engine import cpu_count, default_start_method
from repro.perf.scenarios import Scenario, build_scenarios

SCHEMA_VERSION = 3


@dataclass
class ScenarioResult:
    """Measured figures for one scenario."""

    name: str
    group: str
    description: str
    params: Dict[str, Any]
    repeats: int
    median_s: float
    min_s: float
    max_s: float
    expansions: Optional[int] = None
    peak_alloc_bytes: Optional[int] = None
    baseline: Optional[str] = None
    tolerance: Optional[float] = None
    speedup: Optional[float] = None
    reuse_hits: Optional[int] = None
    shard_stats: Optional[List[Dict[str, Any]]] = None

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class _Timing:
    samples: List[float] = field(default_factory=list)
    expansions: Optional[int] = None
    peak_alloc_bytes: Optional[int] = None
    reuse_hits: Optional[int] = None
    shard_stats: Optional[List[Dict[str, Any]]] = None
    params: Dict[str, Any] = field(default_factory=dict)


def _size_params(scenario: Scenario, state: Any) -> Dict[str, Any]:
    """Enrich the scenario params with measured instance sizes.

    ``n``/``M`` are the temporal graph's vertex/edge counts, ``k`` the
    terminal count of the prepared DST instance (with ``closure_n`` its
    transformed vertex count), and ``i`` the solver level -- the axes
    the paper's complexity bounds are stated in.
    """
    params = dict(scenario.params)
    if isinstance(state, dict):
        graph = state.get("graph")
        if graph is not None:
            params.setdefault("n", graph.num_vertices)
            params.setdefault("M", graph.num_edges)
        prepared = state.get("prepared")
        if prepared is not None:
            params.setdefault("closure_n", prepared.num_vertices)
            params.setdefault("k", prepared.num_terminals)
    if "level" in params:
        params.setdefault("i", params.pop("level"))
    return params


def _measure(scenario: Scenario, repeats: int, track_alloc: bool) -> _Timing:
    state = scenario.setup()
    timing = _Timing()
    for _ in range(repeats):
        start = time.perf_counter()
        outcome = scenario.run(state)
        timing.samples.append(time.perf_counter() - start)
        # run() returns None, a bare expansion count, or a dict of
        # counters ({"expansions", "reuse_hits", "shard_stats"}).
        if isinstance(outcome, dict):
            if outcome.get("expansions") is not None:
                timing.expansions = outcome["expansions"]
            if outcome.get("reuse_hits") is not None:
                timing.reuse_hits = outcome["reuse_hits"]
            if outcome.get("shard_stats") is not None:
                timing.shard_stats = outcome["shard_stats"]
        elif outcome is not None:
            timing.expansions = outcome
    if track_alloc:
        tracemalloc.start()
        try:
            scenario.run(state)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        timing.peak_alloc_bytes = peak
    timing.params = _size_params(scenario, state)
    return timing


def run_benchmarks(
    scale: str,
    repeats: int = 5,
    names: Optional[Iterable[str]] = None,
    track_alloc: bool = True,
    progress: Optional[Any] = None,
    jobs: int = 1,
    shards: Optional[int] = None,
) -> Dict[str, Any]:
    """Run the scenario suite and return the bench document (a dict).

    ``names`` restricts the run to a subset of scenario names (baseline
    scenarios referenced by a selected scenario are pulled in
    automatically so speedups stay computable).  ``progress`` is an
    optional ``callable(str)`` for per-scenario status lines.  ``jobs``
    unlocks the pool-backed ``parallel_speedup`` variants up to that
    worker count and is recorded in the document.  ``shards`` overrides
    the shard count of the ``sharded_sweep`` pool scenarios (default:
    jobs-aligned planning, one shard per worker).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    scenarios = build_scenarios(scale, jobs, shards=shards)
    if names is not None:
        wanted = set(names)
        known = {s.name for s in scenarios}
        unknown = wanted - known
        if unknown:
            raise KeyError(
                f"unknown scenario(s) {sorted(unknown)}; "
                f"available: {sorted(known)}"
            )
        # Pull in baselines of selected scenarios.
        by_name = {s.name: s for s in scenarios}
        for name in list(wanted):
            baseline = by_name[name].baseline
            if baseline is not None:
                wanted.add(baseline)
        scenarios = [s for s in scenarios if s.name in wanted]

    results: List[ScenarioResult] = []
    for scenario in scenarios:
        if progress is not None:
            progress(f"  {scenario.name} ...")
        timing = _measure(scenario, repeats, track_alloc)
        results.append(
            ScenarioResult(
                name=scenario.name,
                group=scenario.group,
                description=scenario.description,
                params=timing.params,
                repeats=repeats,
                median_s=statistics.median(timing.samples),
                min_s=min(timing.samples),
                max_s=max(timing.samples),
                expansions=timing.expansions,
                peak_alloc_bytes=timing.peak_alloc_bytes,
                baseline=scenario.baseline,
                tolerance=scenario.tolerance,
                reuse_hits=timing.reuse_hits,
                shard_stats=timing.shard_stats,
            )
        )

    by_name = {r.name: r for r in results}
    for result in results:
        if result.baseline and result.baseline in by_name:
            baseline_median = by_name[result.baseline].median_s
            if result.median_s > 0:
                result.speedup = baseline_median / result.median_s

    return {
        "schema_version": SCHEMA_VERSION,
        "scale": scale,
        "repeats": repeats,
        "jobs": jobs,
        "platform": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "system": platform.system(),
            "machine": platform.machine(),
            "cpu_count": cpu_count(),
            "start_method": default_start_method(),
        },
        "scenarios": [r.to_dict() for r in results],
    }


def write_benchmarks(document: Dict[str, Any], path: str) -> None:
    """Serialise a bench document to ``path`` (pretty, trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")


def summarize(document: Dict[str, Any], stream=None) -> None:
    """Print a human-oriented table of a bench document."""
    if stream is None:
        stream = sys.stdout
    rows = document.get("scenarios", [])
    name_width = max((len(r["name"]) for r in rows), default=4)
    header = (
        f"{'scenario':<{name_width}}  {'median':>10}  {'min':>10}  "
        f"{'expansions':>10}  {'speedup':>8}"
    )
    print(header, file=stream)
    print("-" * len(header), file=stream)
    for row in rows:
        expansions = row.get("expansions")
        speedup = row.get("speedup")
        print(
            f"{row['name']:<{name_width}}"
            f"  {row['median_s'] * 1e3:>8.2f}ms"
            f"  {row['min_s'] * 1e3:>8.2f}ms"
            f"  {expansions if expansions is not None else '-':>10}"
            f"  {f'{speedup:.2f}x' if speedup is not None else '-':>8}",
            file=stream,
        )
